"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been
installed (the evaluation environment has no network access, so
``pip install -e .`` may be unavailable; a plain ``pytest`` checkout run
must still work).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
