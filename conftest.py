"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been
installed (the evaluation environment has no network access, so
``pip install -e .`` may be unavailable; a plain ``pytest`` checkout run
must still work).

Also pins the persistent workload cache (``repro.bench.cache``) inside
the repository for test runs unless the caller chose a location, so
running the suite never writes outside the checkout.
"""

import os
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

os.environ.setdefault("REPRO_CACHE_DIR", str(_ROOT / ".cache" / "repro"))
