#!/usr/bin/env python3
"""Long-read mapping with the full pipeline, via ``repro.api``.

Builds a synthetic reference and an ONT-like read set, configures a
mapping :class:`repro.api.Session` (reference + scoring), streams the
mappings as they are produced (``map_reads_iter``), and reports the
mapping accuracy and the extension-task workload distribution the GPU
kernels would receive.

Run:  python examples/read_mapping.py
"""

import numpy as np

from repro.align import preset
from repro.analysis import long_task_fraction, task_workload_antidiagonals, workload_histogram
from repro.api import Session
from repro.io.datasets import TECHNOLOGY_PROFILES, simulate_reads, synthetic_reference


def main() -> None:
    rng = np.random.default_rng(7)
    scoring = preset("map-ont", band_width=64, zdrop=160)

    print("Building a 40 kb synthetic reference and 32 ONT-like reads ...")
    reference = synthetic_reference(40_000, rng)
    reads = simulate_reads(reference, TECHNOLOGY_PROFILES["ONT"], 32, rng)
    sequences = [r.sequence for r in reads]

    # A mapping session: the reference and scoring are configured once,
    # extension tasks run through the session's alignment engine.
    session = Session(reference=reference, scoring=scoring)

    # Stream mappings as they are produced (one read at a time) ...
    print("\nPer-read mappings (streamed, first 10):")
    mappings = []
    for read, mapping in zip(reads, session.map_reads_iter(sequences)):
        mappings.append(mapping)
        if mapping.read_id >= 10:
            continue
        status = "unmapped"
        if mapping.mapped:
            status = (
                f"ref {mapping.ref_start:>6}-{mapping.ref_end:<6} "
                f"anchors={mapping.num_anchors:<3} ext_score={mapping.extension_score}"
            )
        flags = "junk" if read.is_junk else ("chimeric" if read.is_chimeric else "")
        print(f"  read {read.read_id:>2} len={read.length:>5} {flags:<9} {status}")

    # ... or map a batch in one call for the typed outcome (shown on a
    # small subset -- the full set was just mapped by the stream above).
    outcome = session.map_reads(sequences[:4])
    assert [m.mapping_score for m in outcome] == [
        m.mapping_score for m in mappings[:4]
    ]
    print(f"\nbatch variant     : {outcome.num_mapped}/{len(outcome)} of the "
          "first 4 reads mapped (identical to the streamed results)")

    correct = 0
    mapped = [m for m in mappings if m.mapped]
    for read, mapping in zip(reads, mappings):
        if mapping.mapped and read.true_start >= 0:
            if abs(mapping.ref_start - read.true_start) < 250:
                correct += 1
    print(f"mapped reads      : {len(mapped)}/{len(reads)}")
    print(f"correct positions : {correct}/{sum(1 for r in reads if r.true_start >= 0)}")

    # The extension-task workload the GPU kernels would receive.
    tasks = session.read_workload(sequences)
    workloads = task_workload_antidiagonals(tasks)
    hist = workload_histogram(workloads, num_bins=8)
    print(f"\nExtension tasks: {len(tasks)}")
    print(f"top-10% of tasks carry {long_task_fraction(workloads):.0%} of the workload")
    print("workload histogram (anti-diagonals -> task count):")
    for lo, hi, count in zip(hist["bin_edges"][:-1], hist["bin_edges"][1:], hist["task_count"]):
        bar = "#" * int(count)
        print(f"  {int(lo):>6}-{int(hi):<6} {bar}")


if __name__ == "__main__":
    main()
