#!/usr/bin/env python3
"""Online serving demo: micro-batched alignment with latency telemetry.

Builds a small synthetic workload, then shows the two faces of
``repro.serve``:

1. the **live service** -- ``Session.serve()`` returns an
   :class:`~repro.serve.service.AlignmentService`; ``submit()`` hands
   back futures while a scheduler thread coalesces requests into
   engine-sized batches (results are bit-identical to ``Session.align``);
2. the **virtual-clock replay** -- a Poisson arrival trace is drained
   deterministically, with and without micro-batching, and the latency /
   throughput telemetry of both policies is printed side by side.

Run:  python examples/serve_demo.py
"""

import numpy as np

from repro.api import LoadGenerator, ServeConfig, Session, replay
from repro.align import AlignmentTask, mutate, preset, random_sequence


def build_tasks(count: int = 48, seed: int = 17):
    rng = np.random.default_rng(seed)
    scoring = preset("map-ont", band_width=16, zdrop=120)
    tasks = []
    for t in range(count):
        ref = random_sequence(int(rng.integers(60, 260)), rng)
        query = mutate(
            ref, rng, substitution_rate=0.06, insertion_rate=0.02, deletion_rate=0.02
        )
        tasks.append(AlignmentTask(ref=ref, query=query, scoring=scoring, task_id=t))
    return tasks


def main() -> None:
    tasks = build_tasks()
    session = Session(tasks=tasks)

    # --- 1. the live service: futures in, micro-batched results out ----
    with session.serve(max_batch_size=16, max_wait_ms=2.0) as service:
        futures = [service.submit(task) for task in tasks]
        scores = [future.result().score for future in futures]
    direct = session.align()
    assert scores == direct.scores, "served scores must match Session.align"
    print(f"live service : {len(scores)} requests in "
          f"{service.telemetry.num_batches} batches "
          f"(mean occupancy {service.telemetry.mean_occupancy():.1f}); "
          "scores bit-identical to Session.align()")

    # --- 2. deterministic replay: micro-batching vs one-by-one ---------
    generator = LoadGenerator(tasks, name="demo", seed=3)
    trace = generator.poisson(rate_rps=1500.0, num_requests=96)
    config = ServeConfig(timing="modeled", max_batch_size=16, max_wait_ms=3.0)
    micro = replay(trace, config, policy="microbatch")
    single = replay(trace, config.replace(max_batch_size=1), policy="batch1")

    print(f"\nreplay of {len(trace)} Poisson requests "
          f"(~{trace.offered_rate_rps:.0f} req/s offered, modeled timing):")
    for report in (micro, single):
        latency = report.telemetry["latency_ms"]
        print(f"  [{report.policy:<10}] makespan {report.makespan_ms:8.2f} ms | "
              f"throughput {report.throughput_rps:7.1f} req/s | "
              f"p50/p99 latency {latency['p50_ms']:.2f}/{latency['p99_ms']:.2f} ms | "
              f"{report.telemetry['batches']} batches")
    speedup = single.makespan_ms / micro.makespan_ms
    print(f"  micro-batching drains the same trace {speedup:.1f}x faster")


if __name__ == "__main__":
    main()
