#!/usr/bin/env python3
"""Real FASTA data through the workload registry (docs/WORKLOADS.md).

End to end:

1. write a small gzipped reference/reads FASTA pair to a temp directory
   (the AGAThA artifact's paired-record format);
2. register a :class:`repro.api.FastaWorkloadSpec` under a name, making
   it resolvable everywhere a dataset name is;
3. score it through a :class:`repro.api.Session` with batch-scale CIGAR
   emission (``align(cigars=True)`` -- every CIGAR is the scalar
   traceback oracle's, whichever engine scored the workload);
4. run the packaged built-in workloads (adversarial length
   distributions, protein-style BLOSUM62 scoring, the sample FASTA
   pair) through the sharded figure runner, the same path
   ``python -m repro.bench --figure workloads`` takes.

Run:  python examples/fasta_workload.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.align import mutate, preset, random_sequence
from repro.api import (
    WORKLOADS,
    FastaWorkloadSpec,
    Session,
    register_workload,
    workload_names,
)
from repro.io.fasta import FastaRecord, write_fasta


def write_sample_pair(directory: Path, count: int = 8) -> tuple[Path, Path]:
    """A deterministic gzipped reference/reads pair on disk."""
    rng = np.random.default_rng(7)
    refs, reads = [], []
    for i in range(count):
        ref = random_sequence(int(rng.integers(200, 600)), rng)
        query = mutate(
            ref, rng, substitution_rate=0.04, insertion_rate=0.015, deletion_rate=0.015
        )
        refs.append(FastaRecord(name=f"ref{i}", sequence=ref))
        reads.append(FastaRecord(name=f"read{i}", sequence=query))
    ref_path = directory / "ref.fasta.gz"
    reads_path = directory / "reads.fasta.gz"
    write_fasta(ref_path, refs)
    write_fasta(reads_path, reads)
    return ref_path, reads_path


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        ref_path, reads_path = write_sample_pair(Path(tmp))

        # --- register: the name now works wherever a dataset name does ---
        register_workload(
            FastaWorkloadSpec(
                name="example-fasta",
                scoring=preset("map-ont", band_width=48, zdrop=160),
                ref_path=str(ref_path),
                reads_path=str(reads_path),
                mode="pairs",
            ),
            replace=True,
        )
        print("registered workloads:", ", ".join(workload_names()))

        # --- align with batch-scale CIGAR emission -----------------------
        session = Session(dataset="example-fasta", engine="batch-sliced")
        outcome = session.align(cigars=True)
        print(f"\n{len(outcome.scores)} tasks scored; first three with CIGARs:")
        for tb in outcome.cigars[:3]:
            print(
                f"  score={tb.result.score:4d}  "
                f"ref[{tb.ref_start}:{tb.ref_end}]  "
                f"cigar={tb.cigar.to_string()}"
            )

        # --- every registered workload through the figure runner ---------
        # (the same path `python -m repro.bench --figure workloads` takes;
        # run inside the temp-dir scope so example-fasta's files exist)
        from repro.bench.runner import run_figure

        record = run_figure("workloads")
        row = record.suites["workloads"].speedups["AGAThA"]
        print("\nAGAThA speedup over the CPU anchor, per registered workload:")
        for name in record.datasets:
            print(f"  {name:20s} {row[name]:6.2f}x")
        print(f"  {'GeoMean':20s} {row['GeoMean']:6.2f}x")

    # Drop the temp-file-backed registration now that its files are gone.
    WORKLOADS.unregister("example-fasta")


if __name__ == "__main__":
    main()
