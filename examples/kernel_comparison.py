#!/usr/bin/env python3
"""Compare the GPU kernel designs on one evaluation dataset.

Builds the ``ONT-HG002`` synthetic dataset (reads -> seeding/chaining ->
extension tasks), verifies that every exact kernel reproduces the reference
scores, then runs the cost simulation of each kernel and prints the
speedups over the Minimap2 CPU baseline together with the ablation ladder
of AGAThA's four schemes.

Run:  python examples/kernel_comparison.py   (takes ~30 s: the dataset's
dynamic programs are profiled once, in pure Python)
"""

from repro.analysis.report import format_table
from repro.baselines.aligner import Minimap2CpuAligner
from repro.kernels import AgathaKernel
from repro.pipeline.experiment import (
    compare_kernels,
    dataset_tasks,
    kernel_suite,
    scaled_hardware,
)


def main() -> None:
    name = "ONT-HG002"
    print(f"Building dataset {name} (synthetic GIAB-like reads + pre-compute) ...")
    tasks = dataset_tasks(name)
    print(f"  {len(tasks)} extension-alignment tasks")

    device, cpu = scaled_hardware()
    print(f"hardware: {device.name} vs {cpu.name} (scaled pair, see DESIGN.md)\n")

    # Exactness: AGAThA reproduces the reference scores bit for bit.
    reference_scores = [r.score for r in Minimap2CpuAligner(cpu).run(tasks)]
    agatha_scores = [r.score for r in AgathaKernel().run(tasks)]
    assert reference_scores == agatha_scores
    print("exactness check: AGAThA scores == reference scores for every task\n")

    # Main comparison (Figure 8 style).
    rows = []
    for target in ("mm2", "diff"):
        results = compare_kernels(tasks, kernel_suite(target=target), device=device, cpu=cpu)
        for kernel, summary in results.items():
            if kernel == "CPU" and target == "diff":
                continue
            label = "CPU" if kernel == "CPU" else f"{kernel} ({'MM2' if target == 'mm2' else 'Diff'}-Target)"
            rows.append([label, summary["time_ms"], summary["speedup_vs_cpu"]])
    print(format_table(["kernel", "simulated time (ms)", "speedup vs CPU"], rows))

    # Ablation ladder (Figure 9 style).
    print("\nAGAThA ablation ladder:")
    ladder = [
        ("Baseline", dict(rolling_window=False, sliced_diagonal=False, subwarp_rejoining=False, uneven_bucketing=False)),
        ("+RW", dict(sliced_diagonal=False, subwarp_rejoining=False, uneven_bucketing=False)),
        ("+RW+SD", dict(subwarp_rejoining=False, uneven_bucketing=False)),
        ("+RW+SD+SR", dict(uneven_bucketing=False)),
        ("+RW+SD+SR+UB", {}),
    ]
    cpu_ms = Minimap2CpuAligner(cpu).time_ms(tasks)
    rows = []
    for label, flags in ladder:
        stats = AgathaKernel(**flags).simulate(tasks, device)
        rows.append([label, stats.time_ms, cpu_ms / stats.time_ms, stats.total_runahead_cells])
    print(format_table(["variant", "time (ms)", "speedup vs CPU", "run-ahead cells"], rows))


if __name__ == "__main__":
    main()
