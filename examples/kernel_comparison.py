#!/usr/bin/env python3
"""Compare the GPU kernel designs on one evaluation dataset.

Configures a dataset :class:`repro.api.Session` for ``ONT-HG002``
(reads -> seeding/chaining -> extension tasks; served from the
persistent workload cache on repeat runs), verifies that every exact
kernel reproduces the reference scores, then reproduces the MM2-Target
and Diff-Target suites and the AGAThA ablation ladder through the
sharded experiment runner -- the same machine-readable record
``python -m repro.bench`` writes to ``BENCH_<figure>.json``.

Run:  python examples/kernel_comparison.py   (first run takes ~30 s: the
dataset's dynamic programs are profiled once, in pure Python)
"""

from repro.analysis.report import format_table
from repro.api import Session, get_kernel
from repro.baselines.aligner import Minimap2CpuAligner


def main() -> None:
    name = "ONT-HG002"
    print(f"Building dataset {name} (synthetic GIAB-like reads + pre-compute) ...")
    session = Session(dataset=name)
    tasks = session.workload()
    print(f"  {len(tasks)} extension-alignment tasks")

    device, cpu = session.hardware()
    print(f"hardware: {device.name} vs {cpu.name} (scaled pair, see DESIGN.md)\n")

    # Exactness: AGAThA reproduces the reference scores bit for bit.
    reference_scores = [r.score for r in Minimap2CpuAligner(cpu).run(tasks)]
    agatha_scores = [r.score for r in get_kernel("AGAThA")().run(tasks)]
    assert reference_scores == agatha_scores
    print("exactness check: AGAThA scores == reference scores for every task\n")

    # Main comparison (Figure 8 style), through the sharded runner.  The
    # dataset session restricts the figure grid to its own dataset; larger
    # runs shard with workers=N (see `python -m repro.bench --help`).
    record = session.run_figure("quick")
    rows = []
    for suite_name in ("mm2", "diff"):
        suite = record.suites[suite_name]
        if suite_name == "mm2":
            rows.append(["CPU", suite.cpu_time_ms[name], 1.0])
        tag = "MM2" if suite_name == "mm2" else "Diff"
        for cell in suite.cells:
            rows.append([f"{cell.kernel} ({tag}-Target)", cell.time_ms, cell.speedup_vs_cpu])
    print(format_table(["kernel", "simulated time (ms)", "speedup vs CPU"], rows))

    # Ablation ladder (Figure 9 style), from the runner's ablation suite.
    print("\nAGAThA ablation ladder:")
    ablation = session.run_figure("fig09").suites["ablation"]
    rows = [
        [cell.kernel, cell.time_ms, cell.speedup_vs_cpu, cell.runahead_cells]
        for cell in ablation.cells
    ]
    print(format_table(["variant", "time (ms)", "speedup vs CPU", "run-ahead cells"], rows))


if __name__ == "__main__":
    main()
