#!/usr/bin/env python3
"""Quickstart: guided alignment through the ``repro.api`` session façade.

Builds two task pairs -- a noisy copy of a reference segment and a fully
divergent pair -- scores them in one call through a :class:`repro.api.Session`
(struct-of-arrays batch engine by default), shows the score, the
termination behaviour and the reconstructed CIGAR, and demonstrates that
the divergent pair is cut short by the Z-drop condition.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import Session
from repro.align import (
    AlignmentTask,
    mutate,
    preset,
    random_sequence,
    traceback_align,
)


def main() -> None:
    rng = np.random.default_rng(42)
    scoring = preset("map-ont", band_width=64, zdrop=200)
    print("Scoring scheme:", scoring.describe())

    # --- two task pairs: a read-like noisy copy, and unrelated junk ------
    reference = random_sequence(600, rng)
    query = mutate(
        reference,
        rng,
        substitution_rate=0.05,
        insertion_rate=0.02,
        deletion_rate=0.02,
    )
    junk = random_sequence(600, rng)
    tasks = [
        AlignmentTask(ref=reference, query=query, scoring=scoring, task_id=0),
        AlignmentTask(ref=reference, query=junk, scoring=scoring, task_id=1),
    ]

    # One configured session, one call: the whole workload is scored by
    # the registered "batch" engine (swap engine="scalar" for the oracle).
    session = Session(tasks=tasks)
    outcome = session.align()
    result, divergent = outcome.results
    print(f"\nengine: {outcome.engine!r} over {len(outcome)} tasks")

    print("\n[similar pair]")
    print(f"  score                 : {result.score}")
    print(f"  best cell (ref, query): ({result.max_i}, {result.max_j})")
    print(f"  terminated by Z-drop  : {result.terminated}")
    print(f"  cells computed        : {result.cells_computed}")

    tb = traceback_align(reference[:200], query[:200], scoring)
    print(f"  CIGAR (first 200 bp)  : {tb.cigar.to_string()}")
    print(f"  matches / edits       : {tb.cigar.matches} / {tb.cigar.edit_distance}")

    # --- the divergent pair: Z-drop stops the computation early -----------
    print("\n[divergent pair]")
    print(f"  score                 : {divergent.score}")
    print(f"  terminated by Z-drop  : {divergent.terminated}")
    print(
        f"  anti-diagonals done   : {divergent.antidiagonals_processed} "
        f"of {reference.size + junk.size - 1}"
    )
    unguided = Session(
        tasks=[
            AlignmentTask(
                ref=reference, query=junk, scoring=scoring.replace(zdrop=0), task_id=0
            )
        ]
    ).align()
    saved = 1 - divergent.cells_computed / max(unguided[0].cells_computed, 1)
    print(f"  work saved by guiding : {saved:.0%}")


if __name__ == "__main__":
    main()
