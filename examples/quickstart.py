#!/usr/bin/env python3
"""Quickstart: guided alignment of two sequences.

Aligns a noisy copy of a reference segment with the exact guided algorithm
(k-banding + Z-drop), shows the score, the termination behaviour and the
reconstructed CIGAR, and demonstrates that a divergent pair is cut short by
the Z-drop condition.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.align import (
    antidiagonal_align,
    mutate,
    preset,
    random_sequence,
    traceback_align,
)


def main() -> None:
    rng = np.random.default_rng(42)
    scoring = preset("map-ont", band_width=64, zdrop=200)
    print("Scoring scheme:", scoring.describe())

    # --- a read-like pair: the query is a noisy copy of the reference ----
    reference = random_sequence(600, rng)
    query = mutate(
        reference,
        rng,
        substitution_rate=0.05,
        insertion_rate=0.02,
        deletion_rate=0.02,
    )
    result = antidiagonal_align(reference, query, scoring)
    print("\n[similar pair]")
    print(f"  score                 : {result.score}")
    print(f"  best cell (ref, query): ({result.max_i}, {result.max_j})")
    print(f"  terminated by Z-drop  : {result.terminated}")
    print(f"  cells computed        : {result.cells_computed}")

    tb = traceback_align(reference[:200], query[:200], scoring)
    print(f"  CIGAR (first 200 bp)  : {tb.cigar.to_string()}")
    print(f"  matches / edits       : {tb.cigar.matches} / {tb.cigar.edit_distance}")

    # --- a divergent pair: Z-drop stops the computation early -------------
    junk = random_sequence(600, rng)
    divergent = antidiagonal_align(reference, junk, scoring)
    print("\n[divergent pair]")
    print(f"  score                 : {divergent.score}")
    print(f"  terminated by Z-drop  : {divergent.terminated}")
    print(
        f"  anti-diagonals done   : {divergent.antidiagonals_processed} "
        f"of {reference.size + junk.size - 1}"
    )
    saved = 1 - divergent.cells_computed / max(
        antidiagonal_align(reference, junk, scoring.replace(zdrop=0)).cells_computed, 1
    )
    print(f"  work saved by guiding : {saved:.0%}")


if __name__ == "__main__":
    main()
