#!/usr/bin/env python3
"""Applying the kernels to BWA-MEM-style guided alignment (Section 5.9).

BWA-MEM uses a much smaller band width and termination threshold than
Minimap2.  This example registers a custom kernel suite with the
``repro.api`` suite registry (SALoBa's MM2-target variant vs AGAThA),
builds a small synthetic short-ish-read workload under BWA-MEM
parameters, and compares the suite against the BWA-MEM CPU model through
one :class:`repro.api.Session` -- illustrating both that the schemes
transfer to other guided aligners and that new suites plug into the
public API without touching the harness.

Run:  python examples/bwamem_alignment.py
"""

import numpy as np

from repro.align import preset
from repro.analysis.report import format_table
from repro.api import Session, SuiteEntry, get_kernel, register_suite
from repro.baselines.aligner import BwaMemCpuAligner
from repro.io.datasets import TECHNOLOGY_PROFILES, simulate_reads, synthetic_reference

# A custom suite: once registered it is addressable by name everywhere
# (Session(suite=...), python -m repro.bench --suites, figure records).
register_suite(
    "bwamem-demo",
    [
        SuiteEntry.make("SALoBa (MM2-Target)", "SALoBa", target="mm2"),
        SuiteEntry.make("AGAThA", "AGAThA"),
    ],
    description="Section 5.9: the exact kernels under BWA-MEM parameters",
)


def main() -> None:
    rng = np.random.default_rng(23)
    scoring = preset("bwa-mem", band_width=32, zdrop=60)
    print("BWA-MEM parameters:", scoring.describe())

    reference = synthetic_reference(30_000, rng)
    reads = simulate_reads(reference, TECHNOLOGY_PROFILES["HiFi"], 28, rng)
    mapping_session = Session(
        reference=reference, scoring=scoring, mapper_options={"anchor_spacing": 100}
    )
    tasks = mapping_session.read_workload([r.sequence for r in reads])
    print(f"extension tasks under BWA-MEM parameters: {len(tasks)}")

    # Compare the custom suite against the BWA-MEM CPU model.
    session = Session(tasks=tasks, suite="bwamem-demo")
    _, cpu = session.hardware()
    comparison = session.compare(cpu_aligner=BwaMemCpuAligner(cpu))

    rows = [[comparison.cpu.kernel, comparison.cpu.time_ms, 1.0]]
    for label, summary in comparison.kernels.items():
        rows.append([label, summary.time_ms, summary.speedup_vs_cpu])
    print(format_table(["aligner", "simulated time (ms)", "speedup vs CPU"], rows))

    # The exactness guarantee holds for the BWA-MEM parameters too.
    reference_scores = [r.score for r in BwaMemCpuAligner(cpu).run(tasks)]
    agatha_scores = [r.score for r in get_kernel("AGAThA")().run(tasks)]
    assert reference_scores == agatha_scores
    print("\nexactness check passed: AGAThA == BWA-MEM reference scores")


if __name__ == "__main__":
    main()
