#!/usr/bin/env python3
"""Applying the kernels to BWA-MEM-style guided alignment (Section 5.9).

BWA-MEM uses a much smaller band width and termination threshold than
Minimap2.  This example maps a small synthetic short-ish-read batch under
those parameters and compares AGAThA against the SALoBa-style baseline and
the CPU, illustrating that the schemes transfer to other guided aligners.

Run:  python examples/bwamem_alignment.py
"""

import numpy as np

from repro.align import preset
from repro.analysis.report import format_table
from repro.baselines.aligner import BwaMemCpuAligner
from repro.io.datasets import TECHNOLOGY_PROFILES, simulate_reads, synthetic_reference
from repro.kernels import AgathaKernel, SALoBaKernel
from repro.pipeline.experiment import scaled_hardware
from repro.pipeline.mapper import LongReadMapper


def main() -> None:
    rng = np.random.default_rng(23)
    scoring = preset("bwa-mem", band_width=32, zdrop=60)
    print("BWA-MEM parameters:", scoring.describe())

    reference = synthetic_reference(30_000, rng)
    reads = simulate_reads(reference, TECHNOLOGY_PROFILES["HiFi"], 28, rng)
    mapper = LongReadMapper(reference, scoring, anchor_spacing=100)
    tasks = mapper.workload([r.sequence for r in reads])
    print(f"extension tasks under BWA-MEM parameters: {len(tasks)}")

    device, cpu = scaled_hardware()
    cpu_aligner = BwaMemCpuAligner(cpu)
    cpu_ms = cpu_aligner.time_ms(tasks)

    rows = [["BWA-MEM (CPU)", cpu_ms, 1.0]]
    for label, kernel in (
        ("SALoBa (MM2-Target)", SALoBaKernel(target="mm2")),
        ("AGAThA", AgathaKernel()),
    ):
        stats = kernel.simulate(tasks, device)
        rows.append([label, stats.time_ms, cpu_ms / stats.time_ms])
    print(format_table(["aligner", "simulated time (ms)", "speedup vs CPU"], rows))

    # The exactness guarantee holds for the BWA-MEM parameters too.
    reference_scores = [r.score for r in cpu_aligner.run(tasks)]
    agatha_scores = [r.score for r in AgathaKernel().run(tasks)]
    assert reference_scores == agatha_scores
    print("\nexactness check passed: AGAThA == BWA-MEM reference scores")


if __name__ == "__main__":
    main()
