"""Tests for the memory models and warp/subwarp structures."""

import pytest

from repro.gpusim.memory import (
    GlobalMemoryCounter,
    SharedMemoryAllocationError,
    SharedMemoryBuffer,
)
from repro.gpusim.trace import MemoryTraffic
from repro.gpusim.warp import WARP_SIZE, WarpAssignment, round_robin_assignment, split_warp


class TestSharedMemory:
    def test_allocate_and_free(self):
        buf = SharedMemoryBuffer(capacity_bytes=1000)
        buf.allocate("lmb", 800)
        assert buf.free_bytes == 200
        buf.free("lmb")
        assert buf.free_bytes == 1000

    def test_over_allocation_raises(self):
        buf = SharedMemoryBuffer(capacity_bytes=100)
        with pytest.raises(SharedMemoryAllocationError):
            buf.allocate("big", 200)

    def test_duplicate_name_rejected(self):
        buf = SharedMemoryBuffer(capacity_bytes=100)
        buf.allocate("a", 10)
        with pytest.raises(ValueError):
            buf.allocate("a", 10)

    def test_fits(self):
        buf = SharedMemoryBuffer(capacity_bytes=100)
        assert buf.fits(100)
        buf.allocate("a", 60)
        assert not buf.fits(50)


class TestGlobalMemoryCounter:
    def test_coalesced_reads_merge(self):
        counter = GlobalMemoryCounter()
        tx = counter.read(8, coalesced=True)
        assert tx == 1
        assert counter.traffic.global_reads == 1

    def test_uncoalesced_reads_do_not_merge(self):
        counter = GlobalMemoryCounter()
        assert counter.read(8, coalesced=False) == 8

    def test_write_and_events(self):
        counter = GlobalMemoryCounter()
        counter.write(32, coalesced=True, count=2.0)
        counter.shared(5)
        counter.reduction(3)
        counter.termination_check(7)
        snap = counter.snapshot()
        assert snap.global_writes == pytest.approx(8.0)
        assert snap.shared_accesses == 5
        assert snap.reductions == 3
        assert snap.termination_checks == 7


class TestMemoryTraffic:
    def test_add(self):
        a = MemoryTraffic(global_reads=1, global_writes=2, shared_accesses=3)
        b = MemoryTraffic(global_reads=4, reductions=1)
        c = a + b
        assert c.global_reads == 5 and c.global_words == 7

    def test_latency_and_bytes(self):
        from repro.gpusim.device import CostModel, RTX_A6000

        cost = CostModel()
        t = MemoryTraffic(global_reads=10, shared_accesses=4, reductions=2, termination_checks=1)
        assert t.global_bytes(cost) == 10 * cost.bytes_per_global_access
        expected = (
            10 * cost.global_access_cycles
            + 4 * cost.shared_access_cycles
            + 2 * cost.warp_reduce_cycles
            + 1 * cost.termination_check_cycles
        )
        assert t.latency_cycles(RTX_A6000, cost) == pytest.approx(expected)


class TestWarpStructures:
    def test_split_warp(self):
        assert split_warp(8) == 4
        assert split_warp(32) == 1
        with pytest.raises(ValueError):
            split_warp(5)
        with pytest.raises(ValueError):
            split_warp(0)

    def test_empty_assignment(self):
        warp = WarpAssignment.empty(0, 8)
        assert warp.num_subwarps == 4
        assert warp.num_tasks == 0

    def test_round_robin(self):
        warps = round_robin_assignment(list(range(9)), 8)
        assert len(warps) == 3
        assert warps[0].subwarps[0].task_indices == [0]
        assert warps[2].subwarps[0].task_indices == [8]
        all_tasks = sorted(i for w in warps for i in w.task_indices)
        assert all_tasks == list(range(9))

    def test_round_robin_empty(self):
        assert round_robin_assignment([], 8) == []

    def test_warp_size_constant(self):
        assert WARP_SIZE == 32
