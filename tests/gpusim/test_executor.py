"""Tests for the device-level executor and multi-GPU distribution."""

import pytest

from repro.gpusim.device import DeviceSpec
from repro.gpusim.executor import GpuExecutor, MultiGpuExecutor
from repro.gpusim.trace import KernelLaunchStats, MemoryTraffic, SubwarpWork, TaskWorkload, WarpWork


def make_stats(warp_cycles, traffic_words=0.0):
    warps = []
    for k, cycles in enumerate(warp_cycles):
        warp = WarpWork(warp_id=k, cycles=cycles)
        warp.subwarps.append(
            SubwarpWork(
                subwarp_id=0,
                threads=8,
                workloads=[
                    TaskWorkload(
                        task_id=k,
                        cells=100.0,
                        ideal_cells=90.0,
                        traffic=MemoryTraffic(global_reads=traffic_words),
                    )
                ],
            )
        )
        warps.append(warp)
    return KernelLaunchStats(kernel_name="test", device_name="?", warps=warps)


DEVICE = DeviceSpec("toy", num_sms=1, resident_warps_per_sm=2, clock_ghz=1.0, mem_bandwidth_gbps=1.0)


class TestMakespan:
    def test_fewer_warps_than_slots(self):
        ex = GpuExecutor(DEVICE)
        assert ex.makespan_cycles([10.0]) == 10.0
        assert ex.makespan_cycles([]) == 0.0

    def test_greedy_list_scheduling(self):
        ex = GpuExecutor(DEVICE)  # 2 slots
        # Slots: [7], [5,3] -> makespan 8, or greedy order 7,5,3 -> slot0=7, slot1=5, then 3 -> slot1=8.
        assert ex.makespan_cycles([7.0, 5.0, 3.0]) == pytest.approx(8.0)

    def test_perfectly_divisible(self):
        ex = GpuExecutor(DEVICE)
        assert ex.makespan_cycles([1.0] * 10) == pytest.approx(5.0)


class TestExecute:
    def test_latency_bound(self):
        ex = GpuExecutor(DEVICE)
        stats = make_stats([1e6, 1e6])
        report = ex.execute(stats)
        assert report.limited_by() == "latency"
        assert stats.time_ms == pytest.approx(report.time_ms)
        assert stats.time_ms == pytest.approx(DEVICE.cycles_to_ms(1e6))

    def test_bandwidth_bound(self):
        ex = GpuExecutor(DEVICE)
        stats = make_stats([10.0], traffic_words=1e9)  # 4 GB over 1 GB/s
        report = ex.execute(stats)
        assert report.limited_by() == "bandwidth"
        assert report.time_ms > 1000.0

    def test_occupancy_bounded(self):
        ex = GpuExecutor(DEVICE)
        report = ex.execute(make_stats([5.0, 10.0, 20.0]))
        assert 0.0 < report.occupancy <= 1.0

    def test_summary_fields(self):
        stats = make_stats([5.0, 10.0])
        GpuExecutor(DEVICE).execute(stats)
        summary = stats.summary()
        assert summary["warps"] == 2
        assert summary["cells"] == 200.0
        assert summary["runahead_cells"] == 20.0
        assert summary["time_ms"] > 0


class TestMultiGpu:
    def test_sharding(self):
        multi = MultiGpuExecutor(DEVICE, num_gpus=3)
        shards = multi.shard_tasks(list(range(10)))
        assert len(shards) == 3
        assert sum(len(s) for s in shards) == 10

    def test_execute_scales_down_time(self):
        single = MultiGpuExecutor(DEVICE, num_gpus=1)
        quad = MultiGpuExecutor(DEVICE, num_gpus=4)
        tasks = list(range(64))

        def run_shard(shard):
            return make_stats([100.0] * len(shard))

        t1, _ = single.execute(tasks, run_shard)
        t4, reports = quad.execute(tasks, run_shard)
        assert t4 < t1
        assert len(reports) == 4

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            MultiGpuExecutor(DEVICE, num_gpus=0)

    def test_empty_tasks(self):
        multi = MultiGpuExecutor(DEVICE, num_gpus=2)
        total, reports = multi.execute([], lambda shard: make_stats([]))
        assert total == 0.0
        assert len(reports) == 2
