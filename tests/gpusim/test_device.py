"""Tests for device specs and the cost model."""

import pytest

from repro.gpusim.device import (
    A100,
    CostModel,
    DeviceSpec,
    DEVICES,
    H100_DPX,
    RTX_2080TI,
    RTX_A6000,
    get_device,
)


class TestDeviceSpec:
    def test_concurrent_warps(self):
        assert RTX_A6000.concurrent_warps == RTX_A6000.num_sms * RTX_A6000.resident_warps_per_sm

    def test_cycles_to_ms(self):
        d = DeviceSpec("x", 1, 1, 1.0, 100.0)
        assert d.cycles_to_ms(1e9) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            d.cycles_to_ms(-1)

    def test_bandwidth_bound(self):
        d = DeviceSpec("x", 1, 1, 1.0, 100.0)
        assert d.bandwidth_bound_ms(100e9) == pytest.approx(1000.0)

    def test_dpx_speeds_up_cells(self):
        cost = CostModel()
        assert H100_DPX.effective_cell_cycles(cost) < RTX_A6000.effective_cell_cycles(cost)

    def test_warp_reduce_fallback(self):
        cost = CostModel()
        assert RTX_2080TI.reduce_cycles(cost) > RTX_A6000.reduce_cycles(cost)

    def test_scale(self):
        small = RTX_A6000.scale(1 / 84)
        assert small.num_sms == 1
        assert small.mem_bandwidth_gbps == pytest.approx(RTX_A6000.mem_bandwidth_gbps / 84)
        assert small.clock_ghz == RTX_A6000.clock_ghz
        with pytest.raises(ValueError):
            RTX_A6000.scale(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", 0, 1, 1.0, 1.0)
        with pytest.raises(ValueError):
            DeviceSpec("bad", 1, 1, 1.0, 1.0, dpx_factor=0.5)


class TestRegistry:
    def test_lookup(self):
        assert get_device("a6000") is RTX_A6000
        assert get_device("A100") is A100

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_device("tpu")

    def test_all_devices_valid(self):
        for device in DEVICES.values():
            assert device.concurrent_warps > 0


class TestCostModel:
    def test_replace(self):
        cost = CostModel().replace(cycles_per_cell=3.0)
        assert cost.cycles_per_cell == 3.0
        assert cost.global_access_cycles == CostModel().global_access_cycles
