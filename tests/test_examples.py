"""Smoke tests: every example under ``examples/`` must run end to end.

The examples double as executable documentation; nothing else in the
repository executed them, so regressions used to go unnoticed.  Each one
is run as a subprocess (the way a user would run it) with ``src`` on
``PYTHONPATH``; the datasets inside the examples are small enough for CI.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    """The examples directory exists and holds the known scripts."""
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "read_mapping.py",
        "kernel_comparison.py",
        "bwamem_alignment.py",
        "serve_demo.py",
        "fasta_workload.py",
    } <= names


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(example)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{example.name} exited with {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{example.name} produced no output"
