"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.scoring import preset
from repro.align.sequence import mutate, random_sequence
from repro.align.types import AlignmentTask


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_scheme():
    """A small-band scoring scheme that keeps test DP tables tiny."""
    return preset("map-ont", band_width=17, zdrop=80)


def make_task_batch(rng, scheme, count=12, min_len=40, max_len=300, task_id_base=0):
    """Mixed batch of similar and divergent sequence pairs."""
    tasks = []
    for t in range(count):
        n = int(rng.integers(min_len, max_len))
        ref = random_sequence(n, rng)
        if t % 3 == 2:
            query = random_sequence(int(rng.integers(min_len, max_len)), rng)
        else:
            query = mutate(
                ref,
                rng,
                substitution_rate=0.06,
                insertion_rate=0.02,
                deletion_rate=0.02,
            )
        tasks.append(
            AlignmentTask(ref=ref, query=query, scoring=scheme, task_id=task_id_base + t)
        )
    return tasks


@pytest.fixture
def task_batch(rng, small_scheme):
    """A small mixed batch of alignment tasks."""
    return make_task_batch(rng, small_scheme)
