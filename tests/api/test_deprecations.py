"""The deprecation shims: one warning each, bit-identical behaviour.

Policy (DESIGN.md, "Deprecation policy"): a legacy entry point keeps its
exact historical behaviour, emits exactly one :class:`DeprecationWarning`
per call naming its replacement, and delegates to the shared
``repro.api`` implementation so the two paths cannot diverge.
"""

import warnings

import numpy as np
import pytest

from repro.align import preset
from repro.api import EngineOptions, Session, align_tasks, build_suite
from repro.io.datasets import synthetic_reference
from repro.kernels import AgathaKernel, KernelConfig
from repro.pipeline.experiment import (
    ExperimentConfig,
    align_workload,
    compare_kernels,
    kernel_suite,
)
from repro.pipeline.mapper import LongReadMapper


def _deprecations(fn, *args, **kwargs):
    """Run ``fn`` and return (result, list of DeprecationWarnings)."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn(*args, **kwargs)
    return result, [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestAlignWorkloadShim:
    @pytest.mark.parametrize("batched", [True, False])
    def test_single_warning_and_bit_identical(self, task_batch, batched):
        legacy, deps = _deprecations(align_workload, task_batch, batched=batched)
        assert len(deps) == 1
        assert "align_tasks" in str(deps[0].message)
        fresh = align_tasks(task_batch, engine="batch" if batched else "scalar")
        assert [r.score for r in legacy] == [r.score for r in fresh]
        assert [r.cells_computed for r in legacy] == [r.cells_computed for r in fresh]
        assert [(r.max_i, r.max_j, r.terminated) for r in legacy] == [
            (r.max_i, r.max_j, r.terminated) for r in fresh
        ]

    def test_batch_size_forwarded(self, task_batch):
        legacy, deps = _deprecations(align_workload, task_batch, batch_size=7)
        assert len(deps) == 1
        fresh = align_tasks(
            task_batch, engine="batch", options=EngineOptions(batch_size=7)
        )
        assert [r.score for r in legacy] == [r.score for r in fresh]


class TestEngineOptionsShims:
    """``batch_size=`` keywords now route through ``EngineOptions``."""

    def test_align_tasks_batch_size_warns_once_and_matches(self, task_batch):
        legacy, deps = _deprecations(
            align_tasks, task_batch, engine="batch", batch_size=7
        )
        assert len(deps) == 1
        assert "EngineOptions" in str(deps[0].message)
        fresh = align_tasks(
            task_batch, engine="batch", options=EngineOptions(batch_size=7)
        )
        assert legacy == fresh

    def test_align_tasks_options_path_is_silent(self, task_batch):
        _, deps = _deprecations(
            align_tasks, task_batch, options=EngineOptions(batch_size=7)
        )
        assert deps == []

    def test_align_tasks_conflict(self, task_batch):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="conflicting bucket sizes"):
                align_tasks(
                    task_batch,
                    batch_size=7,
                    options=EngineOptions(batch_size=8),
                )

    def test_session_batch_size_warns_once_and_forwards(self, task_batch):
        session, deps = _deprecations(Session, tasks=task_batch, batch_size=17)
        assert len(deps) == 1
        assert "EngineOptions" in str(deps[0].message)
        assert session.options.batch_size == 17
        assert session.batch_size == 17  # compat mirror
        fresh = Session(tasks=task_batch, options=EngineOptions(batch_size=17))
        assert session.align() == fresh.align()

    def test_session_conflict(self, task_batch):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="conflicting bucket sizes"):
                Session(
                    tasks=task_batch,
                    batch_size=17,
                    options=EngineOptions(batch_size=16),
                )

    def test_session_agreeing_sizes_are_fine(self, task_batch):
        session, deps = _deprecations(
            Session,
            tasks=task_batch,
            batch_size=17,
            options=EngineOptions(batch_size=17),
        )
        assert len(deps) == 1
        assert session.effective_batch_size() == 17


class TestKernelSuiteShim:
    @pytest.mark.parametrize("target", ["mm2", "diff"])
    def test_single_warning_and_same_lineup(self, target):
        legacy, deps = _deprecations(kernel_suite, target=target)
        assert len(deps) == 1
        assert "build_suite" in str(deps[0].message)
        fresh = build_suite(target)
        assert list(legacy) == list(fresh)
        for name in legacy:
            assert type(legacy[name]) is type(fresh[name])
            assert legacy[name].target == fresh[name].target
            assert legacy[name].config == fresh[name].config

    def test_experiment_config_batch_size_still_flows(self):
        legacy, deps = _deprecations(kernel_suite, ExperimentConfig(batch_size=17))
        assert len(deps) == 1
        assert all(k.config.batch_bucket_size == 17 for k in legacy.values())

    def test_unknown_target_still_value_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown suite"):
                kernel_suite(target="x")

    def test_registered_suites_now_reachable(self):
        legacy, deps = _deprecations(kernel_suite, target="ablation")
        assert len(deps) == 1
        assert list(legacy)[0] == "Baseline"


class TestCompareKernelsShim:
    def test_single_warning_and_bit_identical(self, task_batch):
        kernels = {"AGAThA": AgathaKernel(KernelConfig())}
        legacy, deps = _deprecations(compare_kernels, task_batch, kernels)
        assert len(deps) == 1
        assert "Session.compare" in str(deps[0].message)
        fresh = Session(tasks=task_batch, suite="mm2").compare()
        # Same CPU anchor and, for the shared kernel, identical floats.
        assert legacy["CPU"] == fresh.to_dict()["CPU"]
        assert legacy["AGAThA"] == fresh.to_dict()["AGAThA"]


class TestLongReadMapperShim:
    @pytest.fixture
    def reference_and_scoring(self, rng):
        return synthetic_reference(10_000, rng), preset(
            "map-ont", band_width=32, zdrop=120
        )

    @pytest.mark.parametrize("batched", [True, False])
    def test_batched_kwarg_warns_once_and_maps_to_engine(
        self, reference_and_scoring, batched
    ):
        reference, scoring = reference_and_scoring
        mapper, deps = _deprecations(
            LongReadMapper, reference, scoring, batched=batched
        )
        assert len(deps) == 1
        assert "engine=" in str(deps[0].message)
        assert mapper.engine == ("batch" if batched else "scalar")
        assert mapper.batched is batched  # compat property

    def test_engine_kwarg_is_silent(self, reference_and_scoring):
        reference, scoring = reference_and_scoring
        mapper, deps = _deprecations(
            LongReadMapper, reference, scoring, engine="scalar"
        )
        assert deps == []
        assert mapper.engine == "scalar"

    def test_engine_and_batched_conflict(self, reference_and_scoring):
        reference, scoring = reference_and_scoring
        with pytest.raises(ValueError, match="not both"):
            LongReadMapper(reference, scoring, engine="batch", batched=True)

    def test_unknown_engine_rejected(self, reference_and_scoring):
        reference, scoring = reference_and_scoring
        with pytest.raises(KeyError, match="unknown engine"):
            LongReadMapper(reference, scoring, engine="warp-drive")

    def test_legacy_path_bit_identical(self, reference_and_scoring, rng):
        reference, scoring = reference_and_scoring
        read = np.concatenate([reference[1000:2200]])
        legacy, deps = _deprecations(
            LongReadMapper, reference, scoring, batched=False
        )
        assert len(deps) == 1
        modern = LongReadMapper(reference, scoring, engine="scalar")
        lhs, rhs = legacy.map_read(read), modern.map_read(read)
        assert lhs.mapped == rhs.mapped
        assert lhs.mapping_score == rhs.mapping_score
        assert (lhs.ref_start, lhs.ref_end) == (rhs.ref_start, rhs.ref_end)
