"""Registry semantics and the built-in engine/kernel/suite entries."""

import pytest

from repro.api import (
    ENGINES,
    KERNELS,
    SUITES,
    Registry,
    RegistryError,
    SuiteEntry,
    align_tasks,
    build_suite,
    engine_names,
    get_engine,
    get_kernel,
    get_suite,
    kernel_names,
    register_engine,
    register_kernel,
    register_suite,
    suite_names,
)
from repro.kernels import AgathaKernel, KernelConfig


class TestRegistryBasics:
    def test_round_trip_direct_form(self):
        reg = Registry("thing")
        reg.register("a", 1)
        assert reg.get("a") == 1
        assert reg.names() == ("a",)
        assert "a" in reg and "b" not in reg
        assert len(reg) == 1 and list(reg) == ["a"]

    def test_round_trip_decorator_form(self):
        reg = Registry("thing")

        @reg.register("fn")
        def fn():
            return 42

        assert reg.get("fn") is fn
        assert fn() == 42  # the decorator returns the object unchanged

    def test_duplicate_name_rejected(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("a", 2)
        assert reg.get("a") == 1  # original untouched

    def test_replace_overrides(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.register("a", 2, replace=True)
        assert reg.get("a") == 2

    def test_unknown_name_lists_available(self):
        reg = Registry("gizmo")
        reg.register("a", 1)
        with pytest.raises(KeyError, match=r"unknown gizmo 'b'.*'a'"):
            reg.get("b")

    def test_bad_names_rejected(self):
        reg = Registry("thing")
        with pytest.raises(RegistryError):
            reg.register("", 1)
        with pytest.raises(RegistryError):
            reg.register(3, 1)  # type: ignore[arg-type]

    def test_unregister(self):
        reg = Registry("thing")
        reg.register("a", 1)
        assert reg.unregister("a") == 1
        assert "a" not in reg
        with pytest.raises(KeyError, match="unknown thing"):
            reg.unregister("a")


class TestBuiltinRegistries:
    def test_builtin_engines(self):
        assert set(engine_names()) >= {"scalar", "batch"}
        assert ENGINES.get("batch") is get_engine("batch")

    def test_builtin_kernels(self):
        assert set(kernel_names()) >= {
            "GASAL2", "SALoBa", "BaselineExact", "Manymap", "LOGAN", "AGAThA",
        }
        assert get_kernel("AGAThA") is KERNELS.get("AGAThA") is AgathaKernel

    def test_builtin_suites(self):
        assert set(suite_names()) >= {"mm2", "diff", "ablation"}
        assert get_suite("mm2").labels == ("GASAL2", "SALoBa", "Manymap", "AGAThA")
        assert get_suite("diff").labels == ("GASAL2", "SALoBa", "Manymap", "LOGAN")
        assert SUITES.get("ablation").labels[0] == "Baseline"

    def test_build_suite_applies_config(self):
        config = KernelConfig(batch_bucket_size=17)
        suite = build_suite("mm2", config)
        assert all(k.config.batch_bucket_size == 17 for k in suite.values())

    def test_build_suite_fresh_instances(self):
        first, second = build_suite("mm2"), build_suite("mm2")
        assert all(first[name] is not second[name] for name in first)


class TestCustomRegistration:
    def test_custom_engine_round_trip(self, task_batch):
        calls = []

        @register_engine("test-recording")
        def recording(tasks, *, batch_size=64):
            calls.append(len(tasks))
            return get_engine("scalar")(tasks, batch_size=batch_size)

        try:
            results = align_tasks(task_batch, engine="test-recording")
            assert calls == [len(task_batch)]
            assert [r.score for r in results] == [
                r.score for r in align_tasks(task_batch, engine="batch")
            ]
        finally:
            ENGINES.unregister("test-recording")

    def test_custom_suite_round_trip(self):
        spec = register_suite(
            "test-ladder",
            [
                SuiteEntry.make("Full", "AGAThA"),
                ("Bare", "AGAThA", {"rolling_window": False, "sliced_diagonal": False,
                                    "subwarp_rejoining": False, "uneven_bucketing": False}),
            ],
            description="temporary",
        )
        try:
            assert get_suite("test-ladder") is spec
            kernels = build_suite("test-ladder")
            assert list(kernels) == ["Full", "Bare"]
            assert kernels["Bare"].feature_label == "Baseline"
        finally:
            SUITES.unregister("test-ladder")

    def test_duplicate_suite_name_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_suite("mm2", [SuiteEntry.make("AGAThA", "AGAThA")])

    def test_suite_referencing_unknown_kernel_rejected(self):
        with pytest.raises(KeyError, match="unknown kernel 'NoSuch'"):
            register_suite("test-bad", [SuiteEntry.make("X", "NoSuch")])
        assert "test-bad" not in SUITES

    def test_custom_kernel_appears_in_suites(self):
        @register_kernel("test-agatha-alias")
        def make(config=None, **options):
            return AgathaKernel(config, **options)

        register_suite(
            "test-alias-suite", [SuiteEntry.make("Alias", "test-agatha-alias")]
        )
        try:
            kernels = build_suite("test-alias-suite")
            assert isinstance(kernels["Alias"], AgathaKernel)
            # The bench runner sees the new suite through the same registry.
            from repro.bench import runner

            assert "test-alias-suite" in runner.SUITES
            assert set(runner.build_suite("test-alias-suite")) == {"Alias"}
        finally:
            SUITES.unregister("test-alias-suite")
            KERNELS.unregister("test-agatha-alias")
