"""The public streaming surface: open_batch, capability flags, options.

``open_batch`` must hand back a native stream for engines that declare a
streaming factory and wrap everything else -- including third-party
``register_engine`` backends that never heard of streaming -- in the
:class:`OneShotBatch` adapter, with results bit-identical to
``align_tasks`` either way.  The registry's ``meta`` side-channel that
carries the capability is pinned here too.
"""

import numpy as np
import pytest

from repro.align.batch import BatchStream, batch_align
from repro.align.scoring import preset
from repro.align.sequence import mutate, random_sequence
from repro.align.types import AlignmentTask
from repro.api import (
    ENGINES,
    EngineOptions,
    InFlightBatch,
    OneShotBatch,
    align_tasks,
    open_batch,
    register_engine,
    supports_streaming,
)


@pytest.fixture
def tasks():
    rng = np.random.default_rng(37)
    scoring = preset("map-ont", band_width=16, zdrop=60)
    out = []
    for t in range(10):
        ref = random_sequence(int(rng.integers(30, 120)), rng)
        query = mutate(ref, rng, substitution_rate=0.06)
        out.append(AlignmentTask(ref=ref, query=query, scoring=scoring, task_id=t))
    return out


class TestSupportsStreaming:
    def test_builtin_flags(self):
        assert supports_streaming("batch-sliced")
        assert not supports_streaming("scalar")
        assert not supports_streaming("batch")

    def test_vector_streams_when_available(self):
        if "vector" in ENGINES.names():
            assert supports_streaming("vector")

    def test_unknown_engine_raises(self):
        with pytest.raises(KeyError, match="no-such-engine"):
            supports_streaming("no-such-engine")


class TestOpenBatch:
    def test_streaming_engine_gets_a_native_stream(self, tasks):
        handle = open_batch(tasks, engine="batch-sliced")
        assert isinstance(handle, BatchStream)
        assert isinstance(handle, InFlightBatch)
        for got, want in zip(handle.drain(), align_tasks(tasks, engine="batch-sliced")):
            assert got == want

    def test_one_shot_engine_gets_the_adapter(self, tasks):
        handle = open_batch(tasks, engine="batch")
        assert isinstance(handle, OneShotBatch)
        assert handle.drain() == align_tasks(tasks, engine="batch")

    def test_capacity_flows_through(self, tasks):
        handle = open_batch(tasks[:2], engine="batch-sliced", capacity=8)
        assert handle.capacity == 8 and handle.free == 6
        adapter = open_batch(tasks[:2], engine="batch", capacity=8)
        assert adapter.capacity == 8 and adapter.free == 6

    def test_slice_width_option_reaches_the_stream(self, tasks):
        narrow = open_batch(
            tasks, engine="batch-sliced", options=EngineOptions(slice_width=1)
        )
        wide = open_batch(
            tasks, engine="batch-sliced", options=EngineOptions(slice_width=10_000)
        )
        narrow_results = narrow.drain()
        assert narrow_results == wide.drain()
        # One anti-diagonal per slice must take many more slices.
        assert len(narrow.stats) > len(wide.stats)

    def test_third_party_engine_through_adapter(self, tasks):
        calls = []

        @register_engine("adapter-test-engine")
        def third_party(batch, *, batch_size=4):
            calls.append(batch_size)
            return batch_align(batch)

        try:
            handle = open_batch(
                tasks, engine="adapter-test-engine", options=EngineOptions(batch_size=3)
            )
            assert isinstance(handle, OneShotBatch)
            assert not supports_streaming("adapter-test-engine")
            assert handle.drain() == batch_align(tasks)
            assert calls == [3]
        finally:
            ENGINES.unregister("adapter-test-engine")

    def test_third_party_streaming_factory(self, tasks):
        @register_engine(
            "stream-test-engine",
            open_batch=lambda batch, *, capacity=None, options: BatchStream(
                batch, capacity=capacity, slice_width=options.slice_width or 4
            ),
        )
        def streaming(batch, *, batch_size=4):
            return batch_align(batch)

        try:
            assert supports_streaming("stream-test-engine")
            handle = open_batch(tasks, engine="stream-test-engine")
            assert isinstance(handle, BatchStream)
            assert handle.drain() == batch_align(tasks)
        finally:
            ENGINES.unregister("stream-test-engine")


class TestRegistryMeta:
    def test_meta_roundtrip_and_isolation(self):
        ENGINES.register("meta-test", lambda t: [], meta={"option_params": ("x",)})
        try:
            meta = ENGINES.meta("meta-test")
            assert meta == {"option_params": ("x",)}
            meta["option_params"] = ("mutated",)
            assert ENGINES.meta("meta-test") == {"option_params": ("x",)}
        finally:
            ENGINES.unregister("meta-test")

    def test_reregister_without_meta_clears_it(self):
        ENGINES.register("meta-test", lambda t: [], meta={"k": 1})
        try:
            ENGINES.register("meta-test", lambda t: [], replace=True)
            assert ENGINES.meta("meta-test") == {}
        finally:
            ENGINES.unregister("meta-test")

    def test_meta_of_unknown_name_raises(self):
        with pytest.raises(KeyError):
            ENGINES.meta("never-registered")

    def test_unregister_drops_meta(self):
        ENGINES.register("meta-test", lambda t: [], meta={"k": 1})
        ENGINES.unregister("meta-test")
        ENGINES.register("meta-test", lambda t: [])
        try:
            assert ENGINES.meta("meta-test") == {}
        finally:
            ENGINES.unregister("meta-test")


class TestEngineOptions:
    def test_forwards_only_set_fields(self):
        opts = EngineOptions(batch_size=32)
        assert opts.engine_kwargs(("batch_size", "slice_width")) == {"batch_size": 32}
        assert opts.engine_kwargs(("slice_width",)) == {}
        full = EngineOptions(batch_size=8, slice_width=4)
        assert full.engine_kwargs(("batch_size", "slice_width")) == {
            "batch_size": 8,
            "slice_width": 4,
        }

    def test_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            EngineOptions(batch_size=0)
        with pytest.raises(ValueError, match="slice_width"):
            EngineOptions(slice_width=-2)
        with pytest.raises(ValueError, match="batch_size"):
            EngineOptions(batch_size=2.5)

    def test_replace(self):
        opts = EngineOptions(batch_size=16)
        derived = opts.replace(slice_width=8)
        assert derived == EngineOptions(batch_size=16, slice_width=8)
        assert opts.slice_width is None
