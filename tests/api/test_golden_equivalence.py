"""Golden equivalence: the ``repro.api`` façade vs the legacy entry points.

Acceptance property of the API redesign: on the Figure-8 workloads,
``Session.align/simulate/compare/run_figure`` must produce bit-identical
scores, launch stats and BENCH records versus the legacy entry points
(which are now shims over the same implementations), and the bench
runner must build its cells from the shared suite registry.

The legacy calls below intentionally exercise the deprecated spellings;
their warnings are expected and suppressed.
"""

import warnings

import pytest

from repro.api import Session, get_suite
from repro.bench.runner import build_suite as runner_build_suite, run_figure
from repro.kernels import AgathaKernel
from repro.pipeline.experiment import (
    align_workload,
    compare_kernels,
    dataset_tasks,
    kernel_suite,
    scaled_hardware,
    speedup_table,
)

#: One of the paper's nine Figure-8 datasets (also used by the examples;
#: its workload is shared in-process with the figure benchmarks).
DATASET = "ONT-HG002"


@pytest.fixture(scope="module")
def figure8_tasks():
    return dataset_tasks(DATASET)


@pytest.fixture(scope="module")
def session():
    return Session(dataset=DATASET)


def _legacy(fn, *args, **kwargs):
    """Call a deprecated entry point with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return fn(*args, **kwargs)


class TestAlignEquivalence:
    @pytest.mark.parametrize("batched", [True, False])
    def test_scores_bit_identical(self, session, figure8_tasks, batched):
        legacy = _legacy(align_workload, figure8_tasks, batched=batched)
        outcome = Session(
            dataset=DATASET, engine="batch" if batched else "scalar"
        ).align()
        assert outcome.scores == [r.score for r in legacy]
        assert [r.cells_computed for r in outcome] == [
            r.cells_computed for r in legacy
        ]
        assert [(r.max_i, r.max_j, r.terminated, r.antidiagonals_processed)
                for r in outcome] == [
            (r.max_i, r.max_j, r.terminated, r.antidiagonals_processed)
            for r in legacy
        ]

    def test_session_workload_is_dataset_tasks(self, session, figure8_tasks):
        # Same cached task objects -> the profile cache is shared too.
        assert session.workload() is figure8_tasks


class TestSimulateEquivalence:
    def test_launch_stats_bit_identical(self, session, figure8_tasks):
        device, _ = scaled_hardware()
        legacy_stats = AgathaKernel().simulate(figure8_tasks, device)
        outcome = session.simulate("AGAThA")
        assert outcome.stats.summary() == legacy_stats.summary()
        assert outcome.summary.to_dict() == legacy_stats.summary()


class TestCompareEquivalence:
    @pytest.mark.parametrize("target", ["mm2", "diff"])
    def test_comparison_mapping_bit_identical(self, figure8_tasks, target):
        legacy = _legacy(
            compare_kernels, figure8_tasks, _legacy(kernel_suite, target=target)
        )
        fresh = Session(dataset=DATASET, suite=target).compare()
        assert fresh.to_dict() == legacy  # exact float equality throughout


class TestRunFigureEquivalence:
    def test_bench_record_bit_identical(self, session):
        legacy_record = run_figure("quick", datasets=[DATASET])
        fresh_record = session.run_figure("quick")
        assert fresh_record.datasets == legacy_record.datasets
        assert set(fresh_record.suites) == set(legacy_record.suites)
        for name, suite in legacy_record.suites.items():
            # Full per-suite payload: cells, CPU anchors, speedup tables.
            assert fresh_record.suites[name].to_dict() == suite.to_dict()

    def test_record_speedups_match_legacy_speedup_table(self, session):
        record = session.run_figure("quick", suites=("mm2",))
        table = speedup_table([DATASET], lambda: _legacy(kernel_suite, target="mm2"))
        assert record.speedup_table("mm2") == table


class TestSharedRegistry:
    def test_runner_builds_cells_from_the_registry(self):
        # The runner's suite table is the registry itself -- no duplicate.
        for name in ("mm2", "diff", "ablation"):
            built = runner_build_suite(name)
            assert tuple(built) == get_suite(name).labels

    def test_legacy_kernel_suite_is_the_same_lineup(self):
        legacy = _legacy(kernel_suite, target="mm2")
        registry = get_suite("mm2").build()
        assert list(legacy) == list(registry)
        assert [type(k) for k in legacy.values()] == [
            type(k) for k in registry.values()
        ]

    def test_no_duplicate_suite_table_left_in_runner(self):
        import inspect

        import repro.bench.runner as runner_module

        source = inspect.getsource(runner_module)
        # The hardcoded tuple the registry replaced must stay deleted.
        assert 'SUITES: Tuple[str, ...] = ("mm2"' not in source
        assert "_SUITES" not in source
