"""Public-API surface snapshot: ``__all__`` diffed against a manifest.

The committed ``public_api.txt`` is the reviewed public surface of the
project (``repro`` and ``repro.api``).  Adding or removing an export
must show up as a diff of that file in the same change -- CI fails
otherwise.  Regenerate with::

    PYTHONPATH=src python tests/api/test_public_surface.py --regen
"""

from pathlib import Path

import repro
import repro.api

MANIFEST = Path(__file__).with_name("public_api.txt")


def _current_surface() -> list:
    lines = [f"repro:{name}" for name in repro.__all__]
    lines += [f"repro.api:{name}" for name in repro.api.__all__]
    return sorted(lines)


def test_surface_matches_committed_manifest():
    committed = MANIFEST.read_text(encoding="utf-8").splitlines()
    current = _current_surface()
    added = sorted(set(current) - set(committed))
    removed = sorted(set(committed) - set(current))
    assert current == committed, (
        "public API surface changed; review it and update tests/api/public_api.txt "
        f"(added: {added}, removed: {removed})"
    )


def test_every_exported_name_resolves():
    for module in (repro, repro.api):
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module.__name__}.{name}"


def test_all_lists_are_duplicate_free_and_sorted_manifest():
    assert len(set(repro.__all__)) == len(repro.__all__)
    assert len(set(repro.api.__all__)) == len(repro.api.__all__)
    committed = MANIFEST.read_text(encoding="utf-8").splitlines()
    assert committed == sorted(committed)


def test_py_typed_marker_ships():
    marker = Path(repro.__file__).with_name("py.typed")
    assert marker.exists(), "src/repro/py.typed must ship in the wheel (PEP 561)"


def test_lazy_exports_cover_all():
    # Every lazily exported name must be importable through __getattr__.
    for name in repro._EXPORTS:
        assert getattr(repro, name) is not None
    assert sorted(repro.__all__) == sorted(["__version__", *repro._EXPORTS])


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        MANIFEST.write_text("\n".join(_current_surface()) + "\n", encoding="utf-8")
        print(f"wrote {MANIFEST}")
