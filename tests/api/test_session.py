"""Behaviour of the :class:`repro.api.Session` façade."""

import numpy as np
import pytest

from repro.align import preset
from repro.api import (
    AlignmentOutcome,
    ComparisonOutcome,
    MappingOutcome,
    Session,
    SimulationOutcome,
)
from repro.io.datasets import TECHNOLOGY_PROFILES, simulate_reads, synthetic_reference
from repro.kernels import KernelConfig


class TestConstruction:
    def test_exactly_one_source_required(self, task_batch):
        with pytest.raises(ValueError, match="exactly one"):
            Session()
        with pytest.raises(ValueError, match="exactly one"):
            Session(dataset="ONT-HG002", tasks=task_batch)

    def test_reference_requires_scoring(self, rng):
        with pytest.raises(ValueError, match="scoring"):
            Session(reference=synthetic_reference(2000, rng))

    def test_unknown_engine_fails_fast(self, task_batch):
        with pytest.raises(KeyError, match="unknown engine"):
            Session(tasks=task_batch, engine="gpu??")

    def test_unknown_suite_fails_fast(self, task_batch):
        with pytest.raises(KeyError, match="unknown suite"):
            Session(tasks=task_batch, suite="nope")

    def test_unknown_dataset_fails_fast(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            Session(dataset="no-such-dataset")

    def test_dataset_session_resolves_spec(self):
        session = Session(dataset="ONT-HG002")
        assert session.dataset is not None
        assert session.dataset.name == "ONT-HG002"


class TestAlign:
    def test_align_returns_typed_outcome(self, task_batch):
        outcome = Session(tasks=task_batch).align()
        assert isinstance(outcome, AlignmentOutcome)
        assert outcome.engine == "batch"
        assert len(outcome) == len(task_batch)
        assert outcome.scores == [r.score for r in outcome]
        assert outcome[0] is outcome.results[0]

    def test_scalar_and_batch_engines_agree(self, task_batch):
        batch = Session(tasks=task_batch, engine="batch").align()
        scalar = Session(tasks=task_batch, engine="scalar").align()
        assert batch.scores == scalar.scores
        assert [r.cells_computed for r in batch] == [r.cells_computed for r in scalar]

    def test_sliced_engine_agrees_through_session(self, task_batch):
        sliced = Session(tasks=task_batch, engine="batch-sliced").align()
        scalar = Session(tasks=task_batch, engine="scalar").align()
        assert sliced.engine == "batch-sliced"
        assert sliced.scores == scalar.scores
        assert [r.antidiagonals_processed for r in sliced] == [
            r.antidiagonals_processed for r in scalar
        ]
        assert [r.cells_computed for r in sliced] == [
            r.cells_computed for r in scalar
        ]

    def test_workload_cached_between_calls(self, task_batch):
        session = Session(tasks=task_batch)
        assert session.workload() is session.workload()


class TestSimulateAndCompare:
    def test_simulate_default_kernel(self, task_batch):
        outcome = Session(tasks=task_batch).simulate()
        assert isinstance(outcome, SimulationOutcome)
        assert outcome.kernel == "AGAThA"
        assert outcome.time_ms > 0
        assert outcome.summary.cells > 0
        assert outcome.summary.speedup_vs_cpu is None  # no CPU anchor here

    def test_simulate_with_options(self, task_batch):
        outcome = Session(tasks=task_batch).simulate(
            "AGAThA", rolling_window=False, sliced_diagonal=False,
            subwarp_rejoining=False, uneven_bucketing=False,
        )
        assert "Baseline" in outcome.kernel

    def test_batch_size_flows_into_kernels(self, task_batch):
        session = Session(tasks=task_batch, batch_size=17)
        assert session.effective_batch_size() == 17
        assert session.effective_kernel_config().batch_bucket_size == 17
        assert all(
            k.config.batch_bucket_size == 17 for k in session.kernels().values()
        )

    def test_explicit_kernel_config_bucket_size_is_preserved(self, task_batch):
        # batch_size=None must not clobber an explicit kernel_config value.
        session = Session(
            tasks=task_batch, kernel_config=KernelConfig(batch_bucket_size=256)
        )
        assert session.effective_batch_size() == 256
        assert session.effective_kernel_config().batch_bucket_size == 256
        assert session.align().batch_size == 256

    def test_explicit_batch_size_beats_kernel_config(self, task_batch):
        session = Session(
            tasks=task_batch,
            batch_size=17,
            kernel_config=KernelConfig(batch_bucket_size=256),
        )
        assert session.effective_batch_size() == 17
        assert session.effective_kernel_config().batch_bucket_size == 17

    def test_kernel_config_base_is_respected(self, task_batch):
        session = Session(
            tasks=task_batch, kernel_config=KernelConfig(subwarp_size=16)
        )
        # GASAL2/Manymap pin their own subwarp sizes (that models their
        # parallelisation); the config reaches the kernels that use it.
        assert session.kernels()["AGAThA"].config.subwarp_size == 16
        assert session.kernels()["SALoBa"].config.subwarp_size == 16

    def test_compare_typed_outcome(self, task_batch):
        outcome = Session(tasks=task_batch).compare()
        assert isinstance(outcome, ComparisonOutcome)
        assert outcome.cpu.speedup_vs_cpu == 1.0
        assert set(outcome) == {"GASAL2", "SALoBa", "Manymap", "AGAThA"}
        assert outcome["AGAThA"].speedup_vs_cpu > 0
        assert outcome.speedups()["AGAThA"] == outcome["AGAThA"].speedup_vs_cpu

    def test_compare_suite_override(self, task_batch):
        outcome = Session(tasks=task_batch).compare(suite="diff")
        assert set(outcome) == {"GASAL2", "SALoBa", "Manymap", "LOGAN"}

    def test_hardware_overrides_win(self, task_batch):
        from repro.baselines.cpu_model import EPYC_16C_SSE4
        from repro.gpusim.device import RTX_A6000

        session = Session(tasks=task_batch, device=RTX_A6000, cpu=EPYC_16C_SSE4)
        device, cpu = session.hardware()
        assert device is RTX_A6000 and cpu is EPYC_16C_SSE4


class TestMapping:
    @pytest.fixture
    def mapping_setup(self, rng):
        scoring = preset("map-ont", band_width=32, zdrop=120)
        reference = synthetic_reference(20_000, rng)
        reads = simulate_reads(reference, TECHNOLOGY_PROFILES["ONT"], 8, rng)
        return reference, scoring, [r.sequence for r in reads]

    def test_map_reads_typed_outcome(self, mapping_setup):
        reference, scoring, sequences = mapping_setup
        outcome = Session(reference=reference, scoring=scoring).map_reads(sequences)
        assert isinstance(outcome, MappingOutcome)
        assert len(outcome) == len(sequences)
        assert outcome.num_mapped == len(outcome.mapped)
        assert [m.read_id for m in outcome] == list(range(len(sequences)))

    def test_streaming_matches_batch(self, mapping_setup):
        reference, scoring, sequences = mapping_setup
        session = Session(reference=reference, scoring=scoring)
        streamed = list(session.map_reads_iter(sequences))
        batch = session.map_reads(sequences)
        for lhs, rhs in zip(streamed, batch):
            assert lhs.mapped == rhs.mapped
            assert lhs.mapping_score == rhs.mapping_score
            assert (lhs.ref_start, lhs.ref_end) == (rhs.ref_start, rhs.ref_end)

    def test_read_workload_tasks(self, mapping_setup):
        reference, scoring, sequences = mapping_setup
        session = Session(reference=reference, scoring=scoring)
        tasks = session.read_workload(sequences)
        assert [t.task_id for t in tasks] == list(range(len(tasks)))

    def test_task_session_cannot_map(self, task_batch):
        with pytest.raises(ValueError, match="reference"):
            Session(tasks=task_batch).map_reads([np.zeros(8, dtype=np.uint8)])

    def test_map_reads_iter_validates_at_call_time(self, task_batch):
        # The streaming variant must fail at the call site, not on first
        # iteration of the returned generator.
        with pytest.raises(ValueError, match="reference"):
            Session(tasks=task_batch).map_reads_iter([np.zeros(8, dtype=np.uint8)])

    def test_run_figure_requires_named_datasets_for_task_sessions(
        self, task_batch
    ):
        with pytest.raises(ValueError, match="named datasets"):
            Session(tasks=task_batch).run_figure("quick")

    def test_reference_session_has_no_fixed_workload(self, rng):
        scoring = preset("map-ont", band_width=32, zdrop=120)
        session = Session(
            reference=synthetic_reference(2000, rng), scoring=scoring
        )
        with pytest.raises(ValueError, match="no fixed workload"):
            session.align()
