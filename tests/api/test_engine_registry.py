"""Engine-registry behaviour, including the optional ``vector`` engine.

The ``vector`` engine's NumPy dependency is an optional extra: with it,
the engine registers like any other and flows through every name-keyed
entry point; without it (simulated by ``REPRO_NO_VECTOR=1`` in a child
interpreter), the registry skips it cleanly, reports it by name with the
install hint, and every other engine keeps working.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.align.scoring import preset
from repro.align.sequence import mutate, random_sequence
from repro.align.types import AlignmentTask
from repro.api import align_tasks, engine_names, get_engine, unavailable_engines


def _tasks(n=12, seed=3):
    rng = np.random.default_rng(seed)
    scoring = preset("map-ont", band_width=32, zdrop=60)
    tasks = []
    for t in range(n):
        ref = random_sequence(int(rng.integers(10, 200)), rng)
        query = (
            mutate(ref, rng, substitution_rate=0.05)
            if t % 2
            else random_sequence(int(rng.integers(10, 200)), rng)
        )
        tasks.append(AlignmentTask(ref=ref, query=query, scoring=scoring, task_id=t))
    return tasks


@pytest.mark.skipif(
    "vector" not in engine_names(),
    reason="vector engine unavailable (no-vector leg: REPRO_NO_VECTOR or no NumPy)",
)
class TestVectorRegistered:
    """With NumPy importable (the dev environment), vector is a peer engine."""

    def test_vector_is_registered(self):
        assert "vector" in engine_names()
        assert "vector" not in unavailable_engines()

    def test_vector_scores_match_batch(self):
        tasks = _tasks()
        assert align_tasks(tasks, engine="vector") == align_tasks(
            tasks, engine="batch"
        )

    def test_unknown_engine_error_lists_names(self):
        with pytest.raises(KeyError, match="warp-9"):
            get_engine("warp-9")


class TestVectorUnavailable:
    """Without NumPy (REPRO_NO_VECTOR simulates the missing extra)."""

    @staticmethod
    def _run_child(code: str) -> str:
        env = dict(os.environ, REPRO_NO_VECTOR="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        return subprocess.check_output(
            [sys.executable, "-c", textwrap.dedent(code)],
            env=env,
            text=True,
            stderr=subprocess.STDOUT,
        )

    def test_registry_skips_vector_and_reports_it(self):
        out = self._run_child(
            """
            from repro.api import engine_names, unavailable_engines
            names = engine_names()
            assert "vector" not in names, names
            assert "scalar" in names and "batch" in names, names
            missing = unavailable_engines()
            assert set(missing) == {"vector"}, missing
            assert "[vector]" in missing["vector"], missing
            print("SKIPPED-CLEANLY")
            """
        )
        assert "SKIPPED-CLEANLY" in out

    def test_get_engine_error_mentions_the_extra(self):
        out = self._run_child(
            """
            from repro.api import get_engine
            try:
                get_engine("vector")
            except KeyError as exc:
                message = str(exc)
                assert "unavailable" in message, message
                assert "[vector]" in message, message
                print("HINTED")
            else:
                raise SystemExit("get_engine('vector') should have raised")
            """
        )
        assert "HINTED" in out

    def test_other_engines_still_score(self):
        out = self._run_child(
            """
            from repro.align.scoring import preset
            from repro.align.sequence import encode
            from repro.align.types import AlignmentTask
            from repro.api import align_tasks
            task = AlignmentTask(
                ref=encode("ACGTACGT"), query=encode("ACGTACGT"),
                scoring=preset("figure1"),
            )
            scores = [r.score for r in align_tasks([task], engine="batch-sliced")]
            assert scores == [16], scores
            print("PURE-PYTHON-OK")
            """
        )
        assert "PURE-PYTHON-OK" in out
