"""Batch-scale CIGAR emission and matrix scoring across every engine.

The two bit-identity guarantees the workload subsystem leans on:

* ``align_tasks(..., cigars=True)`` returns, for every engine, exactly
  what the scalar ``traceback_align`` oracle produces per task (the
  engine results are cross-checked against the traceback replay inside
  ``batch_traceback``, so a silent divergence cannot survive);
* a custom substitution matrix (the ``blosum62`` preset) flows through
  scalar, batch, batch-sliced and vector engines identically -- swept
  with hypothesis over random sequence pairs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.scoring import preset
from repro.align.sequence import mutate, random_sequence
from repro.align.traceback import TracebackResult, traceback_align
from repro.align.types import AlignmentTask
from repro.api import Session, align_tasks

ENGINES = ("scalar", "batch", "batch-sliced", "vector")


def _mixed_tasks(count=8, seed=23):
    """Tasks mixing default and blosum62 matrix scoring."""
    rng = np.random.default_rng(seed)
    schemes = [
        preset("map-ont", band_width=32, zdrop=150),
        preset("blosum62", band_width=48, zdrop=100),
    ]
    tasks = []
    for t in range(count):
        ref = random_sequence(int(rng.integers(60, 240)), rng)
        query = mutate(
            ref, rng, substitution_rate=0.08, insertion_rate=0.03, deletion_rate=0.03
        )
        tasks.append(
            AlignmentTask(
                ref=ref, query=query, scoring=schemes[t % 2], task_id=t
            )
        )
    return tasks


class TestAlignTasksCigars:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_engine_matches_the_traceback_oracle(self, engine):
        tasks = _mixed_tasks()
        tracebacks = align_tasks(tasks, engine=engine, cigars=True)
        assert all(isinstance(tb, TracebackResult) for tb in tracebacks)
        for task, tb in zip(tasks, tracebacks):
            oracle = traceback_align(task.ref, task.query, task.scoring)
            assert tb == oracle

    def test_cigars_are_identical_across_engines(self):
        tasks = _mixed_tasks(seed=31)
        per_engine = {
            engine: [
                tb.cigar.to_string()
                for tb in align_tasks(tasks, engine=engine, cigars=True)
            ]
            for engine in ENGINES
        }
        reference = per_engine.pop("scalar")
        for engine, cigars in per_engine.items():
            assert cigars == reference, f"{engine} CIGARs diverged"

    def test_default_return_shape_unchanged(self):
        tasks = _mixed_tasks(count=2)
        results = align_tasks(tasks)
        assert not any(isinstance(r, TracebackResult) for r in results)


class TestSessionCigars:
    def test_outcome_carries_cigars(self):
        tasks = _mixed_tasks(count=4)
        outcome = Session(tasks=tasks).align(cigars=True)
        assert outcome.cigars is not None
        assert len(outcome.cigars) == 4
        assert outcome.cigar_strings == [
            tb.cigar.to_string() for tb in outcome.cigars
        ]
        # Scores are unchanged by the traceback replay.
        assert outcome.scores == [tb.result.score for tb in outcome.cigars]

    def test_cigar_strings_without_emission_raises(self):
        outcome = Session(tasks=_mixed_tasks(count=2)).align()
        assert outcome.cigars is None
        with pytest.raises(ValueError, match="cigars=True"):
            outcome.cigar_strings


class TestBlosumSweep:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        ref_len=st.integers(8, 160),
        divergence=st.floats(0.0, 0.25),
    )
    def test_matrix_scoring_bit_identical_across_engines(
        self, seed, ref_len, divergence
    ):
        rng = np.random.default_rng(seed)
        scoring = preset("blosum62", band_width=24, zdrop=80)
        ref = random_sequence(ref_len, rng)
        query = mutate(
            ref,
            rng,
            substitution_rate=divergence,
            insertion_rate=divergence / 3,
            deletion_rate=divergence / 3,
        )
        task = AlignmentTask(ref=ref, query=query, scoring=scoring)
        results = {
            engine: align_tasks([task], engine=engine)[0] for engine in ENGINES
        }
        reference = results.pop("scalar")
        for engine, result in results.items():
            assert result == reference, f"{engine} diverged: {result} vs {reference}"
