"""Markdown link check over README, DESIGN and docs/.

Every local link target in the prose documentation must exist in the
checkout, so renaming or moving a file cannot silently orphan the docs.
External URLs and GitHub-relative links (like the CI badge, whose target
lives outside the repository tree) are out of scope; fenced code blocks
are skipped because mermaid/bash snippets use bracket syntax of their
own.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The prose documents the docs CI job guards.
DOC_FILES = sorted(
    [
        REPO_ROOT / "README.md",
        REPO_ROOT / "DESIGN.md",
        REPO_ROOT / "PAPER.md",
        REPO_ROOT / "ROADMAP.md",
        REPO_ROOT / "CHANGES.md",
        *(REPO_ROOT / "docs").glob("**/*.md"),
    ]
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _local_links(markdown: str):
    """Link targets pointing at files in the checkout."""
    prose = _FENCE.sub("", markdown)
    for target in _LINK.findall(prose):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


def test_doc_file_list_is_nonempty():
    assert any(f.name == "ENGINES.md" for f in DOC_FILES)
    assert any(f.name == "BENCHMARKS.md" for f in DOC_FILES)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_local_markdown_links_resolve(doc):
    assert doc.exists(), f"documentation file vanished: {doc}"
    for target in _local_links(doc.read_text(encoding="utf-8")):
        path = (doc.parent / target.split("#", 1)[0]).resolve()
        try:
            path.relative_to(REPO_ROOT)
        except ValueError:
            # GitHub-relative targets (e.g. the ../../actions CI badge)
            # point outside the checkout; nothing to verify on disk.
            continue
        assert path.exists(), f"{doc.name}: broken local link -> {target}"


def test_readme_links_the_docs_guides():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/ENGINES.md" in readme
    assert "docs/BENCHMARKS.md" in readme


def test_design_links_the_docs_guides():
    design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
    assert "docs/ENGINES.md" in design
    assert "docs/BENCHMARKS.md" in design
