"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.align.scoring import preset
from repro.io.datasets import (
    DATASET_REGISTRY,
    TECHNOLOGY_PROFILES,
    build_dataset,
    long_short_mixture_tasks,
    simulate_reads,
    synthetic_reference,
)


class TestReference:
    def test_length_and_determinism(self):
        a = synthetic_reference(5000, np.random.default_rng(1))
        b = synthetic_reference(5000, np.random.default_rng(1))
        assert a.size == 5000
        assert np.array_equal(a, b)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            synthetic_reference(0, np.random.default_rng(1))


class TestReadSimulation:
    def test_read_counts_and_flags(self):
        rng = np.random.default_rng(2)
        reference = synthetic_reference(20_000, rng)
        reads = simulate_reads(reference, TECHNOLOGY_PROFILES["ONT"], 60, rng)
        assert len(reads) == 60
        assert any(r.is_junk for r in reads) or any(r.is_chimeric for r in reads)
        for read in reads:
            assert read.length >= 64

    def test_error_profiles_differ(self):
        hifi = TECHNOLOGY_PROFILES["HiFi"]
        clr = TECHNOLOGY_PROFILES["CLR"]
        assert hifi.substitution_rate < clr.substitution_rate

    def test_sample_length_bounded(self):
        rng = np.random.default_rng(3)
        profile = TECHNOLOGY_PROFILES["ONT"]
        for _ in range(50):
            length = profile.sample_length(rng)
            assert 64 <= length <= profile.max_length


class TestRegistry:
    def test_nine_datasets(self):
        assert len(DATASET_REGISTRY) == 9
        technologies = {spec.technology for spec in DATASET_REGISTRY.values()}
        assert technologies == {"HiFi", "CLR", "ONT"}

    def test_build_dataset_deterministic(self):
        spec = DATASET_REGISTRY["ONT-HG002"]
        ref_a, reads_a = build_dataset(spec)
        ref_b, reads_b = build_dataset(spec)
        assert np.array_equal(ref_a, ref_b)
        assert all(
            np.array_equal(x.sequence, y.sequence) for x, y in zip(reads_a, reads_b)
        )

    def test_specs_carry_scoring(self):
        for spec in DATASET_REGISTRY.values():
            assert spec.scoring.has_banding and spec.scoring.has_termination


class TestLongShortMixture:
    def test_fraction_respected(self):
        scheme = preset("map-ont", band_width=17, zdrop=100)
        tasks = long_short_mixture_tasks(0.25, 40, scheme, long_length=512, short_length=64)
        long_count = sum(1 for t in tasks if t.query_len > 256)
        assert long_count == 10

    def test_zero_fraction(self):
        scheme = preset("map-ont", band_width=17, zdrop=100)
        tasks = long_short_mixture_tasks(0.0, 20, scheme, long_length=512, short_length=64)
        assert all(t.ref_len == 64 for t in tasks)

    def test_validation(self):
        scheme = preset("map-ont", band_width=17, zdrop=100)
        with pytest.raises(ValueError):
            long_short_mixture_tasks(1.5, 10, scheme)
        with pytest.raises(ValueError):
            long_short_mixture_tasks(0.5, 0, scheme)

    def test_long_tasks_spread_through_order(self):
        scheme = preset("map-ont", band_width=17, zdrop=100)
        tasks = long_short_mixture_tasks(0.1, 50, scheme, long_length=512, short_length=64)
        long_positions = [i for i, t in enumerate(tasks) if t.ref_len == 512]
        assert len(long_positions) == 5
        assert max(long_positions) - min(long_positions) > 20


class TestGetDatasetSpec:
    def test_unknown_name_lists_available_names(self):
        from repro.io.datasets import get_dataset_spec

        with pytest.raises(KeyError) as err:
            get_dataset_spec("ONT-HG02")
        message = str(err.value)
        assert "'ONT-HG02'" in message
        for name in DATASET_REGISTRY:
            assert name in message
