"""Tests for FASTA I/O."""

import numpy as np

from repro.align.sequence import decode, random_sequence
from repro.io.fasta import FastaRecord, read_fasta, write_fasta


class TestFasta:
    def test_round_trip(self, tmp_path, rng):
        records = [
            FastaRecord(name=f"read{i}", sequence=random_sequence(137, rng))
            for i in range(5)
        ]
        path = tmp_path / "reads.fasta"
        write_fasta(path, records)
        back = read_fasta(path)
        assert len(back) == 5
        for a, b in zip(records, back):
            assert a.name == b.name
            assert np.array_equal(a.sequence, b.sequence)

    def test_artifact_header_style(self, tmp_path):
        path = tmp_path / "sample.fasta"
        path.write_text(">>> 1\nATGCN\nACGT\n>>> 2\nTCGGA\n")
        records = read_fasta(path)
        assert [r.name for r in records] == ["1", "2"]
        assert decode(records[0].sequence) == "ATGCNACGT"

    def test_multiline_wrapping(self, tmp_path, rng):
        record = FastaRecord(name="long", sequence=random_sequence(250, rng))
        path = tmp_path / "x.fasta"
        write_fasta(path, [record], line_width=50)
        text = path.read_text().splitlines()
        assert len(text) == 1 + 5
        assert all(len(line) <= 50 for line in text[1:])

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fasta"
        path.write_text("")
        assert read_fasta(path) == []

    def test_sequence_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACGT\n>x\nACGT\n")
        import pytest

        with pytest.raises(ValueError):
            read_fasta(path)

    def test_record_length(self, rng):
        rec = FastaRecord(name="r", sequence=random_sequence(42, rng))
        assert rec.length == 42
