"""Tests for FASTA I/O."""

import gzip

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.sequence import decode, random_sequence
from repro.io.fasta import FastaRecord, read_fasta, write_fasta

#: Hypothesis building blocks: encoded sequences (codes 0..4 cover
#: ACGTN) and header names that survive ``lstrip('>').strip()``.
_sequences = st.lists(st.integers(0, 4), min_size=0, max_size=200).map(
    lambda codes: np.asarray(codes, dtype=np.uint8)
)
_names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127),
    min_size=1,
    max_size=12,
)


class TestFasta:
    def test_round_trip(self, tmp_path, rng):
        records = [
            FastaRecord(name=f"read{i}", sequence=random_sequence(137, rng))
            for i in range(5)
        ]
        path = tmp_path / "reads.fasta"
        write_fasta(path, records)
        back = read_fasta(path)
        assert len(back) == 5
        for a, b in zip(records, back):
            assert a.name == b.name
            assert np.array_equal(a.sequence, b.sequence)

    def test_artifact_header_style(self, tmp_path):
        path = tmp_path / "sample.fasta"
        path.write_text(">>> 1\nATGCN\nACGT\n>>> 2\nTCGGA\n")
        records = read_fasta(path)
        assert [r.name for r in records] == ["1", "2"]
        assert decode(records[0].sequence) == "ATGCNACGT"

    def test_multiline_wrapping(self, tmp_path, rng):
        record = FastaRecord(name="long", sequence=random_sequence(250, rng))
        path = tmp_path / "x.fasta"
        write_fasta(path, [record], line_width=50)
        text = path.read_text().splitlines()
        assert len(text) == 1 + 5
        assert all(len(line) <= 50 for line in text[1:])

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fasta"
        path.write_text("")
        assert read_fasta(path) == []

    def test_sequence_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACGT\n>x\nACGT\n")
        import pytest

        with pytest.raises(ValueError):
            read_fasta(path)

    def test_record_length(self, rng):
        rec = FastaRecord(name="r", sequence=random_sequence(42, rng))
        assert rec.length == 42


class TestGzip:
    def test_gzip_round_trip(self, tmp_path, rng):
        records = [
            FastaRecord(name=f"read{i}", sequence=random_sequence(101, rng))
            for i in range(3)
        ]
        path = tmp_path / "reads.fasta.gz"
        write_fasta(path, records)
        # The file really is gzip, not plain text with a .gz name.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        back = read_fasta(path)
        assert [r.name for r in back] == [r.name for r in records]
        for a, b in zip(records, back):
            assert np.array_equal(a.sequence, b.sequence)

    def test_reads_externally_gzipped_file(self, tmp_path):
        path = tmp_path / "x.fasta.gz"
        with gzip.open(path, "wt", encoding="ascii") as fh:
            fh.write(">r1\nACGTN\n")
        (record,) = read_fasta(path)
        assert record.name == "r1"
        assert decode(record.sequence) == "ACGTN"


class TestMalformedInput:
    def test_invalid_sequence_chars_name_file_line_and_text(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text(">r1\nACGT\nAC7T,\n")
        with pytest.raises(ValueError) as err:
            read_fasta(path)
        message = str(err.value)
        assert str(path) in message
        assert "line 3" in message
        assert "',7'" in message  # offending characters, sorted and deduped
        assert "'AC7T,'" in message  # the offending line itself

    def test_empty_header_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text(">r1\nACGT\n>\nACGT\n")
        with pytest.raises(ValueError) as err:
            read_fasta(path)
        assert str(path) in str(err.value)
        assert "line 3" in str(err.value)
        assert "empty FASTA header" in str(err.value)

    def test_sequence_before_header_names_line(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACGT\n")
        with pytest.raises(ValueError, match="line 1"):
            read_fasta(path)

    def test_iupac_ambiguity_codes_still_accepted(self, tmp_path):
        path = tmp_path / "iupac.fasta"
        path.write_text(">r\nACGTRYSWKMBDHVU\n")
        (record,) = read_fasta(path)
        # Ambiguity codes read as N (Minimap2's 2-bit packing behaviour).
        assert decode(record.sequence) == "ACGT" + "N" * 11

    def test_gap_characters_dropped(self, tmp_path):
        path = tmp_path / "gaps.fasta"
        path.write_text(">r\nAC-GT.*\n")
        (record,) = read_fasta(path)
        assert decode(record.sequence) == "ACGT"


class TestRoundTripProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        entries=st.lists(st.tuples(_names, _sequences), min_size=1, max_size=6),
        line_width=st.integers(1, 120),
        gzipped=st.booleans(),
    )
    def test_write_read_identity(self, tmp_path_factory, entries, line_width, gzipped):
        """``read_fasta(write_fasta(records))`` is the identity."""
        records = [FastaRecord(name=n, sequence=s) for n, s in entries]
        suffix = "reads.fasta.gz" if gzipped else "reads.fasta"
        path = tmp_path_factory.mktemp("fasta") / suffix
        write_fasta(path, records, line_width=line_width)
        back = read_fasta(path)
        assert [r.name for r in back] == [r.name for r in records]
        for a, b in zip(records, back):
            assert np.array_equal(a.sequence, b.sequence)

    @settings(max_examples=50, deadline=None)
    @given(
        entries=st.lists(st.tuples(_names, _sequences), min_size=1, max_size=6),
        line_width=st.integers(1, 120),
        header=st.sampled_from([">", ">>>", ">>> "]),
    )
    def test_read_recovers_hand_rendered_text(
        self, tmp_path_factory, entries, line_width, header
    ):
        """Both header styles and any wrap width parse back losslessly."""
        lines = []
        for name, sequence in entries:
            lines.append(f"{header}{name}")
            seq = decode(sequence)
            for k in range(0, len(seq), line_width):
                lines.append(seq[k : k + line_width])
        path = tmp_path_factory.mktemp("fasta") / "hand.fasta"
        path.write_text("\n".join(lines) + "\n")
        back = read_fasta(path)
        assert [r.name for r in back] == [n for n, _ in entries]
        for (_, sequence), record in zip(entries, back):
            assert np.array_equal(sequence, record.sequence)
