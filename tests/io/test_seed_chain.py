"""Tests for minimizer seeding, chaining and extension-task extraction."""

import numpy as np
import pytest

from repro.align.scoring import preset
from repro.align.sequence import random_sequence
from repro.io.seed_chain import (
    Anchor,
    MinimizerIndex,
    Chain,
    chain_anchors,
    extension_tasks_for_read,
    minimizers,
)

SCHEME = preset("map-ont", band_width=33, zdrop=100)


class TestMinimizers:
    def test_deterministic(self, rng):
        seq = random_sequence(500, rng)
        assert minimizers(seq) == minimizers(seq)

    def test_density_controlled_by_window(self, rng):
        seq = random_sequence(2000, rng)
        dense = minimizers(seq, k=11, w=3)
        sparse = minimizers(seq, k=11, w=15)
        assert len(dense) > len(sparse) > 0

    def test_positions_within_sequence(self, rng):
        seq = random_sequence(300, rng)
        for m in minimizers(seq, k=11, w=5):
            assert 0 <= m.position <= seq.size - 11

    def test_short_sequence(self, rng):
        seq = random_sequence(12, rng)
        assert len(minimizers(seq, k=11, w=5)) == 1

    def test_empty_sequence(self):
        assert minimizers(np.empty(0, dtype=np.uint8)) == []

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            minimizers(random_sequence(10, rng), k=0)


class TestIndexAndAnchors:
    def test_anchors_recover_true_position(self, rng):
        reference = random_sequence(5000, rng)
        index = MinimizerIndex(reference)
        start = 1200
        read = reference[start : start + 400].copy()
        anchors = index.anchors(read)
        assert anchors, "exact substring must produce anchors"
        diagonals = [a.diagonal for a in anchors]
        # The dominant diagonal equals the true start position.
        values, counts = np.unique(diagonals, return_counts=True)
        assert values[np.argmax(counts)] == start

    def test_repetitive_minimizers_filtered(self, rng):
        reference = np.tile(random_sequence(40, rng), 100)
        index = MinimizerIndex(reference)
        read = reference[:200].copy()
        assert index.anchors(read, max_hits=4) == []


class TestChaining:
    def test_single_colinear_chain(self):
        anchors = [Anchor(query_pos=q, ref_pos=q + 100) for q in range(0, 200, 20)]
        chains = chain_anchors(anchors)
        assert len(chains) == 1
        assert chains[0].num_anchors == len(anchors)

    def test_two_loci_give_two_chains(self):
        near = [Anchor(query_pos=q, ref_pos=q + 100) for q in range(0, 100, 10)]
        far = [Anchor(query_pos=q, ref_pos=q + 5000) for q in range(100, 200, 10)]
        chains = chain_anchors(near + far)
        assert len(chains) == 2

    def test_min_anchor_filter(self):
        anchors = [Anchor(0, 10), Anchor(5, 15)]
        assert chain_anchors(anchors, min_anchors=3) == []

    def test_empty(self):
        assert chain_anchors([]) == []

    def test_chain_spans(self):
        anchors = [Anchor(10, 110), Anchor(50, 150), Anchor(90, 190)]
        chain = chain_anchors(anchors)[0]
        assert chain.query_span == (10, 90)
        assert chain.ref_span == (110, 190)


class TestExtensionTasks:
    def _chain(self, offset, positions):
        return Chain(anchors=[Anchor(q, q + offset) for q in positions])

    def test_left_right_and_gap_tasks(self, rng):
        reference = random_sequence(3000, rng)
        query = reference[500:1500].copy()
        chain = self._chain(500, [100, 160, 700, 900])
        tasks = extension_tasks_for_read(reference, query, chain, SCHEME, min_gap=32)
        # left extension (100 bp), three inter-anchor gaps above min_gap and
        # a right extension (the ~90 bp after the last anchor).
        assert len(tasks) == 5
        assert tasks[0].query_len == 100
        assert tasks[1].query_len == 160 - (100 + 11)
        assert tasks[2].query_len == 700 - (160 + 11)
        assert tasks[3].query_len == 900 - (700 + 11)
        assert tasks[4].query_len == 1000 - (900 + 11)

    def test_no_tasks_for_fully_anchored_read(self, rng):
        reference = random_sequence(1000, rng)
        query = reference[0:200].copy()
        chain = self._chain(0, [0, 20, 40, 60, 80, 100, 120, 140, 160, 189])
        tasks = extension_tasks_for_read(reference, query, chain, SCHEME, min_gap=32)
        assert tasks == []

    def test_max_extension_clips(self, rng):
        reference = random_sequence(20_000, rng)
        query = random_sequence(10_000, rng)
        chain = self._chain(0, [50, 80, 110])
        tasks = extension_tasks_for_read(
            reference, query, chain, SCHEME, max_extension=256
        )
        assert all(t.query_len <= 256 and t.ref_len <= 256 + SCHEME.band_width for t in tasks)

    def test_anchor_spacing_reduces_task_count(self, rng):
        reference = random_sequence(5000, rng)
        query = reference[1000:2000].copy()
        positions = list(range(0, 950, 40))
        chain = self._chain(1000, positions)
        dense = extension_tasks_for_read(reference, query, chain, SCHEME, min_gap=16)
        sparse = extension_tasks_for_read(
            reference, query, chain, SCHEME, min_gap=16, anchor_spacing=200
        )
        assert len(sparse) <= len(dense)

    def test_task_ids_sequential(self, rng):
        reference = random_sequence(3000, rng)
        query = reference[500:1500].copy()
        chain = self._chain(500, [100, 700, 900])
        tasks = extension_tasks_for_read(
            reference, query, chain, SCHEME, start_task_id=10
        )
        assert [t.task_id for t in tasks] == list(range(10, 10 + len(tasks)))
