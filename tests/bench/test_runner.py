"""Sharded runner: determinism, aggregation and record assembly."""

import pytest

from repro.bench.runner import (
    ABLATION_LADDER,
    FIGURES,
    BenchCell,
    build_suite,
    resolve_specs,
    run_cell,
    run_cells,
    run_figure,
    run_speedup_table,
)
from repro.io.datasets import DATASET_REGISTRY
from repro.kernels import KernelConfig

from tiny_workloads import make_spec


def _cache_args(tmp_path):
    return dict(cache_dir=str(tmp_path / "cache"), use_cache=True)


class TestSuites:
    def test_mm2_and_diff_suites(self):
        assert set(build_suite("mm2")) == {"GASAL2", "SALoBa", "Manymap", "AGAThA"}
        assert set(build_suite("diff")) == {"GASAL2", "SALoBa", "Manymap", "LOGAN"}

    def test_ablation_suite_matches_ladder(self):
        suite = build_suite("ablation")
        assert list(suite) == [label for label, _ in ABLATION_LADDER]
        full = suite["(+) UB"]
        assert full.rolling_window and full.uneven_bucketing

    def test_suite_config_flows_through(self):
        suite = build_suite("mm2", KernelConfig(batch_bucket_size=17))
        assert all(k.config.batch_bucket_size == 17 for k in suite.values())

    def test_unknown_suite(self):
        with pytest.raises(ValueError, match="unknown suite"):
            build_suite("nope")

    def test_resolve_specs(self):
        specs = resolve_specs(["ONT-HG002", make_spec()])
        assert specs[0] == DATASET_REGISTRY["ONT-HG002"]
        assert specs[1].name == "tiny-A"
        with pytest.raises(KeyError, match="unknown dataset"):
            resolve_specs(["no-such-dataset"])


class TestDeterminism:
    def test_parallel_equals_serial_bitwise(self, tiny_specs, tmp_path):
        """The acceptance property: sharding must not change a single bit."""
        serial = run_speedup_table(
            tiny_specs, suite="mm2", workers=1, **_cache_args(tmp_path)
        )
        parallel = run_speedup_table(
            tiny_specs, suite="mm2", workers=2, **_cache_args(tmp_path)
        )
        assert serial == parallel  # exact float equality, GeoMean included

    def test_factory_path_equals_suite_path(self, tiny_specs, tmp_path):
        from repro.pipeline.experiment import kernel_suite

        via_suite = run_speedup_table(
            tiny_specs, suite="diff", workers=1, **_cache_args(tmp_path)
        )
        via_factory = run_speedup_table(
            tiny_specs,
            kernel_factory=lambda: kernel_suite(target="diff"),
            **_cache_args(tmp_path),
        )
        assert via_suite == via_factory

    def test_repeated_parallel_runs_identical(self, tiny_specs, tmp_path):
        first = run_speedup_table(
            tiny_specs, suite="ablation", workers=2, **_cache_args(tmp_path)
        )
        second = run_speedup_table(
            tiny_specs, suite="ablation", workers=2, **_cache_args(tmp_path)
        )
        assert first == second


class TestValidation:
    def test_exactly_one_of_suite_and_factory(self, tiny_specs):
        with pytest.raises(ValueError, match="exactly one"):
            run_speedup_table(tiny_specs)
        with pytest.raises(ValueError, match="exactly one"):
            run_speedup_table(tiny_specs, suite="mm2", kernel_factory=dict)

    def test_factory_cannot_shard(self, tiny_specs):
        with pytest.raises(ValueError, match="cannot be sharded"):
            run_speedup_table(tiny_specs, kernel_factory=dict, workers=2)

    def test_unknown_figure(self):
        with pytest.raises(KeyError, match="unknown figure"):
            run_figure("fig99")

    def test_unknown_suite_override(self, tiny_specs):
        with pytest.raises(ValueError, match="unknown suite"):
            run_figure("quick", datasets=tiny_specs, suites=("nope",))

    def test_figure_plans_reference_known_datasets(self):
        for plan in FIGURES.values():
            resolve_specs(plan.datasets)


class TestRecords:
    def test_run_figure_assembles_record(self, tiny_specs, tmp_path):
        record = run_figure(
            "quick",
            datasets=tiny_specs,
            workers=2,
            **_cache_args(tmp_path),
        )
        assert record.figure == "quick"
        assert record.datasets == ["tiny-A", "tiny-B"]
        assert set(record.suites) == {"mm2", "diff"}
        assert record.environment["workers"] == 2
        assert record.wall_time_s > 0
        for suite in record.suites.values():
            assert set(suite.cpu_time_ms) == {"tiny-A", "tiny-B"}
            assert len(suite.cells) == 2 * 4  # two datasets x four kernels
            for cell in suite.cells:
                cpu_ms = suite.cpu_time_ms[cell.dataset]
                assert cell.speedup_vs_cpu == pytest.approx(cpu_ms / cell.time_ms)
                assert cell.cells > 0

    def test_record_speedups_match_run_speedup_table(self, tiny_specs, tmp_path):
        record = run_figure(
            "quick", datasets=tiny_specs, suites=("mm2",), **_cache_args(tmp_path)
        )
        table = run_speedup_table(
            tiny_specs, suite="mm2", workers=1, **_cache_args(tmp_path)
        )
        assert record.speedup_table("mm2") == table

    def test_progress_callback(self, tiny_spec, tmp_path):
        seen = []
        run_figure(
            "quick",
            datasets=[tiny_spec],
            suites=("mm2",),
            progress=lambda done, total, cell: seen.append((done, total, cell.suite)),
            **_cache_args(tmp_path),
        )
        assert seen == [(1, 1, "mm2")]


class TestCells:
    def test_run_cell_includes_cpu_anchor(self, tiny_spec, tmp_path):
        cell = BenchCell(spec=tiny_spec, suite="mm2", **_cache_args(tmp_path))
        result = run_cell(cell)
        assert result["CPU"]["speedup_vs_cpu"] == 1.0
        assert set(result) == {"CPU", "GASAL2", "SALoBa", "Manymap", "AGAThA"}

    def test_run_cells_preserves_input_order(self, tiny_specs, tmp_path):
        cells = [
            BenchCell(spec=spec, suite=suite, **_cache_args(tmp_path))
            for suite in ("mm2", "diff")
            for spec in tiny_specs
        ]
        serial = run_cells(cells, workers=1)
        parallel = run_cells(cells, workers=3)
        assert serial == parallel

    def test_worker_exception_propagates(self, tmp_path):
        bad = BenchCell(
            spec=make_spec(technology="HiFi"), suite="nope", **_cache_args(tmp_path)
        )
        with pytest.raises(ValueError, match="unknown suite"):
            run_cells([bad, bad], workers=2)

    def test_worker_imports_plugin_module_for_unknown_suite(
        self, tiny_spec, tmp_path, monkeypatch
    ):
        """A spawn worker that never imported the plugin module rebuilds
        the suite by importing ``cell.suite_origin`` and retrying."""
        import sys

        plugin = tmp_path / "bench_plugin_mod.py"
        plugin.write_text(
            "from repro.api import SUITES, SuiteEntry, register_suite\n"
            "if 'plugin-suite' not in SUITES:\n"
            "    register_suite('plugin-suite', [SuiteEntry.make('AGAThA', 'AGAThA')])\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        import importlib

        importlib.import_module("bench_plugin_mod")
        from repro.api.suites import SUITES, get_suite

        try:
            assert get_suite("plugin-suite").origin == "bench_plugin_mod"
            # Simulate a freshly spawned worker: neither the registry entry
            # nor the plugin module exists yet.
            SUITES.unregister("plugin-suite")
            sys.modules.pop("bench_plugin_mod")
            cell = BenchCell(
                spec=tiny_spec,
                suite="plugin-suite",
                suite_origin="bench_plugin_mod",
                **_cache_args(tmp_path),
            )
            result = run_cell(cell)
            assert set(result) == {"CPU", "AGAThA"}
        finally:
            if "plugin-suite" in SUITES:
                SUITES.unregister("plugin-suite")
            sys.modules.pop("bench_plugin_mod", None)

    def test_cells_carry_builtin_suite_origin(self, tiny_specs, tmp_path):
        from repro.bench.runner import _suite_origin

        assert _suite_origin("mm2") == "repro.api.suites"
        assert _suite_origin("not-registered") is None

    def test_main_registered_suite_rejected_under_spawn(
        self, tiny_specs, tmp_path, monkeypatch
    ):
        """Spawn-started workers re-import modules and never see __main__
        registrations, so sharding such a suite must fail fast."""
        from repro.api.suites import SUITES, SuiteEntry, SuiteSpec

        spec = SuiteSpec(
            name="test-main-suite",
            entries=(SuiteEntry.make("AGAThA", "AGAThA"),),
            origin="__main__",
        )
        SUITES.register("test-main-suite", spec)
        cells = [
            BenchCell(spec=s, suite="test-main-suite", **_cache_args(tmp_path))
            for s in tiny_specs
        ]
        try:
            monkeypatch.setattr(
                "multiprocessing.get_start_method", lambda *a, **k: "spawn"
            )
            with pytest.raises(ValueError, match="registered in __main__"):
                run_cells(cells, workers=2)
            # Serial execution stays fine regardless of start method.
            assert len(run_cells(cells, workers=1)) == 2
        finally:
            SUITES.unregister("test-main-suite")
