"""Record comparison / regression gating."""

import pytest

from repro.bench.compare import compare_records, format_report
from repro.bench.records import BenchRecord, SuiteRecord


def record_with(speedups, suite="mm2", figure="fig08") -> BenchRecord:
    return BenchRecord(
        figure=figure,
        datasets=sorted({d for row in speedups.values() for d in row if d != "GeoMean"}),
        suites={suite: SuiteRecord(suite=suite, speedups=speedups)},
    )


BASE = {
    "AGAThA": {"ds1": 20.0, "ds2": 18.0, "GeoMean": 18.97},
    "GASAL2": {"ds1": 0.8, "ds2": 0.9, "GeoMean": 0.85},
}


class TestCompare:
    def test_identical_records_pass(self):
        report = compare_records(record_with(BASE), record_with(BASE))
        assert report.ok and report.exit_code() == 0
        assert report.checked == 6
        assert "no regressions" in format_report(report)

    def test_within_tolerance_passes(self):
        current = {
            "AGAThA": {"ds1": 17.0, "ds2": 16.0, "GeoMean": 16.49},
            "GASAL2": {"ds1": 0.8, "ds2": 0.9, "GeoMean": 0.85},
        }
        report = compare_records(record_with(BASE), record_with(current), tolerance=0.20)
        assert report.ok

    def test_geomean_regression_fails(self):
        current = {
            "AGAThA": {"ds1": 10.0, "ds2": 9.0, "GeoMean": 9.49},
            "GASAL2": {"ds1": 0.8, "ds2": 0.9, "GeoMean": 0.85},
        }
        report = compare_records(record_with(BASE), record_with(current), tolerance=0.20)
        assert not report.ok and report.exit_code() == 1
        kinds = {(f.kernel, f.metric) for f in report.regressions}
        assert ("AGAThA", "GeoMean") in kinds
        assert "FAIL" in format_report(report)

    def test_improvement_does_not_fail(self):
        current = {
            "AGAThA": {"ds1": 40.0, "ds2": 36.0, "GeoMean": 37.95},
            "GASAL2": {"ds1": 0.8, "ds2": 0.9, "GeoMean": 0.85},
        }
        report = compare_records(record_with(BASE), record_with(current))
        assert report.ok
        assert report.improvements

    def test_missing_kernel_fails(self):
        current = {"AGAThA": BASE["AGAThA"]}
        report = compare_records(record_with(BASE), record_with(current))
        assert not report.ok
        assert any(f.kernel == "GASAL2" for f in report.missing)

    def test_missing_dataset_column_fails(self):
        current = {
            "AGAThA": {"ds1": 20.0, "GeoMean": 20.0},
            "GASAL2": {"ds1": 0.8, "ds2": 0.9, "GeoMean": 0.85},
        }
        report = compare_records(record_with(BASE), record_with(current))
        assert not report.ok
        assert any("ds2" in f.metric for f in report.missing)

    def test_missing_suite_fails(self):
        report = compare_records(
            record_with(BASE, suite="mm2"), record_with(BASE, suite="diff")
        )
        assert not report.ok
        assert any(f.metric == "suite" for f in report.missing)

    def test_extra_current_kernels_are_ignored(self):
        current = dict(BASE)
        current["NewKernel"] = {"ds1": 1.0, "ds2": 1.0, "GeoMean": 1.0}
        assert compare_records(record_with(BASE), record_with(current)).ok

    def test_tolerance_validation(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare_records(record_with(BASE), record_with(BASE), tolerance=1.5)
