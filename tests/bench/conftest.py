"""Shared fixtures for the repro.bench test suite."""

from __future__ import annotations

import pytest

from repro.bench.cache import WorkloadCache

from tiny_workloads import make_spec


@pytest.fixture
def tiny_spec():
    return make_spec()


@pytest.fixture
def tiny_specs() -> list:
    return [
        make_spec("tiny-A", seed=7, technology="HiFi"),
        make_spec("tiny-B", seed=9, technology="ONT"),
    ]


@pytest.fixture
def tmp_cache(tmp_path) -> WorkloadCache:
    return WorkloadCache(tmp_path / "cache", enabled=True)
