"""Persistent workload cache: roundtrips, invalidation, recovery."""

import pickle

import numpy as np
import pytest

import repro.bench.cache as cache_mod
from repro.bench.cache import (
    CACHE_SCHEMA_VERSION,
    WorkloadCache,
    build_workload,
    cache_enabled,
    default_cache_dir,
    spec_fingerprint,
)

from tiny_workloads import make_spec


class TestFingerprint:
    def test_stable(self, tiny_spec):
        assert spec_fingerprint(tiny_spec) == spec_fingerprint(make_spec())

    @pytest.mark.parametrize(
        "change",
        [
            dict(seed=8),
            dict(num_reads=5),
            dict(reference_length=4096),
            dict(technology="ONT"),
            dict(name="tiny-renamed"),
        ],
    )
    def test_spec_field_changes_invalidate(self, tiny_spec, change):
        changed = make_spec(**{**dict(name="tiny-A", seed=7), **change})
        assert spec_fingerprint(changed) != spec_fingerprint(tiny_spec)

    def test_scoring_change_invalidates(self, tiny_spec):
        changed = make_spec(scoring=tiny_spec.scoring.replace(band_width=32))
        assert spec_fingerprint(changed) != spec_fingerprint(tiny_spec)
        cache = WorkloadCache("unused")
        assert cache.path_for(changed) != cache.path_for(tiny_spec)

    def test_version_salt(self, tiny_spec, monkeypatch):
        before = spec_fingerprint(tiny_spec)
        monkeypatch.setattr(cache_mod, "WORKLOAD_VERSION", cache_mod.WORKLOAD_VERSION + 1)
        assert spec_fingerprint(tiny_spec) != before


class TestRoundtrip:
    def test_build_store_load(self, tiny_spec, tmp_cache):
        built = tmp_cache.tasks(tiny_spec)
        assert tmp_cache.misses == 1 and tmp_cache.hits == 0
        assert len(built) > 0
        loaded = tmp_cache.load(tiny_spec)
        assert loaded is not None and len(loaded) == len(built)
        for a, b in zip(built, loaded):
            np.testing.assert_array_equal(a.ref, b.ref)
            np.testing.assert_array_equal(a.query, b.query)
            assert a.scoring == b.scoring
            assert a.task_id == b.task_id

    def test_loaded_tasks_have_no_profiles(self, tiny_spec, tmp_cache):
        built = tmp_cache.tasks(tiny_spec)
        built[0].profile()  # compute and memoise one profile
        tmp_cache.store(tiny_spec, built)
        loaded = tmp_cache.load(tiny_spec)
        assert all(task._profile is None for task in loaded)

    def test_warm_cache_skips_workload_construction(self, tiny_spec, tmp_path, monkeypatch):
        calls = {"n": 0}
        real_build = build_workload

        def counting_build(spec):
            calls["n"] += 1
            return real_build(spec)

        monkeypatch.setattr(cache_mod, "build_workload", counting_build)
        first = WorkloadCache(tmp_path / "c").tasks(tiny_spec)
        assert calls["n"] == 1
        # A brand-new cache instance (fresh process in real life) hits disk.
        again = WorkloadCache(tmp_path / "c").tasks(tiny_spec)
        assert calls["n"] == 1, "warm cache must skip the seeding/chaining build"
        assert len(again) == len(first)

    def test_changed_spec_rebuilds(self, tiny_spec, tmp_cache):
        tmp_cache.tasks(tiny_spec)
        changed = make_spec(scoring=tiny_spec.scoring.replace(zdrop=40))
        tmp_cache.tasks(changed)
        assert tmp_cache.misses == 2
        assert len(tmp_cache.entries()) == 2


class TestRecovery:
    def test_corrupt_file_is_rebuilt(self, tiny_spec, tmp_cache):
        tmp_cache.tasks(tiny_spec)
        path = tmp_cache.path_for(tiny_spec)
        path.write_bytes(b"\x80garbage that is not a pickle")
        tasks = tmp_cache.tasks(tiny_spec)
        assert tmp_cache.misses == 2
        assert len(tasks) > 0
        # The entry was re-written and is valid again.
        assert tmp_cache.load(tiny_spec) is not None

    def test_truncated_file_is_rebuilt(self, tiny_spec, tmp_cache):
        tmp_cache.tasks(tiny_spec)
        path = tmp_cache.path_for(tiny_spec)
        path.write_bytes(path.read_bytes()[: 10])
        assert tmp_cache.load(tiny_spec) is None
        assert not path.exists(), "corrupt entries are removed"

    def test_schema_version_mismatch_is_rebuilt(self, tiny_spec, tmp_cache):
        tmp_cache.tasks(tiny_spec)
        path = tmp_cache.path_for(tiny_spec)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        assert tmp_cache.load(tiny_spec) is None

    def test_fingerprint_mismatch_is_rebuilt(self, tiny_spec, tmp_cache):
        tmp_cache.tasks(tiny_spec)
        path = tmp_cache.path_for(tiny_spec)
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        payload["fingerprint"] = "0" * 20
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)
        assert tmp_cache.load(tiny_spec) is None


class TestConfiguration:
    def test_disabled_cache_never_touches_disk(self, tiny_spec, tmp_path):
        cache = WorkloadCache(tmp_path / "c", enabled=False)
        tasks = cache.tasks(tiny_spec)
        assert len(tasks) > 0
        assert not (tmp_path / "c").exists()

    def test_repro_no_cache_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not cache_enabled()
        assert not WorkloadCache("anywhere").enabled
        monkeypatch.delenv("REPRO_NO_CACHE")
        assert cache_enabled()

    def test_default_dir_resolution(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
        assert default_cache_dir() == tmp_path / "explicit"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"
        monkeypatch.delenv("XDG_CACHE_HOME")
        assert default_cache_dir() == cache_mod.Path.home() / ".cache" / "repro"

    def test_clear(self, tiny_spec, tmp_cache):
        tmp_cache.tasks(tiny_spec)
        assert tmp_cache.clear() == 1
        assert tmp_cache.entries() == []

    def test_info(self, tiny_spec, tmp_cache):
        tmp_cache.tasks(tiny_spec)
        info = tmp_cache.info()
        assert info["entries"] == 1
        assert info["total_bytes"] > 0
        assert info["enabled"] is True
        assert info["max_bytes"] is None
        assert info["root"] == str(tmp_cache.root)


class TestLruEviction:
    def _fill(self, cache, count):
        """Store ``count`` distinct workloads with strictly ordered mtimes."""
        import os

        specs = [make_spec(name=f"tiny-lru-{i}", seed=i) for i in range(count)]
        for stamp, spec in enumerate(specs):
            cache.store(spec, cache_mod.build_workload(spec))
            # Deterministic mtime ordering without sleeping.
            os.utime(cache.path_for(spec), (1000.0 + stamp, 1000.0 + stamp))
        return specs

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = WorkloadCache(tmp_path / "c", enabled=True)
        self._fill(cache, 3)
        assert cache.evict() == []
        assert len(cache.entries()) == 3

    def test_store_evicts_oldest_first(self, tmp_path):
        cache = WorkloadCache(tmp_path / "c", enabled=True)
        self._fill(cache, 3)
        per_entry = cache.info()["total_bytes"] // 3
        capped = WorkloadCache(tmp_path / "c", enabled=True, max_bytes=2 * per_entry)
        newest = make_spec(name="tiny-lru-new", seed=99)
        capped.store(newest, cache_mod.build_workload(newest))
        remaining = [p.name for p in capped.entries()]
        # The new store itself survives; the oldest entries made room.
        assert any(name.startswith("tiny-lru-new") for name in remaining)
        assert not any(name.startswith("tiny-lru-0-") for name in remaining)

    def test_load_touches_entry_lru_not_fifo(self, tmp_path):
        cache = WorkloadCache(tmp_path / "c", enabled=True)
        specs = self._fill(cache, 3)
        per_entry = cache.info()["total_bytes"] // 3
        capped = WorkloadCache(tmp_path / "c", enabled=True, max_bytes=2 * per_entry)
        # Hit the oldest entry: it becomes most-recently-used ...
        assert capped.load(specs[0]) is not None
        evicted = capped.evict()
        # ... so eviction removes tiny-lru-1 (now the LRU), not tiny-lru-0.
        assert [p.name.startswith("tiny-lru-1-") for p in evicted] == [True]
        assert capped.load(specs[0]) is not None
        assert capped.load(specs[1]) is None

    def test_keep_protects_fresh_store_from_tiny_caps(self, tmp_path):
        cache = WorkloadCache(tmp_path / "c", enabled=True, max_bytes=1)
        spec = make_spec(name="tiny-lru-keep", seed=5)
        cache.store(spec, cache_mod.build_workload(spec))
        # Cap is absurdly small, but the just-written entry survives.
        assert cache.load(spec) is not None

    def test_env_cap_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert cache_mod.cache_max_bytes() == 12345
        assert WorkloadCache("anywhere").max_bytes == 12345
        assert WorkloadCache("anywhere", max_bytes=7).max_bytes == 7
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
        assert cache_mod.cache_max_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "-5")
        assert cache_mod.cache_max_bytes() is None
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
        assert cache_mod.cache_max_bytes() is None
