"""The ``python -m repro.bench`` command line, including the acceptance
property: a sharded CLI run's record is bit-identical to the serial
``speedup_table`` output for the same datasets and kernels."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.cli import main
from repro.bench.records import BenchRecord
from repro.bench.runner import run_figure

from tiny_workloads import make_spec

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRunMode:
    def test_sharded_cli_record_matches_serial_speedup_table(self, tmp_path, capsys):
        """`python -m repro.bench --figure quick --workers 2` on a registry
        dataset must reproduce the serial harness bit for bit."""
        from repro.pipeline.experiment import kernel_suite, speedup_table

        name = "ONT-HG002"
        # Serial reference first: warms the in-process lru cache and the
        # persistent workload cache the CLI's pool workers will read.
        expected = speedup_table([name], lambda: kernel_suite(target="mm2"))

        out = tmp_path / "BENCH_quick.json"
        code = main(
            [
                "--figure", "quick",
                "--datasets", name,
                "--suites", "mm2",
                "--workers", "2",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert f"wrote {out}" in captured.out
        assert "GeoMean" in captured.out

        record = BenchRecord.from_dict(json.loads(out.read_text()))
        assert record.speedup_table("mm2") == expected  # bit-identical
        assert record.environment["workers"] == 2

    def test_quiet_and_no_cache(self, tmp_path, capsys):
        spec = make_spec()
        record = run_figure(
            "quick",
            datasets=[spec],
            suites=("mm2",),
            use_cache=False,
            cache_dir=str(tmp_path / "unused"),
        )
        assert not (tmp_path / "unused").exists()
        assert record.environment["cache_dir"] is None

    def test_plugins_flag_enables_custom_suite(self, tmp_path, monkeypatch, capsys):
        """--plugins imports a module whose registered suite becomes a
        valid --suites choice in a fresh CLI invocation."""
        plugin = tmp_path / "cli_plugin_mod.py"
        plugin.write_text(
            "from repro.api import SUITES, SuiteEntry, register_suite\n"
            "if 'cli-plugin-suite' not in SUITES:\n"
            "    register_suite('cli-plugin-suite',\n"
            "                   [SuiteEntry.make('AGAThA', 'AGAThA')])\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        out = tmp_path / "rec.json"
        code = main(
            [
                "--plugins", "cli_plugin_mod",
                "--figure", "quick",
                "--datasets", "ONT-HG002",
                "--suites", "cli-plugin-suite",
                "--output", str(out),
                "--quiet",
            ]
        )
        from repro.api.suites import SUITES

        try:
            assert code == 0
            record = BenchRecord.load(out)
            assert set(record.suites) == {"cli-plugin-suite"}
            assert [c.kernel for c in record.suites["cli-plugin-suite"].cells] == [
                "AGAThA"
            ]
        finally:
            import sys as _sys

            if "cli-plugin-suite" in SUITES:
                SUITES.unregister("cli-plugin-suite")
            _sys.modules.pop("cli_plugin_mod", None)

    def test_scoring_engine_flag_is_record_invariant(self, tmp_path, capsys):
        """--scoring-engine batch-sliced changes wall-clock, never records."""
        name = "ONT-HG002"
        dense_out = tmp_path / "dense.json"
        sliced_out = tmp_path / "sliced.json"
        assert main(
            ["--figure", "quick", "--datasets", name, "--suites", "mm2",
             "--output", str(dense_out), "--quiet"]
        ) == 0
        assert main(
            ["--figure", "quick", "--datasets", name, "--suites", "mm2",
             "--scoring-engine", "batch-sliced", "--output", str(sliced_out),
             "--quiet"]
        ) == 0
        dense = BenchRecord.from_dict(json.loads(dense_out.read_text()))
        sliced = BenchRecord.from_dict(json.loads(sliced_out.read_text()))
        assert dense.speedup_table("mm2") == sliced.speedup_table("mm2")

    def test_unknown_scoring_engine_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["--figure", "quick", "--scoring-engine", "warp-9"])
        assert "--scoring-engine" in capsys.readouterr().err

    def test_missing_plugins_module_is_a_clean_error(self, capsys):
        assert main(["--plugins", "no_such_plugin_mod", "--figure", "quick"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_abbreviated_plugins_flag_is_rejected(self, capsys):
        """The pre-scan matches --plugins literally, so an abbreviation
        must be a hard parser error, never a silently skipped import."""
        with pytest.raises(SystemExit) as excinfo:
            main(["--plugin", "some_mod", "--figure", "quick"])
        assert excinfo.value.code == 2
        assert "--plugin" in capsys.readouterr().err

    def test_unknown_figure_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--figure", "fig99"])
        assert excinfo.value.code == 2

    def test_unknown_dataset_is_a_clean_error(self, capsys):
        assert main(["--figure", "quick", "--datasets", "ONT-HG02"]) == 2
        captured = capsys.readouterr()
        assert "error: unknown dataset or workload 'ONT-HG02'" in captured.err
        # The message lists both namespaces so a typo shows every choice.
        assert "workloads:" in captured.err

    def test_missing_record_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["compare", str(tmp_path / "nope.json"), str(tmp_path / "x.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestCacheAdmin:
    def test_cache_info_reports_without_running(self, tmp_path, capsys):
        from repro.bench.cache import WorkloadCache

        cache = WorkloadCache(tmp_path / "c", enabled=True)
        cache.tasks(make_spec())
        assert main(["--cache-info", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "entries    : 1" in out
        assert "REPRO_CACHE_MAX_BYTES" in out
        assert "wrote" not in out  # no figure ran

    def test_cache_clear_empties_the_store(self, tmp_path, capsys):
        from repro.bench.cache import WorkloadCache

        cache = WorkloadCache(tmp_path / "c", enabled=True)
        cache.tasks(make_spec())
        assert main(["--cache-clear", "--cache-dir", str(tmp_path / "c")]) == 0
        assert "removed 1 cached workload(s)" in capsys.readouterr().out
        assert cache.entries() == []

    def test_cache_clear_then_info_combined(self, tmp_path, capsys):
        assert main(
            ["--cache-clear", "--cache-info", "--cache-dir", str(tmp_path / "c")]
        ) == 0
        out = capsys.readouterr().out
        assert "removed 0 cached workload(s)" in out
        assert "entries    : 0" in out


class TestCompareMode:
    def _write_records(self, tmp_path, drop: float = 0.0):
        base = {
            "schema_version": 1,
            "figure": "fig08",
            "datasets": ["ds1"],
            "environment": {},
            "wall_time_s": 0.0,
            "suites": {
                "mm2": {
                    "suite": "mm2",
                    "cpu_time_ms": {"ds1": 10.0},
                    "cells": [],
                    "speedups": {"AGAThA": {"ds1": 20.0, "GeoMean": 20.0}},
                }
            },
        }
        cur = json.loads(json.dumps(base))
        table = cur["suites"]["mm2"]["speedups"]["AGAThA"]
        table["ds1"] *= 1.0 - drop
        table["GeoMean"] *= 1.0 - drop
        a = tmp_path / "baseline.json"
        b = tmp_path / "current.json"
        a.write_text(json.dumps(base))
        b.write_text(json.dumps(cur))
        return a, b

    def test_identical_records_exit_zero(self, tmp_path, capsys):
        a, b = self._write_records(tmp_path)
        assert main(["compare", str(a), str(b)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        a, b = self._write_records(tmp_path, drop=0.5)
        assert main(["compare", str(a), str(b)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path, capsys):
        a, b = self._write_records(tmp_path, drop=0.5)
        assert main(["compare", str(a), str(b), "--tolerance", "0.6"]) == 0

    def test_module_entry_point_subprocess(self, tmp_path):
        """`python -m repro.bench compare` works as a real process."""
        a, b = self._write_records(tmp_path, drop=0.5)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench", "compare", str(a), str(b)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 1
        assert "regression" in proc.stdout
