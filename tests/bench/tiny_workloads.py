"""Tiny dataset specs shared by the repro.bench tests.

Deliberately small (a few short reads over a small reference) so cache
and runner behaviour -- including real process-pool sharding -- can be
exercised in seconds.
"""

from __future__ import annotations

from repro.align.scoring import preset
from repro.io.datasets import DatasetSpec

TINY_SCORING = preset("map-ont", band_width=16, zdrop=80)


def make_spec(name: str = "tiny-A", seed: int = 7, **overrides) -> DatasetSpec:
    base = dict(
        name=name,
        technology="HiFi",
        seed=seed,
        num_reads=4,
        reference_length=4000,
        scoring=TINY_SCORING,
    )
    base.update(overrides)
    return DatasetSpec(**base)
