"""BenchRecord serialisation and schema versioning."""

import json

import pytest

from repro.bench.records import (
    RECORD_SCHEMA_VERSION,
    BenchRecord,
    CellRecord,
    SuiteRecord,
    environment_metadata,
)


def sample_record() -> BenchRecord:
    suite = SuiteRecord(
        suite="mm2",
        cpu_time_ms={"ds1": 10.0, "ds2": 12.5},
        cells=[
            CellRecord("ds1", "AGAThA", time_ms=0.5, speedup_vs_cpu=20.0, cells=100),
            CellRecord("ds2", "AGAThA", time_ms=0.625, speedup_vs_cpu=20.0, cells=120),
            CellRecord("ds1", "GASAL2", time_ms=12.5, speedup_vs_cpu=0.8),
        ],
        speedups={
            "AGAThA": {"ds1": 20.0, "ds2": 20.0, "GeoMean": 20.0},
            "GASAL2": {"ds1": 0.8, "ds2": 0.9, "GeoMean": 0.8485281374238570},
        },
    )
    return BenchRecord(
        figure="fig08",
        datasets=["ds1", "ds2"],
        suites={"mm2": suite},
        environment=environment_metadata(workers=4),
        wall_time_s=1.25,
    )


class TestRoundtrip:
    def test_save_load_identity(self, tmp_path):
        record = sample_record()
        path = record.save(tmp_path / "BENCH_fig08.json")
        loaded = BenchRecord.load(path)
        assert loaded.to_dict() == record.to_dict()
        # Bit-exactness survives JSON (repr-roundtrip floats).
        assert loaded.suites["mm2"].speedups["GASAL2"]["GeoMean"] == (
            record.suites["mm2"].speedups["GASAL2"]["GeoMean"]
        )

    def test_default_filename(self):
        assert sample_record().default_filename == "BENCH_fig08.json"

    def test_json_is_plain_data(self):
        payload = json.loads(sample_record().to_json())
        assert payload["schema_version"] == RECORD_SCHEMA_VERSION
        assert payload["suites"]["mm2"]["cells"][0]["kernel"] == "AGAThA"

    def test_cell_record_ignores_unknown_keys(self):
        cell = CellRecord.from_dict(
            {"dataset": "d", "kernel": "k", "time_ms": 1.0,
             "speedup_vs_cpu": 2.0, "future_field": "ignored"}
        )
        assert cell.kernel == "k"


class TestSchema:
    def test_rejects_missing_version(self):
        data = sample_record().to_dict()
        del data["schema_version"]
        with pytest.raises(ValueError, match="schema_version"):
            BenchRecord.from_dict(data)

    def test_rejects_newer_version(self):
        data = sample_record().to_dict()
        data["schema_version"] = RECORD_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than supported"):
            BenchRecord.from_dict(data)


class TestAccessors:
    def test_speedup_table(self):
        record = sample_record()
        assert record.speedup_table("mm2")["AGAThA"]["GeoMean"] == 20.0

    def test_geomeans(self):
        assert sample_record().suites["mm2"].geomeans()["AGAThA"] == 20.0

    def test_cell_lookup(self):
        suite = sample_record().suites["mm2"]
        assert suite.cell("ds2", "AGAThA").time_ms == 0.625
        assert suite.cell("ds2", "GASAL2") is None

    def test_environment_metadata(self):
        meta = environment_metadata(workers=3)
        assert meta["workers"] == 3
        assert "python" in meta and "numpy" in meta
