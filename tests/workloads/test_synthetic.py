"""Tests for the adversarial synthetic workload generators."""

import numpy as np
import pytest

from repro.align.scoring import preset
from repro.workloads import DISTRIBUTIONS, AdversarialWorkloadSpec

SCORING = preset("map-ont", band_width=32, zdrop=120)


def spec(**overrides):
    params = dict(
        name="t",
        scoring=SCORING,
        distribution="heavy-tail",
        num_tasks=24,
        seed=11,
        min_length=64,
        max_length=1024,
    )
    params.update(overrides)
    return AdversarialWorkloadSpec(**params)


class TestValidation:
    def test_unknown_distribution_lists_choices(self):
        with pytest.raises(ValueError) as err:
            spec(distribution="nope")
        for name in DISTRIBUTIONS:
            assert name in str(err.value)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_tasks": 0},
            {"min_length": 0},
            {"min_length": 100, "max_length": 50},
            {"junk_tail_fraction": 1.5},
            {"num_runs": 0},
        ],
    )
    def test_bad_parameters_rejected(self, overrides):
        with pytest.raises(ValueError):
            spec(**overrides)


class TestGeneration:
    def test_deterministic_in_seed(self):
        a = spec().build_tasks()
        b = spec().build_tasks()
        assert len(a) == len(b) == 24
        for x, y in zip(a, b):
            assert np.array_equal(x.ref, y.ref)
            assert np.array_equal(x.query, y.query)

    def test_different_seed_different_tasks(self):
        a = spec().build_tasks()
        b = spec(seed=12).build_tasks()
        assert any(
            not np.array_equal(x.ref, y.ref) for x, y in zip(a, b)
        )

    def test_lengths_within_bounds(self):
        for distribution in DISTRIBUTIONS:
            tasks = spec(distribution=distribution).build_tasks()
            for task in tasks:
                assert 64 <= task.ref.size <= 1024

    def test_heavy_tail_is_skewed(self):
        lengths = [t.ref.size for t in spec(num_tasks=64).build_tasks()]
        # Most tasks are small, a few are giants: the mean sits well
        # above the median, the signature of a heavy right tail.
        assert np.mean(lengths) > 1.2 * np.median(lengths)

    def test_bimodal_interleaves_extremes(self):
        tasks = spec(distribution="bimodal", num_tasks=16).build_tasks()
        lengths = np.array([t.ref.size for t in tasks])
        # Even positions hug min_length, odd positions hug max_length.
        assert lengths[0::2].max() < 200
        assert lengths[1::2].min() > 800

    def test_sorted_runs_ascend_within_each_run(self):
        tasks = spec(
            distribution="sorted-runs", num_tasks=24, num_runs=4
        ).build_tasks()
        lengths = [t.ref.size for t in tasks]
        run = 24 // 4
        for start in range(0, 24, run):
            chunk = lengths[start : start + run]
            assert chunk == sorted(chunk)

    def test_junk_tails_trigger_zdrop(self):
        from repro.align.batch import batch_align

        tasks = spec(num_tasks=32, seed=3).build_tasks()
        results = batch_align(tasks)
        assert any(r.terminated for r in results), (
            "junk tails should make Z-drop fire on some tasks"
        )

    def test_cache_fingerprint_differs_per_field(self):
        from repro.bench.cache import spec_fingerprint

        base = spec_fingerprint(spec())
        assert spec_fingerprint(spec(seed=99)) != base
        assert spec_fingerprint(spec(distribution="uniform")) != base
