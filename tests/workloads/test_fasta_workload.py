"""Tests for FASTA-backed workloads and their cache fingerprinting."""

import numpy as np
import pytest

from repro.align.scoring import preset
from repro.align.sequence import mutate, random_sequence
from repro.bench.cache import WorkloadCache, spec_fingerprint
from repro.io.fasta import FastaRecord, write_fasta
from repro.workloads import FastaWorkloadSpec, file_sha256, get_workload

SCORING = preset("map-ont", band_width=32, zdrop=150)


@pytest.fixture
def fasta_pair(tmp_path, rng):
    """A small on-disk reference/reads FASTA pair (plain text)."""
    refs, reads = [], []
    for i in range(6):
        ref = random_sequence(int(rng.integers(150, 400)), rng)
        query = mutate(
            ref, rng, substitution_rate=0.05, insertion_rate=0.02, deletion_rate=0.02
        )
        refs.append(FastaRecord(name=f"ref{i}", sequence=ref))
        reads.append(FastaRecord(name=f"read{i}", sequence=query))
    ref_path = tmp_path / "ref.fasta"
    reads_path = tmp_path / "reads.fasta"
    write_fasta(ref_path, refs)
    write_fasta(reads_path, reads)
    return ref_path, reads_path


def make_spec(ref_path, reads_path, **overrides):
    params = dict(
        name="test-fasta",
        scoring=SCORING,
        ref_path=str(ref_path),
        reads_path=str(reads_path),
    )
    params.update(overrides)
    return FastaWorkloadSpec(**params)


class TestValidation:
    def test_needs_both_paths(self):
        with pytest.raises(ValueError, match="ref_path"):
            FastaWorkloadSpec(name="x", scoring=SCORING, ref_path="a.fasta")

    def test_unknown_mode_lists_choices(self, fasta_pair):
        with pytest.raises(ValueError, match="pairs"):
            make_spec(*fasta_pair, mode="nope")

    def test_negative_max_tasks_rejected(self, fasta_pair):
        with pytest.raises(ValueError, match="max_tasks"):
            make_spec(*fasta_pair, max_tasks=-1)


class TestBuild:
    def test_pairs_mode_one_task_per_record_pair(self, fasta_pair):
        tasks = make_spec(*fasta_pair).build_tasks()
        assert len(tasks) == 6
        assert [t.task_id for t in tasks] == list(range(6))
        assert all(t.scoring == SCORING for t in tasks)

    def test_pairs_mode_rejects_record_count_mismatch(self, fasta_pair, tmp_path, rng):
        ref_path, _ = fasta_pair
        short = tmp_path / "short.fasta"
        write_fasta(short, [FastaRecord(name="only", sequence=random_sequence(80, rng))])
        with pytest.raises(ValueError, match="1:1"):
            make_spec(ref_path, short).build_tasks()

    def test_map_mode_runs_the_seeding_pipeline(self, fasta_pair):
        tasks = make_spec(*fasta_pair, mode="map").build_tasks()
        # Chaining decides the task count; the pipeline must produce
        # something for near-identical read/reference pairs.
        assert len(tasks) > 0

    def test_max_tasks_truncates(self, fasta_pair):
        tasks = make_spec(*fasta_pair, max_tasks=2).build_tasks()
        assert len(tasks) == 2

    def test_builtin_sample_is_gzipped_and_builds(self):
        spec = get_workload("fasta-sample")
        assert spec.ref_path.endswith(".fasta.gz")
        tasks = spec.build_tasks()
        assert len(tasks) == 16


class TestCaching:
    def test_cache_hit_returns_identical_tasks(self, fasta_pair, tmp_path):
        spec = make_spec(*fasta_pair)
        cache = WorkloadCache(tmp_path / "cache")
        first = cache.tasks(spec)
        assert cache.misses == 1
        second = cache.tasks(spec)
        assert cache.hits == 1
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert np.array_equal(a.ref, b.ref)
            assert np.array_equal(a.query, b.query)

    def test_fingerprint_includes_file_hashes(self, fasta_pair):
        spec = make_spec(*fasta_pair)
        extra = spec.cache_fingerprint_extra()
        assert extra == {
            "ref_sha256": file_sha256(spec.ref_path),
            "reads_sha256": file_sha256(spec.reads_path),
        }

    def test_editing_a_file_invalidates_the_cache_entry(self, fasta_pair, tmp_path):
        ref_path, reads_path = fasta_pair
        spec = make_spec(ref_path, reads_path)
        cache = WorkloadCache(tmp_path / "cache")
        cache.tasks(spec)
        before = spec_fingerprint(spec)

        # Edit one base in the reads file; the spec itself is unchanged.
        text = reads_path.read_text()
        reads_path.write_text(text.replace("A", "C", 1))

        after = spec_fingerprint(spec)
        assert after != before
        cache.tasks(spec)
        # Unchanged spec, changed file: the lookup was a miss, not a hit.
        assert cache.misses == 2
        assert cache.hits == 0

    def test_distinct_specs_get_distinct_cache_files(self, fasta_pair, tmp_path):
        spec_a = make_spec(*fasta_pair)
        spec_b = make_spec(*fasta_pair, max_tasks=3)
        cache = WorkloadCache(tmp_path / "cache")
        assert cache.path_for(spec_a) != cache.path_for(spec_b)
