"""Tests for the workload registry and its integration points."""

import dataclasses

import pytest

from repro.align.scoring import preset
from repro.io.datasets import DATASET_REGISTRY
from repro.workloads import (
    WORKLOADS,
    AdversarialWorkloadSpec,
    WorkloadSpec,
    get_workload,
    register_workload,
    resolve_spec,
    workload_names,
)

BUILTINS = (
    "adv-heavy-tail",
    "adv-bimodal",
    "adv-sorted-runs",
    "protein-blosum62",
    "fasta-sample",
)


class TestRegistry:
    def test_builtins_registered(self):
        assert workload_names() == BUILTINS

    def test_get_workload_unknown_lists_names(self):
        with pytest.raises(KeyError) as err:
            get_workload("nope")
        message = str(err.value)
        assert "'nope'" in message
        for name in BUILTINS:
            assert name in message

    def test_register_requires_structural_hooks(self):
        @dataclasses.dataclass(frozen=True)
        class NotAWorkload:
            name: str = "broken"

        with pytest.raises(TypeError, match="build_tasks"):
            register_workload(NotAWorkload())

    def test_register_duplicate_needs_replace(self):
        spec = get_workload("adv-heavy-tail")
        with pytest.raises(Exception):
            register_workload(spec)
        assert register_workload(spec, replace=True) is spec

    def test_custom_registration_and_removal(self):
        spec = AdversarialWorkloadSpec(
            name="test-custom",
            scoring=preset("map-ont", band_width=16),
            distribution="uniform",
            num_tasks=3,
            seed=7,
            min_length=32,
            max_length=64,
        )
        register_workload(spec)
        try:
            assert get_workload("test-custom") is spec
            assert resolve_spec("test-custom") is spec
        finally:
            WORKLOADS.unregister("test-custom")
        assert "test-custom" not in WORKLOADS

    def test_base_spec_build_tasks_is_abstract(self):
        spec = WorkloadSpec(name="abstract", scoring=preset("map-ont"))
        with pytest.raises(NotImplementedError):
            spec.build_tasks()
        assert spec.cache_fingerprint_extra() is None

    def test_describe_names_parameters(self):
        text = get_workload("adv-heavy-tail").describe()
        assert "adv-heavy-tail" in text
        assert "distribution='heavy-tail'" in text


class TestResolveSpec:
    def test_dataset_names_win(self):
        name = next(iter(DATASET_REGISTRY))
        assert resolve_spec(name) is DATASET_REGISTRY[name]

    def test_workload_names_resolve(self):
        assert resolve_spec("fasta-sample") is get_workload("fasta-sample")

    def test_unknown_name_lists_both_namespaces(self):
        with pytest.raises(KeyError) as err:
            resolve_spec("nope")
        message = str(err.value)
        assert "datasets:" in message
        assert "workloads:" in message
        assert "adv-heavy-tail" in message


class TestIntegration:
    def test_session_accepts_workload_name(self):
        from repro.api import Session

        session = Session(dataset="adv-sorted-runs")
        assert session.dataset is get_workload("adv-sorted-runs")
        workload = session.workload()
        assert len(workload) == 18

    def test_session_align_engines_bit_identical(self):
        from repro.api import Session

        scores = {
            engine: Session(dataset="adv-bimodal", engine=engine).align().scores
            for engine in ("scalar", "batch", "batch-sliced", "vector")
        }
        reference = scores.pop("scalar")
        for engine, got in scores.items():
            assert got == reference, f"{engine} diverged from scalar"

    def test_loadgen_accepts_workload_name(self):
        from repro.serve.loadgen import LoadGenerator

        generator = LoadGenerator.from_dataset("adv-heavy-tail", seed=5)
        assert generator.name == "adv-heavy-tail"
        assert len(generator.tasks) == 18

    def test_bench_resolve_specs_falls_back_to_workloads(self):
        from repro.bench.runner import resolve_specs

        specs = resolve_specs(["protein-blosum62"])
        assert specs == [get_workload("protein-blosum62")]

    def test_run_figure_workloads_covers_every_registered_name(self):
        from repro.bench.runner import run_figure

        record = run_figure("workloads")
        assert record.datasets == list(workload_names())
        suite = record.suites["workloads"]
        assert {cell.kernel for cell in suite.cells} == {"AGAThA"}
        assert set(suite.speedups["AGAThA"]) == set(workload_names()) | {"GeoMean"}

    def test_api_reexports(self):
        import repro
        import repro.api as api

        assert api.workload_names() == workload_names()
        assert repro.FastaWorkloadSpec is api.FastaWorkloadSpec
        assert api.WORKLOADS is WORKLOADS
