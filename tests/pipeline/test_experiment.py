"""Tests for the experiment harness (scaled hardware, comparisons)."""

import pytest

from repro.baselines.cpu_model import EPYC_16C_SSE4
from repro.gpusim.device import RTX_A6000
from repro.kernels import AgathaKernel, BaselineExactKernel
from repro.pipeline.experiment import (
    ExperimentConfig,
    all_dataset_names,
    compare_kernels,
    geometric_mean,
    kernel_suite,
    scaled_hardware,
)


class TestScaledHardware:
    def test_ratio_preserved(self):
        device, cpu = scaled_hardware(1 / 84)
        gpu_factor = device.num_sms / RTX_A6000.num_sms
        cpu_factor = cpu.cells_per_second / EPYC_16C_SSE4.cells_per_second
        assert gpu_factor == pytest.approx(cpu_factor)

    def test_identity_scale(self):
        device, cpu = scaled_hardware(1.0)
        assert device.num_sms == RTX_A6000.num_sms


class TestKernelSuite:
    def test_mm2_suite_contents(self):
        suite = kernel_suite(target="mm2")
        assert set(suite) == {"GASAL2", "SALoBa", "Manymap", "AGAThA"}
        assert all(k.target == "mm2" for k in suite.values())

    def test_diff_suite_contents(self):
        suite = kernel_suite(target="diff")
        assert set(suite) == {"GASAL2", "SALoBa", "Manymap", "LOGAN"}

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            kernel_suite(target="x")

    def test_experiment_config_batch_size_flows_to_kernels(self):
        suite = kernel_suite(ExperimentConfig(batch_size=17))
        assert all(
            k.config.batched_scoring and k.config.batch_bucket_size == 17
            for k in suite.values()
        )


class TestCompare:
    def test_compare_kernels_reports_speedups(self, task_batch):
        results = compare_kernels(
            task_batch,
            {"AGAThA": AgathaKernel(), "Baseline": BaselineExactKernel()},
        )
        assert results["CPU"]["speedup_vs_cpu"] == 1.0
        assert results["AGAThA"]["time_ms"] > 0
        assert results["AGAThA"]["speedup_vs_cpu"] > results["Baseline"]["speedup_vs_cpu"]

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 5.0]) == pytest.approx(5.0)

    def test_dataset_names(self):
        names = all_dataset_names()
        assert len(names) == 9
        assert names[0].startswith("HiFi")
