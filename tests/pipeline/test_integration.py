"""End-to-end integration test: reads -> pre-compute -> kernels -> report.

A miniature version of the full evaluation pipeline, small enough to run
in a few seconds, exercising every subsystem together: synthetic data
generation, seeding/chaining, the exact alignment engines, every kernel's
score path, the cost simulation, the CPU baseline and the speedup report.
"""

import numpy as np

from repro.align.scoring import preset
from repro.analysis.report import format_speedup_table
from repro.analysis.workload import task_workload_antidiagonals
from repro.baselines.aligner import Minimap2CpuAligner
from repro.io.datasets import ReadProfile, simulate_reads, synthetic_reference
from repro.kernels import AgathaKernel, BaselineExactKernel, SALoBaKernel
from repro.pipeline.experiment import compare_kernels, geometric_mean, scaled_hardware
from repro.pipeline.mapper import LongReadMapper


def test_end_to_end_pipeline():
    rng = np.random.default_rng(99)
    scheme = preset("map-ont", band_width=33, zdrop=120)
    reference = synthetic_reference(15_000, rng)
    profile = ReadProfile(
        name="mini",
        mean_length=500.0,
        sigma_length=0.4,
        max_length=1200,
        substitution_rate=0.04,
        insertion_rate=0.02,
        deletion_rate=0.03,
        junk_fraction=0.05,
        chimera_fraction=0.15,
        burst_fraction=0.2,
        burst_error=0.18,
        junk_tail_fraction=0.15,
    )
    reads = simulate_reads(reference, profile, 24, rng)
    mapper = LongReadMapper(reference, scheme, anchor_spacing=100)
    tasks = mapper.workload([r.sequence for r in reads])
    assert len(tasks) >= 10

    # Workload has the expected rough shape (a spread of task sizes).
    workloads = task_workload_antidiagonals(tasks)
    assert workloads.max() > 2 * np.median(workloads)

    # Exactness across the whole pipeline: AGAThA reproduces the reference.
    cpu = Minimap2CpuAligner()
    reference_results = cpu.run(tasks)
    agatha_results = AgathaKernel().run(tasks)
    assert all(a.same_score(b) for a, b in zip(agatha_results, reference_results))

    # Cost comparison: AGAThA beats the naive exact baseline, and the
    # speedup table renders.
    device, cpu_spec = scaled_hardware()
    results = compare_kernels(
        tasks,
        {
            "AGAThA": AgathaKernel(),
            "Baseline": BaselineExactKernel(),
            "SALoBa": SALoBaKernel(target="mm2"),
        },
        device=device,
        cpu=cpu_spec,
    )
    assert results["AGAThA"]["speedup_vs_cpu"] > results["Baseline"]["speedup_vs_cpu"]
    table = {
        name: {"mini": summary["speedup_vs_cpu"], "GeoMean": summary["speedup_vs_cpu"]}
        for name, summary in results.items()
        if name != "CPU"
    }
    rendered = format_speedup_table(table)
    assert "AGAThA" in rendered
    assert geometric_mean([results["AGAThA"]["speedup_vs_cpu"]]) > 0
