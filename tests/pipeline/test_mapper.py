"""Tests for the end-to-end long-read mapper."""

import numpy as np

from repro.align.scoring import preset
from repro.align.sequence import mutate, random_sequence
from repro.io.datasets import synthetic_reference
from repro.pipeline.mapper import LongReadMapper

SCHEME = preset("map-ont", band_width=33, zdrop=120)


def make_mapper(rng, ref_len=20_000):
    reference = synthetic_reference(ref_len, rng)
    return reference, LongReadMapper(reference, SCHEME)


class TestMapping:
    def test_clean_read_maps_to_true_position(self, rng):
        reference, mapper = make_mapper(rng)
        start = 4321
        read = reference[start : start + 800].copy()
        mapping = mapper.map_read(read, read_id=7)
        assert mapping.mapped
        assert abs(mapping.ref_start - start) < 50
        assert mapping.read_id == 7
        assert mapping.mapping_score > 0

    def test_noisy_read_still_maps(self, rng):
        reference, mapper = make_mapper(rng)
        start = 9000
        read = mutate(
            reference[start : start + 900].copy(),
            rng,
            substitution_rate=0.05,
            insertion_rate=0.03,
            deletion_rate=0.03,
        )
        mapping = mapper.map_read(read)
        assert mapping.mapped
        assert abs(mapping.ref_start - start) < 200

    def test_junk_read_unmapped(self, rng):
        _, mapper = make_mapper(rng)
        mapping = mapper.map_read(random_sequence(600, rng))
        assert not mapping.mapped
        assert mapping.mapping_score == 0

    def test_map_reads_batch(self, rng):
        reference, mapper = make_mapper(rng)
        reads = [reference[k : k + 500].copy() for k in (100, 2000, 7000)]
        mappings = mapper.map_reads(reads)
        assert len(mappings) == 3
        assert all(m.mapped for m in mappings)


class TestWorkload:
    def test_unique_task_ids(self, rng):
        reference, mapper = make_mapper(rng)
        reads = []
        for k in (500, 3000, 8000, 12_000):
            read = mutate(
                reference[k : k + 1200].copy(),
                rng,
                substitution_rate=0.08,
                insertion_rate=0.04,
                deletion_rate=0.04,
            )
            reads.append(read)
        tasks = mapper.workload(reads)
        ids = [t.task_id for t in tasks]
        assert len(ids) == len(set(ids))
        assert all(t.scoring is SCHEME for t in tasks)

    def test_junk_tail_produces_terminating_extension(self, rng):
        reference, mapper = make_mapper(rng)
        start = 6000
        good = reference[start : start + 600].copy()
        read = np.concatenate([good, random_sequence(800, rng)])
        tasks = mapper.extension_tasks(read)
        assert tasks, "the junk tail must leave a right-extension task"
        largest = max(tasks, key=lambda t: t.query_len)
        result = largest.profile().result
        assert result.terminated
