"""Exactness tests: every exact kernel must reproduce the scalar oracle.

This is the paper's central claim -- AGAThA accelerates the *exact*
reference guided algorithm -- so every kernel configuration that claims
exactness is checked score-for-score against the oracle, and the
heuristic kernels are checked to follow their own (different)
specifications.
"""

import pytest

from repro.align.antidiagonal import antidiagonal_align
from repro.align.reference import reference_align
from repro.align.termination import XDrop
from repro.kernels import (
    AgathaKernel,
    BaselineExactKernel,
    Gasal2Kernel,
    KernelConfig,
    LoganKernel,
    ManymapKernel,
    SALoBaKernel,
)


def oracle_results(tasks):
    return [reference_align(t.ref, t.query, t.scoring) for t in tasks]


EXACT_KERNELS = [
    ("baseline", lambda: BaselineExactKernel()),
    ("saloba-mm2", lambda: SALoBaKernel(target="mm2")),
    ("gasal2-mm2", lambda: Gasal2Kernel(target="mm2")),
    ("manymap-mm2", lambda: ManymapKernel(target="mm2")),
    ("agatha-full", lambda: AgathaKernel()),
    ("agatha-rw-only", lambda: AgathaKernel(sliced_diagonal=False, subwarp_rejoining=False, uneven_bucketing=False)),
    ("agatha-no-ub", lambda: AgathaKernel(uneven_bucketing=False)),
    ("agatha-bare", lambda: AgathaKernel(rolling_window=False, sliced_diagonal=False, subwarp_rejoining=False, uneven_bucketing=False)),
]


class TestExactKernels:
    @pytest.mark.parametrize("name,factory", EXACT_KERNELS, ids=[n for n, _ in EXACT_KERNELS])
    def test_matches_oracle(self, name, factory, task_batch):
        kernel = factory()
        assert kernel.exact
        results = kernel.run(task_batch)
        for got, want in zip(results, oracle_results(task_batch)):
            assert got.same_score(want)

    def test_all_exact_kernels_agree_with_each_other(self, task_batch):
        reference = BaselineExactKernel().run(task_batch)
        for _, factory in EXACT_KERNELS[1:]:
            results = factory().run(task_batch)
            assert all(a.same_score(b) for a, b in zip(results, reference))


class TestHeuristicKernels:
    def test_logan_is_flagged_inexact(self):
        assert not LoganKernel().exact

    def test_logan_follows_xdrop_specification(self, task_batch):
        results = LoganKernel().run(task_batch)
        for task, got in zip(task_batch, results):
            want = antidiagonal_align(
                task.ref, task.query, task.scoring, XDrop(xdrop=task.scoring.zdrop)
            )
            assert got.same_score(want)

    def test_diff_target_ignores_termination(self, task_batch):
        results = SALoBaKernel(target="diff").run(task_batch)
        for task, got in zip(task_batch, results):
            want = antidiagonal_align(task.ref, task.query, task.scoring.replace(zdrop=0))
            assert got.same_score(want)
            assert not got.terminated

    def test_manymap_diff_uses_inexact_condition(self, task_batch):
        results = ManymapKernel(target="diff").run(task_batch)
        for task, got in zip(task_batch, results):
            want = antidiagonal_align(
                task.ref, task.query, task.scoring, XDrop(xdrop=task.scoring.zdrop)
            )
            assert got.same_score(want)

    def test_heuristic_kernels_can_differ_from_oracle(self, rng, small_scheme):
        """On divergent pairs the X-drop heuristics terminate differently
        from Z-drop at least sometimes (that is why they are inexact)."""
        from tests.conftest import make_task_batch

        tasks = make_task_batch(rng, small_scheme, count=30, min_len=150, max_len=400)
        oracle = oracle_results(tasks)
        logan = LoganKernel().run(tasks)
        differing = sum(
            0 if a.same_score(b) else 1 for a, b in zip(logan, oracle)
        )
        assert differing >= 1


class TestConfigValidation:
    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            SALoBaKernel(target="x")
        with pytest.raises(ValueError):
            Gasal2Kernel(target="x")
        with pytest.raises(ValueError):
            ManymapKernel(target="x")

    def test_invalid_scheduling_rejected(self):
        with pytest.raises(ValueError):
            AgathaKernel(scheduling="bogus")

    def test_kernel_config_replace(self):
        cfg = KernelConfig().replace(subwarp_size=16)
        assert cfg.subwarp_size == 16
        assert cfg.subwarps_per_warp == 2

    def test_unknown_scoring_engine_rejected(self):
        with pytest.raises(ValueError, match="scoring_engine"):
            KernelConfig(scoring_engine="warp-9")
        with pytest.raises(ValueError, match="scoring_engine"):
            KernelConfig().replace(scoring_engine="scalar")

    def test_sliced_scoring_engine_primes_identical_profiles(self, task_batch):
        """KernelConfig(scoring_engine="batch-sliced") is bit-invariant."""
        for task in task_batch:
            task.invalidate_profile()
        kernel = AgathaKernel(KernelConfig(scoring_engine="batch-sliced"))
        results = kernel.run(task_batch)
        for got, want in zip(results, oracle_results(task_batch)):
            assert got.same_score(want)
        dense = AgathaKernel(KernelConfig())
        for task in task_batch:
            sliced_profile = task.profile()
            task.invalidate_profile()
            dense.run([task])
            assert task.profile().result == sliced_profile.result
