"""Behavioural tests of the kernel cost simulations.

These tests assert the *directional* claims of the paper: AGAThA's schemes
reduce run-ahead work, memory traffic and imbalance relative to the naive
exact baseline, and the full design is the fastest of the exact kernels.
"""

import pytest

from repro.gpusim.device import CostModel, RTX_2080TI, RTX_A6000
from repro.kernels import (
    AgathaKernel,
    BaselineExactKernel,
    Gasal2Kernel,
    KernelConfig,
    LoganKernel,
    ManymapKernel,
    SALoBaKernel,
)

DEVICE = RTX_A6000.scale(1 / 84)


def simulate(kernel, tasks):
    return kernel.simulate(tasks, DEVICE)


class TestBasicInvariants:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: BaselineExactKernel(),
            lambda: SALoBaKernel(target="diff"),
            lambda: Gasal2Kernel(target="mm2"),
            lambda: ManymapKernel(target="mm2"),
            lambda: LoganKernel(),
            lambda: AgathaKernel(),
        ],
    )
    def test_simulation_produces_positive_time_and_work(self, factory, task_batch):
        stats = simulate(factory(), task_batch)
        assert stats.time_ms > 0
        assert stats.total_cells > 0
        assert stats.num_warps > 0
        summary = stats.summary()
        assert summary["time_ms"] == stats.time_ms

    def test_every_task_appears_once(self, task_batch):
        stats = simulate(AgathaKernel(), task_batch)
        task_ids = sorted(w.task_id for w in stats.per_task_workloads())
        assert task_ids == sorted(t.task_id for t in task_batch)

    def test_empty_task_list(self):
        stats = simulate(AgathaKernel(), [])
        assert stats.time_ms == 0.0
        assert stats.num_warps == 0


class TestDirectionalClaims:
    def test_agatha_faster_than_naive_baseline(self, task_batch):
        agatha = simulate(AgathaKernel(), task_batch)
        baseline = simulate(BaselineExactKernel(), task_batch)
        assert agatha.time_ms < baseline.time_ms

    def test_ablation_ladder_never_regresses_much(self, task_batch):
        """The full design clearly beats the bare baseline.  Individual
        intermediate steps may regress slightly on this deliberately tiny
        test batch (band width 17), where per-slice boundary traffic is
        large relative to the cell work -- the slice-width trade-off the
        paper discusses in Section 4.2 -- so only a loose per-step bound is
        asserted here; the benchmark harness checks the ladder on the
        realistic datasets."""
        variants = [
            AgathaKernel(rolling_window=False, sliced_diagonal=False, subwarp_rejoining=False, uneven_bucketing=False),
            AgathaKernel(sliced_diagonal=False, subwarp_rejoining=False, uneven_bucketing=False),
            AgathaKernel(subwarp_rejoining=False, uneven_bucketing=False),
            AgathaKernel(uneven_bucketing=False),
            AgathaKernel(),
        ]
        times = [simulate(v, task_batch).time_ms for v in variants]
        assert times[0] > times[-1]
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier * 1.9

    def test_sliced_diagonal_reduces_runahead(self, task_batch):
        chunked = simulate(AgathaKernel(sliced_diagonal=False, subwarp_rejoining=False, uneven_bucketing=False), task_batch)
        sliced = simulate(AgathaKernel(subwarp_rejoining=False, uneven_bucketing=False), task_batch)
        assert sliced.total_runahead_cells < chunked.total_runahead_cells

    def test_rolling_window_reduces_global_traffic(self, task_batch):
        bare = simulate(AgathaKernel(rolling_window=False, sliced_diagonal=False, subwarp_rejoining=False, uneven_bucketing=False), task_batch)
        rw = simulate(AgathaKernel(sliced_diagonal=False, subwarp_rejoining=False, uneven_bucketing=False), task_batch)
        assert rw.total_traffic.global_words < bare.total_traffic.global_words

    def test_subwarp_rejoining_reports_events(self, task_batch):
        stats = simulate(AgathaKernel(uneven_bucketing=False), task_batch)
        assert stats.total_rejoin_events > 0

    def test_uneven_bucketing_reduces_warp_imbalance(self, rng, small_scheme):
        from tests.conftest import make_task_batch

        # A skewed batch: a few much longer tasks in front-loaded order.
        tasks = make_task_batch(rng, small_scheme, count=32, min_len=60, max_len=120)
        tasks += make_task_batch(rng, small_scheme, count=4, min_len=700, max_len=900, task_id_base=32)
        without = simulate(AgathaKernel(subwarp_rejoining=True, uneven_bucketing=False, scheduling="original"), tasks)
        with_ub = simulate(AgathaKernel(), tasks)
        assert with_ub.time_ms <= without.time_ms

    def test_gasal2_mm2_slowest_exact_kernel(self, task_batch):
        gasal = simulate(Gasal2Kernel(target="mm2"), task_batch)
        agatha = simulate(AgathaKernel(), task_batch)
        saloba = simulate(SALoBaKernel(target="mm2"), task_batch)
        assert gasal.time_ms > agatha.time_ms
        assert gasal.time_ms >= saloba.time_ms * 0.9

    def test_cells_at_least_ideal(self, task_batch):
        for factory in (BaselineExactKernel, AgathaKernel):
            stats = simulate(factory(), task_batch)
            for wl in stats.per_task_workloads():
                assert wl.cells >= wl.ideal_cells * 0.99


class TestDeviceSensitivity:
    def test_2080ti_slower_than_a6000(self, task_batch):
        kernel = AgathaKernel()
        a6000 = kernel.simulate(task_batch, RTX_A6000.scale(1 / 84))
        turing = kernel.simulate(task_batch, RTX_2080TI.scale(1 / 68))
        assert turing.time_ms > a6000.time_ms

    def test_dpx_helps(self, task_batch):
        """DPX instructions halve the per-cell compute cost; isolate the
        effect on one device so clock/SM differences do not interfere."""
        kernel = AgathaKernel()
        base_device = RTX_A6000.scale(1 / 84)
        dpx_device = base_device.replace(dpx_factor=2.0)
        base = kernel.simulate(task_batch, base_device)
        dpx = kernel.simulate(task_batch, dpx_device)
        assert dpx.time_ms < base.time_ms

    def test_subwarp_size_is_configurable(self, task_batch):
        for size in (8, 16, 32):
            stats = simulate(AgathaKernel(config=KernelConfig(subwarp_size=size)), task_batch)
            assert stats.time_ms > 0

    def test_slice_width_sweep_runs(self, task_batch):
        times = []
        for width in (1, 3, 8, 32):
            stats = simulate(
                AgathaKernel(config=KernelConfig(slice_width=width)), task_batch
            )
            times.append(stats.time_ms)
        assert all(t > 0 for t in times)

    def test_custom_cost_model(self, task_batch):
        cheap = CostModel().replace(global_access_cycles=1.0)
        expensive = CostModel().replace(global_access_cycles=200.0)
        kernel = BaselineExactKernel()
        fast = kernel.simulate(task_batch, DEVICE, cheap)
        slow = kernel.simulate(task_batch, DEVICE, expensive)
        assert fast.time_ms < slow.time_ms
