"""Tests for workload analysis and report formatting."""

import pytest

from repro.analysis.report import format_speedup_table, format_table
from repro.analysis.workload import (
    long_task_fraction,
    per_subwarp_block_distribution,
    task_workload_antidiagonals,
    workload_histogram,
)
from repro.kernels import AgathaKernel
from repro.gpusim.device import RTX_A6000


class TestWorkloadAnalysis:
    def test_task_workload_antidiagonals(self, task_batch):
        w = task_workload_antidiagonals(task_batch)
        assert w.size == len(task_batch)
        assert (w > 0).all()

    def test_histogram_conservation(self):
        workloads = [10, 20, 20, 500, 1000]
        hist = workload_histogram(workloads, num_bins=5)
        assert hist["task_count"].sum() == 5
        assert hist["total_workload"].sum() == pytest.approx(sum(workloads))

    def test_histogram_bin_width(self):
        hist = workload_histogram([5, 15, 25], bin_width=10.0)
        assert hist["task_count"].sum() == 3
        with pytest.raises(ValueError):
            workload_histogram([1.0], bin_width=0)

    def test_histogram_empty(self):
        hist = workload_histogram([])
        assert hist["task_count"].size == 0

    def test_long_task_fraction(self):
        workloads = [1] * 90 + [100] * 10
        frac = long_task_fraction(workloads, threshold_quantile=0.9)
        assert frac > 0.9
        assert long_task_fraction([], 0.9) == 0.0
        with pytest.raises(ValueError):
            long_task_fraction([1.0], threshold_quantile=1.5)

    def test_per_subwarp_block_distribution(self, task_batch):
        stats = AgathaKernel().simulate(task_batch, RTX_A6000.scale(1 / 84))
        blocks = per_subwarp_block_distribution(stats)
        assert blocks.size > 0
        assert blocks.sum() == pytest.approx(stats.total_cells / 64.0)


class TestReport:
    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.234], ["bee", 5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.23" in text and "bee" in text

    def test_format_speedup_table(self):
        table = {
            "AGAThA": {"HiFi-HG005": 18.0, "GeoMean": 18.0},
            "SALoBa": {"HiFi-HG005": 2.0, "GeoMean": 2.0},
        }
        text = format_speedup_table(table)
        assert "AGAThA" in text and "GeoMean" in text

    def test_format_speedup_table_empty(self):
        assert format_speedup_table({}) == "(empty)"
