"""Tests for the subwarp rejoining simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subwarp_rejoin import (
    SliceCost,
    SubwarpRejoinSimulator,
    TaskSliceCosts,
)


def uniform_task(task_id, slices, work=800.0, fixed=2.0):
    return TaskSliceCosts(task_id, [SliceCost(work, fixed) for _ in range(slices)])


class TestWithoutRejoin:
    def test_warp_latency_is_max_of_subwarps(self):
        sim = SubwarpRejoinSimulator(subwarp_size=8, num_subwarps=4)
        queues = [[uniform_task(0, 10)], [uniform_task(1, 2)], [uniform_task(2, 2)], [uniform_task(3, 2)]]
        result = sim.simulate_without_rejoin(queues)
        assert result.warp_cycles == pytest.approx(uniform_task(0, 10).latency(8))
        assert result.rejoin_events == 0
        assert result.idle_thread_cycles > 0

    def test_queue_count_validation(self):
        sim = SubwarpRejoinSimulator(8, 4)
        with pytest.raises(ValueError):
            sim.simulate_without_rejoin([[]])


class TestWithRejoin:
    def test_rejoining_reduces_warp_latency(self):
        sim = SubwarpRejoinSimulator(8, 4, rejoin_overhead_cycles=4)
        queues = [[uniform_task(0, 12)], [uniform_task(1, 1)], [uniform_task(2, 1)], [uniform_task(3, 1)]]
        base = sim.simulate_without_rejoin(queues)
        rejoined = sim.simulate_with_rejoin(queues)
        assert rejoined.warp_cycles < base.warp_cycles
        assert rejoined.rejoin_events >= 3

    def test_balanced_work_gains_little(self):
        sim = SubwarpRejoinSimulator(8, 4, rejoin_overhead_cycles=4)
        queues = [[uniform_task(k, 6)] for k in range(4)]
        base = sim.simulate_without_rejoin(queues)
        rejoined = sim.simulate_with_rejoin(queues)
        # Perfectly balanced queues cannot be improved; overheads may even
        # make rejoining marginally slower, but never by more than the
        # accumulated rejoin overhead.
        assert rejoined.warp_cycles <= base.warp_cycles + 4 * 4

    def test_never_slower_than_half_and_never_faster_than_pool(self):
        sim = SubwarpRejoinSimulator(8, 4)
        queues = [
            [uniform_task(0, 9)],
            [uniform_task(1, 3)],
            [uniform_task(2, 1)],
            [uniform_task(3, 5)],
        ]
        base = sim.simulate_without_rejoin(queues)
        rejoined = sim.simulate_with_rejoin(queues)
        total_compute = sum(t.total_compute for q in queues for t in q)
        pooled_lower_bound = total_compute / (8 * 4)
        assert rejoined.warp_cycles >= pooled_lower_bound
        assert rejoined.warp_cycles <= base.warp_cycles

    def test_empty_queues(self):
        sim = SubwarpRejoinSimulator(8, 4)
        result = sim.simulate_with_rejoin([[], [], [], []])
        assert result.warp_cycles == 0.0
        assert result.rounds == 0

    def test_multiple_rounds(self):
        sim = SubwarpRejoinSimulator(8, 2)
        queues = [
            [uniform_task(0, 4), uniform_task(1, 1)],
            [uniform_task(2, 1), uniform_task(3, 4)],
        ]
        result = sim.simulate_with_rejoin(queues)
        assert result.rounds == 2
        assert result.warp_cycles > 0

    @given(
        lengths=st.lists(st.integers(1, 12), min_size=4, max_size=4),
        work=st.floats(10.0, 2000.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_rejoin_never_worse_with_zero_overhead(self, lengths, work):
        sim = SubwarpRejoinSimulator(8, 4, rejoin_overhead_cycles=0.0)
        queues = [[uniform_task(k, n, work=work, fixed=1.0)] for k, n in enumerate(lengths)]
        base = sim.simulate_without_rejoin(queues)
        rejoined = sim.simulate_with_rejoin(queues)
        assert rejoined.warp_cycles <= base.warp_cycles + 1e-6


class TestSliceCost:
    def test_latency_scales_with_threads(self):
        cost = SliceCost(compute_thread_cycles=800, fixed_cycles=10)
        assert cost.latency(8) == pytest.approx(110)
        assert cost.latency(16) == pytest.approx(60)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            SliceCost(10.0).latency(0)
