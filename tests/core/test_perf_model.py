"""Tests for the Table-1 analytic performance model."""

import numpy as np
import pytest

from repro.core.perf_model import (
    DESIGN_LADDER,
    DesignPoint,
    PerformanceModel,
    WorkloadSummary,
)


def make_workload(seed=0, tasks=64, band=100):
    rng = np.random.default_rng(seed)
    antidiags = rng.lognormal(mean=5.5, sigma=0.8, size=tasks)
    return WorkloadSummary(antidiagonals=antidiags, band_width=band)


class TestDesignPoint:
    def test_labels(self):
        assert DesignPoint().label == "Baseline"
        assert DESIGN_LADDER[-1].label == "+RW+SD+SR+UB"

    def test_ladder_order(self):
        labels = [d.label for d in DESIGN_LADDER]
        assert labels == ["Baseline", "+RW", "+RW+SD", "+RW+SD+SR", "+RW+SD+SR+UB"]

    def test_validation_of_dependencies(self):
        with pytest.raises(ValueError):
            DesignPoint(sliced_diagonal=True).validate()
        with pytest.raises(ValueError):
            DesignPoint(rolling_window=True, sliced_diagonal=True, uneven_bucketing=True).validate()


class TestModel:
    def test_ladder_monotonically_improves(self):
        model = PerformanceModel()
        values = [v for _, v in model.ladder(make_workload())]
        assert all(values[i] >= values[i + 1] for i in range(len(values) - 1))

    def test_rolling_window_reduces_anti_ratio(self):
        model = PerformanceModel()
        wl = make_workload()
        base = model.access_ratios(DesignPoint(), wl)
        rw = model.access_ratios(DesignPoint(rolling_window=True), wl)
        assert rw["anti"] < base["anti"]

    def test_sliced_diagonal_trades_inter_for_term(self):
        model = PerformanceModel()
        wl = make_workload()
        rw = model.access_ratios(DesignPoint(rolling_window=True), wl)
        sd = model.access_ratios(
            DesignPoint(rolling_window=True, sliced_diagonal=True), wl
        )
        assert sd["term"] < rw["term"]
        assert sd["inter"] > rw["inter"]

    def test_sliced_diagonal_reduces_cells(self):
        model = PerformanceModel()
        wl = make_workload()
        base_cells = model.cells_per_task(DesignPoint(rolling_window=True), wl)
        sd_cells = model.cells_per_task(
            DesignPoint(rolling_window=True, sliced_diagonal=True), wl
        )
        assert np.all(sd_cells <= base_cells)

    def test_skewed_workload_benefits_more_from_balancing(self):
        model = PerformanceModel()
        rng = np.random.default_rng(3)
        balanced = WorkloadSummary(antidiagonals=np.full(64, 200.0), band_width=100)
        skewed_values = np.full(64, 200.0)
        skewed_values[::16] = 5000.0
        skewed = WorkloadSummary(antidiagonals=skewed_values, band_width=100)
        del rng

        def ub_gain(workload):
            sr = model.predict(
                DesignPoint(rolling_window=True, sliced_diagonal=True, subwarp_rejoining=True),
                workload,
            )
            ub = model.predict(DESIGN_LADDER[-1], workload)
            return sr / ub

        assert ub_gain(skewed) > ub_gain(balanced)

    def test_empty_workload(self):
        model = PerformanceModel()
        wl = WorkloadSummary(antidiagonals=np.empty(0), band_width=50)
        assert model.predict(DESIGN_LADDER[-1], wl) == 0.0

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            WorkloadSummary(antidiagonals=np.array([1.0]), band_width=0)
