"""Tests for the rolling-window anti-diagonal maximum tracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.antidiagonal import antidiagonal_align
from repro.align.scoring import preset
from repro.align.sequence import mutate, random_sequence
from repro.align.termination import NEG_INF
from repro.core.rolling_window import RollingWindowTracker


class TestBasics:
    def test_record_and_spill(self):
        rw = RollingWindowTracker(num_threads=4, window_rows=8, num_antidiagonals=20)
        rw.record(0, 0, 5)
        rw.record(1, 0, 9)
        rw.record(3, 2, -3)
        reduced = rw.spill(3)
        assert reduced[0] == 9 and reduced[2] == -3
        assert rw.gmb[0] == 9 and rw.gmb[1] == NEG_INF and rw.gmb[2] == -3
        assert rw.window_base == 3

    def test_window_violation_raises(self):
        rw = RollingWindowTracker(4, 4, 20)
        with pytest.raises(ValueError):
            rw.record(0, 10, 1)
        rw.spill(4)
        rw.record(0, 5, 1)  # now inside the rolled window
        with pytest.raises(ValueError):
            rw.record(0, 2, 1)  # behind the window

    def test_out_of_range_thread_or_antidiag(self):
        rw = RollingWindowTracker(4, 4, 10)
        with pytest.raises(IndexError):
            rw.record(4, 0, 1)
        with pytest.raises(IndexError):
            rw.record(0, 10, 1)

    def test_spill_validation(self):
        rw = RollingWindowTracker(4, 4, 10)
        with pytest.raises(ValueError):
            rw.spill(5)
        assert rw.spill(0).size == 0

    def test_stats_accumulate(self):
        rw = RollingWindowTracker(2, 4, 8)
        rw.record(0, 0, 1)
        rw.record(1, 1, 2)
        rw.spill(2)
        assert rw.stats.shared_accesses == 2
        assert rw.stats.reductions == 2
        assert rw.stats.global_writes == 2
        assert rw.stats.rolls == 1

    def test_shared_memory_footprint(self):
        rw = RollingWindowTracker(num_threads=8, window_rows=24, num_antidiagonals=100)
        assert rw.shared_memory_bytes == 24 * 8 * 4


class TestEquivalenceWithDirectMaxima:
    @given(seed=st.integers(0, 10_000), threads=st.sampled_from([2, 4, 8]))
    @settings(max_examples=25, deadline=None)
    def test_gmb_equals_direct_maxima(self, seed, threads):
        """Feeding cell values in an arbitrary interleaved order and spilling
        periodically must reproduce the per-anti-diagonal maxima exactly."""
        rng = np.random.default_rng(seed)
        num_antidiags = int(rng.integers(5, 60))
        window_rows = int(rng.integers(4, 16))
        cells_per_antidiag = rng.integers(1, 6, size=num_antidiags)
        values = [
            rng.integers(-100, 100, size=c).astype(np.int64)
            for c in cells_per_antidiag
        ]
        expected = np.array([v.max() for v in values])

        rw = RollingWindowTracker(threads, window_rows, num_antidiags)
        base = 0
        for c in range(num_antidiags):
            # Roll the window forward whenever the next anti-diagonal falls
            # outside it (the kernel spills completed rows before moving on).
            while c >= base + window_rows:
                spill = min(window_rows, c - base - window_rows + 1 + window_rows // 2)
                rw.spill(spill)
                base += spill
            for k, value in enumerate(values[c]):
                rw.record(int(k % threads), c, int(value))
        rw.flush()
        assert np.array_equal(rw.antidiagonal_maxima(), expected)

    def test_matches_wavefront_profile(self):
        """Driving the tracker from the wavefront engine reproduces the
        profile's anti-diagonal maxima (the Section 4.1 correctness claim)."""
        rng = np.random.default_rng(11)
        scheme = preset("map-ont", band_width=17, zdrop=0)
        ref = random_sequence(70, rng)
        query = mutate(ref, rng, substitution_rate=0.07)
        profile = antidiagonal_align(ref, query, scheme, return_profile=True)

        num = profile.antidiagonals_processed
        threads = 4
        rw = RollingWindowTracker(threads, window_rows=12, num_antidiagonals=num)
        from repro.align.antidiagonal import WavefrontState

        state = WavefrontState(ref, query, scheme)
        c = 0
        while not state.exhausted:
            antidiag, rows, values = state.step()
            while antidiag >= rw.window_base + rw.window_rows:
                rw.spill(min(rw.window_rows, 4))
            for k, value in enumerate(values):
                rw.record(k % threads, antidiag, int(value))
            c += 1
        rw.flush()
        got = rw.antidiagonal_maxima()
        assert np.array_equal(got, profile.antidiag_maxima)
