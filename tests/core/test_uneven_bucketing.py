"""Tests for the task-ordering / bucketing schedulers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.uneven_bucketing import (
    assign_tasks_to_warps,
    original_order,
    sorted_order,
    uneven_bucketing_order,
)


class TestOrders:
    def test_original_order(self):
        assert original_order([5.0, 1.0, 3.0]) == [0, 1, 2]

    def test_sorted_order_descending(self):
        assert sorted_order([5.0, 1.0, 3.0]) == [0, 2, 1]

    def test_sorted_order_ascending(self):
        assert sorted_order([5.0, 1.0, 3.0], descending=False) == [1, 2, 0]


class TestUnevenBucketing:
    @given(
        workloads=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=80),
        n=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_is_a_partition(self, workloads, n):
        buckets = uneven_bucketing_order(workloads, n)
        flat = sorted(i for b in buckets for i in b)
        assert flat == list(range(len(workloads)))
        assert all(len(b) <= n for b in buckets)

    def test_one_long_task_per_warp(self):
        workloads = [1, 1, 1, 50, 1, 1, 1, 40, 1, 1, 30, 1]
        buckets = uneven_bucketing_order(workloads, 4)
        # The three largest tasks (indices 3, 7, 10) must lead distinct warps.
        leaders = {b[0] for b in buckets}
        assert {3, 7, 10} <= leaders

    def test_largest_leads_first_warp(self):
        workloads = [5, 100, 2, 3, 1, 1, 1, 1]
        buckets = uneven_bucketing_order(workloads, 4)
        assert buckets[0][0] == 1

    def test_empty(self):
        assert uneven_bucketing_order([], 4) == []

    def test_invalid_subwarps(self):
        with pytest.raises(ValueError):
            uneven_bucketing_order([1.0], 0)


class TestAssignTasksToWarps:
    def test_flat_order_fills_subwarps(self):
        warps = assign_tasks_to_warps(list(range(10)), subwarp_size=8)
        assert len(warps) == 3
        assert warps[0].subwarps[0].task_indices == [0]
        assert warps[2].subwarps[1].task_indices == [9]
        all_tasks = [i for w in warps for i in w.task_indices]
        assert sorted(all_tasks) == list(range(10))

    def test_bucket_assignment(self):
        buckets = [[3, 0, 1], [2, 4]]
        warps = assign_tasks_to_warps(buckets, subwarp_size=8)
        assert len(warps) == 2
        assert warps[0].subwarps[0].task_indices == [3]
        assert warps[1].subwarps[0].task_indices == [2]

    def test_bucket_overflow_wraps_within_warp(self):
        buckets = [[0, 1, 2, 3, 4, 5]]
        warps = assign_tasks_to_warps(buckets, subwarp_size=8)
        assert warps[0].subwarps[0].task_indices == [0, 4]
        assert warps[0].num_tasks == 6

    def test_empty(self):
        assert assign_tasks_to_warps([], 8) == []
