"""Tests for the task-ordering / bucketing schedulers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.uneven_bucketing import (
    assign_tasks_to_warps,
    length_bucket_order,
    original_order,
    sorted_order,
    uneven_bucketing_order,
)


class TestOrders:
    def test_original_order(self):
        assert original_order([5.0, 1.0, 3.0]) == [0, 1, 2]

    def test_sorted_order_descending(self):
        assert sorted_order([5.0, 1.0, 3.0]) == [0, 2, 1]

    def test_sorted_order_ascending(self):
        assert sorted_order([5.0, 1.0, 3.0], descending=False) == [1, 2, 0]


class TestUnevenBucketing:
    @given(
        workloads=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=80),
        n=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_is_a_partition(self, workloads, n):
        buckets = uneven_bucketing_order(workloads, n)
        flat = sorted(i for b in buckets for i in b)
        assert flat == list(range(len(workloads)))
        assert all(len(b) <= n for b in buckets)

    def test_one_long_task_per_warp(self):
        workloads = [1, 1, 1, 50, 1, 1, 1, 40, 1, 1, 30, 1]
        buckets = uneven_bucketing_order(workloads, 4)
        # The three largest tasks (indices 3, 7, 10) must lead distinct warps.
        leaders = {b[0] for b in buckets}
        assert {3, 7, 10} <= leaders

    def test_largest_leads_first_warp(self):
        workloads = [5, 100, 2, 3, 1, 1, 1, 1]
        buckets = uneven_bucketing_order(workloads, 4)
        assert buckets[0][0] == 1

    def test_empty(self):
        assert uneven_bucketing_order([], 4) == []

    def test_invalid_subwarps(self):
        with pytest.raises(ValueError):
            uneven_bucketing_order([1.0], 0)


class TestLengthBucketOrder:
    @given(
        workloads=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=80),
        bucket_size=st.sampled_from([1, 3, 8, 64]),
    )
    @settings(max_examples=40, deadline=None)
    def test_is_a_permutation(self, workloads, bucket_size):
        buckets = length_bucket_order(workloads, bucket_size)
        flat = [i for b in buckets for i in b]
        assert sorted(flat) == list(range(len(workloads)))
        assert all(0 < len(b) <= bucket_size for b in buckets)

    @given(workloads=st.lists(st.floats(1.0, 100.0), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_buckets_are_descending(self, workloads):
        flat = [i for b in length_bucket_order(workloads, 4) for i in b]
        values = [workloads[i] for i in flat]
        assert values == sorted(values, reverse=True)

    def test_invalid_bucket_size(self):
        with pytest.raises(ValueError):
            length_bucket_order([1.0], 0)


class TestDeterminismUnderTies:
    """The orders are pure functions; ties break by input position
    (stable sort), so repeated calls and tied workloads cannot shuffle."""

    tied = st.lists(st.sampled_from([1.0, 2.0, 4.0]), min_size=1, max_size=60)

    @given(workloads=tied, bucket_size=st.sampled_from([1, 4, 16]))
    @settings(max_examples=40, deadline=None)
    def test_length_bucket_order_is_deterministic(self, workloads, bucket_size):
        first = length_bucket_order(workloads, bucket_size)
        assert first == length_bucket_order(list(workloads), bucket_size)

    @given(workloads=tied, n=st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_uneven_bucketing_order_is_deterministic(self, workloads, n):
        first = uneven_bucketing_order(workloads, n)
        assert first == uneven_bucketing_order(list(workloads), n)

    def test_ties_keep_input_order(self):
        # All-equal workloads: the "sort" must be the identity, so the
        # buckets are plain consecutive chunks.
        workloads = [3.0] * 10
        assert length_bucket_order(workloads, 4) == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9],
        ]
        buckets = uneven_bucketing_order(workloads, 4)
        # The "long" tasks are the first ceil(10/4) = 3 by input position.
        assert [b[0] for b in buckets] == [0, 1, 2]

    @given(workloads=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_sorted_order_is_a_permutation(self, workloads):
        assert sorted(sorted_order(workloads)) == list(range(len(workloads)))


class TestAssignTasksToWarps:
    def test_flat_order_fills_subwarps(self):
        warps = assign_tasks_to_warps(list(range(10)), subwarp_size=8)
        assert len(warps) == 3
        assert warps[0].subwarps[0].task_indices == [0]
        assert warps[2].subwarps[1].task_indices == [9]
        all_tasks = [i for w in warps for i in w.task_indices]
        assert sorted(all_tasks) == list(range(10))

    def test_bucket_assignment(self):
        buckets = [[3, 0, 1], [2, 4]]
        warps = assign_tasks_to_warps(buckets, subwarp_size=8)
        assert len(warps) == 2
        assert warps[0].subwarps[0].task_indices == [3]
        assert warps[1].subwarps[0].task_indices == [2]

    def test_bucket_overflow_wraps_within_warp(self):
        buckets = [[0, 1, 2, 3, 4, 5]]
        warps = assign_tasks_to_warps(buckets, subwarp_size=8)
        assert warps[0].subwarps[0].task_indices == [0, 4]
        assert warps[0].num_tasks == 6

    def test_empty(self):
        assert assign_tasks_to_warps([], 8) == []
