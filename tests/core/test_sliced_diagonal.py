"""Tests for the sliced-diagonal and horizontal-chunk traversals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.banding import BandGeometry
from repro.align.blocks import BlockGrid
from repro.core.sliced_diagonal import HorizontalChunkSchedule, SlicedDiagonalSchedule


def in_band_blocks(grid):
    out = set()
    for bj in range(grid.num_block_rows):
        lo, hi = grid.in_band_block_cols(bj)
        for bi in range(lo, hi + 1):
            out.add((bi, bj))
    return out


class TestSlicedDiagonalCoverage:
    @given(
        n=st.integers(10, 150),
        m=st.integers(10, 150),
        w=st.integers(0, 33),
        s=st.integers(1, 6),
        threads=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_block_visited_exactly_once(self, n, m, w, s, threads):
        grid = BlockGrid(BandGeometry(n, m, w), 8)
        sched = SlicedDiagonalSchedule(grid, s, threads)
        visits = {}
        for (_, _, _, _, block) in sched.traversal():
            visits[block] = visits.get(block, 0) + 1
        assert set(visits) == in_band_blocks(grid)
        assert all(count == 1 for count in visits.values())

    def test_block_totals_match_grid(self):
        grid = BlockGrid(BandGeometry(160, 150, 33), 8)
        sched = SlicedDiagonalSchedule(grid, 3, 8)
        assert sum(sl.blocks for sl in sched.all_slices()) == grid.total_in_band_blocks

    def test_slice_width_validation(self):
        grid = BlockGrid(BandGeometry(16, 16, 5), 8)
        with pytest.raises(ValueError):
            SlicedDiagonalSchedule(grid, 0, 4)
        with pytest.raises(ValueError):
            SlicedDiagonalSchedule(grid, 3, 0)


class TestSlicedDiagonalTermination:
    def test_runahead_bounded_by_slice(self):
        grid = BlockGrid(BandGeometry(400, 390, 49), 8)
        sched = SlicedDiagonalSchedule(grid, 3, 8)
        target = 200
        slices = sched.work_until_termination(target)
        completed = slices[-1].completed_cell_antidiagonals
        assert completed >= target
        # Run-ahead never exceeds one slice worth of anti-diagonals.
        assert completed - target < sched.slice_width * grid.block_size + grid.block_size

    def test_more_antidiagonals_need_more_slices(self):
        grid = BlockGrid(BandGeometry(400, 390, 49), 8)
        sched = SlicedDiagonalSchedule(grid, 3, 8)
        needed = [sched.slices_needed_for_antidiagonals(a) for a in (1, 100, 400, 700)]
        assert needed == sorted(needed)

    def test_zero_target_means_full_table(self):
        grid = BlockGrid(BandGeometry(100, 100, 17), 8)
        sched = SlicedDiagonalSchedule(grid, 3, 4)
        assert len(sched.work_until_termination(0)) == sched.num_slices


class TestHorizontalChunkSchedule:
    def test_block_totals_match_grid(self):
        grid = BlockGrid(BandGeometry(160, 150, 33), 8)
        sched = HorizontalChunkSchedule(grid, 8)
        assert sum(sl.blocks for sl in sched.all_slices()) == grid.total_in_band_blocks

    def test_runahead_larger_than_sliced_diagonal(self):
        """The baseline traversal computes strictly more cells before the
        termination point becomes checkable (the Section 4.2 claim)."""
        grid = BlockGrid(BandGeometry(500, 480, 65), 8)
        chunked = HorizontalChunkSchedule(grid, 8)
        sliced = SlicedDiagonalSchedule(grid, 3, 8)
        target = 300
        chunk_blocks = sum(s.blocks for s in chunked.work_until_termination(target))
        slice_blocks = sum(s.blocks for s in sliced.work_until_termination(target))
        assert chunk_blocks > slice_blocks

    def test_completion_semantics(self):
        grid = BlockGrid(BandGeometry(200, 180, 33), 8)
        sched = HorizontalChunkSchedule(grid, 4)
        target = 150
        passes = sched.passes_needed_for_antidiagonals(target)
        work = sched.work_until_termination(target)
        assert len(work) == passes
        assert work[-1].completed_cell_antidiagonals >= target

    def test_sliced_with_huge_slice_equals_baseline_cells(self):
        """With a slice wider than the whole band the sliced-diagonal kernel
        degenerates to the baseline (the generalisation the paper notes)."""
        grid = BlockGrid(BandGeometry(300, 280, 33), 8)
        huge = SlicedDiagonalSchedule(grid, grid.num_block_antidiagonals, 8)
        assert huge.num_slices == 1
        blocks = sum(s.blocks for s in huge.work_until_termination(100))
        assert blocks == grid.total_in_band_blocks
