"""Tests for the CPU baseline models."""

import pytest

from repro.baselines.aligner import BwaMemCpuAligner, CpuAligner, Minimap2CpuAligner
from repro.baselines.cpu_model import CPU_PRESETS, CpuSpec, get_cpu


class TestCpuSpec:
    def test_throughput_positive(self):
        for spec in CPU_PRESETS.values():
            assert spec.cells_per_second > 0

    def test_avx512_machine_faster(self):
        sse = get_cpu("sse4-16c")
        avx = get_cpu("avx512-48c")
        ratio = avx.cells_per_second / sse.cells_per_second
        # The paper reports the AVX-512 machine ~2.3x faster in geomean.
        assert 1.8 < ratio < 2.8

    def test_time_model(self):
        spec = CpuSpec(name="x", cores=1, threads=1, simd_lanes=1, clock_ghz=1.0, efficiency=1.0, cycles_per_cell=1.0)
        assert spec.time_ms(1e9) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            spec.time_ms(-1)

    def test_scale_preserves_ratio_exactly(self):
        spec = get_cpu("sse4-16c")
        scaled = spec.scale(0.25)
        assert scaled.cells_per_second == pytest.approx(spec.cells_per_second * 0.25)
        with pytest.raises(ValueError):
            spec.scale(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuSpec(name="bad", cores=0, threads=1, simd_lanes=1, clock_ghz=1.0)
        with pytest.raises(ValueError):
            CpuSpec(name="bad", cores=1, threads=1, simd_lanes=1, clock_ghz=1.0, efficiency=0.0)

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_cpu("m1")


class TestCpuAligner:
    def test_scores_match_oracle(self, task_batch):
        from repro.align.reference import reference_align

        aligner = Minimap2CpuAligner()
        for task, result in zip(task_batch, aligner.run(task_batch)):
            assert result.same_score(reference_align(task.ref, task.query, task.scoring))

    def test_time_proportional_to_cells(self, task_batch):
        aligner = Minimap2CpuAligner()
        half = aligner.time_ms(task_batch[: len(task_batch) // 2])
        full = aligner.time_ms(task_batch)
        assert full > half > 0

    def test_stronger_cpu_is_faster(self, task_batch):
        sse = Minimap2CpuAligner(get_cpu("sse4-16c"))
        avx = Minimap2CpuAligner(get_cpu("avx512-48c"))
        assert avx.time_ms(task_batch) < sse.time_ms(task_batch)

    def test_display_names(self):
        assert "Minimap2" in Minimap2CpuAligner().display_name
        assert "BWA-MEM" in BwaMemCpuAligner().display_name
        assert "CPU" in CpuAligner().display_name
