"""Telemetry schema, percentile arithmetic and the gateable record."""

import pytest

from repro.bench.compare import compare_records
from repro.bench.records import BenchRecord
from repro.serve import (
    SERVE_SCHEMA_VERSION,
    LatencySummary,
    ServeConfig,
    TelemetrySink,
    replay,
    serve_bench_record,
)
from repro.serve.telemetry import percentile


class TestPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 50.0) == 30.0
        assert percentile(values, 95.0) == 50.0
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 100.0) == 50.0

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 50.0) == 3.0

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestLatencySummary:
    def test_from_values(self):
        summary = LatencySummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean_ms == 2.5
        assert summary.p50_ms == 2.0
        assert summary.max_ms == 4.0

    def test_empty(self):
        summary = LatencySummary.from_values([])
        assert summary.count == 0
        assert summary.max_ms == 0.0


class TestTelemetrySink:
    def test_schema_keys(self):
        sink = TelemetrySink()
        sink.record_queue_depth(1)
        sink.record_queue_depth(3)
        sink.record_batch(2)
        sink.record_request(0.5, 2.5)
        sink.record_request(1.0, 3.0)
        summary = sink.summary()
        assert summary["schema_version"] == SERVE_SCHEMA_VERSION
        assert set(summary) == {
            "schema_version",
            "requests",
            "batches",
            "mean_batch_occupancy",
            "batch_occupancy",
            "lane_occupancy",
            "refill",
            "admission",
            "faults",
            "resize",
            "queue_depth",
            "wait_ms",
            "latency_ms",
        }
        assert summary["requests"] == 2
        assert summary["batches"] == 1
        assert summary["batch_occupancy"] == {"2": 1}
        assert summary["queue_depth"] == {"mean": 2.0, "max": 3}
        assert summary["wait_ms"]["max_ms"] == 1.0
        # v4 additions default to zeroed counters.
        assert summary["faults"] == {
            "crashes": 0,
            "delays": 0,
            "dropped": 0,
            "duplicated": 0,
        }
        assert summary["resize"] == {"events": 0, "relocated": 0}

    def test_fault_and_resize_counters(self):
        sink = TelemetrySink()
        sink.record_fault("crashes")
        sink.record_fault("delays", 2)
        sink.record_resize(relocated=5)
        sink.record_resize()
        with pytest.raises(ValueError, match="fault kind"):
            sink.record_fault("explosions")
        summary = sink.summary()
        assert summary["faults"]["crashes"] == 1
        assert summary["faults"]["delays"] == 2
        assert summary["resize"] == {"events": 2, "relocated": 5}
        # Counters survive the state round trip and merge additively.
        clone = TelemetrySink.from_state(sink.state())
        clone.merge(sink)
        assert clone.faults["delays"] == 4
        assert clone.resize_events == 4
        assert clone.resize_relocated == 10

    def test_empty_sink(self):
        summary = TelemetrySink().summary()
        assert summary["requests"] == 0
        assert summary["mean_batch_occupancy"] == 0.0
        assert summary["queue_depth"] == {"mean": 0.0, "max": 0}


class TestServeBenchRecord:
    @pytest.fixture
    def reports(self, generator):
        trace = generator.poisson(2000.0, 40)
        config = ServeConfig(timing="modeled", max_batch_size=8, max_wait_ms=2.0)
        micro = replay(trace, config, policy="microbatch")
        anchor = replay(trace, config.replace(max_batch_size=1), policy="batch1")
        return micro, anchor

    def test_record_shape(self, reports):
        micro, anchor = reports
        record = serve_bench_record([micro, anchor])
        assert record.figure == "serve"
        assert record.default_filename == "BENCH_serve.json"
        assert record.datasets == ["tiny-serve"]
        suite = record.suites["serve"]
        assert suite.cpu_time_ms == {"tiny-serve": anchor.makespan_ms}
        speedups = suite.speedups
        assert speedups["batch1"]["tiny-serve"] == 1.0
        expected = anchor.makespan_ms / micro.makespan_ms
        assert speedups["microbatch"]["tiny-serve"] == pytest.approx(expected)
        assert speedups["microbatch"]["GeoMean"] == pytest.approx(expected)
        env = record.environment
        assert env["serve_schema_version"] == SERVE_SCHEMA_VERSION
        assert env["serve"]["microbatch"]["tiny-serve"]["requests"] == 40

    def test_record_round_trips_and_gates(self, reports, tmp_path):
        record = serve_bench_record(list(reports))
        path = record.save(tmp_path / "BENCH_serve.json")
        loaded = BenchRecord.load(path)
        assert loaded.suites["serve"].speedups == record.suites["serve"].speedups
        # The figure-regression gate accepts serve records unchanged.
        report = compare_records(record, loaded, tolerance=0.2)
        assert report.ok

    def test_regression_detected_by_gate(self, reports):
        record = serve_bench_record(list(reports))
        slower = serve_bench_record(list(reports))
        row = slower.suites["serve"].speedups["microbatch"]
        row["tiny-serve"] *= 0.5
        row["GeoMean"] *= 0.5
        report = compare_records(record, slower, tolerance=0.2)
        assert not report.ok
        assert any(f.kernel == "microbatch" for f in report.regressions)

    def test_missing_baseline_raises(self, reports):
        micro, _ = reports
        with pytest.raises(ValueError, match="baseline"):
            serve_bench_record([micro], baseline="batch1")

    def test_duplicate_report_raises(self, reports):
        micro, _ = reports
        with pytest.raises(ValueError, match="duplicate"):
            serve_bench_record([micro, micro], baseline="microbatch")

    def test_empty_reports_raise(self):
        with pytest.raises(ValueError):
            serve_bench_record([])
