"""The ``python -m repro.serve`` command line."""

import json

from repro.bench.cli import main as bench_main
from repro.bench.records import BenchRecord
from repro.serve import SERVE_SCHEMA_VERSION
from repro.serve.cli import main


class TestServeCli:
    def test_end_to_end_record(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "--dataset", "ONT-HG002",
                "--requests", "24",
                "--arrival", "poisson",
                "--rate", "800",
                "--timing", "modeled",
                "--max-batch", "8",
                "--max-wait-ms", "2.0",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert f"wrote {out}" in captured.out
        assert "[microbatch]" in captured.out and "[batch1]" in captured.out
        assert "latency p50/p95/p99" in captured.out
        record = BenchRecord.from_dict(json.loads(out.read_text()))
        assert record.figure == "serve"
        assert set(record.suites["serve"].speedups) == {"microbatch", "batch1"}
        assert record.suites["serve"].speedups["batch1"]["ONT-HG002"] == 1.0
        assert record.environment["serve_schema_version"] == SERVE_SCHEMA_VERSION

    def test_record_gates_through_bench_compare(self, tmp_path, capsys):
        """The acceptance wiring: python -m repro.bench compare accepts
        BENCH_serve.json records."""
        out = tmp_path / "BENCH_serve.json"
        args = [
            "--requests", "16", "--timing", "modeled", "--quiet",
            "--output", str(out),
        ]
        assert main(args) == 0
        baseline = tmp_path / "serve_baseline.json"
        baseline.write_text(out.read_text())
        assert bench_main(["compare", str(baseline), str(out)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_no_baseline_skips_anchor(self, tmp_path, capsys):
        out = tmp_path / "rec.json"
        code = main(
            [
                "--requests", "8", "--timing", "modeled", "--no-baseline",
                "--output", str(out), "--quiet",
            ]
        )
        assert code == 0
        record = BenchRecord.load(out)
        assert set(record.suites["serve"].speedups) == {"microbatch"}
        assert record.suites["serve"].speedups["microbatch"]["ONT-HG002"] == 1.0

    def test_max_batch_one_is_its_own_anchor(self, tmp_path):
        """--max-batch 1 must not mislabel a batch1 drain as microbatch
        (nor pointlessly drain the identical anchor a second time)."""
        out = tmp_path / "rec.json"
        code = main(
            [
                "--requests", "8", "--timing", "modeled", "--max-batch", "1",
                "--output", str(out), "--quiet",
            ]
        )
        assert code == 0
        record = BenchRecord.load(out)
        assert set(record.suites["serve"].speedups) == {"batch1"}
        assert record.suites["serve"].speedups["batch1"]["ONT-HG002"] == 1.0

    def test_replay_and_bursty_arrivals(self, tmp_path):
        for arrival in ("replay", "bursty"):
            out = tmp_path / f"{arrival}.json"
            code = main(
                [
                    "--requests", "8", "--timing", "modeled",
                    "--arrival", arrival, "--no-baseline",
                    "--output", str(out), "--quiet",
                ]
            )
            assert code == 0 and out.exists()

    def test_bad_rate_is_a_clean_error(self, capsys):
        assert main(["--rate", "0", "--requests", "4"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_requests_is_a_clean_error(self, capsys):
        assert main(["--requests", "-3"]) == 2
        assert "error:" in capsys.readouterr().err
