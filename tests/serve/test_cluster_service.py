"""The live multi-process cluster: correctness, crashes, admission.

These tests drive real worker processes, so each keeps its workload
small; the wide correctness sweeps live in ``test_cluster.py`` where the
virtual clock makes them free.
"""

import time

import pytest

from repro.api import Session
from repro.serve import (
    ClusterConfig,
    ClusterService,
    RequestRejected,
    ServeConfig,
    ShardFailedError,
    ShardRouter,
)

from serve_workloads import make_serve_tasks

#: A worker that never dispatches on its own: requests sent to it stay
#: in flight until shutdown drains them (or a crash strands them), which
#: makes the crash/admission tests deterministic.
STALLED = ServeConfig(engine="batch", max_batch_size=64, max_wait_ms=10_000.0)


@pytest.fixture(scope="module")
def tasks():
    return make_serve_tasks(seed=5, count=16)


@pytest.fixture(scope="module")
def direct(tasks):
    return list(Session(tasks=tasks, engine="batch").align())


def _shard_of(router, tasks):
    return [router.route(task, index) for index, task in enumerate(tasks)]


class TestClusterService:
    def test_map_matches_align(self, tasks, direct):
        config = ClusterConfig(
            serve=ServeConfig(engine="batch", max_batch_size=8, max_wait_ms=1.0),
            shards=2,
        )
        with ClusterService(config) as cluster:
            assert cluster.map(tasks) == direct
            assert cluster.alive_shards() == [0, 1]

    def test_session_serve_shards(self, tasks, direct):
        service = Session(tasks=tasks, engine="batch").serve(shards=2)
        assert isinstance(service, ClusterService)
        with service:
            assert service.map(tasks) == direct

    def test_telemetry_summary_v3(self, tasks):
        from repro.serve import SERVE_SCHEMA_VERSION

        config = ClusterConfig(
            serve=ServeConfig(engine="batch", max_batch_size=8, max_wait_ms=1.0),
            shards=2,
        )
        with ClusterService(config) as cluster:
            cluster.map(tasks)
        summary = cluster.telemetry_summary()
        assert summary["schema_version"] == SERVE_SCHEMA_VERSION
        assert summary["requests"] == len(tasks)
        assert summary["admission"]["admitted"] == len(tasks)
        shards = summary["shards"]
        assert sorted(shards) == ["0", "1"]
        assert sum(s["requests"] for s in shards.values()) == len(tasks)

    def test_shutdown_drains_everything(self, tasks, direct):
        config = ClusterConfig(serve=STALLED, shards=2)
        cluster = ClusterService(config).start()
        futures = [cluster.submit(task) for task in tasks]
        cluster.shutdown()
        assert [future.result(timeout=5) for future in futures] == direct

    def test_submit_after_shutdown_raises(self, tasks):
        cluster = ClusterService(ClusterConfig(serve=STALLED, shards=1))
        cluster.start()
        cluster.shutdown()
        with pytest.raises(RuntimeError):
            cluster.submit(tasks[0])


class TestCrashHandling:
    def test_crash_fails_stranded_requests_fast(self, tasks, direct):
        """Kill one shard mid-trace: its requests fail with
        ShardFailedError, the survivor's requests complete untouched."""
        config = ClusterConfig(serve=STALLED, shards=2, max_restarts=0)
        routes = _shard_of(config.router_for(), tasks)
        cluster = ClusterService(config).start()
        futures = [cluster.submit(task) for task in tasks]
        time.sleep(0.3)  # let dispatchers forward to the doomed worker
        cluster.fail_shard(0)
        for index, future in enumerate(futures):
            if routes[index] == 0:
                with pytest.raises(ShardFailedError) as info:
                    future.result(timeout=30)
                assert info.value.shard == 0
        cluster.shutdown()
        for index, future in enumerate(futures):
            if routes[index] == 1:
                assert future.result(timeout=5) == direct[index]

    def test_retry_failed_reroutes_to_survivors(self, tasks, direct):
        """With retry_failed=True the stranded requests are re-queued on
        the surviving shards and still produce bit-identical results."""
        config = ClusterConfig(
            serve=STALLED, shards=2, retry_failed=True, max_restarts=0
        )
        cluster = ClusterService(config).start()
        futures = [cluster.submit(task) for task in tasks]
        time.sleep(0.3)
        cluster.fail_shard(0)
        time.sleep(0.3)
        cluster.shutdown()
        assert [future.result(timeout=5) for future in futures] == direct
        summary = cluster.telemetry_summary()
        assert summary["admission"]["retried"] > 0

    def test_restart_serves_subsequent_traffic(self, tasks, direct):
        """After a crash the shard is replaced (max_restarts) and new
        submissions to it are served normally."""
        config = ClusterConfig(
            serve=ServeConfig(engine="batch", max_batch_size=8, max_wait_ms=1.0),
            shards=2,
            retry_failed=True,
            max_restarts=1,
        )
        with ClusterService(config) as cluster:
            cluster.fail_shard(0)
            deadline = time.monotonic() + 10.0
            while cluster.alive_shards() != [0, 1]:
                assert time.monotonic() < deadline, "restart never completed"
                time.sleep(0.05)
            assert cluster.map(tasks) == direct

    def test_all_shards_down_rejects_submission(self, tasks):
        config = ClusterConfig(serve=STALLED, shards=1, max_restarts=0)
        cluster = ClusterService(config).start()
        cluster.fail_shard(0)
        deadline = time.monotonic() + 10.0
        while cluster.alive_shards():
            assert time.monotonic() < deadline, "crash never detected"
            time.sleep(0.05)
        with pytest.raises(ShardFailedError):
            cluster.submit(tasks[0])
        cluster.shutdown()


class TestLiveAdmission:
    def test_reject_policy(self, tasks):
        config = ClusterConfig(
            serve=STALLED, shards=1, admission="reject", max_pending=4
        )
        cluster = ClusterService(config).start()
        admitted, rejected = [], 0
        for task in tasks:
            try:
                admitted.append(cluster.submit(task))
            except RequestRejected:
                rejected += 1
        assert rejected == len(tasks) - 4
        assert cluster.telemetry_summary()["admission"]["rejected"] == rejected
        cluster.shutdown()
        for future in admitted:
            assert future.result(timeout=5) is not None

    def test_shed_policy_evicts_queued_low_priority(self, tasks):
        config = ClusterConfig(
            serve=STALLED,
            shards=1,
            admission="shed",
            max_pending=4,
            max_inflight=2,  # keep two requests parent-side (sheddable)
        )
        cluster = ClusterService(config).start()
        low = [cluster.submit(task, priority=0) for task in tasks[:4]]
        time.sleep(0.3)  # two dispatch and stall, two stay queued
        high = cluster.submit(tasks[4], priority=1)
        shed = [
            future
            for future in low
            if future.done() and isinstance(future.exception(), RequestRejected)
        ]
        assert len(shed) == 1
        assert cluster.telemetry_summary()["admission"]["shed"] == 1
        cluster.shutdown()
        assert high.result(timeout=5) is not None

    def test_queue_policy_backpressures_without_loss(self, tasks, direct):
        config = ClusterConfig(
            serve=ServeConfig(engine="batch", max_batch_size=1, max_wait_ms=0.5),
            shards=1,
            admission="queue",
            max_pending=2,
        )
        cluster = ClusterService(config).start()
        futures = [cluster.submit(task) for task in tasks[:8]]  # blocks, never raises
        cluster.shutdown()
        assert [future.result(timeout=5) for future in futures] == direct[:8]


class TestSpawnStartMethod:
    def test_spawn_workers_rebuild_registry(self, tasks, direct):
        """Workers started with spawn rebuild the engine registry from
        the engine's defining module (the bench/runner.py pattern)."""
        config = ClusterConfig(
            serve=ServeConfig(engine="batch", max_batch_size=8, max_wait_ms=1.0),
            shards=2,
            start_method="spawn",
        )
        with ClusterService(config) as cluster:
            assert cluster.map(tasks[:6]) == direct[:6]

    def test_main_registered_engine_fails_fast_under_spawn(self):
        """An engine registered in __main__ cannot be rebuilt by a
        spawned worker; start() must say so instead of hanging."""
        from repro.serve.cluster import _ensure_engine_shardable

        with pytest.raises(ValueError, match="importable module"):
            _ensure_engine_shardable("my-engine", "__main__", "spawn")
        with pytest.raises(ValueError, match="importable module"):
            _ensure_engine_shardable("my-engine", None, "forkserver")
        # fork inherits the registry: anything goes.
        _ensure_engine_shardable("my-engine", "__main__", "fork")
