"""Tiny synthetic task workloads shared by the repro.serve tests.

Deliberately small (a couple dozen short related pairs) so the serve
suite -- batcher policy, virtual-clock replays, the live threaded
service -- runs in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import preset
from repro.align.sequence import mutate, random_sequence
from repro.align.types import AlignmentTask

SERVE_SCHEME = preset("map-ont", band_width=16, zdrop=100)


def make_serve_tasks(seed: int = 5, count: int = 24, min_len: int = 40, max_len: int = 220):
    """A mixed batch of related pairs with a spread of lengths."""
    rng = np.random.default_rng(seed)
    tasks = []
    for t in range(count):
        n = int(rng.integers(min_len, max_len))
        ref = random_sequence(n, rng)
        query = mutate(
            ref, rng, substitution_rate=0.06, insertion_rate=0.02, deletion_rate=0.02
        )
        tasks.append(AlignmentTask(ref=ref, query=query, scoring=SERVE_SCHEME, task_id=t))
    return tasks
