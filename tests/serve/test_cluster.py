"""Sharded replay: routing, admission policy, merged telemetry.

The live multi-process counterpart is pinned in
``test_cluster_service.py``; everything here is pure and virtual-clock,
so it sweeps widely (hypothesis over traces and shard counts) at unit
cost.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.serve import (
    AdmissionController,
    ClusterConfig,
    RequestRejected,
    ServeConfig,
    ServeRequest,
    ShardRouter,
    TelemetrySink,
    cluster_replay,
    replay,
)
from repro.serve.loadgen import LoadGenerator

from serve_workloads import make_serve_tasks

MODELED = ServeConfig(timing="modeled", max_batch_size=8, max_wait_ms=2.0)


@pytest.fixture(scope="module")
def tasks():
    return make_serve_tasks(seed=5, count=24)


@pytest.fixture(scope="module")
def trace(tasks):
    return LoadGenerator(tasks, name="tiny-serve", seed=3).poisson(2000.0, 40)


@pytest.fixture(scope="module")
def direct(trace):
    return list(Session(tasks=list(trace.tasks), engine="batch").align())


class TestShardRouter:
    def test_route_is_deterministic_and_in_range(self, tasks):
        router = ShardRouter(shards=4)
        for index, task in enumerate(tasks):
            shard = router.route(task, index)
            assert 0 <= shard < 4
            assert shard == router.route(task, index)  # pure

    def test_hash_routing_ignores_task(self, tasks):
        """Hash placement is a function of the request id alone."""
        router = ShardRouter(shards=4, policy="hash")
        assert router.route(tasks[0], 7) == router.route(tasks[1], 7)

    def test_length_routing_groups_similar_lengths(self):
        short = make_serve_tasks(seed=1, count=4, min_len=40, max_len=60)
        long = make_serve_tasks(seed=2, count=4, min_len=1500, max_len=1600)
        router = ShardRouter(shards=8, policy="length", length_stride=4000)
        # Whole groups land together: every short task in one bucket...
        assert len({router.route(t, i) for i, t in enumerate(short)}) == 1
        # ...and the stride separates the groups themselves.
        fine = ShardRouter(shards=8, policy="length", length_stride=512)
        assert fine.route(short[0], 0) != fine.route(long[0], 0)

    def test_partition_covers_every_index_once(self, tasks):
        router = ShardRouter(shards=3, policy="length")
        partitions = router.partition(tasks)
        flat = sorted(i for part in partitions for i in part)
        assert flat == list(range(len(tasks)))
        for part in partitions:
            assert part == sorted(part)  # submission order preserved

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(shards=0)
        with pytest.raises(ValueError):
            ShardRouter(shards=2, policy="round-robin")
        with pytest.raises(ValueError):
            ShardRouter(shards=2, length_stride=0)


class TestClusterConfig:
    def test_defaults_and_policy_name(self):
        config = ClusterConfig(shards=4)
        assert config.policy_name == "shards4"
        assert config.router_for() == ShardRouter(shards=4)
        assert config.admission_controller().policy == "queue"

    def test_replace_revalidates(self):
        config = ClusterConfig(shards=2)
        assert config.replace(shards=8).shards == 8
        with pytest.raises(ValueError):
            config.replace(shards=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(shards=0),
            dict(router="nope"),
            dict(admission="drop"),
            dict(max_pending=0),
            dict(max_inflight=0),
            dict(max_restarts=-1),
            dict(start_method="thread"),
            dict(class_limits={0: 0}),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)


class TestClusterReplay:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    @pytest.mark.parametrize("router", ["hash", "length"])
    def test_bit_identical_to_session_align(self, trace, direct, shards, router):
        config = ClusterConfig(serve=MODELED, shards=shards, router=router)
        report = cluster_replay(trace, config)
        assert report.results() == direct
        assert report.num_requests == len(trace)

    def test_replay_is_deterministic(self, trace):
        config = ClusterConfig(serve=MODELED, shards=4)
        a = cluster_replay(trace, config)
        b = cluster_replay(trace, config)
        assert a.makespan_ms == b.makespan_ms
        assert a.telemetry == b.telemetry
        assert a.scores() == b.scores()

    def test_makespan_is_slowest_shard(self, trace):
        report = cluster_replay(trace, ClusterConfig(serve=MODELED, shards=3))
        assert report.makespan_ms == max(
            shard.makespan_ms for shard in report.shard_reports
        )
        assert report.throughput_rps == pytest.approx(
            report.num_requests / report.makespan_ms * 1000.0
        )

    def test_merged_telemetry_schema(self, trace):
        report = cluster_replay(trace, ClusterConfig(serve=MODELED, shards=4))
        telemetry = report.telemetry
        assert telemetry["requests"] == len(trace)
        assert telemetry["admission"]["admitted"] == len(trace)
        shards = telemetry["shards"]
        assert sorted(shards) == ["0", "1", "2", "3"]
        assert sum(s["requests"] for s in shards.values()) == len(trace)
        # Merged percentiles come from the pooled samples: the merged max
        # must be attained by some shard (an average never guarantees it).
        assert telemetry["latency_ms"]["max_ms"] == max(
            s["latency_ms"]["max_ms"] for s in shards.values() if s["requests"]
        )

    def test_global_request_order_and_ids(self, trace):
        report = cluster_replay(trace, ClusterConfig(serve=MODELED, shards=3))
        assert [r.request_id for r in report.requests] == list(range(len(trace)))
        for index, request in enumerate(report.requests):
            assert request.task is trace.tasks[index]

    def test_report_duck_types_for_records(self, trace):
        from repro.serve import serve_bench_record

        cluster = cluster_replay(trace, ClusterConfig(serve=MODELED, shards=2))
        single = replay(trace, MODELED, policy="microbatch")
        record = serve_bench_record([cluster, single], baseline="microbatch")
        assert set(record.suites["serve"].speedups) == {"shards2", "microbatch"}

    @given(
        n_requests=st.integers(min_value=1, max_value=24),
        shards=st.integers(min_value=1, max_value=5),
        router=st.sampled_from(["hash", "length"]),
        rate=st.floats(min_value=200.0, max_value=50_000.0),
        seed=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_bit_identity_swept(self, tasks, n_requests, shards, router, rate, seed):
        """The acceptance sweep: arbitrary traces x shard counts never
        change a single result relative to the offline engine."""
        generator = LoadGenerator(tasks, name="sweep", seed=seed)
        trace = generator.poisson(rate, n_requests, seed=seed)
        config = ClusterConfig(serve=MODELED, shards=shards, router=router)
        report = cluster_replay(trace, config)
        direct = list(Session(tasks=list(trace.tasks), engine="batch").align())
        assert report.results() == direct


def _request(priority=0, request_id=0, arrival_ms=0.0):
    task = make_serve_tasks(count=1)[0]
    return ServeRequest(
        task=task, request_id=request_id, arrival_ms=arrival_ms, priority=priority
    )


class TestAdmissionController:
    def test_unbounded_always_accepts(self):
        controller = AdmissionController()
        assert not controller.bounded
        queued = tuple(_request(request_id=i) for i in range(100))
        assert controller.decide(_request(), queued).action == "accept"

    def test_queue_policy_waits_at_limit(self):
        controller = AdmissionController(max_pending=2, policy="queue")
        queued = (_request(request_id=0),)
        inflight = (_request(request_id=1),)
        assert controller.decide(_request(), queued, inflight).action == "wait"
        assert controller.decide(_request(), queued).action == "accept"

    def test_reject_policy_raises_side(self):
        controller = AdmissionController(max_pending=1, policy="reject")
        decision = controller.decide(_request(), (_request(request_id=0),))
        assert decision.action == "reject"
        assert not decision.admitted

    def test_shed_evicts_youngest_lowest_priority(self):
        controller = AdmissionController(max_pending=2, policy="shed")
        old_low = _request(priority=0, request_id=0, arrival_ms=0.0)
        young_low = _request(priority=0, request_id=1, arrival_ms=1.0)
        decision = controller.decide(_request(priority=1), (old_low, young_low))
        assert decision.action == "shed"
        assert decision.victims == (young_low,)
        assert decision.admitted

    def test_shed_never_evicts_equal_or_higher_priority(self):
        controller = AdmissionController(max_pending=1, policy="shed")
        peer = _request(priority=1, request_id=0)
        assert controller.decide(_request(priority=1), (peer,)).action == "reject"
        assert controller.decide(_request(priority=0), (peer,)).action == "reject"

    def test_class_limits_always_reject_when_full(self):
        controller = AdmissionController(policy="queue", class_limits={0: 1})
        queued = (_request(priority=0, request_id=0),)
        assert controller.decide(_request(priority=0), queued).action == "reject"
        # Other classes are untouched by the class-0 limit.
        assert controller.decide(_request(priority=1), queued).action == "accept"

    def test_shed_with_one_priority_class_always_rejects(self):
        """A single-class workload has no strictly-lower victim: the shed
        policy must degrade to reject, never evict a peer to admit a peer."""
        controller = AdmissionController(max_pending=3, policy="shed")
        queued = tuple(
            _request(priority=0, request_id=i, arrival_ms=float(i)) for i in range(3)
        )
        decision = controller.decide(_request(priority=0, request_id=9), queued)
        assert decision.action == "reject"
        assert decision.victims == ()
        assert not decision.admitted

    def test_shed_tie_break_is_the_youngest_queue_position(self):
        """Victims tied on priority *and* arrival time break toward the
        later queue position -- the request that has waited least."""
        controller = AdmissionController(max_pending=2, policy="shed")
        first = _request(priority=0, request_id=0, arrival_ms=4.0)
        second = _request(priority=0, request_id=1, arrival_ms=4.0)
        decision = controller.decide(_request(priority=2), (first, second))
        assert decision.action == "shed"
        assert decision.victims == (second,)

    def test_class_limits_count_inflight_against_the_budget(self):
        """In-flight work of a class fills its budget even though it can
        never be shed -- otherwise a class could exceed its limit by
        exactly the dispatch window."""
        controller = AdmissionController(class_limits={1: 2})
        queued = (_request(priority=1, request_id=0),)
        inflight = (_request(priority=1, request_id=1),)
        assert (
            controller.decide(_request(priority=1), queued, inflight).action
            == "reject"
        )
        assert controller.decide(_request(priority=1), queued).action == "accept"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(policy="drop")
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(class_limits={1: 0})

    @given(
        priorities=st.lists(st.integers(min_value=0, max_value=3), max_size=8),
        arrival_priority=st.integers(min_value=0, max_value=3),
        max_pending=st.integers(min_value=1, max_value=8),
        policy=st.sampled_from(["queue", "reject", "shed"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_decision_invariants(self, priorities, arrival_priority, max_pending, policy):
        controller = AdmissionController(max_pending=max_pending, policy=policy)
        queued = tuple(
            _request(priority=p, request_id=i, arrival_ms=float(i))
            for i, p in enumerate(priorities)
        )
        arrival = _request(priority=arrival_priority, request_id=99)
        decision = controller.decide(arrival, queued)
        if len(queued) < max_pending:
            assert decision.action == "accept"
            return
        assert decision.action != "accept"
        if policy == "queue":
            assert decision.action == "wait"
        elif policy == "reject":
            assert decision.action == "reject"
        elif decision.action == "shed":
            (victim,) = decision.victims
            assert victim in queued
            assert victim.priority < arrival.priority
            # The victim is the youngest of the lowest-priority class.
            lowest = min(r.priority for r in queued)
            assert victim.priority == lowest
            assert victim.arrival_ms == max(
                r.arrival_ms for r in queued if r.priority == lowest
            )
        else:  # shed with no strictly-lower victim degrades to reject
            assert decision.action == "reject"
            assert all(r.priority >= arrival.priority for r in queued)


class TestTelemetryMerge:
    def test_state_round_trip(self):
        sink = TelemetrySink()
        sink.record_request(0.5, 2.5)
        sink.record_batch(3)
        sink.record_queue_depth(4)
        sink.record_refill(2)
        sink.record_admission("admitted")
        clone = TelemetrySink.from_state(sink.state())
        assert clone.summary() == sink.summary()

    def test_merge_pools_raw_samples(self):
        left, right = TelemetrySink(), TelemetrySink()
        for value in (1.0, 2.0, 3.0):
            left.record_request(0.1, value)
        for value in (10.0, 20.0):
            right.record_request(0.2, value)
        merged = left.merge(right)
        assert merged is left
        summary = merged.summary()
        assert summary["requests"] == 5
        # Exact pooled percentiles -- not an average of per-sink values.
        assert summary["latency_ms"]["p50_ms"] == 3.0
        assert summary["latency_ms"]["max_ms"] == 20.0

    def test_record_admission_validates(self):
        sink = TelemetrySink()
        with pytest.raises(ValueError):
            sink.record_admission("dropped")
