"""Continuous lane refill: exactness, the max-wait invariant, knobs.

The load-bearing claims:

* **Bit-exactness** -- a continuously refilled drain returns exactly the
  results a drain-then-form drain (and a plain ``align_tasks`` call)
  returns, for arbitrary arrival processes.  Refill moves *when* a task
  is scored, never *how*.  A Hypothesis property sweeps arrival
  processes, rates and lane capacities.
* **The deadline contract survives refill** -- with instantaneous
  service every request dispatches within ``max_wait_ms`` of arriving,
  exactly as in drain mode; a busy stream admits pending requests at the
  next slice boundary, so refill can only shorten waits.
* The refill/occupancy telemetry and the priority/preemption queue hooks
  behave as documented.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineOptions, align_tasks
from repro.serve import LoadGenerator, ServeConfig, replay
from repro.serve.queueing import MicroBatcher, ServeRequest

from serve_workloads import make_serve_tasks

TASKS = make_serve_tasks()


def _generator(seed=3):
    return LoadGenerator(TASKS, name="tiny-serve", seed=seed)


def _make_trace(kind, rate, n, seed):
    generator = _generator()
    if kind == "poisson":
        return generator.poisson(rate, n, seed=seed)
    if kind == "bursty":
        return generator.bursty(rate, n, on_ms=5.0, off_ms=20.0, seed=seed)
    return generator.replay(rate, n)


class TestContinuousExactness:
    def test_continuous_equals_drain_and_align(self, generator):
        trace = generator.bursty(2000.0, 40, on_ms=4.0, off_ms=12.0, seed=9)
        base = ServeConfig(engine="batch-sliced", timing="modeled", max_batch_size=8)
        assert base.resolved_refill() == "continuous"
        continuous = replay(trace, base)
        drain = replay(trace, base.replace(refill="drain"))
        assert continuous.results() == drain.results()
        direct = align_tasks(
            [request.task for request in trace.requests()], engine="batch-sliced"
        )
        assert continuous.results() == direct

    def test_refill_telemetry_is_populated(self, generator):
        trace = generator.poisson(3000.0, 32, seed=5)
        report = replay(
            trace,
            ServeConfig(engine="batch-sliced", timing="modeled", max_batch_size=8),
        )
        assert report.policy == "continuous"
        lanes = report.telemetry["lane_occupancy"]
        assert lanes["slices"] > 0
        assert 0.0 < lanes["mean"] <= 1.0
        assert report.telemetry["refill"]["admitted_inflight"] >= 0
        assert report.telemetry["requests"] == 32

    @settings(max_examples=25, deadline=None)
    @given(
        kind=st.sampled_from(["poisson", "bursty", "replay"]),
        rate=st.floats(min_value=50.0, max_value=20000.0),
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**20),
        capacity=st.integers(min_value=1, max_value=12),
        slice_width=st.integers(min_value=1, max_value=40),
    )
    def test_property_refill_is_bit_identical(
        self, kind, rate, n, seed, capacity, slice_width
    ):
        trace = _make_trace(kind, rate, n, seed)
        config = ServeConfig(
            engine="batch-sliced",
            timing="modeled",
            max_batch_size=capacity,
            max_wait_ms=1.0,
            options=EngineOptions(slice_width=slice_width),
        )
        continuous = replay(trace, config)
        drain = replay(trace, config.replace(refill="drain"))
        assert continuous.results() == drain.results()
        assert continuous.telemetry["requests"] == n

    def test_arbitrary_service_time_per_slice(self, generator):
        """The injectable model is called per slice with the live tasks."""
        trace = generator.replay(1000.0, 10)
        seen = []

        def service(tasks):
            seen.append(len(tasks))
            return 0.25

        config = ServeConfig(engine="batch-sliced", max_batch_size=4)
        report = replay(trace, config, service_time=service)
        assert report.telemetry["requests"] == 10
        assert seen and all(0 <= count <= 4 for count in seen)


class TestMaxWaitInvariant:
    @pytest.mark.parametrize("refill", ["continuous", "drain"])
    def test_no_wait_beyond_deadline_with_instant_service(self, generator, refill):
        """Virtual-clock replay: refill never violates max_wait_ms."""
        trace = generator.bursty(1500.0, 48, on_ms=6.0, off_ms=18.0, seed=11)
        config = ServeConfig(
            engine="batch-sliced",
            max_batch_size=8,
            max_wait_ms=2.5,
            refill=refill,
        )
        report = replay(trace, config, service_time=lambda tasks: 0.0)
        for request in report.requests:
            assert request.wait_ms <= 2.5 + 1e-9

    def test_refilled_requests_wait_at_most_one_slice(self, generator):
        """While lanes are free, a pending request rides the very next
        slice boundary -- its wait is bounded by one slice duration, not
        by the deadline."""
        trace = generator.poisson(4000.0, 24, seed=13)
        config = ServeConfig(
            engine="batch-sliced",
            timing="modeled",
            max_batch_size=24,
            max_wait_ms=50.0,
            options=EngineOptions(slice_width=2),
        )
        report = replay(trace, config)
        # With lanes never exhausted (capacity == request count) no
        # request can be deadline-dispatched after the first batch forms;
        # every wait is bounded by max_wait yet the mean is far below it.
        waits = [request.wait_ms for request in report.requests]
        assert max(waits) <= 50.0 + 1e-9
        assert sum(waits) / len(waits) < 25.0


class TestServeConfigStreaming:
    def test_auto_resolution(self):
        assert ServeConfig(engine="batch").resolved_refill() == "drain"
        assert ServeConfig(engine="batch-sliced").resolved_refill() == "continuous"

    def test_policy_names(self):
        assert ServeConfig(engine="batch").policy_name == "microbatch"
        assert ServeConfig(engine="batch-sliced").policy_name == "continuous"
        assert ServeConfig(engine="batch-sliced", max_batch_size=1).policy_name == "batch1"
        assert (
            ServeConfig(engine="batch-sliced", refill="drain").policy_name
            == "microbatch"
        )

    def test_continuous_requires_streaming_engine(self):
        with pytest.raises(ValueError, match="streaming"):
            ServeConfig(engine="batch", refill="continuous")

    def test_unknown_refill_mode(self):
        with pytest.raises(ValueError, match="refill"):
            ServeConfig(refill="sometimes")

    def test_conflicting_bucket_sizes(self):
        with pytest.raises(ValueError, match="conflicting"):
            ServeConfig(batch_size=8, options=EngineOptions(batch_size=16))

    def test_engine_options_pins_batch_size(self):
        config = ServeConfig(options=EngineOptions(slice_width=6))
        opts = config.engine_options()
        assert opts.batch_size == config.effective_batch_size()
        assert opts.slice_width == 6
        sized = ServeConfig(batch_size=12)
        assert sized.engine_options().batch_size == 12
        assert sized.effective_batch_size() == 12
        via_options = ServeConfig(options=EngineOptions(batch_size=9))
        assert via_options.effective_batch_size() == 9


class TestQueueHooks:
    def _request(self, request_id, arrival, priority=0):
        return ServeRequest(
            task=TASKS[request_id % len(TASKS)],
            request_id=request_id,
            arrival_ms=arrival,
            priority=priority,
        )

    def test_take_is_priority_then_fifo(self):
        batcher = MicroBatcher(8, 10.0)
        low = [self._request(i, float(i)) for i in range(3)]
        high = self._request(3, 3.0, priority=5)
        for request in [*low, high]:
            batcher.add(request)
        taken = batcher.take(2, now_ms=4.0)
        assert taken == [low[0], high]
        assert all(request.dispatch_ms == 4.0 for request in taken)
        assert batcher.pending == (low[1], low[2])

    def test_take_respects_limit_and_empty(self):
        batcher = MicroBatcher(4, 5.0)
        assert batcher.take(3, now_ms=0.0) == []
        batcher.add(self._request(0, 0.0))
        assert batcher.take(0, now_ms=0.0) == []
        assert len(batcher) == 1

    def test_preempt_pulls_matching_requests(self):
        batcher = MicroBatcher(8, 10.0)
        requests = [self._request(i, float(i), priority=i % 2) for i in range(6)]
        for request in requests:
            batcher.add(request)
        pulled = batcher.preempt(lambda request: request.priority == 0)
        assert pulled == [requests[0], requests[2], requests[4]]
        assert batcher.pending == (requests[1], requests[3], requests[5])
        assert batcher.preempt(lambda request: False) == []
