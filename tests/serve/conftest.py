"""Shared fixtures for the repro.serve test suite."""

from __future__ import annotations

import pytest

from repro.serve import LoadGenerator

from serve_workloads import make_serve_tasks


@pytest.fixture
def serve_tasks():
    return make_serve_tasks()


@pytest.fixture
def generator(serve_tasks) -> LoadGenerator:
    return LoadGenerator(serve_tasks, name="tiny-serve", seed=3)
