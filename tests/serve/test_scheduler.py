"""Virtual-clock replay: determinism, scheduler invariants, equivalence."""

import pytest

from repro.api import Session
from repro.serve import ServeConfig, modeled_service_ms, replay


def _modeled(**overrides):
    base = dict(timing="modeled", max_batch_size=8, max_wait_ms=3.0)
    base.update(overrides)
    return ServeConfig(**base)


class TestDeterminism:
    def test_modeled_replay_is_bit_identical(self, generator):
        trace = generator.poisson(1500.0, 60)
        config = _modeled()
        first = replay(trace, config)
        second = replay(trace, config)
        assert first.makespan_ms == second.makespan_ms
        assert first.telemetry == second.telemetry
        assert [
            (r.arrival_ms, r.dispatch_ms, r.completion_ms, r.batch_occupancy)
            for r in first.requests
        ] == [
            (r.arrival_ms, r.dispatch_ms, r.completion_ms, r.batch_occupancy)
            for r in second.requests
        ]

    def test_modeled_service_time_shape(self, serve_tasks):
        config = _modeled()
        single = modeled_service_ms(serve_tasks[:1], config)
        batch = modeled_service_ms(serve_tasks[:8], config)
        # The batch pays one overhead + one sweep, not eight.
        assert batch < 8 * single
        assert modeled_service_ms([], config) == 0.0


class TestSchedulerInvariants:
    def test_no_request_waits_past_max_wait_in_virtual_time(self, generator):
        """With an idle server (zero service time) no request may sit in
        the queue past ``max_wait_ms`` -- the tentpole invariant."""
        trace = generator.poisson(2000.0, 120)
        config = ServeConfig(max_batch_size=16, max_wait_ms=2.5)
        report = replay(trace, config, service_time=lambda tasks: 0.0)
        for request in report.requests:
            assert request.wait_ms <= 2.5 + 1e-9, (
                f"request {request.request_id} waited {request.wait_ms:.3f} ms"
            )

    def test_every_request_served_exactly_once(self, generator):
        trace = generator.bursty(3000.0, 50, on_ms=5.0, off_ms=40.0, seed=6)
        report = replay(trace, _modeled())
        assert report.num_requests == 50
        assert sorted(r.request_id for r in report.requests) == list(range(50))
        for request in report.requests:
            assert request.result is not None
            assert request.arrival_ms <= request.dispatch_ms <= request.completion_ms

    def test_batch1_serves_every_request_alone(self, generator):
        trace = generator.poisson(1000.0, 30)
        report = replay(trace, _modeled(max_batch_size=1))
        assert report.policy == "batch1"
        assert all(r.batch_occupancy == 1 for r in report.requests)
        assert report.telemetry["batches"] == 30

    def test_saturated_queue_fills_batches(self, generator):
        # Slow constant service + fast arrivals: the queue backs up and
        # batches reach max_batch_size.
        trace = generator.poisson(10000.0, 64)
        config = ServeConfig(max_batch_size=8, max_wait_ms=1.0)
        report = replay(trace, config, service_time=lambda tasks: 25.0)
        occupancy = report.telemetry["batch_occupancy"]
        assert occupancy.get("8", 0) >= 4

    def test_more_workers_never_slow_the_drain(self, generator):
        trace = generator.poisson(4000.0, 60)
        one = replay(trace, _modeled(workers=1))
        four = replay(trace, _modeled(workers=4))
        assert four.makespan_ms <= one.makespan_ms + 1e-9
        assert four.results() == one.results()

    def test_negative_service_time_rejected(self, generator):
        trace = generator.replay(1000.0, 4)
        with pytest.raises(ValueError):
            replay(trace, _modeled(), service_time=lambda tasks: -1.0)

    def test_short_engine_result_is_an_error(self, generator):
        from repro.api import register_engine
        from repro.api.engines import ENGINES, align_tasks

        register_engine(
            "short-serve-test",
            lambda tasks, *, batch_size: align_tasks(tasks, engine="batch")[:-1],
        )
        try:
            trace = generator.replay(1000.0, 4)
            with pytest.raises(ValueError, match="results for a batch of"):
                replay(trace, _modeled(engine="short-serve-test"))
        finally:
            ENGINES.unregister("short-serve-test")


class TestServedEquivalence:
    def test_served_scores_bit_identical_to_session_align(self, generator):
        """The acceptance property: serving changes scheduling, never
        results.  Full AlignmentResult equality, not just scores."""
        trace = generator.poisson(2500.0, 48, seed=8)
        report = replay(trace, _modeled(max_batch_size=8, engine="batch"))
        direct = Session(tasks=list(trace.tasks), engine="batch").align()
        assert report.results() == list(direct.results)

    def test_scalar_engine_serves_identically_too(self, generator):
        trace = generator.replay(2000.0, 24)
        report = replay(trace, _modeled(engine="scalar"))
        direct = Session(tasks=list(trace.tasks), engine="scalar").align()
        assert report.results() == list(direct.results)

    def test_fifo_and_length_aware_agree_on_results(self, generator):
        trace = generator.poisson(3000.0, 40)
        aware = replay(trace, _modeled(length_aware=True))
        fifo = replay(trace, _modeled(length_aware=False))
        assert aware.results() == fifo.results()


class TestReportAndConfig:
    def test_report_metrics(self, generator):
        trace = generator.replay(1000.0, 20)
        report = replay(trace, _modeled())
        assert report.workload == "tiny-serve"
        assert report.num_requests == 20
        assert report.throughput_rps == pytest.approx(
            20 / report.makespan_ms * 1000.0
        )
        assert report.scores() == [r.score for r in report.results()]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            ServeConfig(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(workers=0)
        with pytest.raises(ValueError):
            ServeConfig(timing="wallclock")
        with pytest.raises(ValueError):
            ServeConfig(batch_size=0)
        with pytest.raises(KeyError):
            ServeConfig(engine="no-such-engine")

    def test_config_replace_and_policy_name(self):
        config = ServeConfig(max_batch_size=16)
        assert config.policy_name == "microbatch"
        anchor = config.replace(max_batch_size=1)
        assert anchor.policy_name == "batch1"
        assert config.max_batch_size == 16  # original untouched
