"""The live threaded service: futures, draining shutdown, equivalence."""

import pytest

from repro.api import Session
from repro.serve import AlignmentService, ServeConfig


def _config(**overrides):
    base = dict(max_batch_size=8, max_wait_ms=2.0)
    base.update(overrides)
    return ServeConfig(**base)


class TestLiveService:
    def test_map_matches_session_align(self, serve_tasks):
        with AlignmentService(_config()) as service:
            served = service.map(serve_tasks)
        direct = Session(tasks=serve_tasks).align()
        assert served == list(direct.results)

    def test_session_serve_entry_point(self, serve_tasks):
        session = Session(tasks=serve_tasks, engine="batch", batch_size=16)
        with session.serve(max_wait_ms=1.0, max_batch_size=4) as service:
            assert service.config.engine == "batch"
            assert service.config.batch_size == 16
            assert service.config.max_batch_size == 4
            served = service.map(serve_tasks)
        assert served == list(session.align().results)

    def test_futures_resolve_individually(self, serve_tasks):
        with AlignmentService(_config()) as service:
            futures = [service.submit(task) for task in serve_tasks[:6]]
            results = [future.result(timeout=30) for future in futures]
        direct = Session(tasks=serve_tasks[:6]).align()
        assert results == list(direct.results)

    def test_thread_pool_workers(self, serve_tasks):
        with AlignmentService(_config(workers=3)) as service:
            served = service.map(serve_tasks)
        assert served == list(Session(tasks=serve_tasks).align().results)

    def test_sliced_engine_flows_through_serving(self, serve_tasks):
        """ServeConfig(engine="batch-sliced") needs no serve-side changes."""
        with AlignmentService(_config(engine="batch-sliced")) as service:
            served = service.map(serve_tasks)
        assert served == list(Session(tasks=serve_tasks).align().results)

    def test_shutdown_drains_pending_requests(self, serve_tasks):
        # A huge max_wait would hold requests for minutes; shutdown must
        # cut the pending batch instead of abandoning it.
        service = AlignmentService(_config(max_batch_size=64, max_wait_ms=60_000.0))
        futures = [service.submit(task) for task in serve_tasks[:5]]
        service.shutdown(wait=True)
        assert all(future.done() for future in futures)
        direct = Session(tasks=serve_tasks[:5]).align()
        assert [future.result() for future in futures] == list(direct.results)

    def test_nonblocking_shutdown_still_resolves_every_future(self, serve_tasks):
        """shutdown(wait=False) must not race the pool closed while the
        scheduler is still submitting the final drain batches."""
        service = AlignmentService(
            _config(workers=2, max_batch_size=64, max_wait_ms=60_000.0)
        )
        futures = [service.submit(task) for task in serve_tasks]
        service.shutdown(wait=False)
        results = [future.result(timeout=30) for future in futures]
        assert results == list(Session(tasks=serve_tasks).align().results)

    def test_submit_after_shutdown_raises(self, serve_tasks):
        service = AlignmentService(_config())
        service.start()
        service.shutdown()
        with pytest.raises(RuntimeError):
            service.submit(serve_tasks[0])
        with pytest.raises(RuntimeError):
            service.start()

    def test_short_engine_result_errors_instead_of_hanging(self, serve_tasks):
        service = AlignmentService(_config(max_wait_ms=1.0))

        def short_engine(tasks, batch_size):
            from repro.api.engines import align_tasks

            return align_tasks(tasks, engine="batch", batch_size=batch_size)[:-1]

        service._engine = short_engine
        future = service.submit(serve_tasks[0])
        with pytest.raises(ValueError, match="returned 0 results"):
            future.result(timeout=30)
        service.shutdown()

    def test_engine_failure_fans_out_to_futures(self, serve_tasks):
        service = AlignmentService(_config(max_wait_ms=1.0))

        def broken_engine(tasks, batch_size):
            raise RuntimeError("engine exploded")

        service._engine = broken_engine
        future = service.submit(serve_tasks[0])
        with pytest.raises(RuntimeError, match="engine exploded"):
            future.result(timeout=30)
        service.shutdown()

    def test_telemetry_counts_every_request(self, serve_tasks):
        with AlignmentService(_config()) as service:
            service.map(serve_tasks)
        assert service.telemetry.num_requests == len(serve_tasks)
        assert service.telemetry.num_batches >= 1
        summary = service.telemetry.summary()
        assert summary["requests"] == len(serve_tasks)
        assert summary["latency_ms"]["count"] == len(serve_tasks)

    def test_start_is_idempotent(self, serve_tasks):
        service = AlignmentService(_config())
        assert service.start() is service
        service.start()
        try:
            assert service.map(serve_tasks[:2]) == list(
                Session(tasks=serve_tasks[:2]).align().results
            )
        finally:
            service.shutdown()
