"""Load generation: arrival processes and trace invariants."""

import numpy as np
import pytest

from repro.align.scoring import preset
from repro.io.datasets import DatasetSpec
from repro.serve import LoadGenerator, RequestTrace

from serve_workloads import make_serve_tasks


class TestRequestTrace:
    def test_validation(self, serve_tasks):
        with pytest.raises(ValueError):
            RequestTrace("x", "replay", tuple(serve_tasks), (0.0,))
        with pytest.raises(ValueError):
            RequestTrace("x", "replay", tuple(serve_tasks[:2]), (1.0, 0.5))
        with pytest.raises(ValueError):
            RequestTrace("x", "replay", tuple(serve_tasks[:1]), (-1.0,))

    def test_requests_are_fresh_per_call(self, generator):
        trace = generator.replay(1000.0, 8)
        first = trace.requests()
        first[0].dispatch_ms = 1.0
        second = trace.requests()
        assert second[0].dispatch_ms is None
        assert [r.request_id for r in second] == list(range(8))


class TestPoisson:
    def test_deterministic_given_seed(self, generator):
        a = generator.poisson(500.0, 32, seed=9)
        b = generator.poisson(500.0, 32, seed=9)
        assert a.arrivals_ms == b.arrivals_ms
        assert generator.poisson(500.0, 32, seed=10).arrivals_ms != a.arrivals_ms

    def test_starts_at_zero_and_is_sorted(self, generator):
        trace = generator.poisson(500.0, 64)
        assert trace.arrivals_ms[0] == 0.0
        assert list(trace.arrivals_ms) == sorted(trace.arrivals_ms)
        assert len(trace) == 64

    def test_rate_shapes_the_gaps(self, generator):
        fast = generator.poisson(5000.0, 200, seed=1)
        slow = generator.poisson(50.0, 200, seed=1)
        assert fast.duration_ms < slow.duration_ms

    def test_cycles_workload(self, generator, serve_tasks):
        trace = generator.poisson(500.0, len(serve_tasks) + 5)
        assert trace.tasks[len(serve_tasks)] is serve_tasks[0]

    def test_invalid(self, generator):
        with pytest.raises(ValueError):
            generator.poisson(0.0)
        with pytest.raises(ValueError):
            generator.poisson(100.0, 0)


class TestBursty:
    def test_off_gaps_appear(self, generator):
        trace = generator.bursty(2000.0, 100, on_ms=10.0, off_ms=500.0, seed=2)
        gaps = np.diff(trace.arrivals_ms)
        assert (gaps >= 500.0).any(), "no OFF gap in a bursty trace"
        # In-burst arrivals stay dense: some gaps far below the OFF gap.
        assert (gaps < 10.0).any()

    def test_deterministic_and_sorted(self, generator):
        a = generator.bursty(1000.0, 50, seed=4)
        assert a.arrivals_ms == generator.bursty(1000.0, 50, seed=4).arrivals_ms
        assert list(a.arrivals_ms) == sorted(a.arrivals_ms)

    def test_invalid(self, generator):
        with pytest.raises(ValueError):
            generator.bursty(0.0)
        with pytest.raises(ValueError):
            generator.bursty(100.0, on_ms=0.0)


class TestReplay:
    def test_even_spacing(self, generator):
        trace = generator.replay(200.0, 5)
        assert trace.arrivals_ms == (0.0, 5.0, 10.0, 15.0, 20.0)
        assert trace.process == "replay"

    def test_default_request_count_is_the_workload(self, generator, serve_tasks):
        assert len(generator.replay(100.0)) == len(serve_tasks)


class TestConstruction:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            LoadGenerator([])

    def test_from_dataset_uses_cached_workload(self, tmp_path):
        spec = DatasetSpec(
            name="tiny-serve-ds",
            technology="HiFi",
            seed=7,
            num_reads=4,
            reference_length=4000,
            scoring=preset("map-ont", band_width=16, zdrop=80),
        )
        generator = LoadGenerator.from_dataset(spec, cache_dir=str(tmp_path))
        assert generator.name == "tiny-serve-ds"
        assert len(generator.tasks) > 0
        # The workload landed in the persistent cache.
        assert list(tmp_path.glob("workloads/*.pkl"))
        trace = generator.replay(100.0, 4)
        assert len(trace) == 4


def test_make_serve_tasks_is_deterministic():
    a = make_serve_tasks()
    b = make_serve_tasks()
    assert all(
        (x.ref == y.ref).all() and (x.query == y.query).all() for x, y in zip(a, b)
    )
