"""Micro-batch formation policy: cut conditions and member selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import MicroBatcher, ServeRequest

from serve_workloads import make_serve_tasks


def _requests(tasks, arrivals=None):
    arrivals = arrivals or [0.0] * len(tasks)
    return [
        ServeRequest(task=task, request_id=i, arrival_ms=arrivals[i])
        for i, task in enumerate(tasks)
    ]


class TestCutConditions:
    def test_empty_batcher_is_never_ready(self):
        batcher = MicroBatcher(4, 10.0)
        assert not batcher.ready(1e9)
        assert batcher.next_deadline_ms() is None
        assert batcher.form_batch(0.0) == []

    def test_size_trigger(self):
        tasks = make_serve_tasks(count=4)
        batcher = MicroBatcher(4, 1000.0)
        for request in _requests(tasks[:3]):
            batcher.add(request)
        assert not batcher.ready(0.0)  # neither full nor expired
        batcher.add(ServeRequest(task=tasks[3], request_id=3, arrival_ms=0.0))
        assert batcher.size_ready() and batcher.ready(0.0)

    def test_deadline_trigger(self):
        tasks = make_serve_tasks(count=1)
        batcher = MicroBatcher(8, 5.0)
        batcher.add(ServeRequest(task=tasks[0], request_id=0, arrival_ms=2.0))
        assert batcher.next_deadline_ms() == 7.0
        assert not batcher.ready(6.999)
        assert batcher.ready(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(0, 1.0)
        with pytest.raises(ValueError):
            MicroBatcher(4, -1.0)


class TestBatchSelection:
    def test_fifo_prefix_when_queue_fits(self):
        tasks = make_serve_tasks(count=6)
        batcher = MicroBatcher(8, 1.0)
        requests = _requests(tasks)
        for request in requests:
            batcher.add(request)
        batch = batcher.form_batch(3.0)
        assert batch == requests
        assert len(batcher) == 0

    def test_fifo_mode_takes_prefix_when_oversubscribed(self):
        tasks = make_serve_tasks(count=10)
        batcher = MicroBatcher(4, 1.0, length_aware=False)
        requests = _requests(tasks)
        for request in requests:
            batcher.add(request)
        batch = batcher.form_batch(0.0)
        assert batch == requests[:4]
        assert list(batcher.pending) == requests[4:]

    def test_length_aware_groups_similar_antidiagonal_counts(self):
        # Two widely separated length groups; the oldest request is short,
        # so its batch must consist of short tasks only.
        short = make_serve_tasks(seed=1, count=6, min_len=40, max_len=60)
        long = make_serve_tasks(seed=2, count=6, min_len=1500, max_len=1800)
        interleaved = [t for pair in zip(short, long) for t in pair]
        requests = _requests(interleaved)
        batcher = MicroBatcher(6, 1.0)
        for request in requests:
            batcher.add(request)
        batch = batcher.form_batch(5.0)
        assert requests[0] in batch  # the oldest always rides
        assert all(r.task.num_antidiagonals < 200 for r in batch)
        # Nothing lost, nothing duplicated.
        leftover = list(batcher.pending)
        assert sorted(r.request_id for r in batch + leftover) == list(range(12))

    def test_batch_always_contains_oldest(self):
        # Oldest is one of the *long* tasks: the chosen length bucket must
        # then be the long one even though short tasks also pend.
        long = make_serve_tasks(seed=2, count=3, min_len=1500, max_len=1800)
        short = make_serve_tasks(seed=1, count=6, min_len=40, max_len=60)
        requests = _requests(long + short)
        batcher = MicroBatcher(3, 1.0)
        for request in requests:
            batcher.add(request)
        batch = batcher.form_batch(2.0)
        assert requests[0] in batch
        assert all(r.task.num_antidiagonals > 1000 for r in batch)

    def test_dispatch_stamps(self):
        tasks = make_serve_tasks(count=3)
        batcher = MicroBatcher(8, 1.0)
        for request in _requests(tasks):
            batcher.add(request)
        batch = batcher.form_batch(42.5)
        for request in batch:
            assert request.dispatch_ms == 42.5
            assert request.batch_occupancy == 3


class TestTake:
    def test_take_zero_limit_returns_empty(self):
        """``take(limit=0)`` on a non-empty queue is a no-op, not a crash."""
        batcher = MicroBatcher(4, 1.0)
        for request in _requests(make_serve_tasks(count=3)):
            batcher.add(request)
        assert batcher.take(0, now_ms=0.0) == []
        assert batcher.take(-2, now_ms=0.0) == []
        assert len(batcher) == 3  # nothing was consumed

    @given(
        priorities=st.lists(st.integers(min_value=-2, max_value=2), min_size=1, max_size=12),
        limit=st.integers(min_value=1, max_value=14),
    )
    @settings(max_examples=60, deadline=None)
    def test_take_is_priority_then_fifo(self, priorities, limit):
        """The taken *set* is the top-``limit`` by (priority desc, arrival
        asc); equal-priority ties always resolve to the older request."""
        tasks = make_serve_tasks(count=len(priorities))
        batcher = MicroBatcher(4, 1.0)
        requests = []
        for index, (task, priority) in enumerate(zip(tasks, priorities)):
            request = ServeRequest(
                task=task, request_id=index, arrival_ms=float(index), priority=priority
            )
            requests.append(request)
            batcher.add(request)
        taken = batcher.take(limit, now_ms=99.0)
        expected = sorted(requests, key=lambda r: (-r.priority, r.request_id))[:limit]
        assert {r.request_id for r in taken} == {r.request_id for r in expected}
        # Returned in arrival order; the leftovers keep arrival order too.
        assert [r.request_id for r in taken] == sorted(r.request_id for r in taken)
        leftover = [r.request_id for r in batcher.pending]
        assert leftover == sorted(leftover)
        assert all(r.dispatch_ms == 99.0 for r in taken)

    @given(
        count=st.integers(min_value=1, max_value=10),
        limit=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_equal_priority_take_is_plain_fifo(self, count, limit):
        """With one priority class, ``take`` degenerates to the FIFO prefix."""
        batcher = MicroBatcher(4, 1.0)
        requests = _requests(make_serve_tasks(count=count))
        for request in requests:
            batcher.add(request)
        taken = batcher.take(limit, now_ms=0.0)
        assert taken == requests[: min(limit, count)]


class TestRestore:
    def test_restore_clears_dispatch_and_requeues(self):
        tasks = make_serve_tasks(count=4)
        batcher = MicroBatcher(8, 1.0)
        requests = _requests(tasks, arrivals=[0.0, 1.0, 2.0, 3.0])
        for request in requests:
            batcher.add(request)
        taken = batcher.take(2, now_ms=5.0)
        assert [r.dispatch_ms for r in taken] == [5.0, 5.0]
        batcher.restore(taken)
        assert len(batcher) == 4
        assert all(r.dispatch_ms is None for r in requests)
        # The queue re-sorts, so the next batch is the original FIFO order.
        assert batcher.form_batch(10.0) == requests

    def test_restore_resorts_by_arrival_then_id(self):
        tasks = make_serve_tasks(count=3)
        batcher = MicroBatcher(8, 1.0)
        late, early, tied = _requests(tasks, arrivals=[7.0, 2.0, 7.0])
        batcher.add(tied)
        # Out-of-order return of a preempted pair must not break the
        # oldest-at-front invariant behind next_deadline_ms().
        batcher.restore([late, early])
        assert batcher.next_deadline_ms() == 2.0 + 1.0
        assert batcher.form_batch(20.0) == [early, late, tied]

    def test_restore_nothing_is_a_noop(self):
        batcher = MicroBatcher(4, 1.0)
        batcher.restore([])
        assert len(batcher) == 0
        assert batcher.next_deadline_ms() is None

    def test_restored_requests_are_redispatchable(self):
        tasks = make_serve_tasks(count=2)
        batcher = MicroBatcher(2, 1.0)
        requests = _requests(tasks)
        for request in requests:
            batcher.add(request)
        first = batcher.form_batch(4.0)
        batcher.restore(first)
        again = batcher.form_batch(9.0)
        assert again == requests
        assert [r.dispatch_ms for r in again] == [9.0, 9.0]


class TestServeRequest:
    def test_timing_properties(self):
        task = make_serve_tasks(count=1)[0]
        request = ServeRequest(task=task, request_id=0, arrival_ms=10.0)
        with pytest.raises(ValueError):
            request.wait_ms
        with pytest.raises(ValueError):
            request.latency_ms
        request.dispatch_ms = 12.5
        request.completion_ms = 20.0
        assert request.wait_ms == 2.5
        assert request.latency_ms == 10.0
        assert request.done
