"""Stable-router movement bounds and cross-process determinism.

The ``"stable"`` routing policy exists for one property: growing a
cluster from ``n`` to ``n + 1`` shards must relocate at most
``ceil(keys / (n + 1))`` of any contiguous request-id range, and every
relocated key must land on the *new* shard (nothing reshuffles between
survivors).  That is the contract elastic scaling leans on -- a resize
that reshuffles everything would drain every queue -- so this suite pins
it with hypothesis sweeps, and pins that placement is a pure function
(same across orderings and across interpreter processes).
"""

import math
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ShardRouter

from serve_workloads import make_serve_tasks

TASKS = make_serve_tasks(seed=11, count=8)


def _placements(shards: int, ids) -> list:
    router = ShardRouter(shards=shards, policy="stable")
    # Stable routing is id-driven; cycle a fixed task pool for the API.
    return [router.route(TASKS[i % len(TASKS)], i) for i in ids]


class TestMovementBound:
    @given(
        shards=st.integers(min_value=1, max_value=12),
        start=st.integers(min_value=0, max_value=10_000),
        count=st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=120, deadline=None)
    def test_grow_by_one_moves_at_most_ceil_m_over_n_plus_1(
        self, shards, start, count
    ):
        ids = range(start, start + count)
        before = _placements(shards, ids)
        after = _placements(shards + 1, ids)
        moved = [i for i, (a, b) in enumerate(zip(before, after)) if a != b]
        assert len(moved) <= math.ceil(count / (shards + 1))
        # Every relocated key lands on the shard that just joined; the
        # survivors' partition is untouched.
        assert all(after[i] == shards for i in moved)

    @given(
        shards=st.integers(min_value=1, max_value=10),
        start=st.integers(min_value=0, max_value=5_000),
        count=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_shrink_by_one_only_reassigns_the_leaving_shard(
        self, shards, start, count
    ):
        """Scaling n+1 -> n strands only keys of the removed shard."""
        ids = range(start, start + count)
        wide = _placements(shards + 1, ids)
        narrow = _placements(shards, ids)
        for w, n in zip(wide, narrow):
            if w != shards:  # not on the leaving shard: placement sticks
                assert n == w

    @given(shards=st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_full_coverage_and_rough_balance(self, shards):
        ids = range(0, 64 * shards)
        placed = _placements(shards, ids)
        assert set(placed) == set(range(shards))


class TestDeterminism:
    @given(
        shards=st.integers(min_value=1, max_value=8),
        ids=st.lists(
            st.integers(min_value=0, max_value=100_000),
            min_size=1,
            max_size=60,
            unique=True,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_placement_is_order_independent(self, shards, ids):
        """route() is pure: permuting the query order changes nothing."""
        forward = dict(zip(ids, _placements(shards, ids)))
        backward = dict(zip(reversed(ids), _placements(shards, reversed(ids))))
        assert forward == backward

    def test_partition_matches_route(self):
        tasks = make_serve_tasks(seed=3, count=40)
        for policy in ("hash", "length", "stable"):
            router = ShardRouter(shards=3, policy=policy)
            partitions = router.partition(tasks)
            for shard, indices in enumerate(partitions):
                for index in indices:
                    assert router.route(tasks[index], index) == shard

    def test_placement_is_identical_across_processes(self):
        """A spawned interpreter computes the same stable placements."""
        ids = list(range(0, 200, 7))
        script = (
            "import sys; sys.path.insert(0, 'src'); sys.path.insert(0, 'tests/serve')\n"
            "from serve_workloads import make_serve_tasks\n"
            "from repro.serve import ShardRouter\n"
            "tasks = make_serve_tasks(seed=11, count=8)\n"
            "router = ShardRouter(shards=5, policy='stable')\n"
            f"ids = {ids!r}\n"
            "print([router.route(tasks[i % len(tasks)], i) for i in ids])\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
        )
        local = _placements(5, ids)
        assert out.stdout.strip() == repr(local)
