"""Chaos harness: deterministic fault injection across the cluster.

The contract under test is absolute: whatever a :class:`FaultPlan`
throws at a drain -- crashes, stalls, dropped or duplicated dispatches,
alone or stacked on an elastic resize -- :func:`cluster_replay` either
returns results bit-identical to ``Session.align()`` on the same tasks
or raises :class:`ShardFailedError`.  There is no third outcome: no
silent loss, no duplicated delivery, no reordering.  Because the replay
is a pure function of (trace, config, plan), every scenario here is a
repeatable experiment, and hypothesis sweeps the crash/resize timing
instead of relying on wall-clock races.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.serve import (
    ClusterConfig,
    ClusterService,
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    ScalePlan,
    ServeConfig,
    ShardFailedError,
    ShardFaults,
    cluster_replay,
)
from repro.serve.loadgen import LoadGenerator

from serve_workloads import make_serve_tasks

MODELED = ServeConfig(timing="modeled", max_batch_size=8, max_wait_ms=2.0)

ROUTER_POLICIES = ("hash", "length", "stable")

#: One representative plan per fault kind (shard indices valid for >= 2).
FAULT_PLANS = {
    "crash": FaultPlan(crashes=(CrashFault(shard=1, at_ms=3.0),)),
    "delay": FaultPlan(delays=(DelayFault(shard=0, delay_ms=5.0, at_ms=2.0),)),
    "drop": FaultPlan(drops=(DropFault(shard=0, dispatch=1),)),
    "duplicate": FaultPlan(duplicates=(DuplicateFault(shard=1, dispatch=0),)),
    "stacked": FaultPlan(
        crashes=(CrashFault(shard=1, at_ms=6.0),),
        delays=(DelayFault(shard=0, delay_ms=3.0, at_ms=1.0),),
        drops=(DropFault(shard=0, dispatch=2),),
        duplicates=(DuplicateFault(shard=0, dispatch=0),),
    ),
}


@pytest.fixture(scope="module")
def tasks():
    return make_serve_tasks(seed=5, count=24)


@pytest.fixture(scope="module")
def trace(tasks):
    return LoadGenerator(tasks, name="chaos", seed=3).poisson(2000.0, 48)


@pytest.fixture(scope="module")
def direct(trace):
    return list(Session(tasks=list(trace.tasks), engine="batch").align())


class TestFaultPlanValidation:
    def test_trigger_required(self):
        with pytest.raises(ValueError, match="trigger"):
            CrashFault(shard=0)
        with pytest.raises(ValueError, match="trigger"):
            DelayFault(shard=0, delay_ms=5.0)

    def test_one_crash_per_shard(self):
        with pytest.raises(ValueError, match="one CrashFault"):
            FaultPlan(
                crashes=(CrashFault(shard=0, at_ms=1.0), CrashFault(shard=0, at_ms=2.0))
            )

    def test_drop_duplicate_overlap_rejected(self):
        with pytest.raises(ValueError, match="dropped and duplicated"):
            FaultPlan(
                drops=(DropFault(shard=0, dispatch=1),),
                duplicates=(DuplicateFault(shard=0, dispatch=1),),
            )

    def test_plan_must_fit_the_cluster(self, trace):
        plan = FaultPlan(crashes=(CrashFault(shard=5, at_ms=1.0),))
        with pytest.raises(ValueError, match="shard 5"):
            cluster_replay(
                trace, ClusterConfig(serve=MODELED, shards=2), faults=plan
            )

    def test_replay_crash_needs_virtual_time(self, trace):
        plan = FaultPlan(crashes=(CrashFault(shard=0, after_requests=4),))
        with pytest.raises(ValueError, match="at_ms"):
            cluster_replay(
                trace, ClusterConfig(serve=MODELED, shards=2), faults=plan
            )

    def test_shard_faults_after_keeps_future_stalls_only(self):
        plan = FaultPlan(
            delays=(
                DelayFault(shard=0, delay_ms=1.0, at_ms=2.0),
                DelayFault(shard=0, delay_ms=1.0, at_ms=9.0),
            ),
            drops=(DropFault(shard=0, dispatch=3),),
        )
        view = plan.shard_faults(0)
        survivor = view.after(5.0)
        assert survivor.stalls == ((9.0, 1.0),)
        assert survivor.drops == frozenset()  # stays with the dead worker

    def test_empty_view_is_falsy(self):
        assert not ShardFaults()
        assert FaultPlan().max_shard() == -1


class TestChaosMatrix:
    """policies x retry x fault kinds: bit-identical or ShardFailedError."""

    @pytest.mark.parametrize("policy", ROUTER_POLICIES)
    @pytest.mark.parametrize("retry", (False, True))
    @pytest.mark.parametrize("kind", sorted(FAULT_PLANS))
    def test_never_silent_loss_or_duplication(
        self, trace, direct, policy, retry, kind
    ):
        config = ClusterConfig(
            serve=MODELED, shards=2, router=policy, retry_failed=retry
        )
        try:
            report = cluster_replay(trace, config, faults=FAULT_PLANS[kind])
        except ShardFailedError:
            # Only a crash may surface, and only when retry is off (two
            # shards always leave one survivor for the re-route).
            assert kind in ("crash", "stacked") and not retry
            return
        assert len(report.requests) == len(trace)
        assert [r.score for r in report.results()] == [r.score for r in direct]
        assert report.telemetry["admission"]["admitted"] == len(trace)

    @pytest.mark.parametrize("kind", sorted(FAULT_PLANS))
    def test_fault_counters_account_for_every_injection(self, trace, kind):
        config = ClusterConfig(serve=MODELED, shards=2, retry_failed=True)
        plan = FAULT_PLANS[kind]
        report = cluster_replay(trace, config, faults=plan)
        counters = report.telemetry["faults"]
        assert counters["crashes"] == len(plan.crashes)
        assert counters["delays"] == len(plan.delays)
        assert counters["dropped"] == len(plan.drops)
        assert counters["duplicated"] == len(plan.duplicates)

    def test_crash_strands_are_counted_as_retried(self, trace):
        config = ClusterConfig(serve=MODELED, shards=2, retry_failed=True)
        report = cluster_replay(trace, config, faults=FAULT_PLANS["crash"])
        admission = report.telemetry["admission"]
        assert admission["retried"] > 0
        # A crashed-and-replaced shard reports per segment.
        assert len(report.shard_reports) >= report.shards

    def test_config_faults_field_is_the_default_plan(self, trace, direct):
        config = ClusterConfig(
            serve=MODELED,
            shards=2,
            retry_failed=True,
            faults=FAULT_PLANS["delay"],
        )
        report = cluster_replay(trace, config)
        assert report.telemetry["faults"]["delays"] == 1
        assert [r.score for r in report.results()] == [r.score for r in direct]

    def test_delay_pushes_latency_never_correctness(self, trace, direct):
        config = ClusterConfig(serve=MODELED, shards=2)
        clean = cluster_replay(trace, config)
        slow = cluster_replay(
            trace,
            config,
            faults=FaultPlan(
                delays=(DelayFault(shard=0, delay_ms=50.0, at_ms=0.0),)
            ),
        )
        assert [r.score for r in slow.results()] == [r.score for r in direct]
        assert slow.makespan_ms > clean.makespan_ms

    def test_dispatch_faults_rejected_under_continuous_refill(self, trace):
        streaming = ServeConfig(
            engine="batch-sliced", timing="modeled", refill="continuous"
        )
        config = ClusterConfig(serve=streaming, shards=2)
        with pytest.raises(ValueError, match="continuous"):
            cluster_replay(trace, config, faults=FAULT_PLANS["drop"])


class TestElasticChaosSweep:
    """The acceptance sweep: mid-trace 2 -> 4 resize plus a crash."""

    @given(
        resize_ms=st.floats(min_value=0.5, max_value=25.0),
        crash_ms=st.floats(min_value=0.5, max_value=30.0),
        crash_shard=st.integers(min_value=0, max_value=3),
        policy=st.sampled_from(ROUTER_POLICIES),
    )
    @settings(max_examples=25, deadline=None)
    def test_resize_plus_crash_stays_bit_identical(
        self, trace, direct, resize_ms, crash_ms, crash_shard, policy
    ):
        config = ClusterConfig(
            serve=MODELED, shards=2, router=policy, retry_failed=True
        )
        plan = FaultPlan(crashes=(CrashFault(shard=crash_shard, at_ms=crash_ms),))
        try:
            report = cluster_replay(
                trace,
                config,
                resize_at=ScalePlan(steps=((resize_ms, 4),)),
                faults=plan,
            )
        except ShardFailedError:
            pytest.fail("retry_failed=True with >= 2 shards must survive one crash")
        assert report.shards == 4
        assert [r.score for r in report.results()] == [r.score for r in direct]
        resize = report.telemetry["resize"]
        assert resize["events"] == 1

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_replay_is_a_pure_function_of_the_plan(self, trace, data):
        crash_ms = data.draw(st.floats(min_value=1.0, max_value=20.0))
        config = ClusterConfig(serve=MODELED, shards=3, retry_failed=True)
        plan = FaultPlan(crashes=(CrashFault(shard=1, at_ms=crash_ms),))
        first = cluster_replay(trace, config, faults=plan)
        second = cluster_replay(trace, config, faults=plan)
        assert first.makespan_ms == second.makespan_ms
        assert [r.completion_ms for r in first.requests] == [
            r.completion_ms for r in second.requests
        ]


@pytest.fixture(scope="module")
def direct_tasks(tasks):
    return list(Session(tasks=list(tasks), engine="batch").align())


class TestLiveFaults:
    """The same plan drives real worker processes (small, smoke-level)."""

    def test_live_served_count_triggers(self, tasks, direct_tasks):
        plan = FaultPlan(
            crashes=(CrashFault(shard=1, after_requests=4),),
            delays=(DelayFault(shard=0, delay_ms=5.0, after_requests=2),),
            drops=(DropFault(shard=0, dispatch=1),),
            duplicates=(DuplicateFault(shard=0, dispatch=3),),
        )
        config = ClusterConfig(
            serve=ServeConfig(engine="batch", max_batch_size=4, max_wait_ms=1.0),
            shards=2,
            retry_failed=True,
            faults=plan,
        )
        with ClusterService(config) as cluster:
            futures = [cluster.submit(task) for task in tasks]
            scores = [future.result().score for future in futures]
        assert scores == [r.score for r in direct_tasks]
        summary = cluster.telemetry_summary()
        assert summary["faults"]["crashes"] == 1
        assert summary["faults"]["dropped"] == 1
        assert summary["faults"]["duplicated"] == 1
        assert summary["admission"]["retried"] > 0

    def test_retried_requests_bypass_class_limits(self, tasks, direct_tasks):
        """Crash re-routes go straight to the survivor's queue: admission
        (including per-class budgets) gates *arrivals*, and a retried
        request was already admitted once -- it must never be rejected on
        its second placement."""
        plan = FaultPlan(crashes=(CrashFault(shard=1, after_requests=2),))
        config = ClusterConfig(
            serve=ServeConfig(engine="batch", max_batch_size=4, max_wait_ms=1.0),
            shards=2,
            retry_failed=True,
            class_limits={0: 4},
            faults=plan,
        )
        with ClusterService(config) as cluster:
            futures = []
            for task in tasks:
                while True:
                    try:
                        futures.append(cluster.submit(task))
                        break
                    except Exception:  # class budget full: drain a little
                        futures[0].result()
            scores = [future.result().score for future in futures]
        assert scores == [r.score for r in direct_tasks]
        summary = cluster.telemetry_summary()
        assert summary["admission"]["retried"] > 0
        # Every submit above eventually landed; retries never re-enter
        # admission, so they cannot add rejections of their own.
        assert summary["admission"]["admitted"] == len(tasks)

    def test_live_crash_without_retry_fails_stranded_futures(self, tasks):
        plan = FaultPlan(crashes=(CrashFault(shard=0, after_requests=2),))
        config = ClusterConfig(
            serve=ServeConfig(engine="batch", max_batch_size=2, max_wait_ms=1.0),
            shards=1,
            max_restarts=0,
            faults=plan,
        )
        with ClusterService(config) as cluster:
            futures = [cluster.submit(task) for task in tasks[:8]]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=30))
                except ShardFailedError:
                    outcomes.append(None)
        assert any(outcome is None for outcome in outcomes)
        assert cluster.telemetry_summary()["faults"]["crashes"] == 1
