"""Live elastic scaling: ``ClusterService.scale_to`` up, down and back.

Small real-process tests (the wide deterministic sweeps live in
``test_faults.py`` / ``test_cluster.py`` on the virtual clock): growing
and shrinking a serving cluster mid-stream must never lose, duplicate or
reorder a result, retired worker slots must be reusable, and -- the
regression this file exists for -- a cleanly drained worker must never
be mistaken for a crash, however the sentinel and the monitor's join
race each other.
"""

import pytest

from repro.api import Session
from repro.serve import ClusterConfig, ClusterService, ServeConfig

from serve_workloads import make_serve_tasks

LIVE = ServeConfig(engine="batch", max_batch_size=4, max_wait_ms=1.0)


@pytest.fixture(scope="module")
def tasks():
    return make_serve_tasks(seed=5, count=24)


@pytest.fixture(scope="module")
def direct(tasks):
    return list(Session(tasks=tasks, engine="batch").align())


class TestScaleTo:
    def test_scale_up_mid_stream(self, tasks, direct):
        with ClusterService(ClusterConfig(serve=LIVE, shards=2)) as cluster:
            futures = [cluster.submit(task) for task in tasks[:8]]
            assert cluster.scale_to(4) == 4
            assert cluster.active_shards == 4
            futures += [cluster.submit(task) for task in tasks[8:]]
            scores = [future.result().score for future in futures]
        assert scores == [r.score for r in direct]
        summary = cluster.telemetry_summary()
        assert summary["resize"]["events"] == 1
        assert summary["faults"]["crashes"] == 0

    def test_scale_down_preempts_and_reroutes_queued(self, tasks, direct):
        with ClusterService(ClusterConfig(serve=LIVE, shards=4)) as cluster:
            futures = [cluster.submit(task) for task in tasks[:12]]
            assert cluster.scale_to(1) == 1
            futures += [cluster.submit(task) for task in tasks[12:]]
            scores = [future.result().score for future in futures]
        assert scores == [r.score for r in direct]
        summary = cluster.telemetry_summary()
        assert summary["resize"]["events"] == 1
        # Draining three of four shards is a crash-free operation.
        assert summary["faults"]["crashes"] == 0
        assert summary["admission"]["retried"] == 0

    def test_scale_down_then_up_reuses_retired_slots(self, tasks, direct):
        with ClusterService(ClusterConfig(serve=LIVE, shards=2)) as cluster:
            first = [cluster.submit(task) for task in tasks[:6]]
            cluster.scale_to(1)
            for future in first:
                future.result()
            cluster.scale_to(2)
            second = [cluster.submit(task) for task in tasks[6:]]
            scores = [f.result().score for f in first + second]
        assert scores == [r.score for r in direct]
        assert cluster.telemetry_summary()["resize"]["events"] == 2

    def test_scale_to_before_start_reshapes_the_config(self, tasks, direct):
        cluster = ClusterService(ClusterConfig(serve=LIVE, shards=2))
        cluster.scale_to(3)
        assert cluster.config.shards == 3
        with cluster:
            results = cluster.map(tasks)
        assert [r.score for r in results] == [r.score for r in direct]
        # A pre-start reshape is configuration, not an elastic event.
        assert cluster.telemetry_summary()["resize"]["events"] == 0

    def test_noop_resize_records_nothing(self, tasks):
        with ClusterService(ClusterConfig(serve=LIVE, shards=2)) as cluster:
            cluster.submit(tasks[0]).result()
            assert cluster.scale_to(2) == 2
        assert cluster.telemetry_summary()["resize"]["events"] == 0

    def test_scale_validation(self, tasks):
        cluster = ClusterService(ClusterConfig(serve=LIVE, shards=2))
        with pytest.raises(ValueError, match=">= 1"):
            cluster.scale_to(0)
        with cluster:
            cluster.submit(tasks[0]).result()
        with pytest.raises(RuntimeError, match="shut down"):
            cluster.scale_to(3)


class TestCleanExitIsNotACrash:
    """Regression: the drain sentinel is authoritative for the monitor.

    The worker's clean exit used to race the collector's ``("exit", s)``
    marker: if ``process.join()`` returned first, the monitor counted a
    crash, "re-routed" an empty strand set and spawned a replacement for
    a cluster that was shutting down.  Scale-down drains hit the same
    window on every resize, which is why the sentinel flag (set before
    the sentinel ships) now decides.
    """

    def test_shutdown_loop_never_counts_phantom_crashes(self, tasks, direct):
        expected = [r.score for r in direct[:6]]
        for iteration in range(5):
            with ClusterService(ClusterConfig(serve=LIVE, shards=2)) as cluster:
                results = cluster.map(tasks[:6])
            assert [r.score for r in results] == expected
            summary = cluster.telemetry_summary()
            assert summary["faults"]["crashes"] == 0, f"iteration {iteration}"
            assert summary["admission"]["retried"] == 0, f"iteration {iteration}"

    def test_repeated_resizes_stay_crash_free(self, tasks, direct):
        with ClusterService(ClusterConfig(serve=LIVE, shards=1)) as cluster:
            futures = []
            for width, chunk in ((2, tasks[:8]), (3, tasks[8:16]), (1, tasks[16:])):
                cluster.scale_to(width)
                futures += [cluster.submit(task) for task in chunk]
            scores = [future.result().score for future in futures]
        assert scores == [r.score for r in direct]
        summary = cluster.telemetry_summary()
        assert summary["resize"]["events"] == 3
        assert summary["faults"]["crashes"] == 0
