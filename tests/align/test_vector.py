"""Equivalence tests for the whole-array NumPy ``vector`` engine.

The dense batch engine defines the semantics (and is itself pinned to
the scalar oracle by ``test_batch.py``); the vector sweep must reproduce
its scores, maximum cells, termination anti-diagonals, work counters and
per-anti-diagonal profiles bit for bit -- across slice widths, bucket
sizes, termination kinds, mixed scoring schemes and the int64 fallback
for value ranges that do not fit the 32-bit fast path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.antidiagonal import antidiagonal_align
from repro.align.batch import DEFAULT_SLICE_WIDTH, ENGINE_SLICE_WIDTHS, batch_align
from repro.align.scoring import ScoringScheme, preset
from repro.align.sequence import encode, mutate, random_sequence
from repro.align.termination import make_termination
from repro.align.types import AlignmentTask

pytest.importorskip(
    "repro.align.vector",
    reason="the vector engine needs NumPy (the [vector] extra)",
)
from repro.align.vector import (  # noqa: E402
    DEFAULT_VECTOR_BUCKET_SIZE,
    vector_align,
)


def _assert_same(expected, got):
    """Full bit-exactness check between two results."""
    assert expected.score == got.score
    assert expected.max_i == got.max_i
    assert expected.max_j == got.max_j
    assert expected.terminated == got.terminated
    assert expected.antidiagonals_processed == got.antidiagonals_processed
    assert expected.cells_computed == got.cells_computed


def _mixed_tasks(rng, n, *, scoring=None, max_len=400, divergent_fraction=0.7):
    """Mixed-length tasks where most pairs Z-drop early and a few run on."""
    tasks = []
    for t in range(n):
        length = int(rng.integers(1, max_len))
        ref = random_sequence(length, rng)
        if rng.random() < divergent_fraction:
            query = random_sequence(int(rng.integers(1, max_len)), rng)
        else:
            query = mutate(ref, rng, substitution_rate=0.05)
        tasks.append(AlignmentTask(ref=ref, query=query, scoring=scoring, task_id=t))
    return tasks


class TestAgainstBatchEngine:
    @pytest.mark.parametrize("slice_width", [1, 3, DEFAULT_SLICE_WIDTH, 1000, None])
    @pytest.mark.parametrize("termination", ["zdrop", "xdrop", "none"])
    def test_mixed_workload_matches_batch(self, slice_width, termination):
        """Aggressive early termination across ragged buckets."""
        rng = np.random.default_rng(17)
        scoring = preset("map-ont", band_width=32, zdrop=40)
        tasks = _mixed_tasks(rng, 48, scoring=scoring)
        dense = batch_align(tasks, termination=termination, bucket_size=16)
        vector = vector_align(
            tasks,
            termination=termination,
            bucket_size=16,
            slice_width=slice_width,
        )
        for d, v in zip(dense, vector):
            _assert_same(d, v)

    def test_matches_scalar_oracle(self):
        """The vector sweep is pinned to the oracle, not just to batch."""
        rng = np.random.default_rng(23)
        scoring = preset("map-ont", band_width=48, zdrop=60)
        tasks = _mixed_tasks(rng, 24, scoring=scoring)
        vector = vector_align(tasks, bucket_size=8)
        for task, v in zip(tasks, vector):
            cond = make_termination(task.scoring, "zdrop")
            _assert_same(
                antidiagonal_align(task.ref, task.query, task.scoring, cond), v
            )

    def test_profiles_match_batch(self):
        rng = np.random.default_rng(29)
        scoring = preset("map-hifi", band_width=17, zdrop=30)
        tasks = _mixed_tasks(rng, 20, scoring=scoring)
        dense = batch_align(tasks, bucket_size=6, return_profiles=True)
        vector = vector_align(
            tasks, bucket_size=6, return_profiles=True, slice_width=5
        )
        for dp, vp in zip(dense, vector):
            _assert_same(dp.result, vp.result)
            assert np.array_equal(dp.antidiag_maxima, vp.antidiag_maxima)
            assert np.array_equal(dp.cells_per_antidiag, vp.cells_per_antidiag)

    def test_mixed_scoring_schemes_in_one_bucket(self):
        """Buckets mixing presets exercise the multi-scheme match lookup."""
        rng = np.random.default_rng(31)
        presets = ["map-ont", "map-hifi", "map-pb"]
        tasks = []
        for t in range(30):
            scoring = preset(presets[t % 3], band_width=24, zdrop=40)
            ref = random_sequence(int(rng.integers(1, 200)), rng)
            if t % 2:
                query = mutate(ref, rng, substitution_rate=0.1)
            else:
                query = random_sequence(int(rng.integers(1, 200)), rng)
            tasks.append(
                AlignmentTask(ref=ref, query=query, scoring=scoring, task_id=t)
            )
        dense = batch_align(tasks, bucket_size=32)
        vector = vector_align(tasks, bucket_size=32)
        for d, v in zip(dense, vector):
            _assert_same(d, v)

    def test_int64_fallback_for_wide_value_ranges(self):
        """Pathological gap costs overflow the int32 bound; results stay exact."""
        rng = np.random.default_rng(5)
        scoring = ScoringScheme(
            match=2,
            mismatch=4,
            gap_open=2**28,
            gap_extend=2,
            band_width=16,
            zdrop=50,
        )
        tasks = _mixed_tasks(rng, 10, scoring=scoring, max_len=100)
        dense = batch_align(tasks)
        vector = vector_align(tasks)
        for d, v in zip(dense, vector):
            _assert_same(d, v)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_tasks=st.integers(min_value=1, max_value=12),
        bucket_size=st.integers(min_value=1, max_value=12),
        slice_width=st.integers(min_value=1, max_value=40),
        band_width=st.integers(min_value=0, max_value=16),
        zdrop=st.integers(min_value=1, max_value=25),
        gap_open=st.integers(min_value=0, max_value=6),
        gap_extend=st.integers(min_value=1, max_value=3),
    )
    def test_property_vector_equals_batch(
        self, seed, n_tasks, bucket_size, slice_width, band_width, zdrop,
        gap_open, gap_extend,
    ):
        """Hypothesis: the array sweep never changes any observable output.

        Random mixed-length batches under aggressive Z-drop thresholds:
        scores, maximum cells, termination anti-diagonals and work
        counters of the vector engine equal the dense batch engine's
        (and therefore the scalar oracle's) bit for bit.
        """
        rng = np.random.default_rng(seed)
        scoring = ScoringScheme(
            match=2,
            mismatch=4,
            gap_open=gap_open,
            gap_extend=gap_extend,
            band_width=band_width,
            zdrop=zdrop,
        )
        tasks = _mixed_tasks(rng, n_tasks, scoring=scoring, max_len=80)
        dense = batch_align(tasks, bucket_size=bucket_size)
        vector = vector_align(
            tasks, bucket_size=bucket_size, slice_width=slice_width
        )
        for d, v in zip(dense, vector):
            _assert_same(d, v)


class TestVectorMechanics:
    def test_empty_task_list(self):
        assert vector_align([]) == []

    def test_empty_sequences(self):
        scoring = preset("map-ont")
        tasks = [
            AlignmentTask(ref=encode(""), query=encode("ACG"), scoring=scoring),
            AlignmentTask(ref=encode("ACGT"), query=encode(""), scoring=scoring),
            AlignmentTask(
                ref=encode("ACGTAC"), query=encode("ACGTAC"), scoring=scoring
            ),
        ]
        results = vector_align(tasks)
        assert results[0].score == 0
        assert results[0].cells_computed == 0
        assert results[1].score == 0
        for d, v in zip(batch_align(tasks), results):
            _assert_same(d, v)

    def test_rejects_non_positive_slice_width(self):
        scoring = preset("figure1")
        task = AlignmentTask(ref=encode("ACG"), query=encode("ACG"), scoring=scoring)
        with pytest.raises(ValueError, match="slice_width"):
            vector_align([task], slice_width=0)
        with pytest.raises(ValueError, match="slice_width"):
            vector_align([task], slice_width=-3)

    def test_everyone_terminates_before_second_slice(self):
        """All-divergent bucket: compaction empties it, sweep stops early."""
        rng = np.random.default_rng(31)
        scoring = preset("map-ont", band_width=16, zdrop=10)
        tasks = [
            AlignmentTask(
                ref=random_sequence(300, rng),
                query=random_sequence(300, rng),
                scoring=scoring,
                task_id=t,
            )
            for t in range(8)
        ]
        dense = batch_align(tasks)
        vector = vector_align(tasks, slice_width=8)
        for d, v in zip(dense, vector):
            _assert_same(d, v)
            assert v.terminated

    def test_engine_slice_widths_mapping(self):
        """``vector`` compacts like ``batch-sliced`` by default."""
        assert ENGINE_SLICE_WIDTHS["vector"] == DEFAULT_SLICE_WIDTH

    def test_default_bucket_size_is_larger_than_batch(self):
        from repro.align.batch import DEFAULT_BUCKET_SIZE

        assert DEFAULT_VECTOR_BUCKET_SIZE > DEFAULT_BUCKET_SIZE
