"""Tests for nucleotide encoding and the synthetic error model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.sequence import (
    ALPHABET,
    BASE_TO_CODE,
    decode,
    encode,
    mutate,
    random_sequence,
    reverse_complement,
)


class TestEncodeDecode:
    def test_encode_string(self):
        assert encode("ACGTN").tolist() == [0, 1, 2, 3, 4]

    def test_encode_lowercase(self):
        assert encode("acgt").tolist() == [0, 1, 2, 3]

    def test_unknown_characters_become_n(self):
        assert encode("AXZ").tolist() == [0, 4, 4]

    def test_encode_list_of_codes(self):
        assert encode([0, 3, 2]).tolist() == [0, 3, 2]

    def test_encode_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            encode([0, 9])

    def test_encode_rejects_2d_arrays(self):
        with pytest.raises(ValueError):
            encode(np.zeros((2, 2), dtype=np.uint8))

    def test_decode_round_trip(self):
        assert decode(encode("GATTACA")) == "GATTACA"

    def test_decode_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            decode(np.array([0, 7], dtype=np.uint8))

    @given(st.text(alphabet=ALPHABET, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, text):
        assert decode(encode(text)) == text


class TestRandomSequence:
    def test_length_and_range(self):
        rng = np.random.default_rng(0)
        seq = random_sequence(500, rng)
        assert seq.size == 500
        assert seq.max() < 4

    def test_n_fraction(self):
        rng = np.random.default_rng(0)
        seq = random_sequence(2000, rng, n_fraction=0.5)
        n_count = int((seq == BASE_TO_CODE["N"]).sum())
        assert 700 < n_count < 1300

    def test_zero_length(self):
        assert random_sequence(0, np.random.default_rng(0)).size == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            random_sequence(-1, np.random.default_rng(0))

    def test_bad_n_fraction_rejected(self):
        with pytest.raises(ValueError):
            random_sequence(10, np.random.default_rng(0), n_fraction=1.5)


class TestMutate:
    def test_no_errors_is_identity(self):
        rng = np.random.default_rng(1)
        seq = random_sequence(300, rng)
        assert np.array_equal(mutate(seq, rng), seq)

    def test_substitutions_preserve_length(self):
        rng = np.random.default_rng(1)
        seq = random_sequence(300, rng)
        out = mutate(seq, rng, substitution_rate=0.5)
        assert out.size == seq.size
        assert not np.array_equal(out, seq)

    def test_substituted_bases_differ(self):
        rng = np.random.default_rng(1)
        seq = random_sequence(500, rng)
        out = mutate(seq, rng, substitution_rate=1.0)
        assert not np.any(out == seq)

    def test_deletions_shorten(self):
        rng = np.random.default_rng(2)
        seq = random_sequence(400, rng)
        out = mutate(seq, rng, deletion_rate=0.3)
        assert out.size < seq.size

    def test_insertions_lengthen(self):
        rng = np.random.default_rng(3)
        seq = random_sequence(400, rng)
        out = mutate(seq, rng, insertion_rate=0.3)
        assert out.size > seq.size

    def test_empty_sequence(self):
        rng = np.random.default_rng(4)
        out = mutate(np.empty(0, dtype=np.uint8), rng, substitution_rate=0.5)
        assert out.size == 0

    def test_invalid_rate_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            mutate(random_sequence(10, rng), rng, substitution_rate=1.5)

    def test_invalid_indel_length_rejected(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            mutate(random_sequence(10, rng), rng, max_indel_length=0)


class TestReverseComplement:
    def test_simple(self):
        assert decode(reverse_complement(encode("ACGTN"))) == "NACGT"

    def test_involution(self):
        rng = np.random.default_rng(6)
        seq = random_sequence(123, rng)
        assert np.array_equal(reverse_complement(reverse_complement(seq)), seq)
