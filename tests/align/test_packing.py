"""Tests for 4-bit input packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.packing import (
    LITERALS_PER_WORD,
    PackedSequence,
    pack_sequence,
    unpack_sequence,
)
from repro.align.sequence import random_sequence


class TestPacking:
    def test_round_trip_small(self):
        codes = np.array([0, 1, 2, 3, 4, 0, 1, 2, 3], dtype=np.uint8)
        assert np.array_equal(unpack_sequence(pack_sequence(codes)), codes)

    @given(st.lists(st.integers(0, 4), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, codes):
        arr = np.asarray(codes, dtype=np.uint8)
        assert np.array_equal(unpack_sequence(pack_sequence(arr)), arr)

    def test_word_count(self):
        packed = pack_sequence(random_sequence(17, np.random.default_rng(0)))
        assert packed.num_words == 3
        assert len(packed) == 17

    def test_empty_sequence(self):
        packed = pack_sequence(np.empty(0, dtype=np.uint8))
        assert packed.num_words == 0
        assert unpack_sequence(packed).size == 0

    def test_get_matches_original(self):
        seq = random_sequence(50, np.random.default_rng(1))
        packed = pack_sequence(seq)
        for i in range(50):
            assert packed.get(i) == seq[i]

    def test_get_out_of_range(self):
        packed = pack_sequence(random_sequence(8, np.random.default_rng(2)))
        with pytest.raises(IndexError):
            packed.get(8)

    def test_word_for_block(self):
        seq = random_sequence(16, np.random.default_rng(3))
        packed = pack_sequence(seq)
        assert packed.word_for_block(0) == int(packed.words[0])
        with pytest.raises(IndexError):
            packed.word_for_block(2)

    def test_eight_literals_per_word(self):
        assert LITERALS_PER_WORD == 8

    def test_invalid_codes_rejected(self):
        with pytest.raises(ValueError):
            pack_sequence(np.array([0, 9], dtype=np.uint8))

    def test_packed_sequence_validation(self):
        with pytest.raises(ValueError):
            PackedSequence(words=np.zeros(1, dtype=np.uint32), length=20)
