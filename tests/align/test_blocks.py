"""Tests for the block decomposition of the banded table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.banding import BandGeometry
from repro.align.blocks import BlockGrid


def brute_force_in_band_blocks(grid: BlockGrid):
    """In-band blocks found by checking every cell."""
    geom = grid.geometry
    blocks = set()
    for i in range(geom.ref_len):
        for j in range(geom.query_len):
            if geom.in_band(i, j):
                blocks.add((i // grid.block_size, j // grid.block_size))
    return blocks


class TestMembership:
    @given(
        n=st.integers(1, 60),
        m=st.integers(1, 60),
        w=st.integers(0, 21),
        b=st.sampled_from([4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_block_in_band_matches_brute_force(self, n, m, w, b):
        grid = BlockGrid(BandGeometry(n, m, w), b)
        expected = brute_force_in_band_blocks(grid)
        actual = {
            (bi, bj)
            for bj in range(grid.num_block_rows)
            for bi in range(grid.num_block_cols)
            if grid.block_in_band(bi, bj)
        }
        assert actual == expected

    def test_in_band_block_cols_consistent(self):
        grid = BlockGrid(BandGeometry(100, 90, 17), 8)
        expected = brute_force_in_band_blocks(grid)
        for bj in range(grid.num_block_rows):
            lo, hi = grid.in_band_block_cols(bj)
            cols = {bi for (bi, row) in expected if row == bj}
            if cols:
                assert (lo, hi) == (min(cols), max(cols))
            else:
                assert lo > hi

    def test_counts_match(self):
        grid = BlockGrid(BandGeometry(100, 90, 17), 8)
        assert grid.total_in_band_blocks == len(brute_force_in_band_blocks(grid))
        assert grid.blocks_per_block_antidiagonal.sum() == grid.total_in_band_blocks


class TestCompletion:
    def test_cell_antidiags_completed(self):
        grid = BlockGrid(BandGeometry(64, 64, 9), 8)
        assert grid.cell_antidiags_completed_by(-1) == 0
        assert grid.cell_antidiags_completed_by(0) == 8
        assert (
            grid.cell_antidiags_completed_by(10_000)
            == grid.geometry.num_antidiagonals
        )

    def test_inverse_relation(self):
        grid = BlockGrid(BandGeometry(64, 64, 9), 8)
        for cells in (1, 8, 9, 33, 120):
            a = grid.block_antidiag_required_for(cells)
            assert grid.cell_antidiags_completed_by(a) >= min(
                cells, grid.geometry.num_antidiagonals
            )
            if a > 0:
                assert grid.cell_antidiags_completed_by(a - 1) < cells

    def test_blocks_up_to_block_antidiag_monotone(self):
        grid = BlockGrid(BandGeometry(80, 70, 15), 8)
        counts = [
            grid.blocks_up_to_block_antidiag(a)
            for a in range(grid.num_block_antidiagonals)
        ]
        assert counts == sorted(counts)
        assert counts[-1] == grid.total_in_band_blocks

    def test_blocks_in_block_rows(self):
        grid = BlockGrid(BandGeometry(80, 70, 15), 8)
        total = grid.blocks_in_block_rows(0, grid.num_block_rows - 1)
        assert total == grid.total_in_band_blocks
        assert grid.blocks_in_block_rows(3, 2) == 0


class TestValidation:
    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            BlockGrid(BandGeometry(8, 8, 3), 0)

    def test_band_rows_in_blocks(self):
        grid = BlockGrid(BandGeometry(200, 200, 16), 8)
        assert grid.band_rows_in_blocks == 3
        unbanded = BlockGrid(BandGeometry(64, 64, 0), 8)
        assert unbanded.band_rows_in_blocks == unbanded.num_block_rows
