"""The streaming engine contract: streams, refill, and the adapter.

Two exactness claims anchor this file.  First, a stream drained in one
go is the one-shot engine (``batch_align`` / ``vector_align`` are thin
wrappers over the streams, so this is almost definitional).  Second --
the claim the serve scheduler relies on -- *admission order does not
matter*: tasks admitted into lanes freed mid-sweep score bit-identically
to a fresh one-shot call, whatever the interleaving of ``admit`` and
``step``.  A Hypothesis property drives random admission schedules
against the scalar-pinned one-shot results to check exactly that.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.batch import DEFAULT_SLICE_WIDTH, BatchStream, batch_align
from repro.align.scoring import preset
from repro.align.sequence import encode, mutate, random_sequence
from repro.align.streaming import InFlightBatch, OneShotBatch, SliceStats
from repro.align.types import AlignmentTask


def _mixed_tasks(rng, n, *, scoring, max_len=200, divergent_fraction=0.6):
    tasks = []
    for t in range(n):
        length = int(rng.integers(1, max_len))
        ref = random_sequence(length, rng)
        if rng.random() < divergent_fraction:
            query = random_sequence(int(rng.integers(1, max_len)), rng)
        else:
            query = mutate(ref, rng, substitution_rate=0.05)
        tasks.append(AlignmentTask(ref=ref, query=query, scoring=scoring, task_id=t))
    return tasks


def _assert_same(a, b):
    assert a.score == b.score
    assert a.max_i == b.max_i
    assert a.max_j == b.max_j
    assert a.terminated == b.terminated
    assert a.antidiagonals_processed == b.antidiagonals_processed
    assert a.cells_computed == b.cells_computed


def _run_schedule(stream, tasks, chunks):
    """Admit ``tasks`` in ``chunks`` as lanes free up, stepping between."""
    queue = list(tasks)
    sizes = list(chunks)
    collected = {}
    while queue or stream.live:
        if queue:
            want = min(sizes.pop(0) if sizes else len(queue), len(queue))
            take = min(want, stream.free)
            if take:
                stream.admit([queue.pop(0) for _ in range(take)])
        if stream.live:
            stream.step(1)
        for index, result in stream.take_completed():
            assert index not in collected
            collected[index] = result
    return [collected[i] for i in range(len(tasks))]


class TestBatchStream:
    def test_is_an_inflight_batch(self):
        assert isinstance(BatchStream(), InFlightBatch)
        assert isinstance(OneShotBatch(lambda tasks: []), InFlightBatch)

    def test_drain_matches_one_shot(self):
        rng = np.random.default_rng(11)
        scoring = preset("map-ont", band_width=24, zdrop=40)
        tasks = _mixed_tasks(rng, 20, scoring=scoring)
        stream = BatchStream(tasks, slice_width=7)
        results = stream.drain()
        for got, want in zip(results, batch_align(tasks, slice_width=7)):
            _assert_same(got, want)
        assert stream.done and stream.live == 0

    def test_staged_admission_bit_identical(self):
        """Refilling freed lanes never changes any per-task output."""
        rng = np.random.default_rng(13)
        scoring = preset("map-ont", band_width=16, zdrop=25)
        tasks = _mixed_tasks(rng, 30, scoring=scoring)
        oracle = batch_align(tasks)
        stream = BatchStream(capacity=6, slice_width=5)
        results = _run_schedule(stream, tasks, chunks=[6, 1, 3, 2] * 10)
        for got, want in zip(results, oracle):
            _assert_same(got, want)

    def test_admission_indices_and_capacity_accounting(self):
        scoring = preset("map-ont", band_width=8, zdrop=200)
        tasks = _mixed_tasks(np.random.default_rng(7), 5, scoring=scoring)
        stream = BatchStream(capacity=4, slice_width=3)
        assert stream.admit(tasks[:3]) == [0, 1, 2]
        assert (stream.live, stream.free, stream.admitted) == (3, 1, 3)
        with pytest.raises(ValueError, match="lanes are free"):
            stream.admit(tasks[3:])
        assert stream.admit(tasks[3:4]) == [3]
        assert stream.free == 0

    def test_step_rejects_non_positive(self):
        with pytest.raises(ValueError, match="n_slices"):
            BatchStream().step(0)

    def test_slice_stats_chain(self):
        """Stats cover every retirement and occupancy stays in [0, 1]."""
        rng = np.random.default_rng(19)
        scoring = preset("map-ont", band_width=16, zdrop=30)
        tasks = _mixed_tasks(rng, 12, scoring=scoring)
        stream = BatchStream(tasks, capacity=12, slice_width=6)
        stream.drain()
        stats = stream.stats
        assert [s.index for s in stats] == list(range(len(stats)))
        assert sum(s.completed for s in stats) == len(tasks)
        assert sum(s.admitted for s in stats) == len(tasks)
        for s in stats:
            assert 0.0 <= s.occupancy <= 1.0
            assert s.capacity == 12
            assert s.live_after == s.live_before - s.completed
            assert s.terminated <= s.completed

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_tasks=st.integers(min_value=1, max_value=14),
        capacity=st.integers(min_value=1, max_value=6),
        slice_width=st.integers(min_value=1, max_value=20),
        chunks=st.lists(st.integers(min_value=1, max_value=6), max_size=8),
        zdrop=st.integers(min_value=5, max_value=60),
    )
    def test_property_admission_order_is_irrelevant(
        self, seed, n_tasks, capacity, slice_width, chunks, zdrop
    ):
        """Arbitrary admit/step interleavings equal the one-shot engine."""
        rng = np.random.default_rng(seed)
        scoring = preset("map-ont", band_width=12, zdrop=zdrop)
        tasks = _mixed_tasks(rng, n_tasks, scoring=scoring, max_len=60)
        oracle = batch_align(tasks)
        stream = BatchStream(capacity=capacity, slice_width=slice_width)
        results = _run_schedule(stream, tasks, chunks)
        for got, want in zip(results, oracle):
            _assert_same(got, want)


class TestVectorStream:
    def test_staged_admission_matches_batch_engine(self):
        vector = pytest.importorskip("repro.align.vector")
        rng = np.random.default_rng(23)
        scoring = preset("map-ont", band_width=16, zdrop=35)
        tasks = _mixed_tasks(rng, 18, scoring=scoring)
        oracle = batch_align(tasks)
        stream = vector.VectorStream(capacity=5, slice_width=4)
        results = _run_schedule(stream, tasks, chunks=[5, 2, 1] * 8)
        for got, want in zip(results, oracle):
            _assert_same(got, want)

    def test_drain_matches_vector_align(self):
        vector = pytest.importorskip("repro.align.vector")
        rng = np.random.default_rng(29)
        scoring = preset("map-hifi", band_width=12, zdrop=50)
        tasks = _mixed_tasks(rng, 10, scoring=scoring)
        stream = vector.VectorStream(tasks, slice_width=9)
        for got, want in zip(stream.drain(), vector.vector_align(tasks, slice_width=9)):
            _assert_same(got, want)


class TestOneShotBatch:
    def _engine_calls(self):
        calls = []

        def engine(tasks, **kwargs):
            calls.append((len(tasks), dict(kwargs)))
            return batch_align(tasks)

        return engine, calls

    def test_drain_is_one_engine_call(self):
        scoring = preset("map-ont", band_width=8, zdrop=100)
        tasks = _mixed_tasks(np.random.default_rng(3), 6, scoring=scoring)
        engine, calls = self._engine_calls()
        handle = OneShotBatch(engine, tasks, engine_kwargs={"batch_size": 4})
        results = handle.drain()
        assert calls == [(6, {"batch_size": 4})]
        for got, want in zip(results, batch_align(tasks)):
            _assert_same(got, want)
        (stat,) = handle.stats
        assert stat.completed == 6 and stat.occupancy == 1.0

    def test_step_scores_everything_pending(self):
        scoring = preset("map-ont", band_width=8, zdrop=100)
        tasks = _mixed_tasks(np.random.default_rng(5), 4, scoring=scoring)
        engine, calls = self._engine_calls()
        handle = OneShotBatch(engine, capacity=8)
        handle.admit(tasks[:3])
        assert handle.live == 3 and handle.free == 5
        handle.step()
        assert handle.done
        assert sorted(index for index, _ in handle.take_completed()) == [0, 1, 2]
        handle.admit(tasks[3:])
        handle.step()
        assert [index for index, _ in handle.take_completed()] == [3]
        assert [n for n, _ in calls] == [3, 1]

    def test_step_on_empty_is_a_noop(self):
        engine, calls = self._engine_calls()
        handle = OneShotBatch(engine, capacity=2)
        assert handle.step() == []
        assert calls == []

    def test_short_engine_raises(self):
        scoring = preset("map-ont")
        task = AlignmentTask(ref=encode("ACGT"), query=encode("ACGT"), scoring=scoring)
        handle = OneShotBatch(lambda tasks: [], [task])
        with pytest.raises(ValueError, match="returned 0 results for a batch of 1"):
            handle.step()

    def test_admit_beyond_capacity_raises(self):
        scoring = preset("map-ont")
        task = AlignmentTask(ref=encode("AC"), query=encode("AC"), scoring=scoring)
        handle = OneShotBatch(lambda tasks: batch_align(tasks), [task], capacity=1)
        with pytest.raises(ValueError, match="lanes are free"):
            handle.admit([task])


class TestSliceStats:
    def test_occupancy_and_live_after(self):
        stat = SliceStats(
            index=0, admitted=3, live_before=6, completed=2, terminated=1, capacity=8
        )
        assert stat.occupancy == 0.75
        assert stat.live_after == 4

    def test_zero_capacity_occupancy(self):
        stat = SliceStats(
            index=0, admitted=0, live_before=0, completed=0, terminated=0, capacity=0
        )
        assert stat.occupancy == 0.0

    def test_default_slice_width_is_positive(self):
        assert DEFAULT_SLICE_WIDTH > 0
