"""Tests for band geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.banding import BandGeometry


def brute_force_in_band(geom: BandGeometry, c: int):
    """All in-band query rows on anti-diagonal c, by direct enumeration."""
    rows = []
    for j in range(geom.query_len):
        i = c - j
        if 0 <= i < geom.ref_len and geom.diag_lo <= i - j <= geom.diag_hi:
            rows.append(j)
    return rows


class TestRowRange:
    @given(
        n=st.integers(1, 40),
        m=st.integers(1, 40),
        w=st.integers(0, 15),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, n, m, w):
        geom = BandGeometry(n, m, w)
        for c in range(geom.num_antidiagonals):
            rows = brute_force_in_band(geom, c)
            j_lo, j_hi = geom.row_range(c)
            if rows:
                assert (j_lo, j_hi) == (rows[0], rows[-1])
                assert j_hi - j_lo + 1 == len(rows)
            else:
                assert j_lo > j_hi

    def test_vectorised_tables_match_scalar(self):
        geom = BandGeometry(33, 47, 9)
        for c in range(geom.num_antidiagonals):
            j_lo, j_hi = geom.row_range(c)
            assert geom.row_lo[c] == j_lo
            assert geom.row_hi[c] == j_hi
            assert geom.cells_per_antidiagonal[c] == max(0, j_hi - j_lo + 1)

    def test_out_of_range_antidiag_empty(self):
        geom = BandGeometry(5, 5, 3)
        assert geom.cells_on(-1) == 0
        assert geom.cells_on(100) == 0


class TestCellCounts:
    def test_unbanded_total(self):
        geom = BandGeometry(7, 9, 0)
        assert geom.total_cells == 63

    def test_banded_total_matches_enumeration(self):
        geom = BandGeometry(20, 25, 5)
        expected = sum(
            1
            for i in range(20)
            for j in range(25)
            if geom.in_band(i, j)
        )
        assert geom.total_cells == expected

    def test_cells_up_to_is_monotone(self):
        geom = BandGeometry(15, 15, 7)
        values = [geom.cells_up_to(c) for c in range(geom.num_antidiagonals)]
        assert values == sorted(values)
        assert values[-1] == geom.total_cells

    def test_cells_in_row_prefix(self):
        geom = BandGeometry(30, 20, 9)
        total = sum(geom.cells_in_rows(j, j) for j in range(10))
        assert geom.cells_in_row_prefix(10) == total
        assert geom.cells_in_row_prefix(0) == 0
        assert geom.cells_in_row_prefix(10_000) == geom.total_cells

    def test_empty_geometry(self):
        geom = BandGeometry(0, 5, 3)
        assert geom.num_antidiagonals == 0
        assert geom.total_cells == 0


class TestCompletion:
    def test_completed_after_all_rows(self):
        geom = BandGeometry(12, 10, 5)
        assert (
            geom.completed_antidiagonals_after_rows(geom.query_len)
            == geom.num_antidiagonals
        )

    def test_completed_after_zero_rows(self):
        geom = BandGeometry(12, 10, 5)
        assert geom.completed_antidiagonals_after_rows(0) == 0

    def test_completion_definition(self):
        geom = BandGeometry(40, 35, 11)
        for rows_done in (1, 5, 13, 20, 34):
            completed = geom.completed_antidiagonals_after_rows(rows_done)
            # Every "completed" anti-diagonal has all of its in-band rows
            # strictly below rows_done.
            for c in range(completed):
                _, j_hi = geom.row_range(c)
                assert j_hi < rows_done
            if completed < geom.num_antidiagonals:
                _, j_hi = geom.row_range(completed)
                assert j_hi >= rows_done

    def test_rows_needed_is_inverse(self):
        geom = BandGeometry(40, 35, 11)
        for target in (1, 7, 30, geom.num_antidiagonals):
            rows = geom.rows_needed_for_antidiagonals(target)
            assert geom.completed_antidiagonals_after_rows(rows) >= target
            if rows > 0:
                assert geom.completed_antidiagonals_after_rows(rows - 1) < target

    def test_validation(self):
        with pytest.raises(ValueError):
            BandGeometry(-1, 3, 0)
        with pytest.raises(ValueError):
            BandGeometry(3, 3, -2)
