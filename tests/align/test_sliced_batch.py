"""Equivalence tests for the sliced, lane-compacting batch sweep.

The dense batch engine defines the semantics (and is itself pinned to
the scalar oracle by ``test_batch.py``); the sliced sweep must reproduce
its scores, maximum cells, termination anti-diagonals, work counters and
per-anti-diagonal profiles bit for bit -- across slice widths, bucket
sizes, termination kinds and aggressively terminating workloads, which
is exactly when compaction rewrites the buffers hardest.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.antidiagonal import antidiagonal_align
from repro.align.batch import (
    DEFAULT_SLICE_WIDTH,
    ENGINE_SLICE_WIDTHS,
    batch_align,
)
from repro.align.scoring import ScoringScheme, preset
from repro.align.sequence import encode, mutate, random_sequence
from repro.align.termination import make_termination
from repro.align.types import AlignmentTask
from repro.core.sliced_diagonal import slice_ranges


def _assert_same(dense, sliced):
    """Full bit-exactness check between a dense and a sliced result."""
    assert dense.score == sliced.score
    assert dense.max_i == sliced.max_i
    assert dense.max_j == sliced.max_j
    assert dense.terminated == sliced.terminated
    assert dense.antidiagonals_processed == sliced.antidiagonals_processed
    assert dense.cells_computed == sliced.cells_computed


def _mixed_tasks(rng, n, *, scoring, max_len=400, divergent_fraction=0.7):
    """Mixed-length tasks where most pairs Z-drop early and a few run on."""
    tasks = []
    for t in range(n):
        length = int(rng.integers(1, max_len))
        ref = random_sequence(length, rng)
        if rng.random() < divergent_fraction:
            query = random_sequence(int(rng.integers(1, max_len)), rng)
        else:
            query = mutate(ref, rng, substitution_rate=0.05)
        tasks.append(AlignmentTask(ref=ref, query=query, scoring=scoring, task_id=t))
    return tasks


class TestAgainstDenseEngine:
    @pytest.mark.parametrize("slice_width", [1, 3, DEFAULT_SLICE_WIDTH, 1000])
    @pytest.mark.parametrize("termination", ["zdrop", "xdrop", "none"])
    def test_mixed_workload_matches_dense(self, slice_width, termination):
        """Aggressive early termination across ragged buckets."""
        rng = np.random.default_rng(17)
        scoring = preset("map-ont", band_width=32, zdrop=40)
        tasks = _mixed_tasks(rng, 48, scoring=scoring)
        dense = batch_align(tasks, termination=termination, bucket_size=16)
        sliced = batch_align(
            tasks,
            termination=termination,
            bucket_size=16,
            slice_width=slice_width,
        )
        for d, s in zip(dense, sliced):
            _assert_same(d, s)

    def test_matches_scalar_oracle(self):
        """The sliced sweep is pinned to the oracle, not just to dense."""
        rng = np.random.default_rng(23)
        scoring = preset("map-ont", band_width=48, zdrop=60)
        tasks = _mixed_tasks(rng, 24, scoring=scoring)
        sliced = batch_align(tasks, bucket_size=8, slice_width=DEFAULT_SLICE_WIDTH)
        for task, s in zip(tasks, sliced):
            cond = make_termination(task.scoring, "zdrop")
            _assert_same(
                antidiagonal_align(task.ref, task.query, task.scoring, cond), s
            )

    def test_profiles_match_dense(self):
        rng = np.random.default_rng(29)
        scoring = preset("map-hifi", band_width=17, zdrop=30)
        tasks = _mixed_tasks(rng, 20, scoring=scoring)
        dense = batch_align(tasks, bucket_size=6, return_profiles=True)
        sliced = batch_align(
            tasks, bucket_size=6, return_profiles=True, slice_width=5
        )
        for dp, sp in zip(dense, sliced):
            _assert_same(dp.result, sp.result)
            assert np.array_equal(dp.antidiag_maxima, sp.antidiag_maxima)
            assert np.array_equal(dp.cells_per_antidiag, sp.cells_per_antidiag)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_tasks=st.integers(min_value=1, max_value=12),
        bucket_size=st.integers(min_value=1, max_value=12),
        slice_width=st.integers(min_value=1, max_value=40),
        band_width=st.integers(min_value=0, max_value=16),
        zdrop=st.integers(min_value=1, max_value=25),
        gap_open=st.integers(min_value=0, max_value=6),
        gap_extend=st.integers(min_value=1, max_value=3),
    )
    def test_property_compacted_equals_dense(
        self, seed, n_tasks, bucket_size, slice_width, band_width, zdrop,
        gap_open, gap_extend,
    ):
        """Hypothesis: compaction never changes any observable output.

        Random mixed-length batches under aggressive Z-drop thresholds:
        scores, maximum cells, termination anti-diagonals and work
        counters of the sliced sweep equal the dense batch engine's
        bit for bit.
        """
        rng = np.random.default_rng(seed)
        scoring = ScoringScheme(
            match=2,
            mismatch=4,
            gap_open=gap_open,
            gap_extend=gap_extend,
            band_width=band_width,
            zdrop=zdrop,
        )
        tasks = _mixed_tasks(rng, n_tasks, scoring=scoring, max_len=80)
        dense = batch_align(tasks, bucket_size=bucket_size)
        sliced = batch_align(
            tasks, bucket_size=bucket_size, slice_width=slice_width
        )
        for d, s in zip(dense, sliced):
            _assert_same(d, s)


class TestSlicedMechanics:
    def test_empty_task_list(self):
        assert batch_align([], slice_width=8) == []

    def test_empty_sequences(self):
        scoring = preset("map-ont")
        task = AlignmentTask(ref=encode(""), query=encode("ACG"), scoring=scoring)
        (result,) = batch_align([task], slice_width=4)
        assert result.score == 0
        assert result.cells_computed == 0

    def test_rejects_non_positive_slice_width(self):
        scoring = preset("figure1")
        task = AlignmentTask(ref=encode("ACG"), query=encode("ACG"), scoring=scoring)
        with pytest.raises(ValueError, match="slice_width"):
            batch_align([task], slice_width=0)
        with pytest.raises(ValueError, match="slice_width"):
            batch_align([task], slice_width=-3)

    def test_everyone_terminates_before_second_slice(self):
        """All-divergent bucket: compaction empties it, sweep stops early."""
        rng = np.random.default_rng(31)
        scoring = preset("map-ont", band_width=16, zdrop=10)
        tasks = [
            AlignmentTask(
                ref=random_sequence(300, rng),
                query=random_sequence(300, rng),
                scoring=scoring,
                task_id=t,
            )
            for t in range(8)
        ]
        dense = batch_align(tasks)
        sliced = batch_align(tasks, slice_width=8)
        for d, s in zip(dense, sliced):
            _assert_same(d, s)
            assert s.terminated

    def test_engine_slice_widths_mapping(self):
        """The engine-name mapping stays consistent with the defaults."""
        assert ENGINE_SLICE_WIDTHS["batch"] is None
        assert ENGINE_SLICE_WIDTHS["batch-sliced"] == DEFAULT_SLICE_WIDTH


class TestSliceRanges:
    def test_covers_every_antidiagonal_once(self):
        ranges = slice_ranges(10, 3)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]
        flat = [c for lo, hi in ranges for c in range(lo, hi)]
        assert flat == list(range(10))

    def test_empty_and_degenerate(self):
        assert slice_ranges(0, 4) == []
        assert slice_ranges(-2, 4) == []
        assert slice_ranges(5, 100) == [(0, 5)]

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            slice_ranges(10, 0)
