"""Tests for the Z-drop / X-drop termination conditions."""

import pytest

from repro.align.scoring import ScoringScheme, preset
from repro.align.termination import (
    NEG_INF,
    NoTermination,
    TerminationCondition,
    XDrop,
    ZDrop,
    make_termination,
)


class TestZDrop:
    def test_no_termination_while_improving(self):
        z = ZDrop(zdrop=50, gap_extend=2)
        assert not z.update(0, 10, 5, 5)
        assert not z.update(1, 20, 6, 6)
        assert z.best_score == 20

    def test_terminates_on_large_drop(self):
        z = ZDrop(zdrop=50, gap_extend=2)
        z.update(0, 100, 10, 10)
        assert z.update(1, 30, 11, 11)  # drop of 70 > 50
        assert z.terminated and z.terminated_at == 1

    def test_diagonal_offset_relaxes_threshold(self):
        # A drop of 70 with a diagonal offset of 20 is allowed when
        # Z + beta * offset = 50 + 2 * 20 = 90 >= 70.
        z = ZDrop(zdrop=50, gap_extend=2)
        z.update(0, 100, 10, 10)
        assert not z.update(1, 30, 31, 11)
        assert not z.terminated

    def test_global_max_not_updated_by_terminating_antidiag(self):
        z = ZDrop(zdrop=10, gap_extend=1)
        z.update(0, 100, 5, 5)
        z.update(1, 10, 6, 6)
        assert z.best_score == 100

    def test_empty_antidiag_ignored(self):
        z = ZDrop(zdrop=10, gap_extend=1)
        z.update(0, 100, 5, 5)
        assert not z.update(1, NEG_INF, -1, -1)
        assert z.best_score == 100

    def test_reset(self):
        z = ZDrop(zdrop=10, gap_extend=1)
        z.update(0, 100, 5, 5)
        z.reset()
        assert z.best_score == NEG_INF and not z.terminated


class TestXDrop:
    def test_ignores_diagonal_offset(self):
        x = XDrop(xdrop=50)
        x.update(0, 100, 10, 10)
        assert x.update(1, 30, 31, 11)  # same case ZDrop allows

    def test_no_termination_within_threshold(self):
        x = XDrop(xdrop=80)
        x.update(0, 100, 10, 10)
        assert not x.update(1, 30, 11, 11)


class TestBaseAndFactory:
    def test_base_never_terminates(self):
        t = TerminationCondition()
        t.update(0, 100, 1, 1)
        assert not t.update(1, -1000, 2, 2)

    def test_no_termination_class(self):
        t = NoTermination()
        t.update(0, 100, 1, 1)
        assert not t.update(1, -10_000, 2, 2)

    def test_factory_zdrop(self):
        t = make_termination(preset("map-ont"), "zdrop")
        assert isinstance(t, ZDrop)
        assert t.zdrop == preset("map-ont").zdrop

    def test_factory_xdrop(self):
        assert isinstance(make_termination(preset("map-ont"), "xdrop"), XDrop)

    def test_factory_disabled_when_zdrop_zero(self):
        scheme = ScoringScheme(zdrop=0)
        assert isinstance(make_termination(scheme, "zdrop"), NoTermination)

    def test_factory_none(self):
        assert isinstance(make_termination(preset("map-ont"), "none"), NoTermination)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_termination(preset("map-ont"), "wat")
