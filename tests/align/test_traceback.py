"""Tests for traceback / CIGAR reconstruction."""

import numpy as np

from repro.align.scoring import ScoringScheme, preset
from repro.align.sequence import encode, mutate, random_sequence
from repro.align.antidiagonal import antidiagonal_align
from repro.align.traceback import Cigar, traceback_align


SCHEME = ScoringScheme(match=2, mismatch=4, gap_open=4, gap_extend=2)


class TestCigar:
    def test_render_and_stats(self):
        cigar = Cigar((("=", 5), ("X", 1), ("I", 2), ("=", 3), ("D", 1)))
        assert cigar.to_string() == "5=1X2I3=1D"
        assert cigar.matches == 8
        assert cigar.aligned_query_length == 11
        assert cigar.aligned_ref_length == 10
        assert cigar.edit_distance == 4


class TestTraceback:
    def test_perfect_match(self):
        seq = encode("ACGTACGTGG")
        tb = traceback_align(seq, seq, SCHEME)
        assert tb.cigar.to_string() == f"{len(seq)}="
        assert tb.result.score == 2 * len(seq)

    def test_mismatch_recorded(self):
        ref = encode("ACGTACGTGG")
        query = encode("ACGTTCGTGG")
        tb = traceback_align(ref, query, SCHEME)
        ops = dict()
        for op, length in tb.cigar.operations:
            ops[op] = ops.get(op, 0) + length
        assert ops.get("X", 0) == 1
        assert ops.get("=", 0) == 9

    def test_cigar_lengths_match_end_coordinates(self):
        rng = np.random.default_rng(3)
        ref = random_sequence(120, rng)
        query = mutate(ref, rng, substitution_rate=0.05, insertion_rate=0.02, deletion_rate=0.02)
        tb = traceback_align(ref, query, preset("map-ont", band_width=21, zdrop=0))
        assert tb.cigar.aligned_ref_length == tb.ref_end
        assert tb.cigar.aligned_query_length == tb.query_end

    def test_score_matches_engine(self):
        rng = np.random.default_rng(4)
        scheme = preset("map-ont", band_width=21, zdrop=100)
        ref = random_sequence(90, rng)
        query = mutate(ref, rng, substitution_rate=0.08, insertion_rate=0.02)
        tb = traceback_align(ref, query, scheme)
        engine = antidiagonal_align(ref, query, scheme)
        assert tb.result.score == engine.score

    def test_empty_inputs(self):
        tb = traceback_align(encode(""), encode("ACG"), SCHEME)
        assert tb.cigar.operations == ()
        assert tb.result.score == 0

    def test_path_reproduces_query_from_ref(self):
        # Walking the CIGAR over the reference must regenerate the query
        # prefix that was aligned (matches copy, X substitutes, I inserts).
        rng = np.random.default_rng(5)
        ref = random_sequence(60, rng)
        query = mutate(ref, rng, substitution_rate=0.05, deletion_rate=0.03)
        tb = traceback_align(ref, query, SCHEME)
        i = j = 0
        for op, length in tb.cigar.operations:
            for _ in range(length):
                if op in "=X":
                    if op == "=":
                        assert ref[i] == query[j]
                    else:
                        assert ref[i] != query[j]
                    i += 1
                    j += 1
                elif op == "D":
                    i += 1
                else:  # I
                    j += 1
        assert i == tb.ref_end and j == tb.query_end
