"""Tests for traceback / CIGAR reconstruction."""

import numpy as np

from repro.align.banding import BandGeometry
from repro.align.scoring import ScoringScheme, preset
from repro.align.sequence import encode, mutate, random_sequence
from repro.align.antidiagonal import antidiagonal_align
from repro.align.traceback import Cigar, _band_storage_shape, traceback_align


SCHEME = ScoringScheme(match=2, mismatch=4, gap_open=4, gap_extend=2)


class TestCigar:
    def test_render_and_stats(self):
        cigar = Cigar((("=", 5), ("X", 1), ("I", 2), ("=", 3), ("D", 1)))
        assert cigar.to_string() == "5=1X2I3=1D"
        assert cigar.matches == 8
        assert cigar.aligned_query_length == 11
        assert cigar.aligned_ref_length == 10
        assert cigar.edit_distance == 4


class TestTraceback:
    def test_perfect_match(self):
        seq = encode("ACGTACGTGG")
        tb = traceback_align(seq, seq, SCHEME)
        assert tb.cigar.to_string() == f"{len(seq)}="
        assert tb.result.score == 2 * len(seq)

    def test_mismatch_recorded(self):
        ref = encode("ACGTACGTGG")
        query = encode("ACGTTCGTGG")
        tb = traceback_align(ref, query, SCHEME)
        ops = dict()
        for op, length in tb.cigar.operations:
            ops[op] = ops.get(op, 0) + length
        assert ops.get("X", 0) == 1
        assert ops.get("=", 0) == 9

    def test_cigar_lengths_match_end_coordinates(self):
        rng = np.random.default_rng(3)
        ref = random_sequence(120, rng)
        query = mutate(ref, rng, substitution_rate=0.05, insertion_rate=0.02, deletion_rate=0.02)
        tb = traceback_align(ref, query, preset("map-ont", band_width=21, zdrop=0))
        assert tb.cigar.aligned_ref_length == tb.ref_end
        assert tb.cigar.aligned_query_length == tb.query_end

    def test_score_matches_engine(self):
        rng = np.random.default_rng(4)
        scheme = preset("map-ont", band_width=21, zdrop=100)
        ref = random_sequence(90, rng)
        query = mutate(ref, rng, substitution_rate=0.08, insertion_rate=0.02)
        tb = traceback_align(ref, query, scheme)
        engine = antidiagonal_align(ref, query, scheme)
        assert tb.result.score == engine.score

    def test_empty_inputs(self):
        tb = traceback_align(encode(""), encode("ACG"), SCHEME)
        assert tb.cigar.operations == ()
        assert tb.result.score == 0

    def test_band_and_dense_storage_are_identical(self):
        """Band-limited matrices must not change a single in-band result:
        same scores, same CIGARs, same end coordinates, every time."""
        rng = np.random.default_rng(7)
        for trial in range(25):
            n = int(rng.integers(5, 160))
            ref = random_sequence(n, rng)
            if trial % 4 == 3:
                query = random_sequence(int(rng.integers(5, 160)), rng)
            else:
                query = mutate(
                    ref, rng, substitution_rate=0.08, insertion_rate=0.04, deletion_rate=0.04
                )
            scheme = preset(
                "map-ont",
                band_width=int(rng.choice([0, 5, 17, 33, 64])),
                zdrop=int(rng.choice([0, 50, 120])),
            )
            dense = traceback_align(ref, query, scheme, _band_storage=False)
            banded = traceback_align(ref, query, scheme, _band_storage=True)
            assert dense.result == banded.result
            assert dense.cigar == banded.cigar
            assert (dense.ref_end, dense.query_end) == (banded.ref_end, banded.query_end)

    def test_band_storage_shape_scales_with_band_not_reference(self):
        narrow = BandGeometry(5000, 4800, 17)
        assert _band_storage_shape(narrow) == ((4800, 17), True)
        unbanded = BandGeometry(100, 80, 0)
        assert _band_storage_shape(unbanded) == ((100, 80), False)
        # A band at least as wide as the reference gains nothing: dense.
        wide = BandGeometry(30, 30, 64)
        assert _band_storage_shape(wide) == ((30, 30), False)

    def test_path_reproduces_query_from_ref(self):
        # Walking the CIGAR over the reference must regenerate the query
        # prefix that was aligned (matches copy, X substitutes, I inserts).
        rng = np.random.default_rng(5)
        ref = random_sequence(60, rng)
        query = mutate(ref, rng, substitution_rate=0.05, deletion_rate=0.03)
        tb = traceback_align(ref, query, SCHEME)
        i = j = 0
        for op, length in tb.cigar.operations:
            for _ in range(length):
                if op in "=X":
                    if op == "=":
                        assert ref[i] == query[j]
                    else:
                        assert ref[i] != query[j]
                    i += 1
                    j += 1
                elif op == "D":
                    i += 1
                else:  # I
                    j += 1
        assert i == tb.ref_end and j == tb.query_end


class TestBatchTraceback:
    def _tasks(self, count=6, seed=17):
        from repro.align.types import AlignmentTask

        rng = np.random.default_rng(seed)
        scoring = preset("map-ont", band_width=32, zdrop=150)
        tasks = []
        for t in range(count):
            ref = random_sequence(int(rng.integers(80, 300)), rng)
            query = mutate(
                ref,
                rng,
                substitution_rate=0.06,
                insertion_rate=0.02,
                deletion_rate=0.02,
            )
            tasks.append(
                AlignmentTask(ref=ref, query=query, scoring=scoring, task_id=t)
            )
        return tasks

    def test_matches_per_task_oracle(self):
        from repro.align.traceback import batch_traceback

        tasks = self._tasks()
        batch = batch_traceback(tasks)
        assert len(batch) == len(tasks)
        for task, tb in zip(tasks, batch):
            assert tb == traceback_align(task.ref, task.query, task.scoring)

    def test_cross_checks_engine_results(self):
        import pytest

        from repro.align.batch import batch_align
        from repro.align.traceback import batch_traceback

        tasks = self._tasks()
        results = batch_align(tasks)
        batch = batch_traceback(tasks, results)
        assert [tb.result for tb in batch] == results

        # A diverging engine result is reported, not silently accepted.
        wrong = list(results)
        wrong[2] = traceback_align(
            tasks[0].ref, tasks[0].query, tasks[0].scoring
        ).result
        if wrong[2] != results[2]:
            with pytest.raises(ValueError, match="task 2"):
                batch_traceback(tasks, wrong)

    def test_length_mismatch_rejected(self):
        import pytest

        from repro.align.traceback import batch_traceback

        tasks = self._tasks(count=3)
        with pytest.raises(ValueError, match="does not match"):
            batch_traceback(tasks, results=[])
