"""Equivalence and behaviour tests for the alignment engines.

The scalar oracle (:mod:`repro.align.reference`) defines the semantics;
the vectorised wavefront engine must reproduce it exactly on every input,
banded or not, with or without termination.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.antidiagonal import WavefrontState, antidiagonal_align
from repro.align.reference import reference_align, reference_score_table
from repro.align.scoring import ScoringScheme, preset
from repro.align.sequence import encode, mutate, random_sequence
from repro.align.termination import NEG_INF, XDrop

SEQ = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestKnownCases:
    def test_perfect_match_unbanded(self):
        s = ScoringScheme(match=2, mismatch=4, gap_open=4, gap_extend=2)
        seq = encode("ACGTACGTAC")
        res = antidiagonal_align(seq, seq, s)
        assert res.score == 2 * len(seq)
        assert (res.max_i, res.max_j) == (len(seq) - 1, len(seq) - 1)
        assert not res.terminated

    def test_single_mismatch(self):
        s = ScoringScheme(match=2, mismatch=4, gap_open=4, gap_extend=2)
        ref = encode("ACGTACGTAC")
        query = encode("ACGTTCGTAC")
        res = antidiagonal_align(ref, query, s)
        assert res.score == 2 * 10 - 2 - 4  # nine matches, one mismatch cell

    def test_single_deletion_gap(self):
        s = ScoringScheme(match=2, mismatch=4, gap_open=4, gap_extend=2)
        ref = encode("ACGTTTACGG")
        query = encode("ACGTTACGG")  # one T deleted
        res = antidiagonal_align(ref, query, s)
        # nine matches minus a length-1 gap (open 4 + extend 2)
        assert res.score == 2 * 9 - 6

    def test_empty_inputs(self):
        s = preset("map-ont")
        assert antidiagonal_align(encode(""), encode("ACG"), s).score == 0
        assert reference_align(encode("ACG"), encode(""), s).score == 0

    def test_figure1_band_limits_cells(self):
        s = preset("figure1")
        ref = encode("AGATAGAT")
        query = encode("AGACTATC")
        res = antidiagonal_align(ref, query, s)
        assert res.cells_computed < ref.size * query.size

    def test_divergent_sequences_terminate(self):
        rng = np.random.default_rng(7)
        s = preset("map-ont", band_width=33, zdrop=60)
        ref = random_sequence(400, rng)
        query = random_sequence(400, rng)
        res = antidiagonal_align(ref, query, s)
        assert res.terminated
        assert res.antidiagonals_processed < ref.size + query.size - 1

    def test_similar_sequences_do_not_terminate(self):
        rng = np.random.default_rng(8)
        s = preset("map-ont", band_width=33, zdrop=200)
        ref = random_sequence(400, rng)
        query = mutate(ref, rng, substitution_rate=0.03)
        res = antidiagonal_align(ref, query, s)
        assert not res.terminated
        assert res.score > 0


class TestOracleEquivalence:
    @given(ref=SEQ, query=SEQ, band=st.integers(0, 13), zdrop=st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_matches_oracle(self, ref, query, band, zdrop):
        scheme = ScoringScheme(
            match=2, mismatch=4, gap_open=4, gap_extend=2, band_width=band, zdrop=zdrop
        )
        a = reference_align(encode(ref), encode(query), scheme)
        b = antidiagonal_align(encode(ref), encode(query), scheme)
        assert a.same_score(b)
        assert a.cells_computed == b.cells_computed

    @given(ref=SEQ, query=SEQ)
    @settings(max_examples=20, deadline=None)
    def test_matches_oracle_with_xdrop(self, ref, query):
        scheme = ScoringScheme(match=2, mismatch=4, gap_open=4, gap_extend=2, zdrop=30)
        a = reference_align(encode(ref), encode(query), scheme, XDrop(xdrop=30))
        b = antidiagonal_align(encode(ref), encode(query), scheme, XDrop(xdrop=30))
        assert a.same_score(b)

    def test_realistic_pair_with_band(self, rng):
        scheme = preset("map-pb", band_width=41, zdrop=100)
        ref = random_sequence(300, rng)
        query = mutate(ref, rng, substitution_rate=0.08, insertion_rate=0.04, deletion_rate=0.04)
        a = reference_align(ref, query, scheme)
        b = antidiagonal_align(ref, query, scheme)
        assert a.same_score(b)


class TestScoreTable:
    def test_score_table_maximum_matches_result(self):
        rng = np.random.default_rng(10)
        scheme = preset("map-ont", band_width=21, zdrop=0)
        ref = random_sequence(60, rng)
        query = mutate(ref, rng, substitution_rate=0.1)
        table, result = reference_score_table(ref, query, scheme)
        computed = table[table > NEG_INF]
        assert computed.max() == result.score

    def test_out_of_band_cells_untouched(self):
        scheme = preset("map-ont", band_width=5, zdrop=0)
        ref = encode("ACGTACGTACGTACGT")
        query = encode("ACGTACGTACGTACGT")
        table, _ = reference_score_table(ref, query, scheme)
        assert table[0, 10] == NEG_INF
        assert table[10, 0] == NEG_INF


class TestWavefrontState:
    def test_profile_matches_stepwise_maxima(self, rng):
        scheme = preset("map-ont", band_width=21, zdrop=0)
        ref = random_sequence(80, rng)
        query = mutate(ref, rng, substitution_rate=0.05)
        profile = antidiagonal_align(ref, query, scheme, return_profile=True)
        state = WavefrontState(ref, query, scheme)
        maxima = []
        while not state.exhausted:
            _, rows, values = state.step()
            maxima.append(int(values.max()) if rows.size else NEG_INF)
        assert np.array_equal(np.asarray(maxima), profile.antidiag_maxima)

    def test_step_after_exhaustion_raises(self):
        scheme = preset("map-ont", band_width=7, zdrop=0)
        state = WavefrontState(encode("ACG"), encode("ACG"), scheme)
        while not state.exhausted:
            state.step()
        with pytest.raises(RuntimeError):
            state.step()


class TestProfile:
    def test_profile_consistency(self, rng, small_scheme):
        ref = random_sequence(150, rng)
        query = mutate(ref, rng, substitution_rate=0.05)
        profile = antidiagonal_align(ref, query, small_scheme, return_profile=True)
        assert profile.cells_per_antidiag.sum() == profile.result.cells_computed
        assert len(profile.antidiag_maxima) == profile.result.antidiagonals_processed
        assert profile.total_band_cells >= profile.result.cells_computed
        assert profile.workload_blocks() >= 1
