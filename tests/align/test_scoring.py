"""Tests for scoring schemes and presets."""

import pytest

from repro.align.scoring import PRESETS, ScoringScheme, preset
from repro.align.sequence import BASE_TO_CODE


class TestScoringScheme:
    def test_match_and_mismatch(self):
        s = ScoringScheme(match=2, mismatch=4)
        a, c = BASE_TO_CODE["A"], BASE_TO_CODE["C"]
        assert s.score(a, a) == 2
        assert s.score(a, c) == -4

    def test_ambiguous(self):
        s = ScoringScheme(ambiguous_score=-1)
        n, a = BASE_TO_CODE["N"], BASE_TO_CODE["A"]
        assert s.score(n, a) == -1
        assert s.score(a, n) == -1

    def test_substitution_matrix_matches_score(self):
        s = ScoringScheme(match=3, mismatch=5)
        m = s.substitution_matrix()
        for a in range(5):
            for b in range(5):
                assert m[a, b] == s.score(a, b)

    def test_gap_cost(self):
        s = ScoringScheme(gap_open=4, gap_extend=2)
        assert s.gap_cost(0) == 0
        assert s.gap_cost(1) == 6
        assert s.gap_cost(3) == 10

    def test_gap_cost_negative_length(self):
        with pytest.raises(ValueError):
            ScoringScheme().gap_cost(-1)

    def test_guiding_flags(self):
        assert not ScoringScheme().has_banding
        assert not ScoringScheme().has_termination
        assert ScoringScheme(band_width=10).has_banding
        assert ScoringScheme(zdrop=10).has_termination

    def test_replace(self):
        s = preset("map-ont").replace(band_width=7)
        assert s.band_width == 7
        assert s.match == PRESETS["map-ont"].match

    def test_describe_mentions_guiding(self):
        text = preset("map-ont").describe()
        assert "w=" in text and "Z=" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"match": 0},
            {"mismatch": -1},
            {"gap_extend": 0},
            {"band_width": -1},
            {"zdrop": -2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScoringScheme(**kwargs)


class TestPresets:
    def test_all_expected_presets_exist(self):
        for name in ("map-hifi", "map-pb", "map-ont", "bwa-mem", "figure1"):
            assert name in PRESETS

    def test_preset_lookup(self):
        assert preset("map-ont").name == "map-ont"

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("nope")

    def test_bwa_band_smaller_than_minimap(self):
        # Section 5.9: BWA-MEM's default band width and threshold are
        # significantly smaller than Minimap2's.
        assert PRESETS["bwa-mem"].band_width < PRESETS["map-ont"].band_width
        assert PRESETS["bwa-mem"].zdrop <= PRESETS["map-ont"].zdrop

    def test_preset_override(self):
        assert preset("map-ont", zdrop=77).zdrop == 77

    def test_unknown_preset_lists_available_names(self):
        with pytest.raises(KeyError) as err:
            preset("nope")
        message = str(err.value)
        assert "'nope'" in message
        for name in ("map-ont", "blosum62"):
            assert name in message


class TestSubstitutionMatrix:
    MATRIX = (
        (4, 0, 0, 0, -1),
        (0, 9, -3, -1, -1),
        (0, -3, 6, -2, -1),
        (0, -1, -2, 5, -1),
        (-1, -1, -1, -1, -1),
    )

    def test_explicit_matrix_drives_score(self):
        s = ScoringScheme(matrix=self.MATRIX)
        for a in range(5):
            for b in range(5):
                assert s.score(a, b) == self.MATRIX[a][b]

    def test_explicit_matrix_drives_substitution_matrix(self):
        import numpy as np

        s = ScoringScheme(matrix=self.MATRIX)
        assert np.array_equal(s.substitution_matrix(), np.array(self.MATRIX))

    def test_matrix_normalised_to_tuples(self):
        s = ScoringScheme(matrix=[list(row) for row in self.MATRIX])
        assert s.matrix == self.MATRIX
        assert isinstance(s.matrix[0], tuple)

    @pytest.mark.parametrize(
        "matrix",
        [
            ((1, 2), (3, 4)),  # wrong shape
            ((0,) * 5,) * 4,  # too few rows
            ((0,) * 4,) * 5,  # too few columns
        ],
    )
    def test_bad_matrix_shape_rejected(self, matrix):
        with pytest.raises(ValueError, match="matrix"):
            ScoringScheme(matrix=matrix)

    def test_describe_mentions_matrix(self):
        assert "matrix=5x5" in ScoringScheme(matrix=self.MATRIX).describe()
        assert "matrix" not in ScoringScheme().describe()

    def test_blosum62_preset(self):
        s = preset("blosum62")
        assert s.matrix is not None
        # Matching letters score by the matrix diagonal, not match=.
        assert s.score(0, 0) == 4
        assert s.score(1, 1) == 9
        # The ambiguity row/column is uniformly -1.
        assert all(s.score(4, b) == -1 for b in range(5))
        assert s.gap_open == 10 and s.gap_extend == 1
