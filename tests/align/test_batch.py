"""Equivalence tests for the struct-of-arrays batch engine.

The scalar anti-diagonal engine defines the semantics; the batch engine
must reproduce its scores, maximum cells, termination behaviour, work
counters and per-anti-diagonal profiles bit for bit -- across scoring
schemes, band widths, termination kinds and ragged task-length buckets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.antidiagonal import antidiagonal_align
from repro.align.batch import (
    DEFAULT_BUCKET_SIZE,
    batch_align,
    pack_tasks,
)
from repro.align.scoring import ScoringScheme, preset
from repro.align.sequence import encode, mutate, random_sequence
from repro.align.termination import NEG_INF, make_termination
from repro.align.types import AlignmentTask
from repro.core.uneven_bucketing import length_bucket_order


def _assert_same(scalar, batched):
    """Full bit-exactness check between a scalar and a batched result."""
    assert scalar.score == batched.score
    assert scalar.max_i == batched.max_i
    assert scalar.max_j == batched.max_j
    assert scalar.terminated == batched.terminated
    assert scalar.antidiagonals_processed == batched.antidiagonals_processed
    assert scalar.cells_computed == batched.cells_computed


def _random_tasks(rng, n, *, schemes, max_len=200):
    tasks = []
    for t in range(n):
        scoring = schemes[t % len(schemes)]
        ref = random_sequence(int(rng.integers(0, max_len)), rng)
        if ref.size and rng.random() < 0.5:
            query = mutate(
                ref,
                rng,
                substitution_rate=0.1,
                insertion_rate=0.05,
                deletion_rate=0.05,
            )
        else:
            query = random_sequence(int(rng.integers(0, max_len)), rng)
        tasks.append(AlignmentTask(ref=ref, query=query, scoring=scoring, task_id=t))
    return tasks


class TestAgainstScalarOracle:
    SCHEMES = [
        preset("map-ont", band_width=64, zdrop=160),
        preset("map-hifi", band_width=33, zdrop=60),
        preset("figure1"),
        preset("bwa-mem", band_width=17, zdrop=50),
        ScoringScheme(match=3, mismatch=2, gap_open=5, gap_extend=1),
    ]

    @pytest.mark.parametrize("termination", ["zdrop", "xdrop", "none"])
    def test_mixed_workload_matches_oracle(self, termination):
        """Random mixed-size, mixed-scheme tasks across ragged buckets."""
        rng = np.random.default_rng(11)
        tasks = _random_tasks(rng, 40, schemes=self.SCHEMES)
        batched = batch_align(tasks, termination=termination, bucket_size=7)
        for task, b in zip(tasks, batched):
            cond = make_termination(task.scoring, termination)
            s = antidiagonal_align(task.ref, task.query, task.scoring, cond)
            _assert_same(s, b)

    def test_profiles_match_oracle(self):
        rng = np.random.default_rng(5)
        tasks = _random_tasks(rng, 20, schemes=self.SCHEMES)
        profiles = batch_align(tasks, bucket_size=6, return_profiles=True)
        for task, bp in zip(tasks, profiles):
            sp = antidiagonal_align(
                task.ref, task.query, task.scoring, return_profile=True
            )
            _assert_same(sp.result, bp.result)
            assert np.array_equal(sp.antidiag_maxima, bp.antidiag_maxima)
            assert np.array_equal(sp.cells_per_antidiag, bp.cells_per_antidiag)
            assert sp.geometry.ref_len == bp.geometry.ref_len
            assert sp.geometry.query_len == bp.geometry.query_len
            assert sp.geometry.band_width == bp.geometry.band_width

    @settings(max_examples=40, deadline=None)
    @given(
        ref=st.text(alphabet="ACGT", min_size=0, max_size=48),
        query=st.text(alphabet="ACGT", min_size=0, max_size=48),
        match=st.integers(min_value=1, max_value=4),
        mismatch=st.integers(min_value=0, max_value=6),
        gap_open=st.integers(min_value=0, max_value=6),
        gap_extend=st.integers(min_value=1, max_value=3),
        band_width=st.integers(min_value=0, max_value=12),
        zdrop=st.integers(min_value=0, max_value=40),
    )
    def test_property_single_task(
        self, ref, query, match, mismatch, gap_open, gap_extend, band_width, zdrop
    ):
        """Hypothesis: every random (scheme, band, Z) agrees with the oracle."""
        scoring = ScoringScheme(
            match=match,
            mismatch=mismatch,
            gap_open=gap_open,
            gap_extend=gap_extend,
            band_width=band_width,
            zdrop=zdrop,
        )
        task = AlignmentTask(ref=encode(ref), query=encode(query), scoring=scoring)
        (b,) = batch_align([task])
        s = antidiagonal_align(task.ref, task.query, scoring)
        _assert_same(s, b)

    def test_ragged_length_buckets(self):
        """Wildly different task sizes in one call: padding must not leak."""
        rng = np.random.default_rng(3)
        scoring = preset("map-ont", band_width=32, zdrop=100)
        lengths = [1, 2, 3, 7, 500, 8, 501, 2, 499, 64, 1, 300]
        tasks = []
        for n in lengths:
            ref = random_sequence(n, rng)
            query = mutate(ref, rng, substitution_rate=0.1)
            tasks.append(AlignmentTask(ref=ref, query=query, scoring=scoring))
        for bucket_size in (1, 3, DEFAULT_BUCKET_SIZE):
            batched = batch_align(tasks, bucket_size=bucket_size)
            for task, b in zip(tasks, batched):
                _assert_same(
                    b, antidiagonal_align(task.ref, task.query, scoring)
                )


class TestBatchMechanics:
    def test_empty_task_list(self):
        assert batch_align([]) == []

    def test_empty_sequences(self):
        scoring = preset("map-ont")
        task = AlignmentTask(ref=encode(""), query=encode("ACG"), scoring=scoring)
        (result,) = batch_align([task])
        assert result.score == 0
        assert (result.max_i, result.max_j) == (-1, -1)
        assert not result.terminated
        assert result.cells_computed == 0

    def test_results_in_input_order(self):
        rng = np.random.default_rng(9)
        scoring = preset("figure1")
        tasks = [
            AlignmentTask(
                ref=random_sequence(n, rng),
                query=random_sequence(n, rng),
                scoring=scoring,
                task_id=i,
            )
            for i, n in enumerate([90, 5, 60, 5, 120, 30])
        ]
        batched = batch_align(tasks, bucket_size=2)
        for task, b in zip(tasks, batched):
            _assert_same(b, antidiagonal_align(task.ref, task.query, scoring))

    def test_pack_tasks_rejects_unknown_termination(self):
        with pytest.raises(ValueError, match="termination"):
            pack_tasks([], termination="bogus")

    def test_pack_tasks_shapes(self):
        rng = np.random.default_rng(1)
        scoring = preset("map-ont", band_width=16, zdrop=50)
        tasks = [
            AlignmentTask(
                ref=random_sequence(30, rng),
                query=random_sequence(20, rng),
                scoring=scoring,
            ),
            AlignmentTask(
                ref=random_sequence(10, rng),
                query=random_sequence(40, rng),
                scoring=scoring,
            ),
        ]
        batch = pack_tasks(tasks)
        assert batch.size == 2
        assert batch.ref_buf.shape == (2, 30)
        assert batch.query_buf.shape == (2, 40)
        assert list(batch.ref_len) == [30, 10]
        assert list(batch.query_len) == [20, 40]
        # one shared scheme -> one substitution matrix in the stack
        assert batch.sub_stack.shape[0] == 1
        assert batch.max_lanes <= 16 // 2 + 1

    def test_local_maxima_include_empty_antidiagonals(self):
        """NEG_INF placeholders for empty anti-diagonals, like the oracle."""
        scoring = preset("figure1")
        ref = encode("ACGTACGTACGT")
        query = encode("AC")
        task = AlignmentTask(ref=ref, query=query, scoring=scoring)
        (bp,) = batch_align([task], return_profiles=True)
        sp = antidiagonal_align(ref, query, scoring, return_profile=True)
        assert np.array_equal(sp.antidiag_maxima, bp.antidiag_maxima)
        assert (bp.antidiag_maxima == NEG_INF).any()


class TestLengthBucketOrder:
    def test_buckets_partition_and_sort(self):
        workloads = [5, 100, 1, 50, 7, 99, 3]
        buckets = length_bucket_order(workloads, 3)
        flat = [i for bucket in buckets for i in bucket]
        assert sorted(flat) == list(range(len(workloads)))
        assert all(len(bucket) <= 3 for bucket in buckets)
        # Largest workloads come first and buckets are size-homogeneous.
        assert buckets[0] == [1, 5, 3]

    def test_rejects_bad_bucket_size(self):
        with pytest.raises(ValueError):
            length_bucket_order([1, 2], 0)
