"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that ``python setup.py develop`` remains possible in offline environments
where pip cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
