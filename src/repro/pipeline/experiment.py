"""Experiment harness shared by the benchmarks and the examples.

The module provides exactly the pieces every figure reproduction needs:

* :func:`dataset_tasks` -- build (and cache) the extension-alignment
  workload of one named dataset by running the synthetic reads through
  the seeding/chaining pre-compute, mirroring Section 5.1;
* :func:`scaled_hardware` -- the device / CPU pair used for timing.  The
  benchmark workloads are a few hundred tasks instead of the paper's
  50 000-read datasets, so both machines are scaled down by the same
  factor; ratios between kernels and against the CPU anchor are
  preserved (see DESIGN.md);
* :func:`speedup_table` -- run a kernel suite over a set of datasets and
  normalise to the CPU baseline.

:func:`kernel_suite`, :func:`align_workload` and :func:`compare_kernels`
remain as **deprecation shims**: the implementations moved behind the
:mod:`repro.api` registries and :class:`repro.api.Session` (see
DESIGN.md, "The public API layer"), and the shims delegate there after
emitting a single :class:`DeprecationWarning`.  Results are bit-identical
either way.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Mapping, Sequence

import numpy as np

from repro.align.batch import DEFAULT_BUCKET_SIZE
from repro.align.types import AlignmentResult, AlignmentTask
from repro.baselines.cpu_model import CpuSpec, EPYC_16C_SSE4
from repro.gpusim.device import CostModel, DeviceSpec, RTX_A6000
from repro.io.datasets import DATASET_REGISTRY, DatasetSpec
from repro.kernels import GuidedKernel, KernelConfig

__all__ = [
    "ExperimentConfig",
    "all_dataset_names",
    "dataset_tasks",
    "scaled_hardware",
    "kernel_suite",
    "align_workload",
    "compare_kernels",
    "speedup_table",
    "geometric_mean",
    "DEFAULT_BUCKET_SIZE",
]


#: Default hardware scale factor: the benchmark datasets hold a few hundred
#: tasks, which saturate roughly one SM worth of an A6000, so the hardware
#: pair is scaled down to that size on both sides (ratios are preserved).
DEFAULT_HARDWARE_SCALE: float = 1.0 / 84.0


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of an experiment run (kept small and hashable for caching).

    ``batch_size`` is the bucket size of the struct-of-arrays batch
    alignment engine; benchmarks sweep it to chart the scalar-vs-batched
    trade-off (``benchmarks/test_batch_engine.py``).
    """

    hardware_scale: float = DEFAULT_HARDWARE_SCALE
    kernel_config: KernelConfig = field(default_factory=KernelConfig)
    batch_size: int = DEFAULT_BUCKET_SIZE

    def make_kernel_config(self) -> KernelConfig:
        """The kernel config with the experiment's batch size applied."""
        return self.kernel_config.replace(batch_bucket_size=self.batch_size)


def all_dataset_names() -> List[str]:
    """The nine dataset names in the paper's plotting order."""
    return list(DATASET_REGISTRY)


# ----------------------------------------------------------------------
# workload construction
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def dataset_tasks(name: str) -> tuple[AlignmentTask, ...]:
    """Extension tasks of one named dataset.

    Two cache layers stack here.  The seeding/chaining pre-compute is
    served by the persistent :class:`repro.bench.cache.WorkloadCache`
    (``$REPRO_CACHE_DIR`` / ``~/.cache/repro``), shared across processes
    and runs; on top of it, the per-process ``lru_cache`` retains the
    materialised task objects together with each task's alignment
    profile (computed lazily by the kernels), so the dynamic program
    runs once per task no matter how many kernels and figures reuse the
    dataset within one process.
    """
    # Imported lazily: repro.bench.runner imports this module at load time.
    from repro.bench.cache import WorkloadCache

    spec: DatasetSpec = DATASET_REGISTRY[name]
    return WorkloadCache().tasks(spec)


# ----------------------------------------------------------------------
# hardware
# ----------------------------------------------------------------------
def scaled_hardware(
    scale: float = DEFAULT_HARDWARE_SCALE,
    device: DeviceSpec = RTX_A6000,
    cpu: CpuSpec = EPYC_16C_SSE4,
) -> tuple[DeviceSpec, CpuSpec]:
    """Scale the GPU and the CPU by exactly the same factor.

    The GPU scales through its SM count (integer), so the CPU is scaled by
    the *achieved* GPU factor rather than the requested one to keep the
    ratio exact.
    """
    scaled_device = device.scale(scale)
    achieved = scaled_device.num_sms / device.num_sms
    scaled_cpu = cpu.scale(achieved)
    return scaled_device, scaled_cpu


# ----------------------------------------------------------------------
# deprecation shims (the implementations live in repro.api)
# ----------------------------------------------------------------------
def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead (see repro.api)",
        DeprecationWarning,
        stacklevel=3,
    )


def kernel_suite(
    config: KernelConfig | ExperimentConfig | None = None, target: str = "mm2"
) -> Dict[str, GuidedKernel]:
    """Deprecated: the GPU kernels of one registered suite.

    Use ``repro.api.build_suite(name, config)`` (or
    :meth:`repro.api.Session.kernels`).  Still accepts an
    :class:`ExperimentConfig` (whose ``batch_size`` is applied to the
    kernels' batched scoring path via :meth:`make_kernel_config`) and
    still raises :class:`ValueError` for unknown targets; any registered
    suite name is now a valid ``target``.
    """
    _warn_deprecated("repro.pipeline.experiment.kernel_suite", "repro.api.build_suite")
    from repro.api.suites import build_suite

    if isinstance(config, ExperimentConfig):
        config = config.make_kernel_config()
    try:
        return build_suite(target, config)
    except KeyError as exc:
        raise ValueError(exc.args[0] if exc.args else str(exc)) from None


# ----------------------------------------------------------------------
# workload alignment
# ----------------------------------------------------------------------
def align_workload(
    tasks: Sequence[AlignmentTask],
    *,
    batched: bool = True,
    batch_size: int = DEFAULT_BUCKET_SIZE,
) -> List[AlignmentResult]:
    """Deprecated: score a whole workload, batched (default) or scalar.

    Use ``repro.api.align_tasks(tasks, engine="batch"|"scalar", ...)`` or
    :meth:`repro.api.Session.align`.  Both paths produce bit-identical
    results; the boolean maps onto the engine registry.
    """
    _warn_deprecated(
        "repro.pipeline.experiment.align_workload(batched=...)",
        "repro.api.align_tasks(engine=...)",
    )
    from repro.api.engines import EngineOptions, align_tasks

    return align_tasks(
        tasks,
        engine="batch" if batched else "scalar",
        options=EngineOptions(batch_size=batch_size),
    )


# ----------------------------------------------------------------------
# comparisons
# ----------------------------------------------------------------------
def compare_kernels(
    tasks: Sequence[AlignmentTask],
    kernels: Mapping[str, GuidedKernel],
    *,
    device: DeviceSpec | None = None,
    cpu: CpuSpec | None = None,
    cost: CostModel | None = None,
) -> Dict[str, dict]:
    """Deprecated: simulate every kernel over ``tasks`` with speedups.

    Use :meth:`repro.api.Session.compare` or
    ``repro.api.compare_suite(...)``; this shim returns the typed
    outcome's ``to_dict()`` view, bit-identical to the historical mapping
    (``name -> summary`` with the CPU anchor under ``"CPU"``).
    """
    _warn_deprecated(
        "repro.pipeline.experiment.compare_kernels", "repro.api.Session.compare"
    )
    from repro.api.compare import compare_suite

    return compare_suite(tasks, kernels, device=device, cpu=cpu, cost=cost).to_dict()


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the aggregation the paper uses for speedups)."""
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.log(arr).mean()))


def speedup_table(
    dataset_names: Sequence[str],
    kernel_factory: Callable[[], Mapping[str, GuidedKernel]],
    *,
    device: DeviceSpec | None = None,
    cpu: CpuSpec | None = None,
    cost: CostModel | None = None,
) -> Dict[str, Dict[str, float]]:
    """Per-dataset speedups over the CPU baseline plus the geometric mean.

    ``kernel_factory`` is called once per dataset so kernels do not carry
    state across datasets.  The returned mapping is
    ``kernel_name -> {dataset_name: speedup, ..., "GeoMean": g}``.

    This is the serial compatibility wrapper around
    :func:`repro.bench.runner.run_speedup_table`; the factory keeps the
    run in-process.  To shard over worker processes, call the runner
    directly with a named suite (``suite="mm2"`` etc.) and ``workers=N``
    -- the output is bit-identical.
    """
    # Imported lazily: repro.bench.runner imports this module at load time.
    from repro.bench.runner import run_speedup_table

    return run_speedup_table(
        list(dataset_names),
        kernel_factory=kernel_factory,
        device=device,
        cpu=cpu,
        cost=cost,
    )
