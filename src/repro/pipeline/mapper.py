"""Long-read mapper: seeding, chaining and guided extension.

:class:`LongReadMapper` reproduces the structure of Minimap2's mapping
loop on top of the repository's substrate:

1. index the reference minimizers once;
2. for each read, collect anchors, chain them, and pick the best chain;
3. extract the extension tasks implied by that chain
   (:func:`repro.io.seed_chain.extension_tasks_for_read`);
4. run the guided aligner on those tasks and combine the chain's exact
   anchor matches with the extension scores into a mapping score.

The mapper is used by the example applications and by the experiment
harness to generate the alignment workloads the kernels are benchmarked
on -- which is exactly how the paper's datasets were produced (reads were
"run through the pre-computing steps to obtain the final datasets for
alignment", Section 5.1).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.align.batch import DEFAULT_BUCKET_SIZE
from repro.align.scoring import ScoringScheme
from repro.align.types import AlignmentResult, AlignmentTask
from repro.io.seed_chain import (
    Chain,
    MinimizerIndex,
    chain_anchors,
    extension_tasks_for_read,
)

__all__ = ["ReadMapping", "LongReadMapper"]


@dataclass
class ReadMapping:
    """Result of mapping one read."""

    read_id: int
    mapped: bool
    ref_start: int = -1
    ref_end: int = -1
    query_start: int = -1
    query_end: int = -1
    num_anchors: int = 0
    extension_score: int = 0
    extension_results: List[AlignmentResult] = field(default_factory=list)

    @property
    def mapping_score(self) -> int:
        """Anchor matches plus extension scores (a chain-level score)."""
        return self.num_anchors + self.extension_score


class LongReadMapper:
    """Minimap2-style mapper over the repository substrate.

    Parameters
    ----------
    reference:
        Encoded reference sequence.
    scoring:
        Scoring scheme (band width / Z-drop included) used for extensions.
    k, w:
        Minimizer parameters.
    min_anchors:
        Minimum chain size for a read to count as mapped.
    engine:
        Alignment-engine name from the :mod:`repro.api` engine registry
        (``"batch"`` by default: each read's extension tasks go to the
        struct-of-arrays batch engine as one batch.  ``"scalar"`` aligns
        them one by one -- scores are bit-identical, just slower).
    batch_size:
        Bucket size handed to the batch engine.
    batched:
        Deprecated boolean form of ``engine`` (``True`` -> ``"batch"``,
        ``False`` -> ``"scalar"``); passing it emits a
        :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        reference: np.ndarray,
        scoring: ScoringScheme,
        *,
        k: int = 11,
        w: int = 5,
        min_anchors: int = 3,
        max_extension: int = 4096,
        anchor_spacing: int = 200,
        engine: Optional[str] = None,
        batched: Optional[bool] = None,
        batch_size: int = DEFAULT_BUCKET_SIZE,
    ):
        if batched is not None:
            if engine is not None:
                raise ValueError("pass engine=..., not both engine= and batched=")
            warnings.warn(
                "LongReadMapper(batched=...) is deprecated; "
                "pass engine='batch' or engine='scalar' instead (see repro.api)",
                DeprecationWarning,
                stacklevel=2,
            )
            engine = "batch" if batched else "scalar"
        self.reference = np.asarray(reference, dtype=np.uint8)
        self.scoring = scoring
        self.k = k
        self.w = w
        self.min_anchors = min_anchors
        self.max_extension = max_extension
        self.anchor_spacing = anchor_spacing
        self.engine = engine if engine is not None else "batch"
        # Imported lazily (repro.api.session imports this module); fail
        # fast on unknown engine names rather than mid-mapping.
        from repro.api.engines import get_engine

        get_engine(self.engine)
        self.batch_size = batch_size
        self.index = MinimizerIndex(self.reference, k=k, w=w)

    @property
    def batched(self) -> bool:
        """Backwards-compatible view of the engine choice."""
        return self.engine != "scalar"

    # ------------------------------------------------------------------
    def best_chain(self, read: np.ndarray) -> Optional[Chain]:
        """Best colinear chain of a read against the reference."""
        anchors = self.index.anchors(read)
        chains = chain_anchors(anchors, min_anchors=self.min_anchors)
        return chains[0] if chains else None

    def extension_tasks(
        self, read: np.ndarray, *, start_task_id: int = 0
    ) -> List[AlignmentTask]:
        """Extension tasks of one read (empty when the read has no chain)."""
        chain = self.best_chain(read)
        if chain is None:
            return []
        return extension_tasks_for_read(
            self.reference,
            np.asarray(read, dtype=np.uint8),
            chain,
            self.scoring,
            k=self.k,
            max_extension=self.max_extension,
            anchor_spacing=self.anchor_spacing,
            start_task_id=start_task_id,
        )

    def workload(self, reads: Sequence[np.ndarray]) -> List[AlignmentTask]:
        """All extension tasks of a batch of reads, with unique task ids."""
        tasks: List[AlignmentTask] = []
        for read in reads:
            tasks.extend(self.extension_tasks(read, start_task_id=len(tasks)))
        return tasks

    # ------------------------------------------------------------------
    def align_tasks(
        self, tasks: Sequence[AlignmentTask]
    ) -> List[AlignmentResult]:
        """Align extension tasks with the configured engine."""
        # Imported lazily: repro.api.session imports this module.
        from repro.api.engines import EngineOptions, align_tasks

        return align_tasks(
            tasks,
            engine=self.engine,
            options=EngineOptions(batch_size=self.batch_size),
        )

    def map_read(self, read: np.ndarray, read_id: int = 0) -> ReadMapping:
        """Map one read end to end (chain + extension alignment)."""
        read = np.asarray(read, dtype=np.uint8)
        chain = self.best_chain(read)
        if chain is None:
            return ReadMapping(read_id=read_id, mapped=False)
        tasks = extension_tasks_for_read(
            self.reference,
            read,
            chain,
            self.scoring,
            k=self.k,
            max_extension=self.max_extension,
            anchor_spacing=self.anchor_spacing,
        )
        results = self.align_tasks(tasks)
        extension_score = int(sum(max(r.score, 0) for r in results))
        q_lo, q_hi = chain.query_span
        r_lo, r_hi = chain.ref_span
        return ReadMapping(
            read_id=read_id,
            mapped=True,
            ref_start=r_lo,
            ref_end=r_hi + self.k,
            query_start=q_lo,
            query_end=q_hi + self.k,
            num_anchors=chain.num_anchors,
            extension_score=extension_score,
            extension_results=results,
        )

    def map_reads(self, reads: Sequence[np.ndarray]) -> List[ReadMapping]:
        """Map a batch of reads."""
        return [self.map_read(read, read_id=i) for i, read in enumerate(reads)]
