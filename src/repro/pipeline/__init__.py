"""End-to-end pipeline: read mapping and the experiment harness.

``mapper``
    :class:`LongReadMapper` ties the substrate together the way Minimap2
    does: minimizer indexing, chaining, extension-task extraction and
    guided alignment of the extension tasks.
``experiment``
    Builders for the evaluation workloads (the nine named datasets, the
    long/short mixtures), the scaled hardware pair, and the comparison /
    speedup helpers shared by every benchmark and example.
"""

from repro.pipeline.mapper import LongReadMapper, ReadMapping
from repro.pipeline.experiment import (
    ExperimentConfig,
    dataset_tasks,
    all_dataset_names,
    scaled_hardware,
    kernel_suite,
    align_workload,
    compare_kernels,
    speedup_table,
)

__all__ = [
    "LongReadMapper",
    "ReadMapping",
    "ExperimentConfig",
    "dataset_tasks",
    "all_dataset_names",
    "scaled_hardware",
    "kernel_suite",
    "align_workload",
    "compare_kernels",
    "speedup_table",
]
