"""Batched struct-of-arrays alignment engine.

:func:`repro.align.antidiagonal.antidiagonal_align` vectorises *within*
one task -- all in-band cells of one anti-diagonal are computed with one
set of NumPy operations -- but the repository still aligned every
:class:`~repro.align.types.AlignmentTask` one at a time, paying the full
Python dispatch overhead of the sweep loop per task.  This module adds the
second axis of parallelism the paper's kernels exploit: *inter-task*
parallelism.  A batch of tasks is packed into struct-of-arrays buffers
(the GASAL2-style batch interface: padded 2-D code matrices plus per-task
length/geometry vectors) and the banded wavefront sweep advances **all
tasks of a bucket simultaneously**, one ``(tasks x lanes)`` matrix
operation per anti-diagonal.

Bucketing
---------
Tasks of wildly different sizes would waste padded lanes, so the batch is
first split into size-homogeneous buckets with
:func:`repro.core.uneven_bucketing.length_bucket_order` (sorted by
anti-diagonal count, the quantity that bounds sweep length).  This is the
SIMD mirror image of the paper's uneven bucketing: warps want *mixed*
workloads so rejoining can balance them, a data-parallel batch wants
*matched* workloads so padding is cheap.

Exactness
---------
The engine performs the same ``int64`` arithmetic as the scalar sweep in
the same order, so its results -- scores, maximum cells, termination
anti-diagonals, work counters and per-anti-diagonal profiles -- are
bit-identical to :func:`antidiagonal_align`.  The property tests in
``tests/align/test_batch.py`` enforce this across random scoring schemes,
band widths and ragged buckets.

Termination is vectorised as well: every task carries its own Z-drop /
X-drop parameters, and a task whose condition fires simply drops out of
the active lane mask while the rest of its bucket keeps sweeping.

Sliced sweeping and lane compaction
-----------------------------------
Masking a terminated task hides its lanes from the arithmetic but not
from the *buffers*: the dense sweep keeps carrying the task's rows in
every ``(tasks x lanes)`` operation until the whole bucket finishes, so
a bucket whose longest task runs far past everyone else's termination
point pays full-width matrix traffic the whole way.  Passing
``slice_width=`` to :func:`batch_align` turns on the data-parallel
analogue of the paper's two scheduling ideas:

* the sweep is cut into *slices* of ``slice_width`` anti-diagonals using
  the same slice geometry as the GPU-side simulator
  (:func:`repro.core.sliced_diagonal.slice_ranges`), so a terminated
  task occupies its lanes for at most one more slice -- bounded
  run-ahead of the buffer occupancy past the termination point
  (Section 4.2);
* at every slice boundary, terminated and completed tasks are
  *compacted* out of the struct-of-arrays buffers: survivors are
  re-packed into fewer rows and the lane axis shrinks to the widest
  surviving band -- freed width is reclaimed by the rest of the bucket,
  the SIMD mirror of subwarp rejoining (Section 4.3).

The termination condition itself is still evaluated every
anti-diagonal, exactly like the dense sweep, so scores, maximum cells,
termination anti-diagonals, work counters and profiles stay bit-identical
to the scalar oracle; only the buffer bookkeeping -- and therefore the
wall-clock -- changes.  ``tests/align/test_sliced_batch.py`` pins the
equivalence, ``benchmarks/test_sliced_engine.py`` the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Sequence, Union, overload

import numpy as np

from repro.align.banding import BandGeometry
from repro.align.termination import NEG_INF
from repro.align.types import AlignmentProfile, AlignmentResult, AlignmentTask
from repro.core.sliced_diagonal import slice_ranges
from repro.core.uneven_bucketing import length_bucket_order

__all__ = [
    "DEFAULT_BUCKET_SIZE",
    "DEFAULT_SLICE_WIDTH",
    "ENGINE_SLICE_WIDTHS",
    "TaskBatch",
    "pack_tasks",
    "batch_align",
]

#: Default bucket size: large enough to amortise the per-anti-diagonal
#: Python dispatch over many tasks, small enough that the length spread
#: inside one sorted bucket stays narrow.
DEFAULT_BUCKET_SIZE: int = 64

#: Default compaction slice width of the ``batch-sliced`` engine, in cell
#: anti-diagonals: the paper's slice geometry (``slice_width`` 3 block
#: anti-diagonals of 8x8 blocks) expressed in cells.
DEFAULT_SLICE_WIDTH: int = 24

#: Slice width implied by each batch-capable engine name: the dense
#: ``"batch"`` engine never compacts, ``"batch-sliced"`` and the NumPy
#: ``"vector"`` engine compact every :data:`DEFAULT_SLICE_WIDTH`
#: anti-diagonals.  Consumers that prime profiles through the batch
#: machinery (``KernelConfig.scoring_engine``) resolve their engine
#: name here; ``"vector"`` is listed unconditionally and resolves its
#: optional NumPy dependency lazily at scoring time.
ENGINE_SLICE_WIDTHS: Dict[str, Optional[int]] = {
    "batch": None,
    "batch-sliced": DEFAULT_SLICE_WIDTH,
    "vector": DEFAULT_SLICE_WIDTH,
}

# Per-task termination kinds (vectorised counterpart of the
# TerminationCondition subclasses).
_TERM_NONE = 0
_TERM_ZDROP = 1
_TERM_XDROP = 2

_TERMINATION_KINDS = ("zdrop", "xdrop", "none")


@dataclass
class TaskBatch:
    """Struct-of-arrays packing of one bucket of alignment tasks.

    All arrays share the task axis (length ``B``).  Sequences are padded
    to the bucket maxima; per-task lengths and band diagonals delimit the
    valid region exactly as :class:`~repro.align.banding.BandGeometry`
    does for one task.
    """

    tasks: List[AlignmentTask]
    ref_buf: np.ndarray  # (B, max_ref)  uint8, zero-padded
    query_buf: np.ndarray  # (B, max_query) uint8, zero-padded
    ref_len: np.ndarray  # (B,) int64
    query_len: np.ndarray  # (B,) int64
    diag_lo: np.ndarray  # (B,) int64 band diagonal range
    diag_hi: np.ndarray  # (B,) int64
    num_antidiagonals: np.ndarray  # (B,) int64
    sub_stack: np.ndarray  # (S, 5, 5) int64 substitution matrices
    scheme_idx: np.ndarray  # (B,) intp index into sub_stack
    gap_open: np.ndarray  # (B,) int64 (alpha)
    gap_extend: np.ndarray  # (B,) int64 (beta)
    term_kind: np.ndarray  # (B,) uint8 (_TERM_*)
    term_threshold: np.ndarray  # (B,) int64 (Z or X threshold)

    @property
    def size(self) -> int:
        """Number of tasks in the batch."""
        return len(self.tasks)

    @property
    def max_lanes(self) -> int:
        """Widest in-band anti-diagonal of any task (the lane axis)."""
        if self.size == 0:
            return 0
        lanes = _lane_bounds(self.ref_len, self.query_len, self.diag_lo, self.diag_hi)
        return int(max(lanes.max(initial=0), 0))


def _lane_bounds(
    ref_len: np.ndarray,
    query_len: np.ndarray,
    diag_lo: np.ndarray,
    diag_hi: np.ndarray,
) -> np.ndarray:
    """Per-task upper bound on in-band cells of any one anti-diagonal.

    No anti-diagonal of a task holds more in-band cells than
    ``min(ref_len, query_len, band)`` where ``band`` counts the task's
    same-parity diagonals.  :attr:`TaskBatch.max_lanes` sizes the lane
    axis with this bound, and the slice-boundary compaction shrinks it
    with the same bound -- they must stay one formula, because the
    compaction's "trimming keeps every valid lane" invariant is exactly
    that the stored wavefront never exceeds it.
    """
    band = np.where(diag_hi >= diag_lo, (diag_hi - diag_lo) // 2 + 1, 0)
    return np.minimum.reduce([ref_len, query_len, band])


def _resolve_termination(task: AlignmentTask, kind: str) -> tuple[int, int]:
    """Per-task (kind, threshold) mirroring ``make_termination``."""
    scoring = task.scoring
    if kind == "none" or not scoring.has_termination:
        return _TERM_NONE, 0
    if kind == "zdrop":
        return _TERM_ZDROP, scoring.zdrop
    return _TERM_XDROP, scoring.zdrop


def pack_tasks(
    tasks: Sequence[AlignmentTask], termination: str = "zdrop"
) -> TaskBatch:
    """Pack ``tasks`` into one struct-of-arrays :class:`TaskBatch`.

    Parameters
    ----------
    tasks:
        The tasks of one bucket (ideally of similar size; see
        :func:`repro.core.uneven_bucketing.length_bucket_order`).
    termination:
        ``"zdrop"`` (the exact guided algorithm), ``"xdrop"`` (LOGAN /
        Manymap-style) or ``"none"``.  A task whose scheme has
        ``zdrop == 0`` gets no termination regardless, exactly like
        :func:`repro.align.termination.make_termination`.
    """
    if termination not in _TERMINATION_KINDS:
        raise ValueError(
            f"unknown termination kind {termination!r}; "
            f"expected one of {_TERMINATION_KINDS}"
        )
    tasks = list(tasks)
    n = len(tasks)
    max_ref = max((t.ref_len for t in tasks), default=0)
    max_query = max((t.query_len for t in tasks), default=0)
    ref_buf = np.zeros((n, max(max_ref, 1)), dtype=np.uint8)
    query_buf = np.zeros((n, max(max_query, 1)), dtype=np.uint8)
    ref_len = np.zeros(n, dtype=np.int64)
    query_len = np.zeros(n, dtype=np.int64)
    diag_lo = np.zeros(n, dtype=np.int64)
    diag_hi = np.zeros(n, dtype=np.int64)
    num_ad = np.zeros(n, dtype=np.int64)
    gap_open = np.zeros(n, dtype=np.int64)
    gap_extend = np.zeros(n, dtype=np.int64)
    term_kind = np.zeros(n, dtype=np.uint8)
    term_threshold = np.zeros(n, dtype=np.int64)
    scheme_idx = np.zeros(n, dtype=np.intp)

    schemes: dict = {}
    sub_mats: List[np.ndarray] = []
    for b, task in enumerate(tasks):
        ref_buf[b, : task.ref_len] = task.ref
        query_buf[b, : task.query_len] = task.query
        ref_len[b] = task.ref_len
        query_len[b] = task.query_len
        geom = task.geometry
        diag_lo[b] = geom.diag_lo
        diag_hi[b] = geom.diag_hi
        num_ad[b] = geom.num_antidiagonals
        scoring = task.scoring
        gap_open[b] = scoring.gap_open
        gap_extend[b] = scoring.gap_extend
        term_kind[b], term_threshold[b] = _resolve_termination(task, termination)
        key = scoring
        if key not in schemes:
            schemes[key] = len(sub_mats)
            sub_mats.append(scoring.substitution_matrix().astype(np.int64))
        scheme_idx[b] = schemes[key]

    sub_stack = (
        np.stack(sub_mats) if sub_mats else np.zeros((1, 5, 5), dtype=np.int64)
    )
    return TaskBatch(
        tasks=tasks,
        ref_buf=ref_buf,
        query_buf=query_buf,
        ref_len=ref_len,
        query_len=query_len,
        diag_lo=diag_lo,
        diag_hi=diag_hi,
        num_antidiagonals=num_ad,
        sub_stack=sub_stack,
        scheme_idx=scheme_idx,
        gap_open=gap_open,
        gap_extend=gap_extend,
        term_kind=term_kind,
        term_threshold=term_threshold,
    )


def _gather_lanes(
    values: np.ndarray,
    lo: np.ndarray,
    count: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Batched version of the scalar engine's ``_gather``.

    ``values`` holds each task's previous-anti-diagonal state in lanes
    ``0 .. count[b] - 1`` (query rows ``lo[b] .. lo[b] + count[b] - 1``);
    gather it at query rows ``rows`` (shape ``(B, W)``), yielding
    ``NEG_INF`` outside the stored range.
    """
    if values.shape[1] == 0:
        return np.full(rows.shape, NEG_INF, dtype=np.int64)
    idx = rows - lo[:, None]
    valid = (idx >= 0) & (idx < count[:, None])
    gathered = np.take_along_axis(
        values, np.clip(idx, 0, values.shape[1] - 1), axis=1
    )
    return np.where(valid, gathered, NEG_INF)


def _sweep(
    batch: TaskBatch,
    *,
    return_profiles: bool,
    slice_width: Optional[int] = None,
) -> Union[List[AlignmentResult], List[AlignmentProfile]]:
    """Run the banded wavefront DP over every task of ``batch`` at once.

    With ``slice_width=None`` the sweep is dense: every task keeps its
    buffer rows until the bucket finishes.  With a positive
    ``slice_width`` the sweep compacts terminated/completed tasks out of
    the struct-of-arrays buffers at every slice boundary (see the module
    docstring); the arithmetic -- and therefore every output -- is
    identical either way.
    """
    n = batch.size
    if n == 0:
        return []
    max_ad = int(batch.num_antidiagonals.max(initial=0))

    # Input-order accumulators.  They stay full-size for the whole sweep;
    # the live task-axis arrays below may shrink at slice boundaries, and
    # ``orig`` maps live rows back to input positions.
    best_score = np.full(n, NEG_INF, dtype=np.int64)
    best_i = np.full(n, -1, dtype=np.int64)
    best_j = np.full(n, -1, dtype=np.int64)
    fired = np.zeros(n, dtype=bool)
    ad_count = np.zeros(n, dtype=np.int64)
    cells_count = np.zeros(n, dtype=np.int64)
    if return_profiles:
        maxima_buf = np.zeros((n, max_ad), dtype=np.int64)
        cells_buf = np.zeros((n, max_ad), dtype=np.int64)

    # Live per-task vectors (compacted in lock step with the buffers).
    orig = np.arange(n)
    ref_buf = batch.ref_buf
    query_buf = batch.query_buf
    ref_len = batch.ref_len
    query_len = batch.query_len
    diag_lo = batch.diag_lo
    diag_hi = batch.diag_hi
    num_ad = batch.num_antidiagonals
    scheme_idx = batch.scheme_idx
    term_kind = batch.term_kind
    term_threshold = batch.term_threshold
    alpha = batch.gap_open
    beta = batch.gap_extend
    open_cost = alpha + beta

    m = n
    width = batch.max_lanes
    task_idx = np.arange(m)
    lane = np.arange(width, dtype=np.int64)[None, :]

    # Wavefront state: anti-diagonal c-1 (H/E/F) and c-2 (H only), each
    # with its per-task row offset and valid lane count.
    h1 = np.full((m, width), NEG_INF, dtype=np.int64)
    e1 = np.full((m, width), NEG_INF, dtype=np.int64)
    f1 = np.full((m, width), NEG_INF, dtype=np.int64)
    lo1 = np.zeros(m, dtype=np.int64)
    cnt1 = np.zeros(m, dtype=np.int64)
    h2 = np.full((m, width), NEG_INF, dtype=np.int64)
    lo2 = np.zeros(m, dtype=np.int64)
    cnt2 = np.zeros(m, dtype=np.int64)

    spans = (
        [(0, max_ad)] if slice_width is None else slice_ranges(max_ad, slice_width)
    )
    exhausted = False
    for slice_lo, slice_hi in spans:
        if exhausted:
            break
        if slice_lo > 0:
            # Slice boundary: compact terminated and completed tasks out
            # of the buffers, re-packing survivors into fewer rows and
            # shrinking the lane axis to the widest surviving band.
            keep = ~fired[orig] & (num_ad > slice_lo)
            if not keep.all():
                live = np.flatnonzero(keep)
                if live.size == 0:
                    break
                orig = orig[live]
                ref_len = ref_len[live]
                query_len = query_len[live]
                diag_lo = diag_lo[live]
                diag_hi = diag_hi[live]
                num_ad = num_ad[live]
                scheme_idx = scheme_idx[live]
                term_kind = term_kind[live]
                term_threshold = term_threshold[live]
                alpha = alpha[live]
                beta = beta[live]
                open_cost = open_cost[live]
                lanes = _lane_bounds(ref_len, query_len, diag_lo, diag_hi)
                width = int(max(lanes.max(initial=0), 0))
                ref_buf = ref_buf[live, : max(int(ref_len.max(initial=0)), 1)]
                query_buf = query_buf[
                    live, : max(int(query_len.max(initial=0)), 1)
                ]
                h1 = h1[live, :width]
                e1 = e1[live, :width]
                f1 = f1[live, :width]
                h2 = h2[live, :width]
                lo1 = lo1[live]
                cnt1 = cnt1[live]
                lo2 = lo2[live]
                cnt2 = cnt2[live]
                m = live.size
                task_idx = np.arange(m)
                lane = np.arange(width, dtype=np.int64)[None, :]

        for c in range(slice_lo, slice_hi):
            active = ~fired[orig] & (c < num_ad)
            if not active.any():
                # Every live task has fired or completed; no later
                # anti-diagonal can revive one.
                exhausted = True
                break

            # In-band row range per task (BandGeometry.row_range, vectorised).
            j_lo = np.maximum.reduce(
                [
                    np.zeros(m, dtype=np.int64),
                    c - ref_len + 1,
                    -((diag_hi - c) // 2),
                ]
            )
            j_hi = np.minimum.reduce(
                [query_len - 1, np.full(m, c, dtype=np.int64), (c - diag_lo) // 2]
            )
            count = np.where(active, np.maximum(j_hi - j_lo + 1, 0), 0)

            rows = j_lo[:, None] + lane
            cols = c - rows
            lane_mask = (lane < count[:, None]) & active[:, None]

            # --- vertical (E): (i-1, j) on anti-diagonal c-1, same row.
            up_h = _gather_lanes(h1, lo1, cnt1, rows)
            up_e = _gather_lanes(e1, lo1, cnt1, rows)
            top_edge = lane_mask & (cols == 0)
            edge_cost = -(alpha[:, None] + (rows + 1) * beta[:, None])
            up_h = np.where(top_edge, edge_cost, up_h)
            up_e = np.where(top_edge, NEG_INF, up_e)

            # --- horizontal (F): (i, j-1) on anti-diagonal c-1, row j-1.
            left_h = _gather_lanes(h1, lo1, cnt1, rows - 1)
            left_f = _gather_lanes(f1, lo1, cnt1, rows - 1)
            left_edge = lane_mask & (rows == 0)
            left_cost = -(alpha[:, None] + (cols + 1) * beta[:, None])
            left_h = np.where(left_edge, left_cost, left_h)
            left_f = np.where(left_edge, NEG_INF, left_f)

            # --- diagonal: H at (i-1, j-1) on anti-diagonal c-2, row j-1.
            diag_h = _gather_lanes(h2, lo2, cnt2, rows - 1)
            corner = lane_mask & (cols == 0) & (rows == 0)
            diag_h = np.where(corner, 0, diag_h)
            top_diag = lane_mask & (cols == 0) & (rows > 0)
            diag_h = np.where(
                top_diag, -(alpha[:, None] + rows * beta[:, None]), diag_h
            )
            left_diag = lane_mask & (rows == 0) & (cols > 0)
            diag_h = np.where(
                left_diag, -(alpha[:, None] + cols * beta[:, None]), diag_h
            )

            e_cur = np.maximum(up_h - open_cost[:, None], up_e - beta[:, None])
            f_cur = np.maximum(left_h - open_cost[:, None], left_f - beta[:, None])
            np.maximum(e_cur, NEG_INF, out=e_cur)
            np.maximum(f_cur, NEG_INF, out=f_cur)

            ref_codes = np.take_along_axis(
                ref_buf, np.clip(cols, 0, ref_buf.shape[1] - 1), axis=1
            )
            query_codes = np.take_along_axis(
                query_buf,
                np.clip(rows, 0, query_buf.shape[1] - 1),
                axis=1,
            )
            match_scores = batch.sub_stack[
                scheme_idx[:, None], ref_codes, query_codes
            ]
            diag_val = np.where(diag_h > NEG_INF, diag_h + match_scores, NEG_INF)

            h_cur = np.maximum(np.maximum(e_cur, f_cur), diag_val)
            np.maximum(h_cur, NEG_INF, out=h_cur)
            h_masked = np.where(lane_mask, h_cur, NEG_INF)

            # Per-task local maximum of this anti-diagonal (first-max index,
            # like the scalar engine's argmax).
            k = np.argmax(h_masked, axis=1)
            local_best = h_masked[task_idx, k]
            local_j = rows[task_idx, k]
            local_i = c - local_j

            ad_count[orig] += active
            cells_count[orig] += count
            if return_profiles:
                maxima_buf[orig[active], c] = np.where(
                    count > 0, local_best, NEG_INF
                )[active]
                cells_buf[orig[active], c] = count[active]

            # --- termination update (condition checked against the global
            # maximum of *earlier* anti-diagonals, then the local maximum is
            # folded in -- the exact ordering of TerminationCondition.update).
            bs = best_score[orig]
            bi = best_i[orig]
            bj = best_j[orig]
            cond = active & (local_best > NEG_INF)
            has_best = bs > NEG_INF
            drop = bs - local_best
            diag_offset = np.abs((local_i - bi) - (local_j - bj))
            z_fire = drop > term_threshold + beta * diag_offset
            x_fire = drop > term_threshold
            fire = (
                cond
                & has_best
                & (
                    ((term_kind == _TERM_ZDROP) & z_fire)
                    | ((term_kind == _TERM_XDROP) & x_fire)
                )
            )
            fired[orig] |= fire
            improve = cond & ~fire & (local_best > bs)
            best_score[orig] = np.where(improve, local_best, bs)
            best_i[orig] = np.where(improve, local_i, bi)
            best_j[orig] = np.where(improve, local_j, bj)

            # --- advance the wavefront state.
            h2, lo2, cnt2 = h1, lo1, cnt1
            h1, e1, f1 = h_masked, e_cur, f_cur
            lo1 = np.where(count > 0, j_lo, 0)
            cnt1 = count

    score = np.where(best_score > NEG_INF, best_score, 0)
    results = [
        AlignmentResult(
            score=int(score[b]),
            max_i=int(best_i[b]),
            max_j=int(best_j[b]),
            terminated=bool(fired[b]),
            antidiagonals_processed=int(ad_count[b]),
            cells_computed=int(cells_count[b]),
        )
        for b in range(n)
    ]
    if not return_profiles:
        return results
    profiles = []
    for b, (task, result) in enumerate(zip(batch.tasks, results)):
        processed = int(ad_count[b])
        profiles.append(
            AlignmentProfile(
                result=result,
                antidiag_maxima=maxima_buf[b, :processed].copy(),
                cells_per_antidiag=cells_buf[b, :processed].copy(),
                geometry=BandGeometry(
                    task.ref_len, task.query_len, task.scoring.band_width
                ),
            )
        )
    return profiles


@overload
def batch_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = ...,
    bucket_size: int = ...,
    return_profiles: Literal[False] = ...,
    slice_width: Optional[int] = ...,
) -> List[AlignmentResult]: ...


@overload
def batch_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = ...,
    bucket_size: int = ...,
    return_profiles: Literal[True],
    slice_width: Optional[int] = ...,
) -> List[AlignmentProfile]: ...


def batch_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = "zdrop",
    bucket_size: int = DEFAULT_BUCKET_SIZE,
    return_profiles: bool = False,
    slice_width: Optional[int] = None,
) -> Union[List[AlignmentResult], List[AlignmentProfile]]:
    """Align every task with the batched struct-of-arrays engine.

    Tasks are bucketed by anti-diagonal count (so the padded sweep wastes
    little work), each bucket is packed with :func:`pack_tasks` and swept
    in one go, and the outputs are returned **in input order**.

    The results are bit-identical to running
    :func:`repro.align.antidiagonal.antidiagonal_align` per task with the
    matching termination condition -- with or without sliced compaction.

    Parameters
    ----------
    tasks:
        Any mix of sizes and scoring schemes.
    termination:
        ``"zdrop"`` / ``"xdrop"`` / ``"none"`` (per-task thresholds come
        from each task's scoring scheme).
    bucket_size:
        Maximum tasks swept simultaneously.
    return_profiles:
        Return :class:`AlignmentProfile` objects (with per-anti-diagonal
        maxima and cell counts) instead of plain results.
    slice_width:
        ``None`` (the dense sweep) or a positive number of anti-diagonals
        between compaction points: at every slice boundary, terminated
        and completed tasks are compacted out of the bucket's buffers so
        survivors sweep in smaller matrices (the ``batch-sliced``
        engine; see the module docstring).
    """
    if slice_width is not None and slice_width <= 0:
        raise ValueError("slice_width must be positive (or None for dense)")
    tasks = list(tasks)
    if not tasks:
        return []
    workloads = [t.num_antidiagonals for t in tasks]
    out: List = [None] * len(tasks)
    for bucket in length_bucket_order(workloads, bucket_size):
        batch = pack_tasks([tasks[i] for i in bucket], termination)
        swept = _sweep(
            batch, return_profiles=return_profiles, slice_width=slice_width
        )
        for i, item in zip(bucket, swept):
            out[i] = item
    return out
