"""Batched struct-of-arrays alignment engine.

:func:`repro.align.antidiagonal.antidiagonal_align` vectorises *within*
one task -- all in-band cells of one anti-diagonal are computed with one
set of NumPy operations -- but the repository still aligned every
:class:`~repro.align.types.AlignmentTask` one at a time, paying the full
Python dispatch overhead of the sweep loop per task.  This module adds the
second axis of parallelism the paper's kernels exploit: *inter-task*
parallelism.  A batch of tasks is packed into struct-of-arrays buffers
(the GASAL2-style batch interface: padded 2-D code matrices plus per-task
length/geometry vectors) and the banded wavefront sweep advances **all
tasks of a bucket simultaneously**, one ``(tasks x lanes)`` matrix
operation per anti-diagonal.

Bucketing
---------
Tasks of wildly different sizes would waste padded lanes, so the batch is
first split into size-homogeneous buckets with
:func:`repro.core.uneven_bucketing.length_bucket_order` (sorted by
anti-diagonal count, the quantity that bounds sweep length).  This is the
SIMD mirror image of the paper's uneven bucketing: warps want *mixed*
workloads so rejoining can balance them, a data-parallel batch wants
*matched* workloads so padding is cheap.

Exactness
---------
The engine performs the same ``int64`` arithmetic as the scalar sweep in
the same order, so its results -- scores, maximum cells, termination
anti-diagonals, work counters and per-anti-diagonal profiles -- are
bit-identical to :func:`antidiagonal_align`.  The property tests in
``tests/align/test_batch.py`` enforce this across random scoring schemes,
band widths and ragged buckets.

Termination is vectorised as well: every task carries its own Z-drop /
X-drop parameters, and a task whose condition fires simply drops out of
the active lane mask while the rest of its bucket keeps sweeping.

Sliced sweeping and lane compaction
-----------------------------------
Masking a terminated task hides its lanes from the arithmetic but not
from the *buffers*: the dense sweep keeps carrying the task's rows in
every ``(tasks x lanes)`` operation until the whole bucket finishes, so
a bucket whose longest task runs far past everyone else's termination
point pays full-width matrix traffic the whole way.  Passing
``slice_width=`` to :func:`batch_align` turns on the data-parallel
analogue of the paper's two scheduling ideas:

* the sweep is cut into *slices* of ``slice_width`` anti-diagonals using
  the same slice geometry as the GPU-side simulator
  (:func:`repro.core.sliced_diagonal.slice_ranges`), so a terminated
  task occupies its lanes for at most one more slice -- bounded
  run-ahead of the buffer occupancy past the termination point
  (Section 4.2);
* at every slice boundary, terminated and completed tasks are
  *compacted* out of the struct-of-arrays buffers: survivors are
  re-packed into fewer rows and the lane axis shrinks to the widest
  surviving band -- freed width is reclaimed by the rest of the bucket,
  the SIMD mirror of subwarp rejoining (Section 4.3).

The termination condition itself is still evaluated every
anti-diagonal, exactly like the dense sweep, so scores, maximum cells,
termination anti-diagonals, work counters and profiles stay bit-identical
to the scalar oracle; only the buffer bookkeeping -- and therefore the
wall-clock -- changes.  ``tests/align/test_sliced_batch.py`` pins the
equivalence, ``benchmarks/test_sliced_engine.py`` the speedup.

Streaming: the in-flight batch
------------------------------
The sweep itself is implemented as a *resumable stream*
(:class:`BatchStream`, implementing the
:class:`repro.align.streaming.InFlightBatch` contract): every task
carries its own anti-diagonal offset (``start``), so its local
anti-diagonal index is ``global_step - start`` and a task admitted at
any slice boundary sweeps exactly as if it had started a fresh batch --
every use of the anti-diagonal counter is per-task-elementwise, which is
what makes mid-stream admission bit-exact.  ``step()`` advances one
slice and retires finished tasks; ``admit()`` injects new tasks into the
lanes compaction freed.  :func:`batch_align` is now a thin
open-everything-then-drain wrapper, so the whole existing equivalence
suite pins the stream's arithmetic too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Sequence, Tuple, Union, overload

import numpy as np

from repro.align.banding import BandGeometry
from repro.align.streaming import SliceStats
from repro.align.termination import NEG_INF
from repro.align.types import AlignmentProfile, AlignmentResult, AlignmentTask
from repro.core.uneven_bucketing import length_bucket_order

__all__ = [
    "DEFAULT_BUCKET_SIZE",
    "DEFAULT_SLICE_WIDTH",
    "ENGINE_SLICE_WIDTHS",
    "TaskBatch",
    "BatchStream",
    "pack_tasks",
    "batch_align",
]

#: Default bucket size: large enough to amortise the per-anti-diagonal
#: Python dispatch over many tasks, small enough that the length spread
#: inside one sorted bucket stays narrow.
DEFAULT_BUCKET_SIZE: int = 64

#: Default compaction slice width of the ``batch-sliced`` engine, in cell
#: anti-diagonals: the paper's slice geometry (``slice_width`` 3 block
#: anti-diagonals of 8x8 blocks) expressed in cells.
DEFAULT_SLICE_WIDTH: int = 24

#: Slice width implied by each batch-capable engine name: the dense
#: ``"batch"`` engine never compacts, ``"batch-sliced"`` and the NumPy
#: ``"vector"`` engine compact every :data:`DEFAULT_SLICE_WIDTH`
#: anti-diagonals.  Consumers that prime profiles through the batch
#: machinery (``KernelConfig.scoring_engine``) resolve their engine
#: name here; ``"vector"`` is listed unconditionally and resolves its
#: optional NumPy dependency lazily at scoring time.
ENGINE_SLICE_WIDTHS: Dict[str, Optional[int]] = {
    "batch": None,
    "batch-sliced": DEFAULT_SLICE_WIDTH,
    "vector": DEFAULT_SLICE_WIDTH,
}

# Per-task termination kinds (vectorised counterpart of the
# TerminationCondition subclasses).
_TERM_NONE = 0
_TERM_ZDROP = 1
_TERM_XDROP = 2

_TERMINATION_KINDS = ("zdrop", "xdrop", "none")


@dataclass
class TaskBatch:
    """Struct-of-arrays packing of one bucket of alignment tasks.

    All arrays share the task axis (length ``B``).  Sequences are padded
    to the bucket maxima; per-task lengths and band diagonals delimit the
    valid region exactly as :class:`~repro.align.banding.BandGeometry`
    does for one task.
    """

    tasks: List[AlignmentTask]
    ref_buf: np.ndarray  # (B, max_ref)  uint8, zero-padded
    query_buf: np.ndarray  # (B, max_query) uint8, zero-padded
    ref_len: np.ndarray  # (B,) int64
    query_len: np.ndarray  # (B,) int64
    diag_lo: np.ndarray  # (B,) int64 band diagonal range
    diag_hi: np.ndarray  # (B,) int64
    num_antidiagonals: np.ndarray  # (B,) int64
    sub_stack: np.ndarray  # (S, 5, 5) int64 substitution matrices
    scheme_idx: np.ndarray  # (B,) intp index into sub_stack
    gap_open: np.ndarray  # (B,) int64 (alpha)
    gap_extend: np.ndarray  # (B,) int64 (beta)
    term_kind: np.ndarray  # (B,) uint8 (_TERM_*)
    term_threshold: np.ndarray  # (B,) int64 (Z or X threshold)

    @property
    def size(self) -> int:
        """Number of tasks in the batch."""
        return len(self.tasks)

    @property
    def max_lanes(self) -> int:
        """Widest in-band anti-diagonal of any task (the lane axis)."""
        if self.size == 0:
            return 0
        lanes = _lane_bounds(self.ref_len, self.query_len, self.diag_lo, self.diag_hi)
        return int(max(lanes.max(initial=0), 0))


def _lane_bounds(
    ref_len: np.ndarray,
    query_len: np.ndarray,
    diag_lo: np.ndarray,
    diag_hi: np.ndarray,
) -> np.ndarray:
    """Per-task upper bound on in-band cells of any one anti-diagonal.

    No anti-diagonal of a task holds more in-band cells than
    ``min(ref_len, query_len, band)`` where ``band`` counts the task's
    same-parity diagonals.  :attr:`TaskBatch.max_lanes` sizes the lane
    axis with this bound, and the slice-boundary compaction shrinks it
    with the same bound -- they must stay one formula, because the
    compaction's "trimming keeps every valid lane" invariant is exactly
    that the stored wavefront never exceeds it.
    """
    band = np.where(diag_hi >= diag_lo, (diag_hi - diag_lo) // 2 + 1, 0)
    return np.minimum.reduce([ref_len, query_len, band])


def _resolve_termination(task: AlignmentTask, kind: str) -> tuple[int, int]:
    """Per-task (kind, threshold) mirroring ``make_termination``."""
    scoring = task.scoring
    if kind == "none" or not scoring.has_termination:
        return _TERM_NONE, 0
    if kind == "zdrop":
        return _TERM_ZDROP, scoring.zdrop
    return _TERM_XDROP, scoring.zdrop


def pack_tasks(
    tasks: Sequence[AlignmentTask], termination: str = "zdrop"
) -> TaskBatch:
    """Pack ``tasks`` into one struct-of-arrays :class:`TaskBatch`.

    Parameters
    ----------
    tasks:
        The tasks of one bucket (ideally of similar size; see
        :func:`repro.core.uneven_bucketing.length_bucket_order`).
    termination:
        ``"zdrop"`` (the exact guided algorithm), ``"xdrop"`` (LOGAN /
        Manymap-style) or ``"none"``.  A task whose scheme has
        ``zdrop == 0`` gets no termination regardless, exactly like
        :func:`repro.align.termination.make_termination`.
    """
    if termination not in _TERMINATION_KINDS:
        raise ValueError(
            f"unknown termination kind {termination!r}; "
            f"expected one of {_TERMINATION_KINDS}"
        )
    tasks = list(tasks)
    n = len(tasks)
    max_ref = max((t.ref_len for t in tasks), default=0)
    max_query = max((t.query_len for t in tasks), default=0)
    ref_buf = np.zeros((n, max(max_ref, 1)), dtype=np.uint8)
    query_buf = np.zeros((n, max(max_query, 1)), dtype=np.uint8)
    ref_len = np.zeros(n, dtype=np.int64)
    query_len = np.zeros(n, dtype=np.int64)
    diag_lo = np.zeros(n, dtype=np.int64)
    diag_hi = np.zeros(n, dtype=np.int64)
    num_ad = np.zeros(n, dtype=np.int64)
    gap_open = np.zeros(n, dtype=np.int64)
    gap_extend = np.zeros(n, dtype=np.int64)
    term_kind = np.zeros(n, dtype=np.uint8)
    term_threshold = np.zeros(n, dtype=np.int64)
    scheme_idx = np.zeros(n, dtype=np.intp)

    schemes: dict = {}
    sub_mats: List[np.ndarray] = []
    for b, task in enumerate(tasks):
        ref_buf[b, : task.ref_len] = task.ref
        query_buf[b, : task.query_len] = task.query
        ref_len[b] = task.ref_len
        query_len[b] = task.query_len
        geom = task.geometry
        diag_lo[b] = geom.diag_lo
        diag_hi[b] = geom.diag_hi
        num_ad[b] = geom.num_antidiagonals
        scoring = task.scoring
        gap_open[b] = scoring.gap_open
        gap_extend[b] = scoring.gap_extend
        term_kind[b], term_threshold[b] = _resolve_termination(task, termination)
        key = scoring
        if key not in schemes:
            schemes[key] = len(sub_mats)
            sub_mats.append(scoring.substitution_matrix().astype(np.int64))
        scheme_idx[b] = schemes[key]

    sub_stack = (
        np.stack(sub_mats) if sub_mats else np.zeros((1, 5, 5), dtype=np.int64)
    )
    return TaskBatch(
        tasks=tasks,
        ref_buf=ref_buf,
        query_buf=query_buf,
        ref_len=ref_len,
        query_len=query_len,
        diag_lo=diag_lo,
        diag_hi=diag_hi,
        num_antidiagonals=num_ad,
        sub_stack=sub_stack,
        scheme_idx=scheme_idx,
        gap_open=gap_open,
        gap_extend=gap_extend,
        term_kind=term_kind,
        term_threshold=term_threshold,
    )


def _gather_lanes(
    values: np.ndarray,
    lo: np.ndarray,
    count: np.ndarray,
    rows: np.ndarray,
) -> np.ndarray:
    """Batched version of the scalar engine's ``_gather``.

    ``values`` holds each task's previous-anti-diagonal state in lanes
    ``0 .. count[b] - 1`` (query rows ``lo[b] .. lo[b] + count[b] - 1``);
    gather it at query rows ``rows`` (shape ``(B, W)``), yielding
    ``NEG_INF`` outside the stored range.
    """
    if values.shape[1] == 0:
        return np.full(rows.shape, NEG_INF, dtype=np.int64)
    idx = rows - lo[:, None]
    valid = (idx >= 0) & (idx < count[:, None])
    gathered = np.take_along_axis(
        values, np.clip(idx, 0, values.shape[1] - 1), axis=1
    )
    return np.where(valid, gathered, NEG_INF)


class BatchStream:
    """Resumable struct-of-arrays sweep: the ``batch`` engines' in-flight
    batch (:class:`repro.align.streaming.InFlightBatch`).

    The dense and sliced one-shot engines are ``BatchStream(tasks).drain()``
    with the matching ``slice_width``; the serve scheduler instead holds a
    long-lived stream, interleaving :meth:`step` with :meth:`admit` so new
    requests occupy the lanes that slice-boundary compaction freed.

    Exactness hinges on one generalisation: the sweep keeps a *global*
    step counter and a per-task admission offset (``start``), and every
    task's local anti-diagonal index is ``global_step - start``.  All
    uses of the anti-diagonal counter -- band row ranges, edge costs,
    termination bookkeeping, profile columns -- are elementwise per task,
    and a freshly admitted task's wavefront rows are all-``NEG_INF`` with
    zero valid lanes, exactly the state a fresh sweep starts from.  Tasks
    only interact through buffer *shape* (masked out of all arithmetic),
    so a task's results are independent of who shares its buffers or
    when it was admitted.
    """

    def __init__(
        self,
        tasks: Sequence[AlignmentTask] = (),
        *,
        capacity: Optional[int] = None,
        slice_width: Optional[int] = DEFAULT_SLICE_WIDTH,
        termination: str = "zdrop",
        collect_profiles: bool = False,
    ) -> None:
        if slice_width is not None and slice_width <= 0:
            raise ValueError("slice_width must be positive (or None for dense)")
        if termination not in _TERMINATION_KINDS:
            raise ValueError(
                f"unknown termination kind {termination!r}; "
                f"expected one of {_TERMINATION_KINDS}"
            )
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._slice_width = slice_width
        self._termination = termination
        self._collect_profiles = collect_profiles
        self._g = 0  # global anti-diagonal step counter
        self._since_admit = 0
        self._stats: List[SliceStats] = []
        self._fresh: List[Tuple[int, AlignmentResult]] = []

        # Admission-order records (grow with every admit()).
        self._tasks: List[AlignmentTask] = []
        self._results: List[Optional[AlignmentResult]] = []
        self._best_score = np.full(0, NEG_INF, dtype=np.int64)
        self._best_i = np.full(0, -1, dtype=np.int64)
        self._best_j = np.full(0, -1, dtype=np.int64)
        self._fired = np.zeros(0, dtype=bool)
        self._ad_count = np.zeros(0, dtype=np.int64)
        self._cells_count = np.zeros(0, dtype=np.int64)
        self._maxima_buf = np.zeros((0, 0), dtype=np.int64)
        self._cells_buf = np.zeros((0, 0), dtype=np.int64)

        # The stream-wide substitution stack (schemes deduplicated across
        # admissions, like pack_tasks does within one batch).
        self._scheme_table: Dict[object, int] = {}
        self._sub_mats: List[np.ndarray] = []
        self._sub_stack = np.zeros((1, 5, 5), dtype=np.int64)

        # Live task-axis state (compacted at every slice boundary).
        self._m = 0
        self._width = 0
        self._orig = np.zeros(0, dtype=np.intp)
        self._ref_buf = np.zeros((0, 1), dtype=np.uint8)
        self._query_buf = np.zeros((0, 1), dtype=np.uint8)
        self._ref_len = np.zeros(0, dtype=np.int64)
        self._query_len = np.zeros(0, dtype=np.int64)
        self._diag_lo = np.zeros(0, dtype=np.int64)
        self._diag_hi = np.zeros(0, dtype=np.int64)
        self._num_ad = np.zeros(0, dtype=np.int64)
        self._scheme_idx = np.zeros(0, dtype=np.intp)
        self._term_kind = np.zeros(0, dtype=np.uint8)
        self._term_threshold = np.zeros(0, dtype=np.int64)
        self._alpha = np.zeros(0, dtype=np.int64)
        self._beta = np.zeros(0, dtype=np.int64)
        self._start = np.zeros(0, dtype=np.int64)
        self._h1 = np.full((0, 0), NEG_INF, dtype=np.int64)
        self._e1 = np.full((0, 0), NEG_INF, dtype=np.int64)
        self._f1 = np.full((0, 0), NEG_INF, dtype=np.int64)
        self._h2 = np.full((0, 0), NEG_INF, dtype=np.int64)
        self._lo1 = np.zeros(0, dtype=np.int64)
        self._cnt1 = np.zeros(0, dtype=np.int64)
        self._lo2 = np.zeros(0, dtype=np.int64)
        self._cnt2 = np.zeros(0, dtype=np.int64)

        tasks = list(tasks)
        self._capacity = int(capacity) if capacity is not None else max(len(tasks), 1)
        if tasks:
            self.admit(tasks)

    # ------------------------------------------------------------------
    # InFlightBatch surface
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def live(self) -> int:
        return self._m

    @property
    def free(self) -> int:
        return self._capacity - self._m

    @property
    def admitted(self) -> int:
        return len(self._tasks)

    @property
    def done(self) -> bool:
        return self._m == 0

    @property
    def stats(self) -> Tuple[SliceStats, ...]:
        return tuple(self._stats)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, tasks: Sequence[AlignmentTask]) -> List[int]:
        """Inject ``tasks`` into free lanes at the current slice boundary.

        Returns their admission indices (the positions their results will
        occupy in :meth:`drain` / :meth:`take_completed` pairs).  Raises
        ``ValueError`` when fewer than ``len(tasks)`` lanes are free.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if len(tasks) > self.free:
            raise ValueError(
                f"cannot admit {len(tasks)} task(s): only {self.free} of "
                f"{self._capacity} lanes are free"
            )
        batch = pack_tasks(tasks, self._termination)
        b = batch.size

        # Deduplicate scoring schemes into the stream-wide stack.
        scheme_idx = np.zeros(b, dtype=np.intp)
        grew = False
        for k, task in enumerate(batch.tasks):
            key = task.scoring
            index = self._scheme_table.get(key)
            if index is None:
                index = len(self._sub_mats)
                self._scheme_table[key] = index
                self._sub_mats.append(
                    task.scoring.substitution_matrix().astype(np.int64)
                )
                grew = True
            scheme_idx[k] = index
        if grew:
            self._sub_stack = np.stack(self._sub_mats)

        first = len(self._tasks)
        indices = list(range(first, first + b))
        self._tasks.extend(batch.tasks)
        self._results.extend([None] * b)
        self._best_score = np.concatenate(
            [self._best_score, np.full(b, NEG_INF, dtype=np.int64)]
        )
        self._best_i = np.concatenate([self._best_i, np.full(b, -1, dtype=np.int64)])
        self._best_j = np.concatenate([self._best_j, np.full(b, -1, dtype=np.int64)])
        self._fired = np.concatenate([self._fired, np.zeros(b, dtype=bool)])
        self._ad_count = np.concatenate([self._ad_count, np.zeros(b, dtype=np.int64)])
        self._cells_count = np.concatenate(
            [self._cells_count, np.zeros(b, dtype=np.int64)]
        )
        if self._collect_profiles:
            cols = max(
                self._maxima_buf.shape[1],
                int(batch.num_antidiagonals.max(initial=0)),
            )
            self._maxima_buf = np.pad(
                self._maxima_buf,
                ((0, b), (0, cols - self._maxima_buf.shape[1])),
            )
            self._cells_buf = np.pad(
                self._cells_buf,
                ((0, b), (0, cols - self._cells_buf.shape[1])),
            )

        # Merge the live task axis: survivors keep their wavefronts, new
        # tasks start from the all-NEG_INF zero-lane state of a fresh
        # sweep (so their arithmetic is identical to one).
        new_width = max(self._width, batch.max_lanes)
        ref_cols = max(self._ref_buf.shape[1], batch.ref_buf.shape[1], 1)
        query_cols = max(self._query_buf.shape[1], batch.query_buf.shape[1], 1)

        def merge_seq(old: np.ndarray, new: np.ndarray, cols: int) -> np.ndarray:
            out = np.zeros((self._m + b, cols), dtype=np.uint8)
            out[: self._m, : old.shape[1]] = old
            out[self._m :, : new.shape[1]] = new
            return out

        def merge_wave(old: np.ndarray) -> np.ndarray:
            out = np.full((self._m + b, new_width), NEG_INF, dtype=np.int64)
            out[: self._m, : old.shape[1]] = old
            return out

        self._ref_buf = merge_seq(self._ref_buf, batch.ref_buf, ref_cols)
        self._query_buf = merge_seq(self._query_buf, batch.query_buf, query_cols)
        self._h1 = merge_wave(self._h1)
        self._e1 = merge_wave(self._e1)
        self._f1 = merge_wave(self._f1)
        self._h2 = merge_wave(self._h2)
        zeros = np.zeros(b, dtype=np.int64)
        self._lo1 = np.concatenate([self._lo1, zeros])
        self._cnt1 = np.concatenate([self._cnt1, zeros])
        self._lo2 = np.concatenate([self._lo2, zeros])
        self._cnt2 = np.concatenate([self._cnt2, zeros])
        self._orig = np.concatenate([self._orig, np.asarray(indices, dtype=np.intp)])
        self._ref_len = np.concatenate([self._ref_len, batch.ref_len])
        self._query_len = np.concatenate([self._query_len, batch.query_len])
        self._diag_lo = np.concatenate([self._diag_lo, batch.diag_lo])
        self._diag_hi = np.concatenate([self._diag_hi, batch.diag_hi])
        self._num_ad = np.concatenate([self._num_ad, batch.num_antidiagonals])
        self._scheme_idx = np.concatenate([self._scheme_idx, scheme_idx])
        self._term_kind = np.concatenate([self._term_kind, batch.term_kind])
        self._term_threshold = np.concatenate(
            [self._term_threshold, batch.term_threshold]
        )
        self._alpha = np.concatenate([self._alpha, batch.gap_open])
        self._beta = np.concatenate([self._beta, batch.gap_extend])
        self._start = np.concatenate(
            [self._start, np.full(b, self._g, dtype=np.int64)]
        )
        self._m += b
        self._width = new_width
        self._since_admit += b
        return indices

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, n_slices: int = 1) -> List[SliceStats]:
        """Advance up to ``n_slices`` slices; returns their stats."""
        if n_slices <= 0:
            raise ValueError("n_slices must be positive")
        out: List[SliceStats] = []
        for _ in range(n_slices):
            if self._m == 0:
                break
            out.append(self._run_slice())
        return out

    def take_completed(self) -> List[Tuple[int, AlignmentResult]]:
        """Results retired since the last call, as (index, result) pairs."""
        fresh, self._fresh = self._fresh, []
        return fresh

    def drain(self) -> List[AlignmentResult]:
        """Run every admitted task to completion; results in admission order."""
        while self._m:
            self._run_slice()
        self._fresh = []
        out: List[AlignmentResult] = []
        for index, result in enumerate(self._results):
            if result is None:  # pragma: no cover - defensive
                raise RuntimeError(f"task {index} was never scored")
            out.append(result)
        return out

    def profiles(self) -> List[AlignmentProfile]:
        """Per-task profiles (requires ``collect_profiles=True`` and done)."""
        if not self._collect_profiles:
            raise ValueError("stream was opened without collect_profiles=True")
        if self._m:
            raise ValueError("profiles() requires a drained stream")
        out = []
        for index, task in enumerate(self._tasks):
            result = self._results[index]
            assert result is not None
            processed = int(self._ad_count[index])
            out.append(
                AlignmentProfile(
                    result=result,
                    antidiag_maxima=self._maxima_buf[index, :processed].copy(),
                    cells_per_antidiag=self._cells_buf[index, :processed].copy(),
                    geometry=BandGeometry(
                        task.ref_len, task.query_len, task.scoring.band_width
                    ),
                )
            )
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_slice(self) -> SliceStats:
        slice_lo = self._g
        if self._slice_width is None:
            slice_hi = int((self._start + self._num_ad).max())
        else:
            slice_hi = slice_lo + self._slice_width
        live_before = self._m
        admitted = self._since_admit
        self._since_admit = 0

        # Bind the live state locally (the hot loop rebinds wavefronts).
        m = self._m
        orig = self._orig
        ref_buf = self._ref_buf
        query_buf = self._query_buf
        ref_len = self._ref_len
        query_len = self._query_len
        diag_lo = self._diag_lo
        diag_hi = self._diag_hi
        num_ad = self._num_ad
        scheme_idx = self._scheme_idx
        term_kind = self._term_kind
        term_threshold = self._term_threshold
        alpha = self._alpha
        beta = self._beta
        open_cost = alpha + beta
        start = self._start
        fired = self._fired
        best_score = self._best_score
        best_i = self._best_i
        best_j = self._best_j
        h1, e1, f1 = self._h1, self._e1, self._f1
        h2 = self._h2
        lo1, cnt1 = self._lo1, self._cnt1
        lo2, cnt2 = self._lo2, self._cnt2
        task_idx = np.arange(m)
        lane = np.arange(self._width, dtype=np.int64)[None, :]
        collect = self._collect_profiles

        for c in range(slice_lo, slice_hi):
            # Per-task local anti-diagonal index: tasks admitted at later
            # boundaries lag the global counter by their start offset.
            cv = c - start
            active = ~fired[orig] & (cv < num_ad)
            if not active.any():
                # Every live task has fired or completed; no later
                # anti-diagonal can revive one.
                break

            # In-band row range per task (BandGeometry.row_range, vectorised).
            j_lo = np.maximum.reduce(
                [
                    np.zeros(m, dtype=np.int64),
                    cv - ref_len + 1,
                    -((diag_hi - cv) // 2),
                ]
            )
            j_hi = np.minimum.reduce([query_len - 1, cv, (cv - diag_lo) // 2])
            count = np.where(active, np.maximum(j_hi - j_lo + 1, 0), 0)

            rows = j_lo[:, None] + lane
            cols = cv[:, None] - rows
            lane_mask = (lane < count[:, None]) & active[:, None]

            # --- vertical (E): (i-1, j) on anti-diagonal c-1, same row.
            up_h = _gather_lanes(h1, lo1, cnt1, rows)
            up_e = _gather_lanes(e1, lo1, cnt1, rows)
            top_edge = lane_mask & (cols == 0)
            edge_cost = -(alpha[:, None] + (rows + 1) * beta[:, None])
            up_h = np.where(top_edge, edge_cost, up_h)
            up_e = np.where(top_edge, NEG_INF, up_e)

            # --- horizontal (F): (i, j-1) on anti-diagonal c-1, row j-1.
            left_h = _gather_lanes(h1, lo1, cnt1, rows - 1)
            left_f = _gather_lanes(f1, lo1, cnt1, rows - 1)
            left_edge = lane_mask & (rows == 0)
            left_cost = -(alpha[:, None] + (cols + 1) * beta[:, None])
            left_h = np.where(left_edge, left_cost, left_h)
            left_f = np.where(left_edge, NEG_INF, left_f)

            # --- diagonal: H at (i-1, j-1) on anti-diagonal c-2, row j-1.
            diag_h = _gather_lanes(h2, lo2, cnt2, rows - 1)
            corner = lane_mask & (cols == 0) & (rows == 0)
            diag_h = np.where(corner, 0, diag_h)
            top_diag = lane_mask & (cols == 0) & (rows > 0)
            diag_h = np.where(
                top_diag, -(alpha[:, None] + rows * beta[:, None]), diag_h
            )
            left_diag = lane_mask & (rows == 0) & (cols > 0)
            diag_h = np.where(
                left_diag, -(alpha[:, None] + cols * beta[:, None]), diag_h
            )

            e_cur = np.maximum(up_h - open_cost[:, None], up_e - beta[:, None])
            f_cur = np.maximum(left_h - open_cost[:, None], left_f - beta[:, None])
            np.maximum(e_cur, NEG_INF, out=e_cur)
            np.maximum(f_cur, NEG_INF, out=f_cur)

            ref_codes = np.take_along_axis(
                ref_buf, np.clip(cols, 0, ref_buf.shape[1] - 1), axis=1
            )
            query_codes = np.take_along_axis(
                query_buf,
                np.clip(rows, 0, query_buf.shape[1] - 1),
                axis=1,
            )
            match_scores = self._sub_stack[
                scheme_idx[:, None], ref_codes, query_codes
            ]
            diag_val = np.where(diag_h > NEG_INF, diag_h + match_scores, NEG_INF)

            h_cur = np.maximum(np.maximum(e_cur, f_cur), diag_val)
            np.maximum(h_cur, NEG_INF, out=h_cur)
            h_masked = np.where(lane_mask, h_cur, NEG_INF)

            # Per-task local maximum of this anti-diagonal (first-max index,
            # like the scalar engine's argmax).
            k = np.argmax(h_masked, axis=1)
            local_best = h_masked[task_idx, k]
            local_j = rows[task_idx, k]
            local_i = cv - local_j

            self._ad_count[orig] += active
            self._cells_count[orig] += count
            if collect:
                self._maxima_buf[orig[active], cv[active]] = np.where(
                    count > 0, local_best, NEG_INF
                )[active]
                self._cells_buf[orig[active], cv[active]] = count[active]

            # --- termination update (condition checked against the global
            # maximum of *earlier* anti-diagonals, then the local maximum is
            # folded in -- the exact ordering of TerminationCondition.update).
            bs = best_score[orig]
            bi = best_i[orig]
            bj = best_j[orig]
            cond = active & (local_best > NEG_INF)
            has_best = bs > NEG_INF
            drop = bs - local_best
            diag_offset = np.abs((local_i - bi) - (local_j - bj))
            z_fire = drop > term_threshold + beta * diag_offset
            x_fire = drop > term_threshold
            fire = (
                cond
                & has_best
                & (
                    ((term_kind == _TERM_ZDROP) & z_fire)
                    | ((term_kind == _TERM_XDROP) & x_fire)
                )
            )
            fired[orig] |= fire
            improve = cond & ~fire & (local_best > bs)
            best_score[orig] = np.where(improve, local_best, bs)
            best_i[orig] = np.where(improve, local_i, bi)
            best_j[orig] = np.where(improve, local_j, bj)

            # --- advance the wavefront state.
            h2, lo2, cnt2 = h1, lo1, cnt1
            h1, e1, f1 = h_masked, e_cur, f_cur
            lo1 = np.where(count > 0, j_lo, 0)
            cnt1 = count

        self._h1, self._e1, self._f1 = h1, e1, f1
        self._h2 = h2
        self._lo1, self._cnt1 = lo1, cnt1
        self._lo2, self._cnt2 = lo2, cnt2
        self._g = slice_hi

        completed, terminated = self._retire()
        stat = SliceStats(
            index=len(self._stats),
            admitted=admitted,
            live_before=live_before,
            completed=completed,
            terminated=terminated,
            capacity=self._capacity,
        )
        self._stats.append(stat)
        return stat

    def _retire(self) -> Tuple[int, int]:
        """Retire finished live tasks and compact the buffers.

        Identical policy to the old one-shot compaction: a task leaves
        the buffers once its termination fired or its band is exhausted
        (``global_step - start >= num_antidiagonals``); survivors are
        re-packed into fewer rows and the lane axis shrinks to the widest
        surviving band.
        """
        done = self._fired[self._orig] | (self._g - self._start >= self._num_ad)
        if not done.any():
            return 0, 0
        done_idx = self._orig[done]
        terminated = int(self._fired[done_idx].sum())
        score = np.where(self._best_score > NEG_INF, self._best_score, 0)
        for index in done_idx.tolist():
            result = AlignmentResult(
                score=int(score[index]),
                max_i=int(self._best_i[index]),
                max_j=int(self._best_j[index]),
                terminated=bool(self._fired[index]),
                antidiagonals_processed=int(self._ad_count[index]),
                cells_computed=int(self._cells_count[index]),
            )
            self._results[index] = result
            self._fresh.append((index, result))

        live = np.flatnonzero(~done)
        self._orig = self._orig[live]
        self._ref_len = self._ref_len[live]
        self._query_len = self._query_len[live]
        self._diag_lo = self._diag_lo[live]
        self._diag_hi = self._diag_hi[live]
        self._num_ad = self._num_ad[live]
        self._scheme_idx = self._scheme_idx[live]
        self._term_kind = self._term_kind[live]
        self._term_threshold = self._term_threshold[live]
        self._alpha = self._alpha[live]
        self._beta = self._beta[live]
        self._start = self._start[live]
        lanes = _lane_bounds(
            self._ref_len, self._query_len, self._diag_lo, self._diag_hi
        )
        width = int(max(lanes.max(initial=0), 0))
        self._ref_buf = self._ref_buf[
            live, : max(int(self._ref_len.max(initial=0)), 1)
        ]
        self._query_buf = self._query_buf[
            live, : max(int(self._query_len.max(initial=0)), 1)
        ]
        self._h1 = self._h1[live, :width]
        self._e1 = self._e1[live, :width]
        self._f1 = self._f1[live, :width]
        self._h2 = self._h2[live, :width]
        self._lo1 = self._lo1[live]
        self._cnt1 = self._cnt1[live]
        self._lo2 = self._lo2[live]
        self._cnt2 = self._cnt2[live]
        self._width = width
        self._m = live.size
        return int(done_idx.size), terminated


@overload
def batch_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = ...,
    bucket_size: int = ...,
    return_profiles: Literal[False] = ...,
    slice_width: Optional[int] = ...,
) -> List[AlignmentResult]: ...


@overload
def batch_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = ...,
    bucket_size: int = ...,
    return_profiles: Literal[True],
    slice_width: Optional[int] = ...,
) -> List[AlignmentProfile]: ...


def batch_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = "zdrop",
    bucket_size: int = DEFAULT_BUCKET_SIZE,
    return_profiles: bool = False,
    slice_width: Optional[int] = None,
) -> Union[List[AlignmentResult], List[AlignmentProfile]]:
    """Align every task with the batched struct-of-arrays engine.

    Tasks are bucketed by anti-diagonal count (so the padded sweep wastes
    little work), each bucket is packed with :func:`pack_tasks` and swept
    in one go, and the outputs are returned **in input order**.

    The results are bit-identical to running
    :func:`repro.align.antidiagonal.antidiagonal_align` per task with the
    matching termination condition -- with or without sliced compaction.

    Parameters
    ----------
    tasks:
        Any mix of sizes and scoring schemes.
    termination:
        ``"zdrop"`` / ``"xdrop"`` / ``"none"`` (per-task thresholds come
        from each task's scoring scheme).
    bucket_size:
        Maximum tasks swept simultaneously.
    return_profiles:
        Return :class:`AlignmentProfile` objects (with per-anti-diagonal
        maxima and cell counts) instead of plain results.
    slice_width:
        ``None`` (the dense sweep) or a positive number of anti-diagonals
        between compaction points: at every slice boundary, terminated
        and completed tasks are compacted out of the bucket's buffers so
        survivors sweep in smaller matrices (the ``batch-sliced``
        engine; see the module docstring).
    """
    if slice_width is not None and slice_width <= 0:
        raise ValueError("slice_width must be positive (or None for dense)")
    tasks = list(tasks)
    if not tasks:
        return []
    workloads = [t.num_antidiagonals for t in tasks]
    out: List = [None] * len(tasks)
    for bucket in length_bucket_order(workloads, bucket_size):
        stream = BatchStream(
            [tasks[i] for i in bucket],
            slice_width=slice_width,
            termination=termination,
            collect_profiles=return_profiles,
        )
        results = stream.drain()
        swept: Sequence = stream.profiles() if return_profiles else results
        for i, item in zip(bucket, swept):
            out[i] = item
    return out
