"""Alignment traceback and CIGAR reconstruction.

The guided kernel the paper accelerates is *score-only* (Minimap2 runs a
separate traceback pass on the few alignments that survive filtering), but
the example applications in this repository want to show the actual
alignment, so a small scalar traceback is provided.  It runs the same
guided dynamic program as :mod:`repro.align.reference` while recording the
move that produced each ``H`` / ``E`` / ``F`` value, then walks back from
the best cell.

Storage is band-limited: for a banded scheme the ``H``/``E``/``F`` and
move matrices are allocated as ``(query_len, band_width)`` arrays -- one
row per query character, one column per diagonal the
:class:`~repro.align.banding.BandGeometry` keeps -- instead of the dense
``O(n * m)`` tables, so traceback memory scales with ``m * w`` like the
score-only engines.  Cell ``(i, j)`` lives at column ``i - j - diag_lo``;
the three neighbours a cell reads stay adjacent under that mapping
(``(i-1, j)`` is one column left, ``(i, j-1)`` one row up and one column
right, ``(i-1, j-1)`` one row up).  Unbanded schemes (or bands wider
than the reference) keep the dense layout, which is smaller in that
regime.  Results are identical either way on in-band cells.

Time complexity is still the number of in-band cells with per-cell
Python dispatch; only intended for example-sized sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.align.banding import BandGeometry
from repro.align.scoring import ScoringScheme
from repro.align.termination import NEG_INF, make_termination
from repro.align.types import AlignmentResult, AlignmentTask

__all__ = ["Cigar", "TracebackResult", "traceback_align", "batch_traceback"]


@dataclass(frozen=True)
class Cigar:
    """A compact CIGAR string: list of ``(operation, length)`` pairs.

    Operations follow SAM conventions: ``=`` match, ``X`` mismatch,
    ``I`` insertion (extra query base), ``D`` deletion (extra reference
    base).
    """

    operations: tuple[tuple[str, int], ...]

    def to_string(self) -> str:
        """Render as a standard CIGAR string, merging adjacent ``=``/``X``
        into ``M`` is *not* done -- exact match/mismatch ops are kept."""
        return "".join(f"{length}{op}" for op, length in self.operations)

    @property
    def aligned_query_length(self) -> int:
        """Query bases consumed by the alignment."""
        return sum(length for op, length in self.operations if op in "=XI")

    @property
    def aligned_ref_length(self) -> int:
        """Reference bases consumed by the alignment."""
        return sum(length for op, length in self.operations if op in "=XD")

    @property
    def matches(self) -> int:
        """Number of exactly matching bases."""
        return sum(length for op, length in self.operations if op == "=")

    @property
    def edit_distance(self) -> int:
        """Mismatches plus inserted plus deleted bases."""
        return sum(length for op, length in self.operations if op in "XID")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_string()


@dataclass(frozen=True)
class TracebackResult:
    """Alignment result together with the reconstructed path."""

    result: AlignmentResult
    cigar: Cigar
    ref_start: int
    ref_end: int
    query_start: int
    query_end: int


# Move codes stored per cell.
_MOVE_NONE = 0
_MOVE_DIAG = 1  # H came from H(i-1, j-1) + S
_MOVE_E = 2  # H came from E (gap in query / deletion direction)
_MOVE_F = 3  # H came from F (gap in reference / insertion direction)
_E_OPEN = 0  # E came from H(i-1, j) - open
_E_EXT = 1  # E came from E(i-1, j) - extend
_F_OPEN = 0
_F_EXT = 1


def _band_storage_shape(geometry: BandGeometry) -> tuple[tuple[int, int], bool]:
    """Storage shape for the traceback matrices of ``geometry``.

    Returns ``((rows, cols), banded)``: the band layout ``(query_len,
    band width in diagonals)`` when it is narrower than the dense
    ``(ref_len, query_len)`` table, else the dense layout.
    """
    width = geometry.diag_hi - geometry.diag_lo + 1
    if geometry.band_width > 0 and width < geometry.ref_len:
        return (geometry.query_len, width), True
    return (geometry.ref_len, geometry.query_len), False


def traceback_align(
    ref: np.ndarray,
    query: np.ndarray,
    scoring: ScoringScheme,
    *,
    _band_storage: bool | None = None,
) -> TracebackResult:
    """Align and reconstruct the path ending at the best-scoring cell.

    The alignment always starts at the table origin (extension alignment),
    so ``ref_start == query_start == 0``; the end coordinates are the best
    cell (exclusive).  ``_band_storage`` overrides the automatic storage
    layout choice (tests pin band/dense equivalence with it); results do
    not depend on it.
    """
    ref = np.asarray(ref, dtype=np.uint8)
    query = np.asarray(query, dtype=np.uint8)
    n, m = ref.size, query.size
    geometry = BandGeometry(n, m, scoring.band_width)
    termination = make_termination(scoring, "zdrop")
    termination.reset()

    if n == 0 or m == 0:
        empty = AlignmentResult(0, -1, -1, False, 0, 0)
        return TracebackResult(empty, Cigar(()), 0, 0, 0, 0)

    alpha, beta = scoring.gap_open, scoring.gap_extend
    open_cost = alpha + beta
    sub = scoring.substitution_matrix()

    _, auto_banded = _band_storage_shape(geometry)
    banded = auto_banded if _band_storage is None else _band_storage
    if banded:
        shape = (m, geometry.diag_hi - geometry.diag_lo + 1)
        lo = geometry.diag_lo

        def pos(i: int, j: int) -> tuple[int, int]:
            return (j, i - j - lo)

    else:
        shape = (n, m)

        def pos(i: int, j: int) -> tuple[int, int]:
            return (i, j)

    H = np.full(shape, NEG_INF, dtype=np.int64)
    E = np.full(shape, NEG_INF, dtype=np.int64)
    F = np.full(shape, NEG_INF, dtype=np.int64)
    move_h = np.zeros(shape, dtype=np.uint8)
    move_e = np.zeros(shape, dtype=np.uint8)
    move_f = np.zeros(shape, dtype=np.uint8)

    def bound_h(i: int, j: int) -> int:
        if i == -1 and j == -1:
            return 0
        if i == -1:
            return -(alpha + (j + 1) * beta)
        return -(alpha + (i + 1) * beta)

    cells = 0
    antidiags = 0
    terminated = False
    for c in range(geometry.num_antidiagonals):
        j_lo, j_hi = geometry.row_range(c)
        local_best, local_i, local_j = NEG_INF, -1, -1
        for j in range(j_lo, j_hi + 1):
            i = c - j
            here = pos(i, j)
            up = pos(i - 1, j)
            left = pos(i, j - 1)
            up_h = bound_h(-1, j) if i == 0 else (int(H[up]) if geometry.in_band(i - 1, j) else NEG_INF)
            up_e = NEG_INF if i == 0 else (int(E[up]) if geometry.in_band(i - 1, j) else NEG_INF)
            left_h = bound_h(i, -1) if j == 0 else (int(H[left]) if geometry.in_band(i, j - 1) else NEG_INF)
            left_f = NEG_INF if j == 0 else (int(F[left]) if geometry.in_band(i, j - 1) else NEG_INF)
            if i == 0 or j == 0:
                diag_h = bound_h(i - 1, j - 1)
            else:
                diag_h = int(H[pos(i - 1, j - 1)]) if geometry.in_band(i - 1, j - 1) else NEG_INF

            e_open, e_ext = up_h - open_cost, up_e - beta
            if e_open >= e_ext:
                e_val, move_e[here] = e_open, _E_OPEN
            else:
                e_val, move_e[here] = e_ext, _E_EXT
            f_open, f_ext = left_h - open_cost, left_f - beta
            if f_open >= f_ext:
                f_val, move_f[here] = f_open, _F_OPEN
            else:
                f_val, move_f[here] = f_ext, _F_EXT
            diag_val = diag_h + int(sub[ref[i], query[j]]) if diag_h > NEG_INF else NEG_INF

            e_val = max(e_val, NEG_INF)
            f_val = max(f_val, NEG_INF)
            h_val = max(diag_val, e_val, f_val, NEG_INF)
            if h_val == diag_val and diag_val > NEG_INF:
                move_h[here] = _MOVE_DIAG
            elif h_val == e_val:
                move_h[here] = _MOVE_E
            elif h_val == f_val:
                move_h[here] = _MOVE_F
            else:
                move_h[here] = _MOVE_NONE
            H[here], E[here], F[here] = h_val, e_val, f_val
            cells += 1
            if h_val > local_best:
                local_best, local_i, local_j = h_val, i, j
        antidiags += 1
        if termination.update(c, local_best, local_i, local_j):
            terminated = True
            break

    score = termination.best_score if termination.best_score > NEG_INF else 0
    result = AlignmentResult(
        score=int(score),
        max_i=int(termination.best_i),
        max_j=int(termination.best_j),
        terminated=terminated,
        antidiagonals_processed=antidiags,
        cells_computed=cells,
    )

    # ------------------------------------------------------------------
    # walk back from the best cell
    # ------------------------------------------------------------------
    def move_at(moves: np.ndarray, i: int, j: int) -> int:
        """Move code of cell ``(i, j)``; out-of-band cells read as 0.

        The dense layout stored untouched zeros outside the band, which
        the walk relied on to stop; the band layout has no storage there,
        so the default is made explicit (results are identical).
        """
        if not geometry.in_band(i, j):
            return 0
        return int(moves[pos(i, j)])

    ops: list[tuple[str, int]] = []

    def push(op: str, length: int = 1) -> None:
        if ops and ops[-1][0] == op:
            ops[-1] = (op, ops[-1][1] + length)
        else:
            ops.append((op, length))

    i, j = result.max_i, result.max_j
    if i < 0 or j < 0:
        return TracebackResult(result, Cigar(()), 0, 0, 0, 0)

    state = "H"
    while i >= 0 and j >= 0:
        if state == "H":
            move = move_at(move_h, i, j)
            if move == _MOVE_DIAG:
                push("=" if ref[i] == query[j] else "X")
                i -= 1
                j -= 1
            elif move == _MOVE_E:
                state = "E"
            elif move == _MOVE_F:
                state = "F"
            else:
                break
        elif state == "E":
            # E consumes a reference base (deletion w.r.t. the query).
            opened = move_at(move_e, i, j) == _E_OPEN
            push("D")
            i -= 1
            state = "H" if opened else "E"
        else:  # state == "F"
            opened = move_at(move_f, i, j) == _F_OPEN
            push("I")
            j -= 1
            state = "H" if opened else "F"
        if i < 0 or j < 0:
            break

    # Any remaining prefix of the other sequence is a leading gap.
    while i >= 0:
        push("D")
        i -= 1
    while j >= 0:
        push("I")
        j -= 1

    ops.reverse()
    cigar = Cigar(tuple(ops))
    return TracebackResult(
        result=result,
        cigar=cigar,
        ref_start=0,
        ref_end=result.max_i + 1,
        query_start=0,
        query_end=result.max_j + 1,
    )


def batch_traceback(
    tasks: Sequence[AlignmentTask],
    results: Optional[Sequence[AlignmentResult]] = None,
) -> List[TracebackResult]:
    """Reconstruct CIGARs for a whole scored workload, in task order.

    This is the CIGAR-emission companion to the score-only engines: the
    batch engines race through a workload computing scores, then the few
    alignments the caller actually wants rendered are replayed here one
    at a time through the band-limited traceback (the Minimap2 split the
    module docstring describes, at batch scale).

    When ``results`` -- the engine's outputs for the same ``tasks``, in
    task order -- is given, every replay is checked against the engine
    result field by field (score, best cell, termination flag, work
    counters).  Any divergence raises ``ValueError`` naming the task,
    because it would mean the traceback DP and the score-only engines
    disagree -- exactly the bug class the engine-equivalence suite
    exists to rule out.  Callers that only want CIGARs may omit
    ``results`` and skip the cross-check.
    """
    if results is not None and len(results) != len(tasks):
        raise ValueError(
            f"results length {len(results)} does not match "
            f"{len(tasks)} tasks"
        )
    out: List[TracebackResult] = []
    for index, task in enumerate(tasks):
        tb = traceback_align(task.ref, task.query, task.scoring)
        if results is not None and tb.result != results[index]:
            raise ValueError(
                f"traceback replay of task {index} "
                f"(task_id={task.task_id}) diverged from the engine "
                f"result: traceback={tb.result} engine={results[index]}"
            )
        out.append(tb)
    return out
