"""The streaming engine contract: in-flight batches with lane refill.

The sliced batch engines (:mod:`repro.align.batch`,
:mod:`repro.align.vector`) compact terminated tasks out of their
struct-of-arrays buffers at every slice boundary -- but a one-shot
``align_tasks`` call lets the freed width go unused for the rest of the
sweep.  This module defines the contract that lets a *scheduler* reclaim
it: an :class:`InFlightBatch` is a resumable sweep that can be advanced
slice by slice (:meth:`~InFlightBatch.step`) and refilled with new tasks
in the lanes compaction freed (:meth:`~InFlightBatch.admit`) -- the
serving-layer analogue of the paper's subwarp rejoining, and of
continuous batching in LLM inference servers.

Three parties implement or consume the contract:

* ``BatchStream`` (:mod:`repro.align.batch`) and ``VectorStream``
  (:mod:`repro.align.vector`) are the real streaming sweeps; their
  one-shot engines (``batch_align`` / ``vector_align``) are now thin
  open-all-then-drain wrappers, so every existing bit-exactness test
  also pins the streams.
* :class:`OneShotBatch` adapts any plain engine callable -- ``scalar``,
  ``batch``, or a third-party :func:`repro.api.register_engine` backend
  -- to the same interface with drain-then-form semantics: ``step()``
  scores everything admitted so far in one engine call.  Schedulers can
  therefore hold any engine behind one handle type.
* :func:`repro.api.engines.open_batch` resolves a name to whichever of
  the two applies (``supports_streaming`` reports which).

Exactness: admitting a task mid-stream starts its wavefront from the
same all-``NEG_INF`` state a fresh sweep would, and every anti-diagonal
of its band is swept with the same per-task arithmetic, so results are
bit-identical to a one-shot ``align_tasks`` call whatever the admission
order (``tests/align/test_streaming.py`` property-tests this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.align.types import AlignmentResult, AlignmentTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["SliceStats", "InFlightBatch", "OneShotBatch"]


@dataclass(frozen=True)
class SliceStats:
    """Occupancy / termination accounting of one ``step()`` slice.

    ``live_before`` counts the tasks swept during the slice (after the
    boundary's admissions); ``completed`` how many retired at the slice
    end (``terminated`` of them because their Z-drop / X-drop condition
    fired, the rest because they exhausted their band).  ``capacity`` is
    the handle's lane budget, so ``occupancy`` is the fraction of the
    budget doing useful work -- the quantity continuous refill improves.
    """

    index: int
    admitted: int
    live_before: int
    completed: int
    terminated: int
    capacity: int

    @property
    def live_after(self) -> int:
        return self.live_before - self.completed

    @property
    def occupancy(self) -> float:
        """``live_before / capacity`` (0.0 for a zero-capacity handle)."""
        if self.capacity <= 0:
            return 0.0
        return self.live_before / self.capacity


@runtime_checkable
class InFlightBatch(Protocol):
    """A resumable, refillable alignment sweep (the streaming handle).

    The lifecycle: ``admit()`` injects tasks (at a slice boundary, which
    is whenever no ``step()`` call is mid-flight), ``step()`` advances
    one or more slices and retires finished tasks, ``take_completed()``
    hands out results as ``(admission_index, result)`` pairs, and
    ``drain()`` runs everything to completion, returning all results in
    admission order.  Implementations are single-threaded: callers
    serialise access (the serve scheduler owns its handle exclusively).
    """

    @property
    def capacity(self) -> int:
        """Lane budget: most tasks that may be in flight at once."""
        ...

    @property
    def live(self) -> int:
        """Tasks currently in the buffers (admitted, not yet retired)."""
        ...

    @property
    def free(self) -> int:
        """Lanes available to :meth:`admit` right now."""
        ...

    @property
    def admitted(self) -> int:
        """Total tasks ever admitted (also the next admission index)."""
        ...

    @property
    def done(self) -> bool:
        """Every admitted task has retired."""
        ...

    @property
    def stats(self) -> Tuple[SliceStats, ...]:
        """Per-slice occupancy/termination stats, oldest first."""
        ...

    def admit(self, tasks: Sequence[AlignmentTask]) -> List[int]:
        """Inject tasks into free lanes; returns their admission indices."""
        ...

    def step(self, n_slices: int = 1) -> List[SliceStats]:
        """Advance up to ``n_slices`` slices (fewer when work runs out)."""
        ...

    def take_completed(self) -> List[Tuple[int, AlignmentResult]]:
        """Results retired since the last call, as (index, result) pairs."""
        ...

    def drain(self) -> List[AlignmentResult]:
        """Run to completion; all results ever admitted, admission order."""
        ...


class OneShotBatch:
    """Adapter: a plain one-shot engine behind the streaming interface.

    ``scalar``, ``batch`` and third-party engines registered through
    :func:`repro.api.register_engine` stay ordinary callables; this
    adapter lets schedulers drive them through the same handle as a real
    stream.  The semantics are drain-then-form: every ``step()`` scores
    *all* tasks admitted since the previous step in one engine call and
    retires them immediately -- there is no mid-sweep refill to exploit,
    so occupancy equals whatever the scheduler batched.  Results are the
    engine's own, hence bit-identical to ``align_tasks``.
    """

    def __init__(
        self,
        engine: Callable[..., List[AlignmentResult]],
        tasks: Sequence[AlignmentTask] = (),
        *,
        capacity: int = 0,
        engine_kwargs: Optional[dict] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._engine = engine
        self._kwargs = dict(engine_kwargs or {})
        self._capacity = int(capacity) if capacity else max(len(tasks), 1)
        self._pending: List[Tuple[int, AlignmentTask]] = []
        self._results: List[Optional[AlignmentResult]] = []
        self._fresh: List[Tuple[int, AlignmentResult]] = []
        self._stats: List[SliceStats] = []
        if tasks:
            self.admit(tasks)

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def live(self) -> int:
        return len(self._pending)

    @property
    def free(self) -> int:
        return self._capacity - len(self._pending)

    @property
    def admitted(self) -> int:
        return len(self._results)

    @property
    def done(self) -> bool:
        return not self._pending

    @property
    def stats(self) -> Tuple[SliceStats, ...]:
        return tuple(self._stats)

    # ------------------------------------------------------------------
    def admit(self, tasks: Sequence[AlignmentTask]) -> List[int]:
        tasks = list(tasks)
        if len(tasks) > self.free:
            raise ValueError(
                f"cannot admit {len(tasks)} task(s): only {self.free} of "
                f"{self._capacity} lanes are free"
            )
        indices = []
        for task in tasks:
            index = len(self._results)
            self._results.append(None)
            self._pending.append((index, task))
            indices.append(index)
        return indices

    def step(self, n_slices: int = 1) -> List[SliceStats]:
        if n_slices <= 0:
            raise ValueError("n_slices must be positive")
        if not self._pending:
            return []
        # One adapter "slice" is one whole engine call over everything
        # pending: a one-shot engine cannot pause mid-sweep.
        batch, self._pending = self._pending, []
        results = self._engine([task for _, task in batch], **self._kwargs)
        if len(results) != len(batch):
            raise ValueError(
                f"engine returned {len(results)} results for a batch of "
                f"{len(batch)} tasks"
            )
        terminated = 0
        for (index, _), result in zip(batch, results):
            self._results[index] = result
            self._fresh.append((index, result))
            terminated += bool(result.terminated)
        stat = SliceStats(
            index=len(self._stats),
            admitted=len(batch),
            live_before=len(batch),
            completed=len(batch),
            terminated=terminated,
            capacity=self._capacity,
        )
        self._stats.append(stat)
        return [stat]

    def take_completed(self) -> List[Tuple[int, AlignmentResult]]:
        fresh, self._fresh = self._fresh, []
        return fresh

    def drain(self) -> List[AlignmentResult]:
        while self._pending:
            self.step()
        self._fresh = []
        out = []
        for index, result in enumerate(self._results):
            if result is None:  # pragma: no cover - defensive
                raise RuntimeError(f"task {index} was never scored")
            out.append(result)
        return out
