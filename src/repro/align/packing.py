"""GASAL2-style input packing (paper Figure 2a).

GPU sequence aligners pack the five-letter alphabet four bits per literal,
eight literals per 32-bit word, to relieve memory-bandwidth pressure when
streaming sequences from global memory.  The packed word layout drives the
8x8 *block* decomposition of the score table: one packed reference word and
one packed query word supply exactly the literals of one block, which is
why the block is the smallest unit of workload distribution.

The packing here is bit-exact in layout (literal ``k`` of a word occupies
bits ``[4k, 4k+4)``) so that tests can assert word-level properties, and
the cost model can count packed-word transactions rather than per-byte
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.sequence import NUM_CODES

__all__ = [
    "LITERALS_PER_WORD",
    "BITS_PER_LITERAL",
    "PackedSequence",
    "pack_sequence",
    "unpack_sequence",
]

#: Bits used per literal (A/C/G/T/N fit in 3, but 4 keeps word-aligned nibbles).
BITS_PER_LITERAL: int = 4

#: Literals stored in one 32-bit word.
LITERALS_PER_WORD: int = 32 // BITS_PER_LITERAL

#: Nibble value used to pad the tail of the last word.
PAD_CODE: int = 0xF


@dataclass(frozen=True)
class PackedSequence:
    """A 4-bit-packed sequence.

    Attributes
    ----------
    words:
        ``uint32`` array of packed words.
    length:
        Number of valid literals (the tail of the last word is padding).
    """

    words: np.ndarray
    length: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "words", np.asarray(self.words, dtype=np.uint32))
        if self.length < 0:
            raise ValueError("length must be non-negative")
        needed = -(-self.length // LITERALS_PER_WORD)
        if self.words.size != needed:
            raise ValueError(
                f"expected {needed} packed words for length {self.length}, "
                f"got {self.words.size}"
            )

    # ------------------------------------------------------------------
    @property
    def num_words(self) -> int:
        """Number of 32-bit words used."""
        return int(self.words.size)

    def get(self, index: int) -> int:
        """Extract the literal code at ``index`` (0-based)."""
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range for length {self.length}")
        word = int(self.words[index // LITERALS_PER_WORD])
        shift = BITS_PER_LITERAL * (index % LITERALS_PER_WORD)
        return (word >> shift) & 0xF

    def word_for_block(self, block_index: int) -> int:
        """Packed word covering literals ``[8 * block_index, 8 * block_index + 8)``.

        One block edge of the 8x8 score-table block corresponds to exactly
        one packed word, which is the memory-transaction unit the GPU cost
        model charges for reading sequence data.
        """
        if not 0 <= block_index < self.num_words:
            raise IndexError(f"block {block_index} out of range")
        return int(self.words[block_index])

    def __len__(self) -> int:
        return self.length


def pack_sequence(codes: np.ndarray) -> PackedSequence:
    """Pack an encoded sequence (``uint8`` codes) into 32-bit words."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim != 1:
        raise ValueError("codes must be 1-D")
    if codes.size and codes.max(initial=0) >= NUM_CODES:
        raise ValueError("invalid literal code (must be < 5)")
    length = int(codes.size)
    num_words = -(-length // LITERALS_PER_WORD) if length else 0
    padded = np.full(num_words * LITERALS_PER_WORD, PAD_CODE, dtype=np.uint32)
    padded[:length] = codes
    nibbles = padded.reshape(num_words, LITERALS_PER_WORD) if num_words else padded.reshape(0, LITERALS_PER_WORD)
    shifts = np.arange(LITERALS_PER_WORD, dtype=np.uint32) * BITS_PER_LITERAL
    words = (nibbles << shifts).sum(axis=1, dtype=np.uint64).astype(np.uint32)
    return PackedSequence(words=words, length=length)


def unpack_sequence(packed: PackedSequence) -> np.ndarray:
    """Unpack a :class:`PackedSequence` back to ``uint8`` codes."""
    if packed.length == 0:
        return np.empty(0, dtype=np.uint8)
    shifts = np.arange(LITERALS_PER_WORD, dtype=np.uint32) * BITS_PER_LITERAL
    nibbles = (packed.words[:, None] >> shifts) & np.uint32(0xF)
    flat = nibbles.reshape(-1)[: packed.length]
    return flat.astype(np.uint8)
