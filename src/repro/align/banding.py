"""Band geometry of the guided score table.

k-banding (paper Figure 1, yellow region) restricts the dynamic program to
a diagonal band of the score table.  All engines and kernels in this
repository share one definition of that band, provided by
:class:`BandGeometry`:

* the *band width* ``w`` is the total number of diagonals kept (the
  paper's example uses ``w = 3``);
* a cell ``(i, j)`` (``i`` indexes the reference, ``j`` the query) is in
  the band iff its diagonal ``d = i - j`` lies in
  ``[-(w // 2), -(w // 2) + w - 1]``;
* ``w = 0`` means "unbanded" -- every cell is kept.

Besides membership tests the class precomputes, for every anti-diagonal
``c = i + j``, the range of in-band query rows.  Those ranges are what the
GPU kernel simulations need to reason about *completion*: a scheduling
scheme that sweeps the table in horizontal chunks (the baseline design of
Section 2.2) can only evaluate the termination condition for
anti-diagonals whose last in-band row has already been processed, which is
exactly the run-ahead problem AGAThA's sliced-diagonal scheme attacks.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

__all__ = ["BandGeometry"]


class BandGeometry:
    """Geometry of a (possibly banded) ``n x m`` score table.

    Parameters
    ----------
    ref_len:
        Number of reference characters ``n`` (table columns ``i``).
    query_len:
        Number of query characters ``m`` (table rows ``j``).
    band_width:
        Total band width ``w`` in diagonals; ``0`` disables banding.
    """

    def __init__(self, ref_len: int, query_len: int, band_width: int = 0):
        if ref_len < 0 or query_len < 0:
            raise ValueError("sequence lengths must be non-negative")
        if band_width < 0:
            raise ValueError("band_width must be non-negative")
        self.ref_len = int(ref_len)
        self.query_len = int(query_len)
        self.band_width = int(band_width)
        if self.band_width == 0:
            # Unbanded: the band covers every diagonal of the table.
            self.diag_lo = -(self.query_len - 1) if self.query_len else 0
            self.diag_hi = self.ref_len - 1 if self.ref_len else 0
        else:
            self.diag_lo = -(self.band_width // 2)
            self.diag_hi = self.diag_lo + self.band_width - 1

    # ------------------------------------------------------------------
    # basic quantities
    # ------------------------------------------------------------------
    @property
    def num_antidiagonals(self) -> int:
        """Number of anti-diagonals in the full table (``n + m - 1``)."""
        if self.ref_len == 0 or self.query_len == 0:
            return 0
        return self.ref_len + self.query_len - 1

    def in_band(self, i: int, j: int) -> bool:
        """Whether cell ``(i, j)`` lies inside the table and the band."""
        if not (0 <= i < self.ref_len and 0 <= j < self.query_len):
            return False
        d = i - j
        return self.diag_lo <= d <= self.diag_hi

    # ------------------------------------------------------------------
    # per anti-diagonal ranges
    # ------------------------------------------------------------------
    def row_range(self, c: int) -> tuple[int, int]:
        """Inclusive range ``(j_lo, j_hi)`` of in-band query rows on
        anti-diagonal ``c``; returns an empty range (``j_lo > j_hi``) when
        no cell of that anti-diagonal is in the band."""
        if not 0 <= c < self.num_antidiagonals:
            return (0, -1)
        # i = c - j and d = i - j = c - 2j  =>  j = (c - d) / 2, so the band
        # constraint diag_lo <= d <= diag_hi becomes a range on j.
        j_lo = max(0, c - self.ref_len + 1, -((self.diag_hi - c) // 2))
        j_hi = min(self.query_len - 1, c, (c - self.diag_lo) // 2)
        return (j_lo, j_hi)

    def col_range(self, j: int) -> tuple[int, int]:
        """Inclusive range ``(i_lo, i_hi)`` of in-band reference columns on
        query row ``j``."""
        if not 0 <= j < self.query_len:
            return (0, -1)
        i_lo = max(0, j + self.diag_lo)
        i_hi = min(self.ref_len - 1, j + self.diag_hi)
        return (i_lo, i_hi)

    def cells_on(self, c: int) -> int:
        """Number of in-band cells on anti-diagonal ``c``."""
        j_lo, j_hi = self.row_range(c)
        return max(0, j_hi - j_lo + 1)

    # ------------------------------------------------------------------
    # vectorised per-anti-diagonal tables
    # ------------------------------------------------------------------
    @cached_property
    def row_lo(self) -> np.ndarray:
        """Array of ``j_lo`` per anti-diagonal (``int64``)."""
        if self.num_antidiagonals == 0:
            return np.empty(0, dtype=np.int64)
        c = np.arange(self.num_antidiagonals, dtype=np.int64)
        j_lo = np.maximum.reduce(
            [
                np.zeros_like(c),
                c - self.ref_len + 1,
                np.ceil((c - self.diag_hi) / 2).astype(np.int64),
            ]
        )
        return j_lo

    @cached_property
    def row_hi(self) -> np.ndarray:
        """Array of ``j_hi`` per anti-diagonal (``int64``)."""
        if self.num_antidiagonals == 0:
            return np.empty(0, dtype=np.int64)
        c = np.arange(self.num_antidiagonals, dtype=np.int64)
        j_hi = np.minimum.reduce(
            [
                np.full_like(c, self.query_len - 1),
                c,
                np.floor((c - self.diag_lo) / 2).astype(np.int64),
            ]
        )
        return j_hi

    @cached_property
    def cells_per_antidiagonal(self) -> np.ndarray:
        """Number of in-band cells per anti-diagonal (``int64``)."""
        return np.maximum(0, self.row_hi - self.row_lo + 1)

    @cached_property
    def cumulative_cells(self) -> np.ndarray:
        """``cumulative_cells[c]`` = in-band cells on anti-diagonals ``<= c``."""
        return np.cumsum(self.cells_per_antidiagonal)

    @property
    def total_cells(self) -> int:
        """Total number of in-band cells in the table."""
        if self.num_antidiagonals == 0:
            return 0
        return int(self.cumulative_cells[-1])

    def cells_up_to(self, c: int) -> int:
        """In-band cells on anti-diagonals ``0 .. c`` inclusive (clamped)."""
        if self.num_antidiagonals == 0 or c < 0:
            return 0
        c = min(c, self.num_antidiagonals - 1)
        return int(self.cumulative_cells[c])

    # ------------------------------------------------------------------
    # completion bookkeeping for chunked schedules
    # ------------------------------------------------------------------
    def completed_antidiagonals_after_rows(self, rows_done: int) -> int:
        """Number of leading anti-diagonals fully computed once query rows
        ``0 .. rows_done - 1`` have been processed.

        A horizontal-chunk schedule (baseline kernel) processes whole query
        rows at a time; anti-diagonal ``c`` is *complete* only when its
        deepest in-band row ``row_hi[c]`` has been processed.  The returned
        count is the largest prefix of complete anti-diagonals, which is
        the set on which the termination condition may legally be
        evaluated.
        """
        if rows_done <= 0 or self.num_antidiagonals == 0:
            return 0
        if rows_done >= self.query_len:
            return self.num_antidiagonals
        # row_hi is non-decreasing until it saturates; find the first c with
        # row_hi[c] >= rows_done.  Anti-diagonals with an empty range (no
        # in-band cells) count as complete by convention.
        complete = np.flatnonzero(self.row_hi >= rows_done)
        if complete.size == 0:
            return self.num_antidiagonals
        return int(complete[0])

    def rows_needed_for_antidiagonals(self, num_antidiags: int) -> int:
        """Minimum number of leading query rows that must be processed for
        the first ``num_antidiags`` anti-diagonals to be complete.

        Inverse of :meth:`completed_antidiagonals_after_rows`.
        """
        if num_antidiags <= 0:
            return 0
        num_antidiags = min(num_antidiags, self.num_antidiagonals)
        if num_antidiags == 0:
            return 0
        return int(self.row_hi[:num_antidiags].max(initial=-1)) + 1

    @cached_property
    def _cells_per_row(self) -> np.ndarray:
        """In-band cell count per query row (``int64``)."""
        if self.query_len == 0:
            return np.empty(0, dtype=np.int64)
        j = np.arange(self.query_len, dtype=np.int64)
        i_lo = np.maximum(0, j + self.diag_lo)
        i_hi = np.minimum(self.ref_len - 1, j + self.diag_hi)
        return np.maximum(0, i_hi - i_lo + 1)

    def cells_in_row_prefix(self, rows_done: int) -> int:
        """Total in-band cells over query rows ``0 .. rows_done - 1``."""
        if rows_done <= 0 or self.query_len == 0:
            return 0
        rows_done = min(rows_done, self.query_len)
        return int(self._cells_per_row[:rows_done].sum())

    def cells_in_rows(self, row_lo: int, row_hi: int) -> int:
        """Total in-band cells over query rows ``row_lo .. row_hi`` inclusive."""
        row_lo = max(0, row_lo)
        row_hi = min(self.query_len - 1, row_hi)
        if row_lo > row_hi:
            return 0
        return int(self._cells_per_row[row_lo : row_hi + 1].sum())

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BandGeometry(ref_len={self.ref_len}, query_len={self.query_len}, "
            f"band_width={self.band_width}, diagonals=[{self.diag_lo}, {self.diag_hi}])"
        )
