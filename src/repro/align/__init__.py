"""Guided sequence alignment substrate.

This subpackage implements the alignment algorithm that AGAThA (and the
baselines it compares against) accelerate: affine-gap extension alignment
with the two *guiding* heuristics used by Minimap2 / BWA-MEM,

* **k-banding** -- only a diagonal band of the score table is computed, and
* **Z-drop termination** -- the computation stops once the score along the
  current anti-diagonal has dropped too far below the global maximum.

The modules are organised bottom-up:

``scoring``
    Scoring schemes (match / mismatch / gap open / gap extend) and the
    Minimap2 / BWA-MEM presets used throughout the paper's evaluation.
``sequence``
    Nucleotide encoding ('A', 'C', 'G', 'T', 'N' -> 0..4) and random
    sequence helpers.
``packing``
    4-bit literal packing into 32-bit words (GASAL2-style input packing,
    Figure 2a of the paper).
``banding``
    Band geometry: which cells of the score table are inside the band,
    per-anti-diagonal cell ranges, and completion bookkeeping.
``termination``
    Z-drop (Minimap2), X-drop (BLAST / LOGAN) and "none" termination
    conditions.
``reference``
    The exact scalar dynamic-programming oracle.  Every kernel in
    :mod:`repro.kernels` must reproduce its scores bit-exactly (unless the
    kernel is explicitly a *different* heuristic, e.g. LOGAN).
``antidiagonal``
    A NumPy-vectorised banded wavefront engine that produces the same
    result as the oracle plus the per-anti-diagonal metadata (local maxima,
    cells per anti-diagonal, termination point) that the GPU scheduling
    simulation needs.
``batch``
    The struct-of-arrays batch engine: packs whole buckets of tasks into
    padded 2-D buffers and sweeps the banded DP across all of them at
    once (inter-task parallelism on top of the anti-diagonal kind),
    bit-identical to the per-task engines.
``blocks``
    8x8 cell block decomposition of the banded score table (the smallest
    unit of work distribution on the GPU, Figure 2a).
``traceback``
    Optional alignment path / CIGAR reconstruction for the examples.
``types``
    The task / result dataclasses shared by all of the above.
"""

from repro.align.scoring import (
    ScoringScheme,
    PRESETS,
    preset,
)
from repro.align.sequence import (
    encode,
    decode,
    random_sequence,
    mutate,
    ALPHABET,
    BASE_TO_CODE,
    CODE_TO_BASE,
)
from repro.align.types import AlignmentTask, AlignmentResult, AlignmentProfile
from repro.align.banding import BandGeometry
from repro.align.termination import (
    TerminationCondition,
    ZDrop,
    XDrop,
    NoTermination,
)
from repro.align.reference import reference_align
from repro.align.antidiagonal import antidiagonal_align
from repro.align.batch import (
    DEFAULT_BUCKET_SIZE,
    TaskBatch,
    pack_tasks,
    batch_align,
)
from repro.align.packing import pack_sequence, unpack_sequence, PackedSequence
from repro.align.blocks import BlockGrid
from repro.align.traceback import traceback_align, Cigar

__all__ = [
    "ScoringScheme",
    "PRESETS",
    "preset",
    "encode",
    "decode",
    "random_sequence",
    "mutate",
    "ALPHABET",
    "BASE_TO_CODE",
    "CODE_TO_BASE",
    "AlignmentTask",
    "AlignmentResult",
    "AlignmentProfile",
    "BandGeometry",
    "TerminationCondition",
    "ZDrop",
    "XDrop",
    "NoTermination",
    "reference_align",
    "antidiagonal_align",
    "DEFAULT_BUCKET_SIZE",
    "TaskBatch",
    "pack_tasks",
    "batch_align",
    "pack_sequence",
    "unpack_sequence",
    "PackedSequence",
    "BlockGrid",
    "traceback_align",
    "Cigar",
]
