"""Termination conditions for guided alignment.

The termination condition (paper Eqs. 4-7) is the second guiding
heuristic: after every anti-diagonal ``c`` the aligner compares the best
score *on* that anti-diagonal (the *local* maximum) against the best score
seen on any earlier anti-diagonal (the *global* maximum).  If the local
maximum has dropped too far below the global one, the alignment is
considered to have degenerated into noise and the computation stops.

Two concrete conditions are provided:

* :class:`ZDrop` -- Minimap2's Z-drop, the exact condition the paper's
  reference algorithm uses.  The allowed drop grows with the diagonal
  offset between the two maxima (``Z + beta * |(i-i') - (j-j')|``) so that
  a single long gap is not penalised as harshly as scattered mismatches.
* :class:`XDrop` -- the BLAST-style X-drop used by LOGAN, which uses a
  plain threshold without the diagonal-offset correction.

Both are driven through the small :class:`TerminationCondition` protocol:
``update()`` is called once per *complete* anti-diagonal with its local
maximum; it returns ``True`` when the alignment should stop.  The objects
also track the running global maximum, which is what the aligner finally
reports as the alignment score.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TerminationCondition",
    "ZDrop",
    "XDrop",
    "NoTermination",
    "NEG_INF",
]

#: Sentinel "minus infinity" score used across the alignment engines.  It is
#: chosen to be representable in int32 with headroom so that subtracting gap
#: penalties from it cannot underflow.
NEG_INF: int = -(2**30)


@dataclass
class TerminationCondition:
    """Base class: tracks the global maximum, never terminates.

    Subclasses override :meth:`should_terminate`.  The ``update`` driver
    first evaluates the condition against the global maximum accumulated
    over *earlier* anti-diagonals (as required by Eq. 7, ``i' + j' < c``)
    and only afterwards folds the current local maximum into the global
    one.
    """

    #: Best score seen on any anti-diagonal processed so far.
    best_score: int = NEG_INF
    #: Reference index of the global best.
    best_i: int = -1
    #: Query index of the global best.
    best_j: int = -1
    #: Anti-diagonal at which termination fired, or ``-1``.
    terminated_at: int = -1

    def reset(self) -> None:
        """Forget all state (allows reuse across alignments)."""
        self.best_score = NEG_INF
        self.best_i = -1
        self.best_j = -1
        self.terminated_at = -1

    # ------------------------------------------------------------------
    def should_terminate(
        self, local_score: int, local_i: int, local_j: int
    ) -> bool:
        """Decide termination given the current anti-diagonal's maximum.

        Called only when a global maximum from an earlier anti-diagonal
        exists.  Subclasses implement the actual criterion.
        """
        return False

    def update(self, antidiag: int, local_score: int, local_i: int, local_j: int) -> bool:
        """Process a completed anti-diagonal.

        Parameters
        ----------
        antidiag:
            Index ``c`` of the completed anti-diagonal.
        local_score, local_i, local_j:
            The maximum score on that anti-diagonal and its cell.  Pass
            ``local_score <= NEG_INF`` when the anti-diagonal had no
            in-band cells; such anti-diagonals never trigger termination
            and do not move the global maximum.

        Returns
        -------
        bool
            ``True`` if the alignment must terminate after this
            anti-diagonal.
        """
        if local_score <= NEG_INF:
            return False
        if self.best_score > NEG_INF and self.should_terminate(
            local_score, local_i, local_j
        ):
            self.terminated_at = antidiag
            return True
        if local_score > self.best_score:
            self.best_score = local_score
            self.best_i = local_i
            self.best_j = local_j
        return False

    @property
    def terminated(self) -> bool:
        """Whether termination has fired."""
        return self.terminated_at >= 0


@dataclass
class NoTermination(TerminationCondition):
    """Termination disabled: the full (banded) table is always computed."""


@dataclass
class ZDrop(TerminationCondition):
    """Minimap2's Z-drop condition (paper Eq. 5).

    Terminates when::

        H(i', j') - H(i, j) > Z + beta * |(i - i') - (j - j')|

    where ``(i', j')`` is the global maximum over earlier anti-diagonals,
    ``(i, j)`` the current anti-diagonal's maximum, ``Z`` the threshold and
    ``beta`` the gap-extension penalty.
    """

    zdrop: int = 400
    gap_extend: int = 2

    def should_terminate(self, local_score: int, local_i: int, local_j: int) -> bool:
        diag_offset = abs((local_i - self.best_i) - (local_j - self.best_j))
        return (self.best_score - local_score) > self.zdrop + self.gap_extend * diag_offset


@dataclass
class XDrop(TerminationCondition):
    """BLAST-style X-drop condition (used by LOGAN).

    Terminates when the current anti-diagonal maximum has dropped more than
    ``xdrop`` below the global maximum, with no diagonal-offset correction.
    This penalises single long gaps more than Z-drop does, which is exactly
    the behavioural difference the paper cites for why Minimap2 moved to
    Z-drop.
    """

    xdrop: int = 400

    def should_terminate(self, local_score: int, local_i: int, local_j: int) -> bool:
        return (self.best_score - local_score) > self.xdrop


def make_termination(scoring, kind: str = "zdrop") -> TerminationCondition:
    """Build a termination condition matching a :class:`ScoringScheme`.

    ``kind`` selects between ``"zdrop"``, ``"xdrop"`` and ``"none"``.  When
    the scheme has ``zdrop == 0`` termination is disabled regardless of
    ``kind`` (this mirrors Minimap2's ``-z 0``).
    """
    if kind not in {"zdrop", "xdrop", "none"}:
        raise ValueError(f"unknown termination kind {kind!r}")
    if kind == "none" or not scoring.has_termination:
        return NoTermination()
    if kind == "zdrop":
        return ZDrop(zdrop=scoring.zdrop, gap_extend=scoring.gap_extend)
    return XDrop(xdrop=scoring.zdrop)
