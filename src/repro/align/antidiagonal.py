"""Vectorised banded wavefront (anti-diagonal) alignment engine.

This is the workhorse engine of the reproduction.  It computes exactly the
same guided dynamic program as the scalar oracle
(:func:`repro.align.reference.reference_align`) but sweeps the score table
anti-diagonal by anti-diagonal with NumPy vector operations, the same
parallel structure every GPU kernel in the paper exploits
(Section 2.1, "anti-diagonal parallelism").

Besides the alignment result it can return an
:class:`~repro.align.types.AlignmentProfile` carrying the per-anti-diagonal
local maxima and in-band cell counts.  The GPU scheduling simulator
(:mod:`repro.gpusim`) consumes those profiles to account the work each
kernel design performs -- including the *run-ahead* work a design computes
past the termination point -- without re-running the dynamic program for
every kernel variant.

State layout
------------
For anti-diagonal ``c`` the engine keeps three vectors indexed by the query
row ``j`` over the in-band range of anti-diagonal ``c - 1`` (``H``, ``E``,
``F``) and one for ``c - 2`` (``H`` only).  Dependencies resolve as:

* ``E(i, j)`` needs ``H/E`` at ``(i-1, j)`` -- same row, previous
  anti-diagonal;
* ``F(i, j)`` needs ``H/F`` at ``(i, j-1)`` -- previous row, previous
  anti-diagonal;
* the diagonal term needs ``H`` at ``(i-1, j-1)`` -- previous row, the
  anti-diagonal before that.
"""

from __future__ import annotations

import numpy as np

from repro.align.banding import BandGeometry
from repro.align.scoring import ScoringScheme
from repro.align.termination import (
    NEG_INF,
    TerminationCondition,
    make_termination,
)
from repro.align.types import AlignmentProfile, AlignmentResult

__all__ = ["antidiagonal_align", "WavefrontState"]


class WavefrontState:
    """Mutable state of the wavefront sweep over one alignment task.

    The class is exposed (rather than hidden inside a function) because the
    rolling-window unit tests drive it anti-diagonal by anti-diagonal and
    compare the maxima it reports against the rolling-window buffer's view.
    """

    def __init__(
        self,
        ref: np.ndarray,
        query: np.ndarray,
        scoring: ScoringScheme,
        geometry: BandGeometry | None = None,
    ):
        self.ref = np.asarray(ref, dtype=np.uint8)
        self.query = np.asarray(query, dtype=np.uint8)
        self.scoring = scoring
        self.geometry = geometry or BandGeometry(
            self.ref.size, self.query.size, scoring.band_width
        )
        self.sub = scoring.substitution_matrix().astype(np.int64)
        self.alpha = scoring.gap_open
        self.beta = scoring.gap_extend
        self.open_cost = self.alpha + self.beta

        # Previous anti-diagonal (c-1) state and its row offset.
        self._h1 = np.empty(0, dtype=np.int64)
        self._e1 = np.empty(0, dtype=np.int64)
        self._f1 = np.empty(0, dtype=np.int64)
        self._lo1 = 0
        # Anti-diagonal c-2 H values and its row offset.
        self._h2 = np.empty(0, dtype=np.int64)
        self._lo2 = 0
        self._next_antidiag = 0

    # ------------------------------------------------------------------
    @property
    def next_antidiag(self) -> int:
        """Index of the anti-diagonal :meth:`step` will compute next."""
        return self._next_antidiag

    @property
    def exhausted(self) -> bool:
        """Whether every anti-diagonal of the table has been computed."""
        return self._next_antidiag >= self.geometry.num_antidiagonals

    # ------------------------------------------------------------------
    def _gather(
        self, values: np.ndarray, lo: int, rows: np.ndarray
    ) -> np.ndarray:
        """Gather ``values`` (offset ``lo``) at query rows ``rows``,
        yielding ``NEG_INF`` outside the stored range."""
        out = np.full(rows.size, NEG_INF, dtype=np.int64)
        if values.size == 0:
            return out
        idx = rows - lo
        mask = (idx >= 0) & (idx < values.size)
        out[mask] = values[idx[mask]]
        return out

    def step(self) -> tuple[int, np.ndarray, np.ndarray]:
        """Compute the next anti-diagonal.

        Returns
        -------
        (c, rows, h_values):
            The anti-diagonal index, the in-band query rows on it and their
            ``H`` scores.  ``rows`` may be empty when the band excludes the
            whole anti-diagonal.
        """
        if self.exhausted:
            raise RuntimeError("wavefront already exhausted")
        c = self._next_antidiag
        geom = self.geometry
        j_lo, j_hi = geom.row_range(c)
        rows = np.arange(j_lo, j_hi + 1, dtype=np.int64)
        if rows.size == 0:
            self._advance(c, rows, np.empty(0, dtype=np.int64),
                          np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
            return c, rows, np.empty(0, dtype=np.int64)

        cols = c - rows  # reference indices i per cell

        # --- vertical (E): needs (i-1, j) on anti-diagonal c-1, same row.
        up_h = self._gather(self._h1, self._lo1, rows)
        up_e = self._gather(self._e1, self._lo1, rows)
        # Boundary: i - 1 == -1  <=>  j == c.
        top_edge = cols == 0
        if top_edge.any():
            j_vals = rows[top_edge]
            up_h[top_edge] = -(self.alpha + (j_vals + 1) * self.beta)
            up_e[top_edge] = NEG_INF

        # --- horizontal (F): needs (i, j-1) on anti-diagonal c-1, row j-1.
        left_h = self._gather(self._h1, self._lo1, rows - 1)
        left_f = self._gather(self._f1, self._lo1, rows - 1)
        left_edge = rows == 0
        if left_edge.any():
            i_vals = cols[left_edge]
            left_h[left_edge] = -(self.alpha + (i_vals + 1) * self.beta)
            left_f[left_edge] = NEG_INF

        # --- diagonal: needs H at (i-1, j-1) on anti-diagonal c-2, row j-1.
        diag_h = self._gather(self._h2, self._lo2, rows - 1)
        corner = (cols == 0) & (rows == 0)
        if corner.any():
            diag_h[corner] = 0
        # Off-corner boundary diagonals: i-1 == -1 with j >= 1, or j-1 == -1
        # with i >= 1.
        top_diag = (cols == 0) & (rows > 0)
        if top_diag.any():
            diag_h[top_diag] = -(self.alpha + rows[top_diag] * self.beta)
        left_diag = (rows == 0) & (cols > 0)
        if left_diag.any():
            diag_h[left_diag] = -(self.alpha + cols[left_diag] * self.beta)

        e_cur = np.maximum(up_h - self.open_cost, up_e - self.beta)
        f_cur = np.maximum(left_h - self.open_cost, left_f - self.beta)
        np.maximum(e_cur, NEG_INF, out=e_cur)
        np.maximum(f_cur, NEG_INF, out=f_cur)

        match_scores = self.sub[self.ref[cols], self.query[rows]]
        diag_val = np.where(diag_h > NEG_INF, diag_h + match_scores, NEG_INF)

        h_cur = np.maximum(np.maximum(e_cur, f_cur), diag_val)
        np.maximum(h_cur, NEG_INF, out=h_cur)

        self._advance(c, rows, h_cur, e_cur, f_cur)
        return c, rows, h_cur

    def _advance(
        self,
        c: int,
        rows: np.ndarray,
        h_cur: np.ndarray,
        e_cur: np.ndarray,
        f_cur: np.ndarray,
    ) -> None:
        self._h2 = self._h1
        self._lo2 = self._lo1
        self._h1 = h_cur
        self._e1 = e_cur
        self._f1 = f_cur
        self._lo1 = int(rows[0]) if rows.size else 0
        self._next_antidiag = c + 1


def antidiagonal_align(
    ref: np.ndarray,
    query: np.ndarray,
    scoring: ScoringScheme,
    termination: TerminationCondition | None = None,
    *,
    return_profile: bool = False,
):
    """Align ``query`` against ``ref`` with the vectorised wavefront engine.

    Parameters
    ----------
    ref, query:
        Encoded sequences.
    scoring:
        Scoring scheme (band width and Z-drop threshold included).
    termination:
        Explicit termination condition; defaults to the scheme's Z-drop.
    return_profile:
        When true, return an :class:`AlignmentProfile` (result plus
        per-anti-diagonal maxima / cell counts); otherwise return the
        plain :class:`AlignmentResult`.

    Returns
    -------
    AlignmentResult | AlignmentProfile
    """
    ref = np.asarray(ref, dtype=np.uint8)
    query = np.asarray(query, dtype=np.uint8)
    geometry = BandGeometry(ref.size, query.size, scoring.band_width)
    if termination is None:
        termination = make_termination(scoring, "zdrop")
    termination.reset()

    if ref.size == 0 or query.size == 0:
        result = AlignmentResult(
            score=0,
            max_i=-1,
            max_j=-1,
            terminated=False,
            antidiagonals_processed=0,
            cells_computed=0,
        )
        if return_profile:
            return AlignmentProfile(
                result=result,
                antidiag_maxima=np.empty(0, dtype=np.int64),
                cells_per_antidiag=np.empty(0, dtype=np.int64),
                geometry=geometry,
            )
        return result

    state = WavefrontState(ref, query, scoring, geometry)
    maxima: list[int] = []
    cell_counts: list[int] = []
    cells_computed = 0
    terminated = False

    while not state.exhausted:
        c, rows, h_cur = state.step()
        cell_counts.append(int(rows.size))
        cells_computed += int(rows.size)
        if rows.size:
            k = int(np.argmax(h_cur))
            local_best = int(h_cur[k])
            local_j = int(rows[k])
            local_i = c - local_j
        else:
            local_best = NEG_INF
            local_i = -1
            local_j = -1
        maxima.append(local_best)
        if termination.update(c, local_best, local_i, local_j):
            terminated = True
            break

    score = termination.best_score if termination.best_score > NEG_INF else 0
    result = AlignmentResult(
        score=int(score),
        max_i=int(termination.best_i),
        max_j=int(termination.best_j),
        terminated=terminated,
        antidiagonals_processed=len(cell_counts),
        cells_computed=cells_computed,
    )
    if not return_profile:
        return result
    return AlignmentProfile(
        result=result,
        antidiag_maxima=np.asarray(maxima, dtype=np.int64),
        cells_per_antidiag=np.asarray(cell_counts, dtype=np.int64),
        geometry=geometry,
    )
