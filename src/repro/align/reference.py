"""Scalar reference implementation of guided extension alignment.

This module is the **oracle** of the repository: a deliberately simple,
cell-by-cell dynamic program that every vectorised engine and every GPU
kernel (in its exact configurations) must reproduce bit-for-bit.  It
favours clarity over speed and is only intended for test-sized inputs.

Recurrence
----------
Following Minimap2 / ksw2 (the paper's reference algorithm), with ``alpha``
the gap-open and ``beta`` the gap-extend penalty, a gap of length ``L``
costs ``alpha + L * beta``; the recurrence is

.. math::

    H(i,j) &= \\max\\{E(i,j),\\ F(i,j),\\ H(i-1,j-1) + S(R[i], Q[j])\\} \\\\
    E(i,j) &= \\max\\{H(i-1,j) - (\\alpha+\\beta),\\ E(i-1,j) - \\beta\\} \\\\
    F(i,j) &= \\max\\{H(i,j-1) - (\\alpha+\\beta),\\ F(i,j-1) - \\beta\\}

(The paper's Eq. 2-3 fold the first extension into ``alpha``; the two
conventions differ only by what ``alpha`` denotes.  We keep ksw2's, since
exactness against Minimap2 is the paper's whole point.)

Boundary conditions describe an *extension* alignment anchored at the
table origin: ``H(-1,-1) = 0``, ``H(i,-1) = -(alpha + (i+1) beta)`` and
``H(-1,j) = -(alpha + (j+1) beta)``, while ``E`` / ``F`` boundaries are
minus infinity.  Boundary values are available to any in-band cell that
references them.

Guiding
-------
Only cells inside the :class:`~repro.align.banding.BandGeometry` band are
computed.  After each anti-diagonal the termination condition is evaluated
on that anti-diagonal's maximum (see :mod:`repro.align.termination`); when
it fires, no further anti-diagonal is computed.
"""

from __future__ import annotations

import numpy as np

from repro.align.banding import BandGeometry
from repro.align.scoring import ScoringScheme
from repro.align.termination import (
    NEG_INF,
    TerminationCondition,
    make_termination,
)
from repro.align.types import AlignmentResult

__all__ = ["reference_align", "reference_score_table"]


def reference_score_table(
    ref: np.ndarray,
    query: np.ndarray,
    scoring: ScoringScheme,
    termination: TerminationCondition | None = None,
) -> tuple[np.ndarray, AlignmentResult]:
    """Run the scalar DP and return the full ``H`` table plus the result.

    The returned table has shape ``(ref_len, query_len)`` with ``NEG_INF``
    in cells that were never computed (outside the band, or beyond the
    termination anti-diagonal).  Mostly useful for debugging and for the
    traceback module.
    """
    ref = np.asarray(ref, dtype=np.uint8)
    query = np.asarray(query, dtype=np.uint8)
    n, m = ref.size, query.size
    geometry = BandGeometry(n, m, scoring.band_width)
    if termination is None:
        termination = make_termination(scoring, "zdrop")
    termination.reset()

    H = np.full((n, m), NEG_INF, dtype=np.int64)
    E = np.full((n, m), NEG_INF, dtype=np.int64)
    F = np.full((n, m), NEG_INF, dtype=np.int64)

    if n == 0 or m == 0:
        result = AlignmentResult(
            score=0,
            max_i=-1,
            max_j=-1,
            terminated=False,
            antidiagonals_processed=0,
            cells_computed=0,
        )
        return H, result

    alpha = scoring.gap_open
    beta = scoring.gap_extend
    open_cost = alpha + beta
    sub = scoring.substitution_matrix()

    def boundary_h(i: int, j: int) -> int:
        """H value on the virtual row/column -1."""
        if i == -1 and j == -1:
            return 0
        if i == -1:
            return -(alpha + (j + 1) * beta)
        if j == -1:
            return -(alpha + (i + 1) * beta)
        raise AssertionError("boundary_h called for an interior cell")

    def read_h(i: int, j: int) -> int:
        if i == -1 or j == -1:
            return boundary_h(i, j)
        if geometry.in_band(i, j) and H[i, j] > NEG_INF:
            return int(H[i, j])
        return NEG_INF

    def read_e(i: int, j: int) -> int:
        if i < 0 or j < 0:
            return NEG_INF
        if geometry.in_band(i, j) and E[i, j] > NEG_INF:
            return int(E[i, j])
        return NEG_INF

    def read_f(i: int, j: int) -> int:
        if i < 0 or j < 0:
            return NEG_INF
        if geometry.in_band(i, j) and F[i, j] > NEG_INF:
            return int(F[i, j])
        return NEG_INF

    cells_computed = 0
    antidiags_processed = 0
    terminated = False

    for c in range(geometry.num_antidiagonals):
        j_lo, j_hi = geometry.row_range(c)
        local_best = NEG_INF
        local_i = -1
        local_j = -1
        for j in range(j_lo, j_hi + 1):
            i = c - j
            e_val = max(read_h(i - 1, j) - open_cost, read_e(i - 1, j) - beta)
            f_val = max(read_h(i, j - 1) - open_cost, read_f(i, j - 1) - beta)
            diag_h = read_h(i - 1, j - 1)
            if diag_h > NEG_INF:
                diag_val = diag_h + int(sub[ref[i], query[j]])
            else:
                diag_val = NEG_INF
            # Clamp unreachable cells at the NEG_INF floor so that every
            # engine stores identical sentinel values for them.
            e_val = max(e_val, NEG_INF)
            f_val = max(f_val, NEG_INF)
            h_val = max(e_val, f_val, diag_val, NEG_INF)
            E[i, j] = e_val
            F[i, j] = f_val
            H[i, j] = h_val
            cells_computed += 1
            if h_val > local_best:
                local_best = h_val
                local_i = i
                local_j = j
        antidiags_processed += 1
        if termination.update(c, local_best, local_i, local_j):
            terminated = True
            break

    score = termination.best_score if termination.best_score > NEG_INF else 0
    result = AlignmentResult(
        score=int(score),
        max_i=int(termination.best_i),
        max_j=int(termination.best_j),
        terminated=terminated,
        antidiagonals_processed=antidiags_processed,
        cells_computed=cells_computed,
    )
    return H, result


def reference_align(
    ref: np.ndarray,
    query: np.ndarray,
    scoring: ScoringScheme,
    termination: TerminationCondition | None = None,
) -> AlignmentResult:
    """Align ``query`` against ``ref`` with the scalar oracle.

    Parameters
    ----------
    ref, query:
        Encoded sequences (see :func:`repro.align.sequence.encode`).
    scoring:
        Scoring scheme; its ``band_width`` / ``zdrop`` fields control the
        guiding heuristics.
    termination:
        Optional explicit termination condition.  By default Minimap2's
        Z-drop (or none, if the scheme disables it) is used.

    Returns
    -------
    AlignmentResult
        Score, best cell, termination status and work counters.
    """
    _, result = reference_score_table(ref, query, scoring, termination)
    return result
