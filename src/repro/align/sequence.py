"""Nucleotide sequence encoding and synthetic sequence helpers.

Sequences are handled as ``numpy.uint8`` arrays of codes rather than Python
strings: the alignment engines index substitution matrices with them
directly, and the packing module (:mod:`repro.align.packing`) packs them
4 bits per literal exactly like the GPU kernels described in the paper.

The five literals are the four DNA bases plus the ambiguity code ``N``:

====== ======
letter  code
====== ======
``A``   0
``C``   1
``G``   2
``T``   3
``N``   4
====== ======
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

#: The five valid sequence literals, in code order.
ALPHABET: str = "ACGTN"

#: Mapping from (upper-case) base letter to integer code.
BASE_TO_CODE: dict[str, int] = {base: code for code, base in enumerate(ALPHABET)}

#: Mapping from integer code back to base letter.
CODE_TO_BASE: dict[int, str] = {code: base for code, base in enumerate(ALPHABET)}

#: Number of distinct literal codes (A, C, G, T, N).
NUM_CODES: int = len(ALPHABET)

#: Code used for the ambiguity literal ``N``.
N_CODE: int = BASE_TO_CODE["N"]

SequenceLike = Union[str, Sequence[int], np.ndarray]


def encode(seq: SequenceLike) -> np.ndarray:
    """Encode a sequence into a ``uint8`` code array.

    Accepts a string of bases (case-insensitive; any letter outside
    ``ACGT`` is mapped to ``N``), an iterable of integer codes, or an
    already-encoded array (returned as a ``uint8`` view/copy).

    Parameters
    ----------
    seq:
        The sequence to encode.

    Returns
    -------
    numpy.ndarray
        1-D ``uint8`` array of codes in ``[0, 5)``.
    """
    if isinstance(seq, np.ndarray):
        arr = np.asarray(seq, dtype=np.uint8)
        if arr.ndim != 1:
            raise ValueError(f"sequence array must be 1-D, got shape {arr.shape}")
        if arr.size and arr.max(initial=0) >= NUM_CODES:
            raise ValueError("sequence codes must be < 5")
        return arr
    if isinstance(seq, str):
        table = np.full(256, N_CODE, dtype=np.uint8)
        for base, code in BASE_TO_CODE.items():
            table[ord(base)] = code
            table[ord(base.lower())] = code
        raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
        return table[raw]
    arr = np.asarray(list(seq), dtype=np.uint8)
    if arr.size and arr.max(initial=0) >= NUM_CODES:
        raise ValueError("sequence codes must be < 5")
    return arr


def decode(codes: Union[np.ndarray, Iterable[int]]) -> str:
    """Decode a code array back into a base string.

    Inverse of :func:`encode` for valid codes.
    """
    arr = np.asarray(codes, dtype=np.uint8)
    if arr.ndim != 1:
        raise ValueError("codes must be 1-D")
    lut = np.frombuffer(ALPHABET.encode("ascii"), dtype=np.uint8)
    if arr.size and arr.max(initial=0) >= NUM_CODES:
        raise ValueError("sequence codes must be < 5")
    return lut[arr].tobytes().decode("ascii")


def random_sequence(
    length: int,
    rng: np.random.Generator | None = None,
    *,
    n_fraction: float = 0.0,
) -> np.ndarray:
    """Generate a uniform random DNA sequence of ``length`` codes.

    Parameters
    ----------
    length:
        Number of bases.
    rng:
        NumPy random generator; a fresh default generator is used when
        omitted (not reproducible -- pass one for reproducibility).
    n_fraction:
        Fraction of positions replaced with the ambiguity code ``N``.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 <= n_fraction <= 1.0:
        raise ValueError("n_fraction must be within [0, 1]")
    if rng is None:
        rng = np.random.default_rng()
    seq = rng.integers(0, 4, size=length, dtype=np.uint8)
    if n_fraction > 0.0 and length > 0:
        mask = rng.random(length) < n_fraction
        seq[mask] = N_CODE
    return seq


def mutate(
    seq: np.ndarray,
    rng: np.random.Generator,
    *,
    substitution_rate: float = 0.0,
    insertion_rate: float = 0.0,
    deletion_rate: float = 0.0,
    max_indel_length: int = 3,
) -> np.ndarray:
    """Apply a simple per-base error model to ``seq``.

    This is the error process used by the synthetic read simulators in
    :mod:`repro.io.datasets` to mimic sequencing technologies: HiFi reads
    use low rates, CLR / ONT use substantially higher ones.  Each input
    base independently suffers a substitution, is preceded by an insertion
    of geometric-ish length, or is deleted.

    Parameters
    ----------
    seq:
        Encoded sequence (``uint8`` codes).
    rng:
        Random generator (mandatory -- error processes must be seedable).
    substitution_rate, insertion_rate, deletion_rate:
        Per-base probabilities of each event.
    max_indel_length:
        Upper bound on a single insertion length.

    Returns
    -------
    numpy.ndarray
        A new encoded sequence with errors applied.
    """
    for name, rate in (
        ("substitution_rate", substitution_rate),
        ("insertion_rate", insertion_rate),
        ("deletion_rate", deletion_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be within [0, 1]")
    if max_indel_length < 1:
        raise ValueError("max_indel_length must be >= 1")

    seq = np.asarray(seq, dtype=np.uint8)
    n = seq.size
    if n == 0:
        return seq.copy()

    u = rng.random(n)
    out: list[np.ndarray] = []
    # Event selection per base: deletion wins over insertion wins over
    # substitution to keep the three processes mutually exclusive per base.
    del_mask = u < deletion_rate
    ins_mask = (~del_mask) & (u < deletion_rate + insertion_rate)
    sub_mask = (~del_mask) & (~ins_mask) & (
        u < deletion_rate + insertion_rate + substitution_rate
    )

    substituted = seq.copy()
    if sub_mask.any():
        # Shift by 1..3 (mod 4) so the substituted base always differs.
        shift = rng.integers(1, 4, size=int(sub_mask.sum()), dtype=np.uint8)
        base = substituted[sub_mask]
        base = np.where(base >= 4, rng.integers(0, 4, size=base.size), base)
        substituted[sub_mask] = (base + shift) % 4

    insert_positions = np.flatnonzero(ins_mask)
    insert_lengths = (
        rng.integers(1, max_indel_length + 1, size=insert_positions.size)
        if insert_positions.size
        else np.empty(0, dtype=np.int64)
    )

    cursor = 0
    for pos, ins_len in zip(insert_positions, insert_lengths):
        if pos > cursor:
            segment = substituted[cursor:pos]
            keep = ~del_mask[cursor:pos]
            out.append(segment[keep])
        out.append(rng.integers(0, 4, size=int(ins_len), dtype=np.uint8))
        if not del_mask[pos]:
            out.append(substituted[pos : pos + 1])
        cursor = pos + 1
    if cursor < n:
        segment = substituted[cursor:]
        keep = ~del_mask[cursor:]
        out.append(segment[keep])

    if not out:
        return np.empty(0, dtype=np.uint8)
    return np.concatenate(out).astype(np.uint8)


def reverse_complement(seq: np.ndarray) -> np.ndarray:
    """Return the reverse complement of an encoded sequence.

    ``N`` complements to ``N``; the base codes complement as
    A<->T (0<->3) and C<->G (1<->2).
    """
    seq = np.asarray(seq, dtype=np.uint8)
    comp = np.array([3, 2, 1, 0, 4], dtype=np.uint8)
    return comp[seq][::-1].copy()
