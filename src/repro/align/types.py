"""Shared task / result dataclasses for the alignment engines and kernels.

Three objects circulate through the whole repository:

:class:`AlignmentTask`
    One extension-alignment job: a reference segment, a query segment and
    the scoring scheme (which carries the guiding parameters).  The read
    mapper (:mod:`repro.pipeline.mapper`) and the synthetic dataset
    generators (:mod:`repro.io.datasets`) produce batches of these; the
    CPU baselines and every GPU kernel consume them.

:class:`AlignmentResult`
    The score output of running one task: the best score, where it was
    found, whether/where Z-drop fired and how many cells were computed.

:class:`AlignmentProfile`
    A result plus the per-anti-diagonal metadata (local maxima, in-band
    cell counts) that the GPU scheduling simulator uses to account
    workload without recomputing the dynamic program for every kernel
    variant.  Profiles are computed once per task by the vectorised
    engine and cached on the task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.align.banding import BandGeometry
from repro.align.scoring import ScoringScheme

__all__ = ["AlignmentTask", "AlignmentResult", "AlignmentProfile"]


@dataclass
class AlignmentResult:
    """Outcome of aligning one (reference, query) pair.

    Attributes
    ----------
    score:
        The alignment score: the maximum ``H`` value over every computed
        in-band cell (the *global maximum* of the guiding strategy).
    max_i, max_j:
        Reference / query index of the cell attaining ``score``
        (``-1`` when no cell was computed).
    terminated:
        Whether the Z-drop/X-drop condition fired before the table was
        exhausted.
    antidiagonals_processed:
        Number of anti-diagonals whose cells were actually computed.
        Termination after anti-diagonal ``c`` yields ``c + 1``.
    cells_computed:
        Number of in-band cells computed (the CPU-side measure of work).
    """

    score: int
    max_i: int
    max_j: int
    terminated: bool
    antidiagonals_processed: int
    cells_computed: int

    def __post_init__(self) -> None:
        if self.antidiagonals_processed < 0 or self.cells_computed < 0:
            raise ValueError("work counters must be non-negative")

    def same_score(self, other: "AlignmentResult") -> bool:
        """Exactness check used by the kernel test-suite: two results agree
        when they report the same score at the same cell and the same
        termination behaviour."""
        return (
            self.score == other.score
            and self.max_i == other.max_i
            and self.max_j == other.max_j
            and self.terminated == other.terminated
            and self.antidiagonals_processed == other.antidiagonals_processed
        )


@dataclass
class AlignmentProfile:
    """Per-anti-diagonal view of one alignment, produced by the vectorised
    engine (:func:`repro.align.antidiagonal.antidiagonal_align`).

    Attributes
    ----------
    result:
        The plain :class:`AlignmentResult`.
    antidiag_maxima:
        ``int64`` array with the local maximum of each *processed*
        anti-diagonal (length ``result.antidiagonals_processed``).
    cells_per_antidiag:
        In-band cell count of each processed anti-diagonal.
    geometry:
        The :class:`BandGeometry` of the full task (not truncated at the
        termination point), used by kernels to reason about run-ahead.
    """

    result: AlignmentResult
    antidiag_maxima: np.ndarray
    cells_per_antidiag: np.ndarray
    geometry: BandGeometry

    @property
    def antidiagonals_processed(self) -> int:
        """Anti-diagonals computed before (inclusive of) termination."""
        return self.result.antidiagonals_processed

    @property
    def cells_computed(self) -> int:
        """In-band cells computed before termination."""
        return self.result.cells_computed

    @property
    def total_band_cells(self) -> int:
        """In-band cells of the *full* table (work without termination)."""
        return self.geometry.total_cells

    def workload_blocks(self, block_size: int = 8) -> int:
        """Approximate number of ``block_size x block_size`` blocks the
        processed region spans -- the workload unit of Figures 3(b) and 12."""
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        cells = max(self.cells_computed, 0)
        return -(-cells // (block_size * block_size))


@dataclass
class AlignmentTask:
    """One guided extension-alignment job.

    Attributes
    ----------
    ref:
        Encoded reference segment (``uint8`` codes).
    query:
        Encoded query segment (``uint8`` codes).
    scoring:
        Scoring scheme including band width and Z-drop threshold.
    task_id:
        Stable identifier used in reports and scheduling traces.
    """

    ref: np.ndarray
    query: np.ndarray
    scoring: ScoringScheme
    task_id: int = 0
    _profile: Optional[AlignmentProfile] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.ref = np.asarray(self.ref, dtype=np.uint8)
        self.query = np.asarray(self.query, dtype=np.uint8)
        if self.ref.ndim != 1 or self.query.ndim != 1:
            raise ValueError("ref and query must be 1-D code arrays")

    # ------------------------------------------------------------------
    @property
    def ref_len(self) -> int:
        """Length of the reference segment."""
        return int(self.ref.size)

    @property
    def query_len(self) -> int:
        """Length of the query segment."""
        return int(self.query.size)

    @property
    def geometry(self) -> BandGeometry:
        """Band geometry of the full task."""
        return BandGeometry(self.ref_len, self.query_len, self.scoring.band_width)

    @property
    def num_antidiagonals(self) -> int:
        """Anti-diagonals in the full table."""
        return self.geometry.num_antidiagonals

    # ------------------------------------------------------------------
    def profile(self, force: bool = False) -> AlignmentProfile:
        """Compute (and cache) the alignment profile of this task.

        The profile is produced by the vectorised anti-diagonal engine with
        the task's own scoring scheme; every kernel simulation reuses it so
        the dynamic program runs once per task regardless of how many
        kernel variants are benchmarked.
        """
        if self._profile is None or force:
            # Imported lazily to avoid a circular import at module load.
            from repro.align.antidiagonal import antidiagonal_align

            self._profile = antidiagonal_align(
                self.ref, self.query, self.scoring, return_profile=True
            )
        return self._profile

    def invalidate_profile(self) -> None:
        """Drop the cached profile (used after mutating scoring in tests)."""
        self._profile = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"AlignmentTask(id={self.task_id}, ref_len={self.ref_len}, "
            f"query_len={self.query_len}, scheme={self.scoring.name!r})"
        )
