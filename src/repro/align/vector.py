"""Vectorized whole-array anti-diagonal engine (the ``vector`` backend).

The batch engine (:mod:`repro.align.batch`) already lays a bucket of
tasks out as struct-of-arrays buffers and advances all of them one
anti-diagonal at a time -- but inside each anti-diagonal it still pays
seven ``take_along_axis`` gathers (H/E/F at three shifted positions plus
the sequence codes) and recomputes the band geometry, the edge masks and
the substitution lookups from scratch, every single anti-diagonal.  On
realistic guided workloads those gathers and rebuilt masks are roughly
half of the sweep's wall-clock.

This module removes them.  The key observation is that the in-band row
window only ever *slides*: between consecutive anti-diagonals the lower
row bound ``j_lo`` grows by 0 or 1 (each term of its ``max`` is
non-decreasing and grows by at most one), so the previous wavefront can
be read through one of two *shifted views* of a guard-padded buffer
instead of a gather -- and the two-back H wavefront through one of three.
Everything that depends only on the band geometry -- row windows, shift
selectors, lane masks, matrix-edge positions and the substitution scores
of every in-band cell -- is precomputed for a whole *panel* of
anti-diagonals in one set of array operations, so the per-anti-diagonal
step is reduced to a handful of whole-array ``int64`` ufunc calls:
shifted-view selects, the E/F/H maxima, the masked store, one ``argmax``
for max-cell tracking and the vectorized Z-drop/X-drop update.

Exactness
---------
The arithmetic is the batch engine's arithmetic in the batch engine's
order; scores, maximum cells, termination anti-diagonals, work counters
and per-anti-diagonal profiles are bit-identical to
:func:`repro.align.batch.batch_align` and therefore to the scalar
oracle (``tests/align/test_vector.py`` pins all of it, including a
hypothesis property suite).  In particular:

* stored E/F/H lanes are masked to the live lane window, which is
  exactly equivalent to the batch engine's count-bounded gathers;
* guard columns on both sides of every buffer stay ``NEG_INF``, so a
  shifted view that peeks one lane outside the stored window reads the
  same ``NEG_INF`` the gather's bounds check would produce;
* the termination condition is evaluated every anti-diagonal against
  the pre-update global maximum, like the scalar engine.

Sliced compaction
-----------------
``slice_width`` works exactly as in the batch engine: the sweep is cut
with :func:`repro.core.sliced_diagonal.slice_ranges` and terminated or
completed tasks are compacted out of the buffers at every slice
boundary.  The ``vector`` engine registered in :mod:`repro.api.engines`
compacts every :data:`~repro.align.batch.DEFAULT_SLICE_WIDTH`
anti-diagonals, like ``batch-sliced``.

Optional dependency
-------------------
NumPy for this engine is an *optional* extra (``pip install
agatha-repro[vector]``).  Importing this module without NumPy raises
``ImportError``; :mod:`repro.api.engines` catches it and simply skips
registration, so a NumPy-less install keeps every other entry point
working and reports the engine as unavailable by name
(:func:`repro.api.engines.unavailable_engines`).  Setting the
environment variable ``REPRO_NO_VECTOR=1`` forces the same ImportError
path on installs that do have NumPy -- CI uses it to exercise the
fallback on every PR.
"""

from __future__ import annotations

import os
from typing import Dict, List, Literal, Optional, Sequence, Tuple, Union, overload

if os.environ.get("REPRO_NO_VECTOR"):
    raise ImportError(
        "repro.align.vector is disabled (REPRO_NO_VECTOR is set, simulating "
        "an install without the optional [vector] extra)"
    )

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised via REPRO_NO_VECTOR
    raise ImportError(
        "repro.align.vector requires NumPy; install the optional extra with "
        "pip install agatha-repro[vector]"
    ) from exc

from repro.align.banding import BandGeometry
from repro.align.batch import (
    DEFAULT_SLICE_WIDTH,
    TaskBatch,
    _lane_bounds,
    _TERM_XDROP,
    _TERM_ZDROP,
    _TERMINATION_KINDS,
    pack_tasks,
)
from repro.align.streaming import SliceStats
from repro.align.termination import NEG_INF
from repro.align.types import AlignmentProfile, AlignmentResult, AlignmentTask
from repro.core.uneven_bucketing import length_bucket_order

__all__ = [
    "DEFAULT_VECTOR_BUCKET_SIZE",
    "PANEL_WIDTH",
    "VectorStream",
    "vector_align",
]

#: Default bucket size of the ``vector`` engine.  Larger than the batch
#: engine's 64: the per-anti-diagonal Python dispatch is amortised over
#: the whole bucket, and the slice-boundary compaction keeps the padding
#: waste of a big sorted bucket small.
DEFAULT_VECTOR_BUCKET_SIZE: int = 256

#: Anti-diagonals whose geometry, shift selectors, lane masks, edges and
#: substitution scores are precomputed in one shot.  Bounds the panel
#: buffers to ``PANEL_WIDTH x bucket x lanes`` elements.
PANEL_WIDTH: int = 32


def _batch_bound(batch: TaskBatch) -> Dict[str, int]:
    """Components of the worst-case value bound of sweeping ``batch``.

    The buffer values live in ``[NEG_INF - (alpha + beta), score_max]``
    where every score is bounded by the band cells times the largest
    substitution magnitude plus the deepest edge cost.  When the combined
    bound (with generous margin) fits ``int32``
    (:func:`_fits_int32`), the 32-bit sweep performs the exact same
    integer arithmetic as the 64-bit one -- results stay bit-identical --
    at half the memory traffic.  Pathological schemes fall back to
    ``int64``.  A stream keeps the running maximum of each component
    across admissions: a task admitted mid-sweep can force a *lossless*
    upcast of the live buffers, but never an exactness-breaking
    downcast.
    """
    return {
        "open": int(batch.gap_open.max(initial=0)),
        "extend": int(batch.gap_extend.max(initial=0)),
        "sub": int(np.abs(batch.sub_stack).max(initial=0)),
        "thr": int(np.abs(batch.term_threshold).max(initial=0)),
        "reach": int(batch.num_antidiagonals.max(initial=0)) + 2,
    }


def _fits_int32(bound: Dict[str, int]) -> bool:
    """Whether a sweep with these bound components fits ``int32``."""
    worst = (
        bound["open"]
        + (bound["extend"] + bound["sub"]) * bound["reach"]
        + bound["thr"]
    )
    return worst < 2**29


class _Panel:
    """Geometry, shift selectors, masks and match scores for a panel.

    Everything here depends only on the band geometry and the packed
    sequences -- never on the wavefront values -- so it is computed for
    ``panel`` anti-diagonals with one set of whole-array operations and
    indexed by in-panel step ``s`` during the sweep.
    """

    __slots__ = (
        "lo",
        "jlo",
        "count",
        "d1_val",
        "d1_is1",
        "d2_val",
        "d2_is0",
        "d2_is2",
        "inv_mask",
        "match",
        "top_sel",
        "top_lane",
        "left_sel",
        "edge_cost",
        "diag_cost",
    )

    def __init__(
        self,
        p_lo: int,
        p_hi: int,
        *,
        width: int,
        ref_flat: np.ndarray,
        ref_stride: int,
        query_flat: np.ndarray,
        query_stride: int,
        ref_len: np.ndarray,
        query_len: np.ndarray,
        diag_lo: np.ndarray,
        diag_hi: np.ndarray,
        sub_flat: np.ndarray,
        scheme_off: Optional[np.ndarray],
        alpha: np.ndarray,
        beta: np.ndarray,
        start: np.ndarray,
    ) -> None:
        m = ref_len.shape[0]
        span = p_hi - p_lo
        self.lo = p_lo
        # Lower row bound for anti-diagonals p_lo-2 .. p_hi-1 in one shot:
        # the two extra leading rows give the shift deltas of the panel's
        # first anti-diagonals.  Global steps translate to per-task local
        # anti-diagonal counts through the admission offset ``start`` (all
        # zeros in a one-shot sweep).  For local counts < 0 the formula
        # yields garbage, but those deltas are never *used*: at count 0
        # both wavefront buffers are all-NEG_INF and at count 1 the
        # two-back buffer still is, so every shifted view reads NEG_INF
        # whichever view is selected.
        cs_ext = (
            np.arange(p_lo - 2, p_hi, dtype=np.int64)[:, None] - start[None, :]
        )
        jlo_ext = np.maximum(
            np.maximum(cs_ext - ref_len[None, :] + 1, 0),
            -((diag_hi[None, :] - cs_ext) // 2),
        )
        jlo = jlo_ext[2:]
        d1 = jlo - jlo_ext[1:-1]
        d2 = jlo - jlo_ext[:-2]
        self.jlo = jlo
        # Per-anti-diagonal uniform shift (or -1 when tasks disagree):
        # when every live task shares one delta the select collapses to a
        # single shifted view, no blend needed.
        self.d1_val = np.where(
            (d1 == d1[:, :1]).all(axis=1), d1[:, 0], -1
        )
        self.d1_is1 = (d1 == 1)[:, :, None]
        self.d2_val = np.where(
            (d2 == d2[:, :1]).all(axis=1), d2[:, 0], -1
        )
        self.d2_is0 = (d2 == 0)[:, :, None]
        self.d2_is2 = (d2 == 2)[:, :, None]

        cs = cs_ext[2:]
        jhi = np.minimum(
            np.minimum(query_len[None, :] - 1, cs), (cs - diag_lo[None, :]) // 2
        )
        count = np.maximum(jhi - jlo + 1, 0)
        self.count = count

        lane = np.arange(width, dtype=np.int32)
        self.inv_mask = lane[None, None, :] >= count[:, :, None]

        # Sequence codes through flat ``take`` gathers: the row/column of
        # every in-band cell collapses to one int32 flat index per lane
        # (clip mode soaks up the junk indices of empty lanes, whose
        # match values are masked out of every observable anyway).
        rows = jlo.astype(np.int32)[:, :, None] + lane
        cols = cs.astype(np.int32)[:, :, None] - rows
        rofs = (np.arange(m, dtype=np.int32) * ref_stride)[None, :, None]
        qofs = (np.arange(m, dtype=np.int32) * query_stride)[None, :, None]
        ref_codes = ref_flat.take(cols + rofs, mode="clip")
        query_codes = query_flat.take(rows + qofs, mode="clip")
        # Substitution scores from the flattened (scheme, ref, query)
        # table; codes fit uint8, so with one scoring scheme the whole
        # lookup is a 25-entry take.  ``sub_flat`` arrives pre-cast to
        # the sweep dtype.
        code = ref_codes * np.uint8(5) + query_codes
        if scheme_off is not None:
            code = code + scheme_off[None, :, None]
        self.match = sub_flat.take(code)

        # Matrix-edge cells: the top edge (i == 0) sits at lane c - j_lo
        # exactly when the band still reaches row c; the left edge
        # (j == 0) at lane 0 exactly when j_lo == 0.  Both edge H values
        # on local anti-diagonal c cost -(alpha + (c+1)*beta) and both
        # diagonal predecessors -(alpha + c*beta), except the corner
        # (local count 0), whose diagonal predecessor is the origin with
        # score 0 -- folding that per task into ``diag_cost`` is what
        # keeps staggered admissions exact.  Edges only exist while the
        # band still touches the matrix rim, so most panels skip the
        # whole block.
        has_top = (jhi == cs) & (count > 0)
        has_left = (jlo == 0) & (count > 0)
        if has_top.any() or has_left.any():
            self.top_lane = cs - jlo
            self.edge_cost = -(alpha[None, :] + (cs + 1) * beta[None, :])
            self.diag_cost = np.where(
                cs == 0, 0, -(alpha[None, :] + cs * beta[None, :])
            )
            self.top_sel: Optional[List[np.ndarray]] = [
                np.flatnonzero(has_top[s]) for s in range(span)
            ]
            self.left_sel = [np.flatnonzero(has_left[s]) for s in range(span)]
        else:
            self.top_lane = self.edge_cost = self.diag_cost = None
            self.top_sel = None
            self.left_sel = None


def _panels(lo: int, hi: int) -> List[tuple[int, int]]:
    """Cut ``[lo, hi)`` into precompute panels of ``PANEL_WIDTH``."""
    return [(p, min(p + PANEL_WIDTH, hi)) for p in range(lo, hi, PANEL_WIDTH)]


class VectorStream:
    """Resumable whole-array sweep: the ``vector`` engine's in-flight
    batch (:class:`repro.align.streaming.InFlightBatch`).

    The streaming twin of :class:`repro.align.batch.BatchStream` --
    identical contract, identical results -- with the batch engine's
    per-lane arithmetic replaced by this module's shifted-view panel
    sweep.  ``vector_align`` is ``VectorStream(bucket).drain()`` per
    bucket; the serve scheduler instead holds a long-lived stream,
    interleaving :meth:`step` with :meth:`admit` so new requests occupy
    the lanes slice-boundary compaction freed.

    Per-task admission offsets (``start``) translate the stream's global
    step counter into each task's local anti-diagonal count; the panel
    precompute (:class:`_Panel`) is built on those local counts, so a
    freshly admitted task's geometry, edge costs and corner handling are
    exactly those of a fresh sweep, and its wavefront rows start
    all-``NEG_INF``.  The ``int32`` fast path is decided from a running
    worst-case bound over every admission (:func:`_batch_bound`): a
    later admission may upcast the live buffers to ``int64``
    (value-preserving, hence exact) but never downcasts.
    """

    def __init__(
        self,
        tasks: Sequence[AlignmentTask] = (),
        *,
        capacity: Optional[int] = None,
        slice_width: Optional[int] = DEFAULT_SLICE_WIDTH,
        termination: str = "zdrop",
        collect_profiles: bool = False,
    ) -> None:
        if slice_width is not None and slice_width <= 0:
            raise ValueError("slice_width must be positive (or None for dense)")
        if termination not in _TERMINATION_KINDS:
            raise ValueError(
                f"unknown termination kind {termination!r}; "
                f"expected one of {_TERMINATION_KINDS}"
            )
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._slice_width = slice_width
        self._termination = termination
        self._collect_profiles = collect_profiles
        self._g = 0  # global anti-diagonal step counter
        self._since_admit = 0
        self._stats: List[SliceStats] = []
        self._fresh: List[Tuple[int, AlignmentResult]] = []

        # Admission-order records (grow with every admit()).
        self._tasks: List[AlignmentTask] = []
        self._results: List[Optional[AlignmentResult]] = []
        self._best_score = np.full(0, NEG_INF, dtype=np.int64)
        self._best_i = np.full(0, -1, dtype=np.int64)
        self._best_j = np.full(0, -1, dtype=np.int64)
        self._fired = np.zeros(0, dtype=bool)
        self._ad_count = np.zeros(0, dtype=np.int64)
        self._cells_count = np.zeros(0, dtype=np.int64)
        self._maxima_buf = np.zeros((0, 0), dtype=np.int64)
        self._cells_buf = np.zeros((0, 0), dtype=np.int64)

        # Stream-wide scheme stack, sweep dtype and its running bound.
        self._scheme_table: Dict[object, int] = {}
        self._sub_mats: List[np.ndarray] = []
        self._sub_stack = np.zeros((1, 5, 5), dtype=np.int64)
        self._dt: type = np.int64
        self._bound = {"open": 0, "extend": 0, "sub": 0, "thr": 0, "reach": 0}

        # Live task-axis state (compacted at every slice boundary).
        self._m = 0
        self._width = 0
        self._orig = np.zeros(0, dtype=np.intp)
        self._ref_buf = np.zeros((0, 1), dtype=np.uint8)
        self._query_buf = np.zeros((0, 1), dtype=np.uint8)
        self._ref_len = np.zeros(0, dtype=np.int64)
        self._query_len = np.zeros(0, dtype=np.int64)
        self._diag_lo = np.zeros(0, dtype=np.int64)
        self._diag_hi = np.zeros(0, dtype=np.int64)
        self._num_ad = np.zeros(0, dtype=np.int64)
        self._scheme_idx = np.zeros(0, dtype=np.intp)
        self._z_sel = np.zeros(0, dtype=bool)
        self._x_sel = np.zeros(0, dtype=bool)
        self._term_threshold = np.zeros(0, dtype=np.int64)
        self._alpha = np.zeros(0, dtype=np.int64)
        self._beta = np.zeros(0, dtype=np.int64)
        self._start = np.zeros(0, dtype=np.int64)
        # Live accumulators (compact mirrors of the admission-order
        # records, flushed at retirement, so the per-anti-diagonal
        # update never fancy-indexes).
        self._l_best = np.full(0, NEG_INF, dtype=np.int64)
        self._l_bi = np.full(0, -1, dtype=np.int64)
        self._l_bj = np.full(0, -1, dtype=np.int64)
        self._l_fired = np.zeros(0, dtype=bool)
        self._l_adc = np.zeros(0, dtype=np.int64)
        self._l_cells = np.zeros(0, dtype=np.int64)
        # Guard-padded wavefront buffers: lane l of anti-diagonal c-1
        # (ha) and c-2 (hb) lives in column l+1; columns 0 and width+1
        # stay NEG_INF so shifted views that step outside the window
        # read NEG_INF, exactly like the batch engine's bounds-checked
        # gathers.  E and F are stored pre-combined with their H
        # alternative -- ``ge = max(H - open, E - extend)`` and ``gf =
        # max(H - open, F - extend)`` -- so the next anti-diagonal
        # recovers E/F with one shifted read and one clamp.
        self._ha = np.full((0, 2), NEG_INF, dtype=np.int64)
        self._hb = np.full((0, 2), NEG_INF, dtype=np.int64)
        self._geb = np.full((0, 2), NEG_INF, dtype=np.int64)
        self._gfb = np.full((0, 2), NEG_INF, dtype=np.int64)
        self._rebind()

        tasks = list(tasks)
        self._capacity = int(capacity) if capacity is not None else max(len(tasks), 1)
        if tasks:
            self.admit(tasks)

    # ------------------------------------------------------------------
    # InFlightBatch surface
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def live(self) -> int:
        return self._m

    @property
    def free(self) -> int:
        return self._capacity - self._m

    @property
    def admitted(self) -> int:
        return len(self._tasks)

    @property
    def done(self) -> bool:
        return self._m == 0

    @property
    def stats(self) -> Tuple[SliceStats, ...]:
        return tuple(self._stats)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, tasks: Sequence[AlignmentTask]) -> List[int]:
        """Inject ``tasks`` into free lanes at the current slice boundary.

        Returns their admission indices (the positions their results will
        occupy in :meth:`drain` / :meth:`take_completed` pairs).  Raises
        ``ValueError`` when fewer than ``len(tasks)`` lanes are free.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if len(tasks) > self.free:
            raise ValueError(
                f"cannot admit {len(tasks)} task(s): only {self.free} of "
                f"{self._capacity} lanes are free"
            )
        batch = pack_tasks(tasks, self._termination)
        b = batch.size

        # Deduplicate scoring schemes into the stream-wide stack.
        scheme_idx = np.zeros(b, dtype=np.intp)
        grew = False
        for k, task in enumerate(batch.tasks):
            key = task.scoring
            index = self._scheme_table.get(key)
            if index is None:
                index = len(self._sub_mats)
                self._scheme_table[key] = index
                self._sub_mats.append(
                    task.scoring.substitution_matrix().astype(np.int64)
                )
                grew = True
            scheme_idx[k] = index
        if grew:
            self._sub_stack = np.stack(self._sub_mats)

        # Sweep dtype: re-decided freely while no values are in flight,
        # upcast in place (losslessly) when a new admission breaks the
        # running int32 bound.
        incoming = _batch_bound(batch)
        if self._m == 0:
            self._bound = incoming
        else:
            for name, value in incoming.items():
                self._bound[name] = max(self._bound[name], value)
        want = np.int32 if _fits_int32(self._bound) else np.int64
        if self._m == 0:
            self._dt = want
        elif want is np.int64 and self._dt is np.int32:
            self._dt = np.int64
            self._ha = self._ha.astype(np.int64)
            self._hb = self._hb.astype(np.int64)
            self._geb = self._geb.astype(np.int64)
            self._gfb = self._gfb.astype(np.int64)

        first = len(self._tasks)
        indices = list(range(first, first + b))
        self._tasks.extend(batch.tasks)
        self._results.extend([None] * b)
        self._best_score = np.concatenate(
            [self._best_score, np.full(b, NEG_INF, dtype=np.int64)]
        )
        self._best_i = np.concatenate([self._best_i, np.full(b, -1, dtype=np.int64)])
        self._best_j = np.concatenate([self._best_j, np.full(b, -1, dtype=np.int64)])
        self._fired = np.concatenate([self._fired, np.zeros(b, dtype=bool)])
        self._ad_count = np.concatenate([self._ad_count, np.zeros(b, dtype=np.int64)])
        self._cells_count = np.concatenate(
            [self._cells_count, np.zeros(b, dtype=np.int64)]
        )
        if self._collect_profiles:
            cols = max(
                self._maxima_buf.shape[1],
                int(batch.num_antidiagonals.max(initial=0)),
            )
            self._maxima_buf = np.pad(
                self._maxima_buf,
                ((0, b), (0, cols - self._maxima_buf.shape[1])),
            )
            self._cells_buf = np.pad(
                self._cells_buf,
                ((0, b), (0, cols - self._cells_buf.shape[1])),
            )

        self._l_best = np.concatenate(
            [self._l_best, np.full(b, NEG_INF, dtype=np.int64)]
        )
        self._l_bi = np.concatenate([self._l_bi, np.full(b, -1, dtype=np.int64)])
        self._l_bj = np.concatenate([self._l_bj, np.full(b, -1, dtype=np.int64)])
        self._l_fired = np.concatenate([self._l_fired, np.zeros(b, dtype=bool)])
        self._l_adc = np.concatenate([self._l_adc, np.zeros(b, dtype=np.int64)])
        self._l_cells = np.concatenate([self._l_cells, np.zeros(b, dtype=np.int64)])

        # Merge the live task axis: survivors keep their wavefronts, new
        # tasks start from the all-NEG_INF state of a fresh sweep (so
        # their arithmetic is identical to one).
        new_width = max(self._width, batch.max_lanes)
        ref_cols = max(self._ref_buf.shape[1], batch.ref_buf.shape[1], 1)
        query_cols = max(self._query_buf.shape[1], batch.query_buf.shape[1], 1)

        def merge_seq(old: np.ndarray, new: np.ndarray, cols: int) -> np.ndarray:
            out = np.zeros((self._m + b, cols), dtype=np.uint8)
            out[: self._m, : old.shape[1]] = old
            out[self._m :, : new.shape[1]] = new
            return out

        def merge_wave(old: np.ndarray) -> np.ndarray:
            out = np.full((self._m + b, new_width + 2), NEG_INF, dtype=self._dt)
            out[: self._m, : old.shape[1]] = old
            return out

        self._ref_buf = merge_seq(self._ref_buf, batch.ref_buf, ref_cols)
        self._query_buf = merge_seq(self._query_buf, batch.query_buf, query_cols)
        self._ha = merge_wave(self._ha)
        self._hb = merge_wave(self._hb)
        self._geb = merge_wave(self._geb)
        self._gfb = merge_wave(self._gfb)
        self._orig = np.concatenate([self._orig, np.asarray(indices, dtype=np.intp)])
        self._ref_len = np.concatenate([self._ref_len, batch.ref_len])
        self._query_len = np.concatenate([self._query_len, batch.query_len])
        self._diag_lo = np.concatenate([self._diag_lo, batch.diag_lo])
        self._diag_hi = np.concatenate([self._diag_hi, batch.diag_hi])
        self._num_ad = np.concatenate([self._num_ad, batch.num_antidiagonals])
        self._scheme_idx = np.concatenate([self._scheme_idx, scheme_idx])
        self._z_sel = np.concatenate([self._z_sel, batch.term_kind == _TERM_ZDROP])
        self._x_sel = np.concatenate([self._x_sel, batch.term_kind == _TERM_XDROP])
        self._term_threshold = np.concatenate(
            [self._term_threshold, batch.term_threshold]
        )
        self._alpha = np.concatenate([self._alpha, batch.gap_open])
        self._beta = np.concatenate([self._beta, batch.gap_extend])
        self._start = np.concatenate(
            [self._start, np.full(b, self._g, dtype=np.int64)]
        )
        self._m += b
        self._width = new_width
        self._since_admit += b
        self._rebind()
        return indices

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, n_slices: int = 1) -> List[SliceStats]:
        """Advance up to ``n_slices`` slices; returns their stats."""
        if n_slices <= 0:
            raise ValueError("n_slices must be positive")
        out: List[SliceStats] = []
        for _ in range(n_slices):
            if self._m == 0:
                break
            out.append(self._run_slice())
        return out

    def take_completed(self) -> List[Tuple[int, AlignmentResult]]:
        """Results retired since the last call, as (index, result) pairs."""
        fresh, self._fresh = self._fresh, []
        return fresh

    def drain(self) -> List[AlignmentResult]:
        """Run every admitted task to completion; results in admission order."""
        while self._m:
            self._run_slice()
        self._fresh = []
        out: List[AlignmentResult] = []
        for index, result in enumerate(self._results):
            if result is None:  # pragma: no cover - defensive
                raise RuntimeError(f"task {index} was never scored")
            out.append(result)
        return out

    def profiles(self) -> List[AlignmentProfile]:
        """Per-task profiles (requires ``collect_profiles=True`` and done)."""
        if not self._collect_profiles:
            raise ValueError("stream was opened without collect_profiles=True")
        if self._m:
            raise ValueError("profiles() requires a drained stream")
        out = []
        for index, task in enumerate(self._tasks):
            result = self._results[index]
            assert result is not None
            processed = int(self._ad_count[index])
            out.append(
                AlignmentProfile(
                    result=result,
                    antidiag_maxima=self._maxima_buf[index, :processed].copy(),
                    cells_per_antidiag=self._cells_buf[index, :processed].copy(),
                    geometry=BandGeometry(
                        task.ref_len, task.query_len, task.scoring.band_width
                    ),
                )
            )
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rebind(self) -> None:
        """Recompute the derived sweep state after a shape/dtype change:
        flat sequence views and per-task scheme offsets for the panel's
        take-based gathers, plus per-anti-diagonal scratch arrays so the
        hot loop allocates nothing (every ufunc writes through ``out=``).
        """
        dt = self._dt
        self._open_col = (self._alpha + self._beta)[:, None].astype(dt)
        self._beta_col = self._beta[:, None].astype(dt)
        self._sub_flat = np.ascontiguousarray(
            self._sub_stack.astype(dt, copy=False)
        ).reshape(-1)
        self._scheme_off = (
            None
            if self._sub_stack.shape[0] == 1
            else (self._scheme_idx * 25).astype(np.int32)
        )
        self._ref_flat = np.ascontiguousarray(self._ref_buf).reshape(-1)
        self._query_flat = np.ascontiguousarray(self._query_buf).reshape(-1)
        m, width = self._m, self._width
        self._e_scr = np.empty((m, width), dtype=dt)
        self._f_scr = np.empty((m, width), dtype=dt)
        self._d_scr = np.empty((m, width), dtype=dt)
        self._h_scr = np.empty((m, width), dtype=dt)
        self._guard = np.empty((m, width), dtype=bool)
        self._task_idx = np.arange(m)
        self._any_fired = bool(self._l_fired.any())
        self._min_end = int((self._start + self._num_ad).min()) if m else 0

    def _flush(self) -> None:
        orig = self._orig
        self._best_score[orig] = self._l_best
        self._best_i[orig] = self._l_bi
        self._best_j[orig] = self._l_bj
        self._fired[orig] = self._l_fired
        self._ad_count[orig] = self._l_adc
        self._cells_count[orig] = self._l_cells

    def _run_slice(self) -> SliceStats:
        slice_lo = self._g
        if self._slice_width is None:
            slice_hi = int((self._start + self._num_ad).max())
        else:
            slice_hi = slice_lo + self._slice_width
        live_before = self._m
        admitted = self._since_admit
        self._since_admit = 0

        # Bind the live state locally for the hot loop.
        ref_buf = self._ref_buf
        query_buf = self._query_buf
        ref_len = self._ref_len
        query_len = self._query_len
        diag_lo = self._diag_lo
        diag_hi = self._diag_hi
        num_ad = self._num_ad
        term_threshold = self._term_threshold
        z_sel, x_sel = self._z_sel, self._x_sel
        alpha, beta = self._alpha, self._beta
        open_col, beta_col = self._open_col, self._beta_col
        start = self._start
        orig = self._orig
        width = self._width
        ha, hb = self._ha, self._hb
        geb, gfb = self._geb, self._gfb
        e_scr, f_scr = self._e_scr, self._f_scr
        d_scr, h_scr = self._d_scr, self._h_scr
        guard = self._guard
        task_idx = self._task_idx
        ref_flat, query_flat = self._ref_flat, self._query_flat
        sub_flat, scheme_off = self._sub_flat, self._scheme_off
        l_best, l_bi, l_bj = self._l_best, self._l_bi, self._l_bj
        l_fired = self._l_fired
        l_adc, l_cells = self._l_adc, self._l_cells
        maxima_buf, cells_buf = self._maxima_buf, self._cells_buf
        collect = self._collect_profiles
        any_fired = self._any_fired
        min_end = self._min_end
        exhausted = False

        for p_lo, p_hi in _panels(slice_lo, slice_hi):
            if exhausted:
                break
            panel = _Panel(
                p_lo,
                p_hi,
                width=width,
                ref_flat=ref_flat,
                ref_stride=ref_buf.shape[1],
                query_flat=query_flat,
                query_stride=query_buf.shape[1],
                ref_len=ref_len,
                query_len=query_len,
                diag_lo=diag_lo,
                diag_hi=diag_hi,
                sub_flat=sub_flat,
                scheme_off=scheme_off,
                alpha=alpha,
                beta=beta,
                start=start,
            )
            for s in range(p_hi - p_lo):
                c = p_lo + s
                # Per-task local anti-diagonal count: tasks admitted at
                # later boundaries lag the global counter by ``start``.
                cv = c - start
                # Fast path: while nothing has fired and every live task
                # still has anti-diagonals left, the active mask is all
                # ones and never needs materialising.
                all_active = not any_fired and c < min_end
                if all_active:
                    active = None
                else:
                    active = ~l_fired & (cv < num_ad)
                    if not active.any():
                        exhausted = True
                        break

                cnt = panel.count[s]
                if active is None:
                    inv_s = panel.inv_mask[s]
                else:
                    cnt = np.where(active, cnt, 0)
                    inv_s = panel.inv_mask[s] | ~active[:, None]

                # Previous wavefront through shifted views: between
                # anti-diagonals j_lo grows by delta1 in {0, 1} (and by
                # delta2 in {0, 1, 2} over two), so lane l of the new
                # window maps to stored column l + delta + offset.  When
                # every task shares one delta the select is a plain view;
                # mixed deltas blend with masked copies into the scratch.
                d1v = panel.d1_val[s]
                if d1v == 1:
                    np.maximum(geb[:, 2:], NEG_INF, out=e_scr)
                    np.maximum(gfb[:, 1:-1], NEG_INF, out=f_scr)
                elif d1v == 0:
                    np.maximum(geb[:, 1:-1], NEG_INF, out=e_scr)
                    np.maximum(gfb[:, :-2], NEG_INF, out=f_scr)
                else:
                    d1b = panel.d1_is1[s]
                    np.copyto(e_scr, geb[:, 1:-1])
                    np.copyto(e_scr, geb[:, 2:], where=d1b)
                    np.maximum(e_scr, NEG_INF, out=e_scr)
                    np.copyto(f_scr, gfb[:, :-2])
                    np.copyto(f_scr, gfb[:, 1:-1], where=d1b)
                    np.maximum(f_scr, NEG_INF, out=f_scr)

                d2v = panel.d2_val[s]
                if d2v == 0:
                    diag_h: np.ndarray = hb[:, :-2]
                elif d2v == 1:
                    diag_h = hb[:, 1:-1]
                elif d2v == 2:
                    diag_h = hb[:, 2:]
                else:
                    np.copyto(d_scr, hb[:, 1:-1])
                    np.copyto(d_scr, hb[:, :-2], where=panel.d2_is0[s])
                    np.copyto(d_scr, hb[:, 2:], where=panel.d2_is2[s])
                    diag_h = d_scr
                match_s = panel.match[s]
                np.less_equal(diag_h, NEG_INF, out=guard)
                np.add(diag_h, match_s, out=d_scr)
                np.copyto(d_scr, NEG_INF, where=guard)

                # Matrix-edge overrides (rare: only while the band still
                # touches row 0 or column 0).  E at a top edge is
                # max(edge_H - open, NEG_INF - extend) clamped, i.e. the
                # clamped edge cost minus the open cost; a forced diagonal
                # predecessor always beats the NEG_INF guard, so it folds
                # straight into diag_val.  Masked stores make a fired
                # task's override harmless, so `active` is not consulted.
                if panel.top_sel is not None:
                    tsel = panel.top_sel[s]
                    lsel = panel.left_sel[s]
                    if tsel.size or lsel.size:
                        ecost = panel.edge_cost[s]
                        dcost = panel.diag_cost[s]
                        oc_edge = alpha + beta
                        if tsel.size:
                            tl = panel.top_lane[s][tsel]
                            e_scr[tsel, tl] = np.maximum(
                                ecost[tsel] - oc_edge[tsel], NEG_INF
                            )
                            # The corner (local count 0) is already
                            # folded into diag_cost per task: its
                            # diagonal predecessor is the origin with
                            # score 0, not an edge cost.
                            d_scr[tsel, tl] = dcost[tsel] + match_s[tsel, tl]
                        if lsel.size:
                            f_scr[lsel, 0] = np.maximum(
                                ecost[lsel] - oc_edge[lsel], NEG_INF
                            )
                            d_scr[lsel, 0] = dcost[lsel] + match_s[lsel, 0]

                # E and F are already clamped at NEG_INF, so the H
                # maximum needs no extra clamp.
                np.maximum(e_scr, f_scr, out=h_scr)
                np.maximum(h_scr, d_scr, out=h_scr)
                np.copyto(h_scr, NEG_INF, where=inv_s)
                h_m = h_scr

                k = np.argmax(h_m, axis=1)
                local_best = h_m[task_idx, k]
                local_j = panel.jlo[s] + k
                local_i = cv - local_j

                if active is None:
                    l_adc += 1
                else:
                    l_adc += active
                l_cells += cnt
                if collect:
                    if active is None:
                        maxima_buf[orig, cv] = np.where(
                            cnt > 0, local_best, NEG_INF
                        )
                        cells_buf[orig, cv] = cnt
                    else:
                        maxima_buf[orig[active], cv[active]] = np.where(
                            cnt > 0, local_best, NEG_INF
                        )[active]
                        cells_buf[orig[active], cv[active]] = cnt[active]

                # Termination: check against the pre-update global
                # maximum, then fold the local maximum in (the exact
                # ordering of TerminationCondition.update).
                cond = local_best > NEG_INF
                if active is not None:
                    cond &= active
                drop = l_best - local_best
                diag_offset = np.abs((local_i - l_bi) - (local_j - l_bj))
                fire = (
                    cond
                    & (l_best > NEG_INF)
                    & (
                        (z_sel & (drop > term_threshold + beta * diag_offset))
                        | (x_sel & (drop > term_threshold))
                    )
                )
                if fire.any():
                    l_fired |= fire
                    any_fired = True
                improve = cond & ~fire & (local_best > l_best)
                l_best = np.where(improve, local_best, l_best)
                l_bi = np.where(improve, local_i, l_bi)
                l_bj = np.where(improve, local_j, l_bj)

                # Advance: the two-back H buffer becomes this
                # anti-diagonal's store (masked, like the batch engine's
                # count-bounded reads) and the roles swap; E/F are stored
                # pre-combined with H so the next anti-diagonal reads one
                # buffer per direction.
                hb[:, 1:-1] = h_m
                np.subtract(h_m, open_col, out=d_scr)
                np.copyto(e_scr, NEG_INF, where=inv_s)
                np.subtract(e_scr, beta_col, out=e_scr)
                np.maximum(d_scr, e_scr, out=geb[:, 1:-1])
                np.copyto(f_scr, NEG_INF, where=inv_s)
                np.subtract(f_scr, beta_col, out=f_scr)
                np.maximum(d_scr, f_scr, out=gfb[:, 1:-1])
                ha, hb = hb, ha

        self._ha, self._hb = ha, hb
        self._l_best, self._l_bi, self._l_bj = l_best, l_bi, l_bj
        self._any_fired = any_fired
        self._g = slice_hi

        completed, terminated = self._retire()
        stat = SliceStats(
            index=len(self._stats),
            admitted=admitted,
            live_before=live_before,
            completed=completed,
            terminated=terminated,
            capacity=self._capacity,
        )
        self._stats.append(stat)
        return stat

    def _retire(self) -> Tuple[int, int]:
        """Retire finished live tasks and compact the buffers.

        Identical policy to the one-shot compaction this replaced: a task
        leaves the buffers once its termination fired or its band is
        exhausted (``global_step - start >= num_antidiagonals``);
        survivors are re-packed into fewer rows and the lane axis shrinks
        to the widest surviving band.
        """
        done = self._l_fired | (self._g - self._start >= self._num_ad)
        if not done.any():
            return 0, 0
        self._flush()
        done_idx = self._orig[done]
        terminated = int(self._l_fired[done].sum())
        for index in done_idx.tolist():
            score = self._best_score[index]
            result = AlignmentResult(
                score=int(score) if score > NEG_INF else 0,
                max_i=int(self._best_i[index]),
                max_j=int(self._best_j[index]),
                terminated=bool(self._fired[index]),
                antidiagonals_processed=int(self._ad_count[index]),
                cells_computed=int(self._cells_count[index]),
            )
            self._results[index] = result
            self._fresh.append((index, result))

        live = np.flatnonzero(~done)
        self._orig = self._orig[live]
        self._ref_len = self._ref_len[live]
        self._query_len = self._query_len[live]
        self._diag_lo = self._diag_lo[live]
        self._diag_hi = self._diag_hi[live]
        self._num_ad = self._num_ad[live]
        self._scheme_idx = self._scheme_idx[live]
        self._z_sel = self._z_sel[live]
        self._x_sel = self._x_sel[live]
        self._term_threshold = self._term_threshold[live]
        self._alpha = self._alpha[live]
        self._beta = self._beta[live]
        self._start = self._start[live]
        self._l_best = self._l_best[live]
        self._l_bi = self._l_bi[live]
        self._l_bj = self._l_bj[live]
        self._l_fired = self._l_fired[live]
        self._l_adc = self._l_adc[live]
        self._l_cells = self._l_cells[live]
        lanes = _lane_bounds(
            self._ref_len, self._query_len, self._diag_lo, self._diag_hi
        )
        new_width = int(max(lanes.max(initial=0), 0))
        self._ref_buf = self._ref_buf[
            live, : max(int(self._ref_len.max(initial=0)), 1)
        ]
        self._query_buf = self._query_buf[
            live, : max(int(self._query_len.max(initial=0)), 1)
        ]
        self._ha = self._ha[live, : new_width + 2].copy()
        self._hb = self._hb[live, : new_width + 2].copy()
        self._geb = self._geb[live, : new_width + 2].copy()
        self._gfb = self._gfb[live, : new_width + 2].copy()
        self._ha[:, -1] = NEG_INF
        self._hb[:, -1] = NEG_INF
        self._geb[:, -1] = NEG_INF
        self._gfb[:, -1] = NEG_INF
        self._width = new_width
        self._m = live.size
        self._rebind()
        return int(done_idx.size), terminated


@overload
def vector_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = ...,
    bucket_size: int = ...,
    return_profiles: Literal[False] = ...,
    slice_width: Optional[int] = ...,
) -> List[AlignmentResult]: ...


@overload
def vector_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = ...,
    bucket_size: int = ...,
    return_profiles: Literal[True],
    slice_width: Optional[int] = ...,
) -> List[AlignmentProfile]: ...


def vector_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = "zdrop",
    bucket_size: int = DEFAULT_VECTOR_BUCKET_SIZE,
    return_profiles: bool = False,
    slice_width: Optional[int] = DEFAULT_SLICE_WIDTH,
) -> Union[List[AlignmentResult], List[AlignmentProfile]]:
    """Align every task with the whole-array vector engine.

    Same contract as :func:`repro.align.batch.batch_align` -- tasks are
    bucketed by anti-diagonal count, every bucket is swept at once, and
    the outputs come back in input order, bit-identical to the batch
    engine and the scalar oracle.  Only the defaults differ: buckets are
    larger (:data:`DEFAULT_VECTOR_BUCKET_SIZE`) and sliced compaction is
    on by default (pass ``slice_width=None`` for a dense sweep).
    """
    if slice_width is not None and slice_width <= 0:
        raise ValueError("slice_width must be positive (or None for dense)")
    tasks = list(tasks)
    if not tasks:
        return []
    workloads = [t.num_antidiagonals for t in tasks]
    out: List = [None] * len(tasks)
    for bucket in length_bucket_order(workloads, bucket_size):
        stream = VectorStream(
            [tasks[i] for i in bucket],
            slice_width=slice_width,
            termination=termination,
            collect_profiles=return_profiles,
        )
        results = stream.drain()
        swept: Sequence = stream.profiles() if return_profiles else results
        for i, item in zip(bucket, swept):
            out[i] = item
    return out
