"""Vectorized whole-array anti-diagonal engine (the ``vector`` backend).

The batch engine (:mod:`repro.align.batch`) already lays a bucket of
tasks out as struct-of-arrays buffers and advances all of them one
anti-diagonal at a time -- but inside each anti-diagonal it still pays
seven ``take_along_axis`` gathers (H/E/F at three shifted positions plus
the sequence codes) and recomputes the band geometry, the edge masks and
the substitution lookups from scratch, every single anti-diagonal.  On
realistic guided workloads those gathers and rebuilt masks are roughly
half of the sweep's wall-clock.

This module removes them.  The key observation is that the in-band row
window only ever *slides*: between consecutive anti-diagonals the lower
row bound ``j_lo`` grows by 0 or 1 (each term of its ``max`` is
non-decreasing and grows by at most one), so the previous wavefront can
be read through one of two *shifted views* of a guard-padded buffer
instead of a gather -- and the two-back H wavefront through one of three.
Everything that depends only on the band geometry -- row windows, shift
selectors, lane masks, matrix-edge positions and the substitution scores
of every in-band cell -- is precomputed for a whole *panel* of
anti-diagonals in one set of array operations, so the per-anti-diagonal
step is reduced to a handful of whole-array ``int64`` ufunc calls:
shifted-view selects, the E/F/H maxima, the masked store, one ``argmax``
for max-cell tracking and the vectorized Z-drop/X-drop update.

Exactness
---------
The arithmetic is the batch engine's arithmetic in the batch engine's
order; scores, maximum cells, termination anti-diagonals, work counters
and per-anti-diagonal profiles are bit-identical to
:func:`repro.align.batch.batch_align` and therefore to the scalar
oracle (``tests/align/test_vector.py`` pins all of it, including a
hypothesis property suite).  In particular:

* stored E/F/H lanes are masked to the live lane window, which is
  exactly equivalent to the batch engine's count-bounded gathers;
* guard columns on both sides of every buffer stay ``NEG_INF``, so a
  shifted view that peeks one lane outside the stored window reads the
  same ``NEG_INF`` the gather's bounds check would produce;
* the termination condition is evaluated every anti-diagonal against
  the pre-update global maximum, like the scalar engine.

Sliced compaction
-----------------
``slice_width`` works exactly as in the batch engine: the sweep is cut
with :func:`repro.core.sliced_diagonal.slice_ranges` and terminated or
completed tasks are compacted out of the buffers at every slice
boundary.  The ``vector`` engine registered in :mod:`repro.api.engines`
compacts every :data:`~repro.align.batch.DEFAULT_SLICE_WIDTH`
anti-diagonals, like ``batch-sliced``.

Optional dependency
-------------------
NumPy for this engine is an *optional* extra (``pip install
agatha-repro[vector]``).  Importing this module without NumPy raises
``ImportError``; :mod:`repro.api.engines` catches it and simply skips
registration, so a NumPy-less install keeps every other entry point
working and reports the engine as unavailable by name
(:func:`repro.api.engines.unavailable_engines`).  Setting the
environment variable ``REPRO_NO_VECTOR=1`` forces the same ImportError
path on installs that do have NumPy -- CI uses it to exercise the
fallback on every PR.
"""

from __future__ import annotations

import os
from typing import List, Literal, Optional, Sequence, Union, overload

if os.environ.get("REPRO_NO_VECTOR"):
    raise ImportError(
        "repro.align.vector is disabled (REPRO_NO_VECTOR is set, simulating "
        "an install without the optional [vector] extra)"
    )

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - exercised via REPRO_NO_VECTOR
    raise ImportError(
        "repro.align.vector requires NumPy; install the optional extra with "
        "pip install agatha-repro[vector]"
    ) from exc

from repro.align.banding import BandGeometry
from repro.align.batch import (
    DEFAULT_SLICE_WIDTH,
    TaskBatch,
    _lane_bounds,
    _TERM_XDROP,
    _TERM_ZDROP,
    pack_tasks,
)
from repro.align.termination import NEG_INF
from repro.align.types import AlignmentProfile, AlignmentResult, AlignmentTask
from repro.core.sliced_diagonal import slice_ranges
from repro.core.uneven_bucketing import length_bucket_order

__all__ = [
    "DEFAULT_VECTOR_BUCKET_SIZE",
    "PANEL_WIDTH",
    "vector_align",
]

#: Default bucket size of the ``vector`` engine.  Larger than the batch
#: engine's 64: the per-anti-diagonal Python dispatch is amortised over
#: the whole bucket, and the slice-boundary compaction keeps the padding
#: waste of a big sorted bucket small.
DEFAULT_VECTOR_BUCKET_SIZE: int = 256

#: Anti-diagonals whose geometry, shift selectors, lane masks, edges and
#: substitution scores are precomputed in one shot.  Bounds the panel
#: buffers to ``PANEL_WIDTH x bucket x lanes`` elements.
PANEL_WIDTH: int = 32


def _safe_int32(batch: TaskBatch, max_ad: int) -> bool:
    """Whether the whole sweep provably fits ``int32`` arithmetic.

    The buffer values live in ``[NEG_INF - (alpha + beta), score_max]``
    where every score is bounded by the band cells times the largest
    substitution magnitude plus the deepest edge cost.  When that range
    (with generous margin) fits ``int32``, the 32-bit sweep performs the
    exact same integer arithmetic as the 64-bit one -- results stay
    bit-identical -- at half the memory traffic.  Pathological schemes
    fall back to ``int64``.
    """
    if batch.size == 0:
        return True
    reach = int(max_ad) + 2
    worst = (
        int(batch.gap_open.max(initial=0))
        + int(batch.gap_extend.max(initial=0)) * reach
        + int(np.abs(batch.sub_stack).max(initial=0)) * reach
        + int(np.abs(batch.term_threshold).max(initial=0))
    )
    return worst < 2**29


class _Panel:
    """Geometry, shift selectors, masks and match scores for a panel.

    Everything here depends only on the band geometry and the packed
    sequences -- never on the wavefront values -- so it is computed for
    ``panel`` anti-diagonals with one set of whole-array operations and
    indexed by in-panel step ``s`` during the sweep.
    """

    __slots__ = (
        "lo",
        "jlo",
        "count",
        "d1_val",
        "d1_is1",
        "d2_val",
        "d2_is0",
        "d2_is2",
        "inv_mask",
        "match",
        "top_sel",
        "top_lane",
        "left_sel",
        "edge_cost",
        "diag_cost",
    )

    def __init__(
        self,
        p_lo: int,
        p_hi: int,
        *,
        width: int,
        ref_flat: np.ndarray,
        ref_stride: int,
        query_flat: np.ndarray,
        query_stride: int,
        ref_len: np.ndarray,
        query_len: np.ndarray,
        diag_lo: np.ndarray,
        diag_hi: np.ndarray,
        sub_flat: np.ndarray,
        scheme_off: Optional[np.ndarray],
        alpha: np.ndarray,
        beta: np.ndarray,
    ) -> None:
        m = ref_len.shape[0]
        span = p_hi - p_lo
        self.lo = p_lo
        # Lower row bound for anti-diagonals p_lo-2 .. p_hi-1 in one shot:
        # the two extra leading rows give the shift deltas of the panel's
        # first anti-diagonals.  For c < 0 the formula yields garbage, but
        # those deltas are never *used*: at c = 0 both wavefront buffers
        # are all-NEG_INF and at c = 1 the two-back buffer still is, so
        # every shifted view reads NEG_INF whichever view is selected.
        cs_ext = np.arange(p_lo - 2, p_hi, dtype=np.int64)[:, None]
        jlo_ext = np.maximum(
            np.maximum(cs_ext - ref_len[None, :] + 1, 0),
            -((diag_hi[None, :] - cs_ext) // 2),
        )
        jlo = jlo_ext[2:]
        d1 = jlo - jlo_ext[1:-1]
        d2 = jlo - jlo_ext[:-2]
        self.jlo = jlo
        # Per-anti-diagonal uniform shift (or -1 when tasks disagree):
        # when every live task shares one delta the select collapses to a
        # single shifted view, no blend needed.
        self.d1_val = np.where(
            (d1 == d1[:, :1]).all(axis=1), d1[:, 0], -1
        )
        self.d1_is1 = (d1 == 1)[:, :, None]
        self.d2_val = np.where(
            (d2 == d2[:, :1]).all(axis=1), d2[:, 0], -1
        )
        self.d2_is0 = (d2 == 0)[:, :, None]
        self.d2_is2 = (d2 == 2)[:, :, None]

        cs = cs_ext[2:]
        jhi = np.minimum(
            np.minimum(query_len[None, :] - 1, cs), (cs - diag_lo[None, :]) // 2
        )
        count = np.maximum(jhi - jlo + 1, 0)
        self.count = count

        lane = np.arange(width, dtype=np.int32)
        self.inv_mask = lane[None, None, :] >= count[:, :, None]

        # Sequence codes through flat ``take`` gathers: the row/column of
        # every in-band cell collapses to one int32 flat index per lane
        # (clip mode soaks up the junk indices of empty lanes, whose
        # match values are masked out of every observable anyway).
        rows = jlo.astype(np.int32)[:, :, None] + lane
        cols = cs.astype(np.int32)[:, :, None] - rows
        rofs = (np.arange(m, dtype=np.int32) * ref_stride)[None, :, None]
        qofs = (np.arange(m, dtype=np.int32) * query_stride)[None, :, None]
        ref_codes = ref_flat.take(cols + rofs, mode="clip")
        query_codes = query_flat.take(rows + qofs, mode="clip")
        # Substitution scores from the flattened (scheme, ref, query)
        # table; codes fit uint8, so with one scoring scheme the whole
        # lookup is a 25-entry take.  ``sub_flat`` arrives pre-cast to
        # the sweep dtype.
        code = ref_codes * np.uint8(5) + query_codes
        if scheme_off is not None:
            code = code + scheme_off[None, :, None]
        self.match = sub_flat.take(code)

        # Matrix-edge cells: the top edge (i == 0) sits at lane c - j_lo
        # exactly when the band still reaches row c; the left edge
        # (j == 0) at lane 0 exactly when j_lo == 0.  Both edge H values
        # on anti-diagonal c cost -(alpha + (c+1)*beta) and both diagonal
        # predecessors -(alpha + c*beta) (the corner, c == 0, costs 0).
        # Edges only exist while the band still touches the matrix rim,
        # so most panels skip the whole block.
        has_top = (jhi == cs) & (count > 0)
        has_left = (jlo == 0) & (count > 0)
        if has_top.any() or has_left.any():
            self.top_lane = cs - jlo
            self.edge_cost = -(alpha[None, :] + (cs + 1) * beta[None, :])
            self.diag_cost = -(alpha[None, :] + cs * beta[None, :])
            self.top_sel: Optional[List[np.ndarray]] = [
                np.flatnonzero(has_top[s]) for s in range(span)
            ]
            self.left_sel = [np.flatnonzero(has_left[s]) for s in range(span)]
        else:
            self.top_lane = self.edge_cost = self.diag_cost = None
            self.top_sel = None
            self.left_sel = None


def _panels(lo: int, hi: int) -> List[tuple[int, int]]:
    """Cut ``[lo, hi)`` into precompute panels of ``PANEL_WIDTH``."""
    return [(p, min(p + PANEL_WIDTH, hi)) for p in range(lo, hi, PANEL_WIDTH)]


def _sweep(
    batch: TaskBatch,
    *,
    return_profiles: bool,
    slice_width: Optional[int] = None,
) -> Union[List[AlignmentResult], List[AlignmentProfile]]:
    """Whole-array wavefront sweep over every task of ``batch`` at once.

    Mirrors :func:`repro.align.batch._sweep` observable for observable;
    see the module docstring for what is hoisted out of the loop.
    """
    n = batch.size
    if n == 0:
        return []
    max_ad = int(batch.num_antidiagonals.max(initial=0))
    # 32-bit buffers when the value range provably allows it: identical
    # integer arithmetic, half the memory traffic.
    dt = np.int32 if _safe_int32(batch, max_ad) else np.int64
    sub_flat = np.ascontiguousarray(batch.sub_stack.astype(dt, copy=False)).reshape(-1)
    n_schemes = batch.sub_stack.shape[0]

    # Input-order accumulators, written back from the live arrays at
    # every compaction boundary and at the end of the sweep.
    best_score = np.full(n, NEG_INF, dtype=np.int64)
    best_i = np.full(n, -1, dtype=np.int64)
    best_j = np.full(n, -1, dtype=np.int64)
    fired = np.zeros(n, dtype=bool)
    ad_count = np.zeros(n, dtype=np.int64)
    cells_count = np.zeros(n, dtype=np.int64)
    if return_profiles:
        maxima_buf = np.zeros((n, max_ad), dtype=np.int64)
        cells_buf = np.zeros((n, max_ad), dtype=np.int64)

    # Live per-task vectors (compacted in lock step with the buffers).
    orig = np.arange(n)
    ref_buf = batch.ref_buf
    query_buf = batch.query_buf
    ref_len = batch.ref_len
    query_len = batch.query_len
    diag_lo = batch.diag_lo
    diag_hi = batch.diag_hi
    num_ad = batch.num_antidiagonals
    scheme_idx = batch.scheme_idx
    term_threshold = batch.term_threshold
    z_sel = batch.term_kind == _TERM_ZDROP
    x_sel = batch.term_kind == _TERM_XDROP
    alpha = batch.gap_open
    beta = batch.gap_extend
    open_col = (alpha + beta)[:, None].astype(dt)
    beta_col = beta[:, None].astype(dt)

    # Live accumulators (same values as the input-order ones above, kept
    # compact so the per-anti-diagonal update never fancy-indexes).
    l_best = np.full(n, NEG_INF, dtype=np.int64)
    l_bi = np.full(n, -1, dtype=np.int64)
    l_bj = np.full(n, -1, dtype=np.int64)
    l_fired = np.zeros(n, dtype=bool)
    l_adc = np.zeros(n, dtype=np.int64)
    l_cells = np.zeros(n, dtype=np.int64)

    def flush() -> None:
        best_score[orig] = l_best
        best_i[orig] = l_bi
        best_j[orig] = l_bj
        fired[orig] = l_fired
        ad_count[orig] = l_adc
        cells_count[orig] = l_cells

    m = n
    width = batch.max_lanes
    task_idx = np.arange(m)

    # Guard-padded wavefront buffers: lane l of anti-diagonal c-1 (ha) and
    # c-2 (hb) lives in column l+1; columns 0 and width+1 stay NEG_INF so
    # shifted views that step outside the window read NEG_INF, exactly
    # like the batch engine's bounds-checked gathers.  E and F are stored
    # pre-combined with their H alternative -- ``ge = max(H - open,
    # E - extend)`` and ``gf = max(H - open, F - extend)`` -- so the next
    # anti-diagonal recovers E/F with one shifted read and one clamp.
    ha = np.full((m, width + 2), NEG_INF, dtype=dt)
    hb = np.full((m, width + 2), NEG_INF, dtype=dt)
    geb = np.full((m, width + 2), NEG_INF, dtype=dt)
    gfb = np.full((m, width + 2), NEG_INF, dtype=dt)

    # Flat sequence views and per-task scheme offsets for the panel's
    # take-based gathers, plus per-anti-diagonal scratch arrays so the
    # hot loop allocates nothing (every ufunc writes through ``out=``).
    def epoch_setup():
        ref_flat = np.ascontiguousarray(ref_buf).reshape(-1)
        query_flat = np.ascontiguousarray(query_buf).reshape(-1)
        scheme_off = (
            None if n_schemes == 1 else (scheme_idx * 25).astype(np.int32)
        )
        e_scr = np.empty((m, width), dtype=dt)
        f_scr = np.empty((m, width), dtype=dt)
        d_scr = np.empty((m, width), dtype=dt)
        h_scr = np.empty((m, width), dtype=dt)
        guard = np.empty((m, width), dtype=bool)
        return ref_flat, query_flat, scheme_off, e_scr, f_scr, d_scr, h_scr, guard

    (
        ref_flat,
        query_flat,
        scheme_off,
        e_scr,
        f_scr,
        d_scr,
        h_scr,
        guard,
    ) = epoch_setup()

    spans = (
        [(0, max_ad)] if slice_width is None else slice_ranges(max_ad, slice_width)
    )
    min_ad = int(num_ad.min())
    any_fired = False
    exhausted = False
    for slice_lo, slice_hi in spans:
        if exhausted:
            break
        if slice_lo > 0:
            # Slice boundary: compact terminated and completed tasks out
            # of the buffers (identical policy to the batch engine).
            keep = ~l_fired & (num_ad > slice_lo)
            if not keep.all():
                flush()
                live = np.flatnonzero(keep)
                if live.size == 0:
                    break
                orig = orig[live]
                ref_len = ref_len[live]
                query_len = query_len[live]
                diag_lo = diag_lo[live]
                diag_hi = diag_hi[live]
                num_ad = num_ad[live]
                scheme_idx = scheme_idx[live]
                term_threshold = term_threshold[live]
                z_sel = z_sel[live]
                x_sel = x_sel[live]
                alpha = alpha[live]
                beta = beta[live]
                open_col = (alpha + beta)[:, None].astype(dt)
                beta_col = beta[:, None].astype(dt)
                l_best = l_best[live]
                l_bi = l_bi[live]
                l_bj = l_bj[live]
                l_fired = l_fired[live]
                l_adc = l_adc[live]
                l_cells = l_cells[live]
                lanes = _lane_bounds(ref_len, query_len, diag_lo, diag_hi)
                new_width = int(max(lanes.max(initial=0), 0))
                ref_buf = ref_buf[live, : max(int(ref_len.max(initial=0)), 1)]
                query_buf = query_buf[
                    live, : max(int(query_len.max(initial=0)), 1)
                ]
                ha = ha[live, : new_width + 2].copy()
                hb = hb[live, : new_width + 2].copy()
                geb = geb[live, : new_width + 2].copy()
                gfb = gfb[live, : new_width + 2].copy()
                ha[:, -1] = NEG_INF
                hb[:, -1] = NEG_INF
                geb[:, -1] = NEG_INF
                gfb[:, -1] = NEG_INF
                width = new_width
                m = live.size
                task_idx = np.arange(m)
                min_ad = int(num_ad.min())
                any_fired = bool(l_fired.any())
                (
                    ref_flat,
                    query_flat,
                    scheme_off,
                    e_scr,
                    f_scr,
                    d_scr,
                    h_scr,
                    guard,
                ) = epoch_setup()

        for p_lo, p_hi in _panels(slice_lo, slice_hi):
            if exhausted:
                break
            panel = _Panel(
                p_lo,
                p_hi,
                width=width,
                ref_flat=ref_flat,
                ref_stride=ref_buf.shape[1],
                query_flat=query_flat,
                query_stride=query_buf.shape[1],
                ref_len=ref_len,
                query_len=query_len,
                diag_lo=diag_lo,
                diag_hi=diag_hi,
                sub_flat=sub_flat,
                scheme_off=scheme_off,
                alpha=alpha,
                beta=beta,
            )
            for s in range(p_hi - p_lo):
                c = p_lo + s
                # Fast path: while nothing has fired and every live task
                # still has anti-diagonals left, the active mask is all
                # ones and never needs materialising.
                all_active = not any_fired and c < min_ad
                if all_active:
                    active = None
                else:
                    active = ~l_fired & (c < num_ad)
                    if not active.any():
                        exhausted = True
                        break

                cnt = panel.count[s]
                if active is None:
                    inv_s = panel.inv_mask[s]
                else:
                    cnt = np.where(active, cnt, 0)
                    inv_s = panel.inv_mask[s] | ~active[:, None]

                # Previous wavefront through shifted views: between
                # anti-diagonals j_lo grows by delta1 in {0, 1} (and by
                # delta2 in {0, 1, 2} over two), so lane l of the new
                # window maps to stored column l + delta + offset.  When
                # every task shares one delta the select is a plain view;
                # mixed deltas blend with masked copies into the scratch.
                d1v = panel.d1_val[s]
                if d1v == 1:
                    np.maximum(geb[:, 2:], NEG_INF, out=e_scr)
                    np.maximum(gfb[:, 1:-1], NEG_INF, out=f_scr)
                elif d1v == 0:
                    np.maximum(geb[:, 1:-1], NEG_INF, out=e_scr)
                    np.maximum(gfb[:, :-2], NEG_INF, out=f_scr)
                else:
                    d1b = panel.d1_is1[s]
                    np.copyto(e_scr, geb[:, 1:-1])
                    np.copyto(e_scr, geb[:, 2:], where=d1b)
                    np.maximum(e_scr, NEG_INF, out=e_scr)
                    np.copyto(f_scr, gfb[:, :-2])
                    np.copyto(f_scr, gfb[:, 1:-1], where=d1b)
                    np.maximum(f_scr, NEG_INF, out=f_scr)

                d2v = panel.d2_val[s]
                if d2v == 0:
                    diag_h: np.ndarray = hb[:, :-2]
                elif d2v == 1:
                    diag_h = hb[:, 1:-1]
                elif d2v == 2:
                    diag_h = hb[:, 2:]
                else:
                    np.copyto(d_scr, hb[:, 1:-1])
                    np.copyto(d_scr, hb[:, :-2], where=panel.d2_is0[s])
                    np.copyto(d_scr, hb[:, 2:], where=panel.d2_is2[s])
                    diag_h = d_scr
                match_s = panel.match[s]
                np.less_equal(diag_h, NEG_INF, out=guard)
                np.add(diag_h, match_s, out=d_scr)
                np.copyto(d_scr, NEG_INF, where=guard)

                # Matrix-edge overrides (rare: only while the band still
                # touches row 0 or column 0).  E at a top edge is
                # max(edge_H - open, NEG_INF - extend) clamped, i.e. the
                # clamped edge cost minus the open cost; a forced diagonal
                # predecessor always beats the NEG_INF guard, so it folds
                # straight into diag_val.  Masked stores make a fired
                # task's override harmless, so `active` is not consulted.
                if panel.top_sel is not None:
                    tsel = panel.top_sel[s]
                    lsel = panel.left_sel[s]
                    if tsel.size or lsel.size:
                        ecost = panel.edge_cost[s]
                        dcost = panel.diag_cost[s]
                        oc_edge = alpha + beta
                        if tsel.size:
                            tl = panel.top_lane[s][tsel]
                            e_scr[tsel, tl] = np.maximum(
                                ecost[tsel] - oc_edge[tsel], NEG_INF
                            )
                            # c == 0 is the corner: the diagonal
                            # predecessor is the origin with score 0,
                            # not an edge cost.
                            d_scr[tsel, tl] = (
                                dcost[tsel] if c > 0 else 0
                            ) + match_s[tsel, tl]
                        if lsel.size:
                            f_scr[lsel, 0] = np.maximum(
                                ecost[lsel] - oc_edge[lsel], NEG_INF
                            )
                            if c > 0:
                                d_scr[lsel, 0] = dcost[lsel] + match_s[lsel, 0]

                # E and F are already clamped at NEG_INF, so the H
                # maximum needs no extra clamp.
                np.maximum(e_scr, f_scr, out=h_scr)
                np.maximum(h_scr, d_scr, out=h_scr)
                np.copyto(h_scr, NEG_INF, where=inv_s)
                h_m = h_scr

                k = np.argmax(h_m, axis=1)
                local_best = h_m[task_idx, k]
                local_j = panel.jlo[s] + k
                local_i = c - local_j

                if active is None:
                    l_adc += 1
                else:
                    l_adc += active
                l_cells += cnt
                if return_profiles:
                    if active is None:
                        maxima_buf[orig, c] = np.where(
                            cnt > 0, local_best, NEG_INF
                        )
                        cells_buf[orig, c] = cnt
                    else:
                        maxima_buf[orig[active], c] = np.where(
                            cnt > 0, local_best, NEG_INF
                        )[active]
                        cells_buf[orig[active], c] = cnt[active]

                # Termination: check against the pre-update global
                # maximum, then fold the local maximum in (the exact
                # ordering of TerminationCondition.update).
                cond = local_best > NEG_INF
                if active is not None:
                    cond &= active
                drop = l_best - local_best
                diag_offset = np.abs((local_i - l_bi) - (local_j - l_bj))
                fire = (
                    cond
                    & (l_best > NEG_INF)
                    & (
                        (z_sel & (drop > term_threshold + beta * diag_offset))
                        | (x_sel & (drop > term_threshold))
                    )
                )
                if fire.any():
                    l_fired |= fire
                    any_fired = True
                improve = cond & ~fire & (local_best > l_best)
                l_best = np.where(improve, local_best, l_best)
                l_bi = np.where(improve, local_i, l_bi)
                l_bj = np.where(improve, local_j, l_bj)

                # Advance: the two-back H buffer becomes this
                # anti-diagonal's store (masked, like the batch engine's
                # count-bounded reads) and the roles swap; E/F are stored
                # pre-combined with H so the next anti-diagonal reads one
                # buffer per direction.
                hb[:, 1:-1] = h_m
                np.subtract(h_m, open_col, out=d_scr)
                np.copyto(e_scr, NEG_INF, where=inv_s)
                np.subtract(e_scr, beta_col, out=e_scr)
                np.maximum(d_scr, e_scr, out=geb[:, 1:-1])
                np.copyto(f_scr, NEG_INF, where=inv_s)
                np.subtract(f_scr, beta_col, out=f_scr)
                np.maximum(d_scr, f_scr, out=gfb[:, 1:-1])
                ha, hb = hb, ha

    flush()
    score = np.where(best_score > NEG_INF, best_score, 0)
    results = [
        AlignmentResult(
            score=int(score[b]),
            max_i=int(best_i[b]),
            max_j=int(best_j[b]),
            terminated=bool(fired[b]),
            antidiagonals_processed=int(ad_count[b]),
            cells_computed=int(cells_count[b]),
        )
        for b in range(n)
    ]
    if not return_profiles:
        return results
    profiles = []
    for b, (task, result) in enumerate(zip(batch.tasks, results)):
        processed = int(ad_count[b])
        profiles.append(
            AlignmentProfile(
                result=result,
                antidiag_maxima=maxima_buf[b, :processed].copy(),
                cells_per_antidiag=cells_buf[b, :processed].copy(),
                geometry=BandGeometry(
                    task.ref_len, task.query_len, task.scoring.band_width
                ),
            )
        )
    return profiles


@overload
def vector_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = ...,
    bucket_size: int = ...,
    return_profiles: Literal[False] = ...,
    slice_width: Optional[int] = ...,
) -> List[AlignmentResult]: ...


@overload
def vector_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = ...,
    bucket_size: int = ...,
    return_profiles: Literal[True],
    slice_width: Optional[int] = ...,
) -> List[AlignmentProfile]: ...


def vector_align(
    tasks: Sequence[AlignmentTask],
    *,
    termination: str = "zdrop",
    bucket_size: int = DEFAULT_VECTOR_BUCKET_SIZE,
    return_profiles: bool = False,
    slice_width: Optional[int] = DEFAULT_SLICE_WIDTH,
) -> Union[List[AlignmentResult], List[AlignmentProfile]]:
    """Align every task with the whole-array vector engine.

    Same contract as :func:`repro.align.batch.batch_align` -- tasks are
    bucketed by anti-diagonal count, every bucket is swept at once, and
    the outputs come back in input order, bit-identical to the batch
    engine and the scalar oracle.  Only the defaults differ: buckets are
    larger (:data:`DEFAULT_VECTOR_BUCKET_SIZE`) and sliced compaction is
    on by default (pass ``slice_width=None`` for a dense sweep).
    """
    if slice_width is not None and slice_width <= 0:
        raise ValueError("slice_width must be positive (or None for dense)")
    tasks = list(tasks)
    if not tasks:
        return []
    workloads = [t.num_antidiagonals for t in tasks]
    out: List = [None] * len(tasks)
    for bucket in length_bucket_order(workloads, bucket_size):
        batch = pack_tasks([tasks[i] for i in bucket], termination)
        swept = _sweep(
            batch, return_profiles=return_profiles, slice_width=slice_width
        )
        for i, item in zip(bucket, swept):
            out[i] = item
    return out
