"""Scoring schemes and aligner presets.

The guided alignment recurrence (paper Eqs. 1-3) is parameterised by a
match reward, a mismatch penalty, and an affine gap model with a gap *open*
penalty (``alpha`` in the paper) and a gap *extend* penalty (``beta``).
The guiding heuristics add two more parameters: the band width ``w`` and
the Z-drop threshold ``Z``.

The paper evaluates with Minimap2's per-technology presets (``map-hifi``,
``map-pb`` for CLR, ``map-ont``) and, in Section 5.9, with BWA-MEM's
parameters whose band width and threshold are "significantly smaller".
The presets below mirror the relative structure of those parameter sets.
Band widths are expressed in score-table cells and are intentionally kept
at the scale used by the real tools; callers that need smaller experiments
(the benchmark harness does, to keep pure-Python run times tractable) can
override ``band_width`` / ``zdrop`` via :meth:`ScoringScheme.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.align.sequence import NUM_CODES, N_CODE

__all__ = ["ScoringScheme", "PRESETS", "preset"]

#: Row type of a custom substitution matrix (one row per literal code).
MatrixRow = Tuple[int, ...]


@dataclass(frozen=True)
class ScoringScheme:
    """Parameters of the guided affine-gap alignment.

    Attributes
    ----------
    match:
        Score added for a matching base pair (positive).
    mismatch:
        Penalty subtracted for a mismatching base pair (positive number;
        the substitution score is ``-mismatch``).
    gap_open:
        Affine gap open penalty ``alpha`` (positive).  Opening a gap of
        length 1 costs ``gap_open + gap_extend`` in the Minimap2/ksw2
        convention used here (the first extension is charged too).
    gap_extend:
        Affine gap extend penalty ``beta`` (positive).
    band_width:
        Total width of the diagonal band (number of cells kept per
        anti-diagonal).  ``0`` disables banding.
    zdrop:
        Z-drop termination threshold ``Z``.  ``0`` disables termination.
    ambiguous_score:
        Score for any comparison involving ``N`` (Minimap2 scores these
        slightly negatively; 0 keeps them neutral).
    matrix:
        Optional explicit substitution matrix as a ``NUM_CODES x
        NUM_CODES`` tuple of integer rows (code order A, C, G, T, N).
        When set it *replaces* the uniform match/mismatch/ambiguous
        model everywhere a scheme is consulted -- :meth:`score`,
        :meth:`substitution_matrix` and therefore every alignment
        engine -- which is how protein-style presets such as
        ``"blosum62"`` express per-pair substitution scores.  Stored as
        nested tuples (not an array) so schemes stay hashable,
        picklable and JSON-fingerprintable.
    name:
        Optional preset name for reporting.
    """

    match: int = 2
    mismatch: int = 4
    gap_open: int = 4
    gap_extend: int = 2
    band_width: int = 0
    zdrop: int = 0
    ambiguous_score: int = -1
    matrix: Optional[Tuple[MatrixRow, ...]] = None
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match score must be positive")
        if self.mismatch < 0 or self.gap_open < 0 or self.gap_extend < 0:
            raise ValueError("penalties must be non-negative")
        if self.gap_extend == 0:
            raise ValueError("gap_extend must be positive (Z-drop uses it)")
        if self.band_width < 0 or self.zdrop < 0:
            raise ValueError("band_width and zdrop must be non-negative")
        if self.matrix is not None:
            rows = tuple(tuple(int(v) for v in row) for row in self.matrix)
            if len(rows) != NUM_CODES or any(len(row) != NUM_CODES for row in rows):
                raise ValueError(
                    f"matrix must be {NUM_CODES}x{NUM_CODES} "
                    f"(code order {'/'.join('ACGTN')})"
                )
            # Normalise list-of-lists input to nested tuples (hashable,
            # and the shape fingerprints/pickles canonically).
            object.__setattr__(self, "matrix", rows)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score(self, a: int, b: int) -> int:
        """Substitution score ``S(a, b)`` for two literal codes."""
        if self.matrix is not None:
            return self.matrix[a][b]
        if a == N_CODE or b == N_CODE:
            return self.ambiguous_score
        return self.match if a == b else -self.mismatch

    def substitution_matrix(self) -> np.ndarray:
        """Return the full 5x5 substitution matrix as ``int32``.

        Row/column order follows the literal codes (A, C, G, T, N).
        An explicit :attr:`matrix` is returned as-is; otherwise the
        uniform match/mismatch/ambiguous model is expanded.
        """
        if self.matrix is not None:
            return np.array(self.matrix, dtype=np.int32)
        m = np.full((NUM_CODES, NUM_CODES), -self.mismatch, dtype=np.int32)
        np.fill_diagonal(m, self.match)
        m[N_CODE, :] = self.ambiguous_score
        m[:, N_CODE] = self.ambiguous_score
        return m

    # ------------------------------------------------------------------
    # guiding parameters
    # ------------------------------------------------------------------
    @property
    def has_banding(self) -> bool:
        """Whether k-banding is enabled."""
        return self.band_width > 0

    @property
    def has_termination(self) -> bool:
        """Whether Z-drop termination is enabled."""
        return self.zdrop > 0

    def gap_cost(self, length: int) -> int:
        """Total penalty of a gap of ``length`` bases (0 for length 0)."""
        if length < 0:
            raise ValueError("gap length must be non-negative")
        if length == 0:
            return 0
        return self.gap_open + length * self.gap_extend

    def replace(self, **changes) -> "ScoringScheme":
        """Return a copy with the given fields replaced."""
        return _dc_replace(self, **changes)

    def describe(self) -> str:
        """Human-readable one-line description used in reports."""
        guide = []
        guide.append(f"w={self.band_width}" if self.has_banding else "unbanded")
        guide.append(f"Z={self.zdrop}" if self.has_termination else "no-zdrop")
        subst = (
            "matrix=5x5"
            if self.matrix is not None
            else f"match={self.match} mismatch={self.mismatch}"
        )
        return (
            f"{self.name}: {subst} "
            f"gap={self.gap_open},{self.gap_extend} ({', '.join(guide)})"
        )


def _make_presets() -> Mapping[str, ScoringScheme]:
    presets: dict[str, ScoringScheme] = {}
    # Minimap2 map-hifi: high mismatch/gap penalties, Z=200, band 800.
    presets["map-hifi"] = ScoringScheme(
        match=1,
        mismatch=4,
        gap_open=6,
        gap_extend=2,
        band_width=800,
        zdrop=200,
        name="map-hifi",
    )
    # Minimap2 map-pb (PacBio CLR): noisier reads, Z=400, band 500.
    presets["map-pb"] = ScoringScheme(
        match=2,
        mismatch=5,
        gap_open=5,
        gap_extend=2,
        band_width=500,
        zdrop=400,
        name="map-pb",
    )
    # Minimap2 map-ont: Z=400, band 500.
    presets["map-ont"] = ScoringScheme(
        match=2,
        mismatch=4,
        gap_open=4,
        gap_extend=2,
        band_width=500,
        zdrop=400,
        name="map-ont",
    )
    # BWA-MEM: short-read parameters; band and threshold are much smaller
    # than Minimap2's, which Section 5.9 points out reduces workload and
    # imbalance.
    presets["bwa-mem"] = ScoringScheme(
        match=1,
        mismatch=4,
        gap_open=6,
        gap_extend=1,
        band_width=100,
        zdrop=100,
        name="bwa-mem",
    )
    # Protein-style scoring: the BLOSUM62 block for the residues the
    # five literal codes map onto (Ala, Cys, Gly, Thr, X for N), so the
    # matrix has the shape engines must survive -- per-letter diagonal
    # rewards (4/9/6/5) and signed, asymmetric-magnitude off-diagonals
    # -- instead of the uniform match/mismatch model.  Gap penalties
    # follow the NCBI BLOSUM62 default (open 11, extend 1; the open
    # here is 10 because this repo's convention charges the first
    # extension too).  Band/zdrop sit at the bwa-mem scale: protein
    # extensions are short.
    presets["blosum62"] = ScoringScheme(
        match=4,
        mismatch=4,
        gap_open=10,
        gap_extend=1,
        band_width=100,
        zdrop=100,
        matrix=(
            (4, 0, 0, 0, -1),
            (0, 9, -3, -1, -1),
            (0, -3, 6, -2, -1),
            (0, -1, -2, 5, -1),
            (-1, -1, -1, -1, -1),
        ),
        name="blosum62",
    )
    # The worked example of Figure 1 (match +2, mismatch -4, open 4,
    # extend 2, band 3) -- handy for unit tests and the quickstart.
    presets["figure1"] = ScoringScheme(
        match=2,
        mismatch=4,
        gap_open=4,
        gap_extend=2,
        band_width=3,
        zdrop=0,
        name="figure1",
    )
    return presets


#: Named presets keyed by aligner / technology.
PRESETS: Mapping[str, ScoringScheme] = _make_presets()


def preset(name: str, **overrides) -> ScoringScheme:
    """Look up a preset by name, optionally overriding fields.

    >>> preset("map-ont", band_width=64).band_width
    64
    """
    try:
        scheme = PRESETS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from exc
    if overrides:
        scheme = scheme.replace(**overrides)
    return scheme
