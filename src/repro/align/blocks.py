"""Block decomposition of the banded score table.

Because sequences are packed 8 literals per 32-bit word
(:mod:`repro.align.packing`), GPU kernels organise the score table into
8x8-cell *blocks* -- the smallest unit of workload distribution
(paper Figure 2a).  :class:`BlockGrid` provides the block-level view of a
:class:`~repro.align.banding.BandGeometry` that every kernel simulation
relies on:

* which blocks intersect the band and how many there are (workload size,
  the Y-axis of Figures 3(b) and 12);
* blocks grouped by their *block anti-diagonal* ``a = bi + bj``, the
  granularity at which the sliced-diagonal scheme advances;
* the translation between block anti-diagonals and completed cell
  anti-diagonals, which determines where the termination condition can
  legally be evaluated (the run-ahead bookkeeping).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.align.banding import BandGeometry

__all__ = ["BlockGrid", "DEFAULT_BLOCK_SIZE"]

#: Cells per block edge; 8 matches the 8-literals-per-word input packing.
DEFAULT_BLOCK_SIZE: int = 8


class BlockGrid:
    """Block-level view of a banded score table.

    Parameters
    ----------
    geometry:
        The cell-level band geometry.
    block_size:
        Cells per block edge (8 by default).
    """

    def __init__(self, geometry: BandGeometry, block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.geometry = geometry
        self.block_size = int(block_size)

    # ------------------------------------------------------------------
    # grid dimensions
    # ------------------------------------------------------------------
    @property
    def num_block_cols(self) -> int:
        """Blocks along the reference axis."""
        return -(-self.geometry.ref_len // self.block_size) if self.geometry.ref_len else 0

    @property
    def num_block_rows(self) -> int:
        """Blocks along the query axis."""
        return -(-self.geometry.query_len // self.block_size) if self.geometry.query_len else 0

    @property
    def num_block_antidiagonals(self) -> int:
        """Number of block anti-diagonals (``bi + bj`` values)."""
        if self.num_block_cols == 0 or self.num_block_rows == 0:
            return 0
        return self.num_block_cols + self.num_block_rows - 1

    @property
    def band_rows_in_blocks(self) -> int:
        """Width of the band measured in block rows.

        This is the number of block rows a diagonal cross-section of the
        band spans -- the quantity that determines how many chunks (of
        ``threads_per_subwarp`` block rows each) a slice is split into.
        """
        if self.num_block_rows == 0:
            return 0
        if not self.geometry.band_width:
            return self.num_block_rows
        # A band of w diagonals crosses at most ceil(w / B) + 1 block rows.
        return min(
            self.num_block_rows,
            -(-self.geometry.band_width // self.block_size) + 1,
        )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def block_cell_ranges(self, bi: int, bj: int) -> tuple[int, int, int, int]:
        """Cell ranges ``(i_lo, i_hi, j_lo, j_hi)`` (inclusive) of block
        ``(bi, bj)``, clipped to the table."""
        i_lo = bi * self.block_size
        j_lo = bj * self.block_size
        i_hi = min(self.geometry.ref_len - 1, i_lo + self.block_size - 1)
        j_hi = min(self.geometry.query_len - 1, j_lo + self.block_size - 1)
        return i_lo, i_hi, j_lo, j_hi

    def block_in_band(self, bi: int, bj: int) -> bool:
        """Whether block ``(bi, bj)`` contains at least one in-band cell.

        A block intersects the band iff its diagonal interval
        ``[i_lo - j_hi, i_hi - j_lo]`` overlaps the band's diagonal range.
        """
        if not (0 <= bi < self.num_block_cols and 0 <= bj < self.num_block_rows):
            return False
        i_lo, i_hi, j_lo, j_hi = self.block_cell_ranges(bi, bj)
        if i_lo > i_hi or j_lo > j_hi:
            return False
        d_min = i_lo - j_hi
        d_max = i_hi - j_lo
        return d_min <= self.geometry.diag_hi and d_max >= self.geometry.diag_lo

    def in_band_block_cols(self, bj: int) -> tuple[int, int]:
        """Inclusive range of in-band block columns on block row ``bj``
        (empty range when none)."""
        if not 0 <= bj < self.num_block_rows:
            return (0, -1)
        j_lo = bj * self.block_size
        j_hi = min(self.geometry.query_len - 1, j_lo + self.block_size - 1)
        # Cells in these rows span reference columns [j_lo + diag_lo, j_hi + diag_hi].
        i_lo = max(0, j_lo + self.geometry.diag_lo)
        i_hi = min(self.geometry.ref_len - 1, j_hi + self.geometry.diag_hi)
        if i_lo > i_hi:
            return (0, -1)
        return (i_lo // self.block_size, i_hi // self.block_size)

    # ------------------------------------------------------------------
    # aggregate counts
    # ------------------------------------------------------------------
    @cached_property
    def blocks_per_row(self) -> np.ndarray:
        """In-band block count per block row (``int64``)."""
        counts = np.zeros(self.num_block_rows, dtype=np.int64)
        for bj in range(self.num_block_rows):
            lo, hi = self.in_band_block_cols(bj)
            counts[bj] = max(0, hi - lo + 1)
        return counts

    @property
    def total_in_band_blocks(self) -> int:
        """Total number of blocks intersecting the band."""
        if self.num_block_rows == 0:
            return 0
        return int(self.blocks_per_row.sum())

    @cached_property
    def blocks_per_block_antidiagonal(self) -> np.ndarray:
        """In-band block count per block anti-diagonal ``a = bi + bj``."""
        counts = np.zeros(max(self.num_block_antidiagonals, 0), dtype=np.int64)
        for bj in range(self.num_block_rows):
            lo, hi = self.in_band_block_cols(bj)
            for bi in range(lo, hi + 1):
                counts[bi + bj] += 1
        return counts

    # ------------------------------------------------------------------
    # completion bookkeeping
    # ------------------------------------------------------------------
    def cell_antidiags_completed_by(self, block_antidiag: int) -> int:
        """Number of leading cell anti-diagonals guaranteed complete once
        every in-band block with block anti-diagonal ``<= block_antidiag``
        has been computed.

        A cell on anti-diagonal ``c`` can live in a block whose block
        anti-diagonal is at most ``floor(c / B)``, so completing block
        anti-diagonals ``<= a`` completes cell anti-diagonals
        ``c <= (a + 1) * B - 1``.
        """
        if block_antidiag < 0:
            return 0
        completed = (block_antidiag + 1) * self.block_size
        return min(completed, self.geometry.num_antidiagonals)

    def block_antidiag_required_for(self, cell_antidiags: int) -> int:
        """Smallest block anti-diagonal whose completion covers the first
        ``cell_antidiags`` cell anti-diagonals (inverse of
        :meth:`cell_antidiags_completed_by`)."""
        if cell_antidiags <= 0:
            return -1
        last_cell_antidiag = min(cell_antidiags, self.geometry.num_antidiagonals) - 1
        return last_cell_antidiag // self.block_size

    def blocks_up_to_block_antidiag(self, block_antidiag: int) -> int:
        """In-band blocks on block anti-diagonals ``<= block_antidiag``."""
        if block_antidiag < 0 or self.num_block_antidiagonals == 0:
            return 0
        a = min(block_antidiag, self.num_block_antidiagonals - 1)
        return int(self.blocks_per_block_antidiagonal[: a + 1].sum())

    def blocks_in_block_rows(self, bj_lo: int, bj_hi: int) -> int:
        """In-band blocks over block rows ``bj_lo .. bj_hi`` inclusive."""
        bj_lo = max(0, bj_lo)
        bj_hi = min(self.num_block_rows - 1, bj_hi)
        if bj_lo > bj_hi:
            return 0
        return int(self.blocks_per_row[bj_lo : bj_hi + 1].sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BlockGrid({self.num_block_cols}x{self.num_block_rows} blocks, "
            f"block_size={self.block_size}, in_band={self.total_in_band_blocks})"
        )
