"""Minimal FASTA reading and writing.

The AGAThA artifact consumes pairs of ``.fasta`` files (one reference
segment and one query segment per alignment, ``>>> <id>`` headers in its
sample data, standard ``> <id>`` headers in GenBank-style files).  This
module reads both header styles and writes standard FASTA, so the example
applications can exchange data with the original artifact's format.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from repro.align.sequence import decode, encode

__all__ = ["FastaRecord", "read_fasta", "write_fasta"]


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry: an identifier and an encoded sequence."""

    name: str
    sequence: np.ndarray

    @property
    def length(self) -> int:
        return int(self.sequence.size)

    def to_text(self, line_width: int = 60) -> str:
        """Render as FASTA text."""
        seq = decode(self.sequence)
        lines = [f">{self.name}"]
        for k in range(0, len(seq), line_width):
            lines.append(seq[k : k + line_width])
        return "\n".join(lines) + "\n"


def read_fasta(path: Union[str, Path]) -> List[FastaRecord]:
    """Read a FASTA file (supports ``>`` and the artifact's ``>>>`` headers).

    Blank lines are ignored; sequences may span multiple lines.  Characters
    outside ``ACGT`` (case-insensitive) are read as ``N``.
    """
    path = Path(path)
    records: List[FastaRecord] = []
    name: str | None = None
    chunks: List[str] = []

    def flush() -> None:
        nonlocal name, chunks
        if name is not None:
            records.append(FastaRecord(name=name, sequence=encode("".join(chunks))))
        name, chunks = None, []

    with path.open("r", encoding="ascii") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                flush()
                name = line.lstrip(">").strip()
            else:
                if name is None:
                    raise ValueError(f"{path}: sequence data before the first header")
                chunks.append(line)
    flush()
    return records


def write_fasta(
    path: Union[str, Path], records: Iterable[FastaRecord], line_width: int = 60
) -> None:
    """Write records to ``path`` in standard FASTA format."""
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        for record in records:
            handle.write(record.to_text(line_width=line_width))
