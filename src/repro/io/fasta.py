"""Minimal FASTA reading and writing.

The AGAThA artifact consumes pairs of ``.fasta`` files (one reference
segment and one query segment per alignment, ``>>> <id>`` headers in its
sample data, standard ``> <id>`` headers in GenBank-style files).  This
module reads both header styles and writes standard FASTA, so the example
applications can exchange data with the original artifact's format.

Files whose name ends in ``.gz`` are transparently (de)compressed, which
is how real read sets ship (``reads.fasta.gz``); the FASTA-backed
workload specs in :mod:`repro.workloads.fasta` rely on this.

Malformed input fails loudly: an empty header or a sequence line with
characters outside the IUPAC nucleotide alphabet raises ``ValueError``
naming the file, the 1-based line number and the offending text, instead
of silently encoding garbage (every unknown letter used to become ``N``,
which turned a mis-concatenated CSV into a valid-looking workload).
IUPAC ambiguity codes beyond ``ACGTN`` are still *accepted* -- they
encode as ``N``, exactly what Minimap2's 2-bit packing does -- because
real GenBank records contain them; the error is reserved for characters
no sequence format allows.
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, List, Union

import numpy as np

from repro.align.sequence import decode, encode

__all__ = ["FastaRecord", "read_fasta", "write_fasta"]

#: Characters legal on a FASTA sequence line (IUPAC nucleotide codes,
#: either case, plus the gap characters some exporters leave in).
#: Everything outside ``ACGT``/``acgt`` encodes as ``N``.
VALID_SEQUENCE_CHARS = frozenset("ACGTUNRYSWKMBDHVacgtunryswkmbdhv-.*")

#: Characters actually dropped before encoding (alignment gap padding).
_GAP_CHARS = frozenset("-.*")


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry: an identifier and an encoded sequence."""

    name: str
    sequence: np.ndarray

    @property
    def length(self) -> int:
        return int(self.sequence.size)

    def to_text(self, line_width: int = 60) -> str:
        """Render as FASTA text."""
        seq = decode(self.sequence)
        lines = [f">{self.name}"]
        for k in range(0, len(seq), line_width):
            lines.append(seq[k : k + line_width])
        return "\n".join(lines) + "\n"


def _open_text(path: Path, mode: str) -> IO[str]:
    """Open ``path`` as ASCII text, transparently gzipped for ``*.gz``."""
    if path.name.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def _clean_sequence_line(path: Path, lineno: int, line: str) -> str:
    """Validate one sequence line; returns it with gap characters dropped."""
    bad = [ch for ch in line if ch not in VALID_SEQUENCE_CHARS]
    if bad:
        raise ValueError(
            f"{path}, line {lineno}: invalid sequence character(s) "
            f"{''.join(sorted(set(bad)))!r} in {line!r}"
        )
    if any(ch in _GAP_CHARS for ch in line):
        line = "".join(ch for ch in line if ch not in _GAP_CHARS)
    return line


def read_fasta(path: Union[str, Path]) -> List[FastaRecord]:
    """Read a FASTA file (supports ``>`` and the artifact's ``>>>`` headers).

    ``*.gz`` paths are read through gzip.  Blank lines are ignored;
    sequences may span multiple lines.  IUPAC ambiguity letters outside
    ``ACGT`` (case-insensitive) are read as ``N``; anything that is not a
    nucleotide code at all raises :class:`ValueError` naming the file,
    line number and offending text.
    """
    path = Path(path)
    records: List[FastaRecord] = []
    name: str | None = None
    chunks: List[str] = []

    def flush() -> None:
        nonlocal name, chunks
        if name is not None:
            records.append(FastaRecord(name=name, sequence=encode("".join(chunks))))
        name, chunks = None, []

    with _open_text(path, "r") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                flush()
                name = line.lstrip(">").strip()
                if not name:
                    raise ValueError(
                        f"{path}, line {lineno}: empty FASTA header {raw.strip()!r}"
                    )
            else:
                if name is None:
                    raise ValueError(
                        f"{path}, line {lineno}: sequence data before the "
                        f"first header: {line!r}"
                    )
                chunks.append(_clean_sequence_line(path, lineno, line))
    flush()
    return records


def write_fasta(
    path: Union[str, Path], records: Iterable[FastaRecord], line_width: int = 60
) -> None:
    """Write records to ``path`` in standard FASTA format.

    ``*.gz`` paths are written through gzip, so a round trip through
    :func:`read_fasta` works on compressed files too.
    """
    path = Path(path)
    with _open_text(path, "w") as handle:
        for record in records:
            handle.write(record.to_text(line_width=line_width))
