"""Minimizer seeding, colinear chaining and extension-task extraction.

Minimap2 (and BWA-MEM) do not run the guided dynamic program over whole
reads: a *pre-computation* finds short exact matches (minimizer anchors),
chains the colinear ones, and only the regions *between* and *around* the
chained anchors are handed to the extension aligner.  The paper's datasets
are produced by exactly this step ("ran them through the pre-computing
steps to obtain the final datasets for alignment", Section 5.1), and the
characteristic long-tailed task-size distribution of Figure 3(b) is its
direct consequence: most inter-anchor gaps are tiny, while occasional
sparse regions (high error, structural difference, chimeric joins) leave
kilobase-scale gaps.

This module implements that pre-computation:

* :func:`minimizers` -- (w, k) minimizer sampling of a sequence;
* :class:`MinimizerIndex` -- a hash index of the reference minimizers;
* :func:`chain_anchors` -- greedy colinear chaining of anchor hits by
  diagonal binning (a faithful, if simplified, stand-in for Minimap2's
  dynamic-programming chainer);
* :func:`extension_tasks_for_read` -- converts the best chain of a read
  into left-extension, inter-anchor and right-extension
  :class:`~repro.align.types.AlignmentTask` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.align.scoring import ScoringScheme
from repro.align.types import AlignmentTask

__all__ = [
    "Minimizer",
    "Anchor",
    "Chain",
    "minimizers",
    "MinimizerIndex",
    "chain_anchors",
    "extension_tasks_for_read",
]


@dataclass(frozen=True)
class Minimizer:
    """A sampled k-mer: its hash and starting position."""

    position: int
    hash_value: int


@dataclass(frozen=True)
class Anchor:
    """An exact k-mer match between the query and the reference."""

    query_pos: int
    ref_pos: int

    @property
    def diagonal(self) -> int:
        """Reference offset of the match (``ref_pos - query_pos``)."""
        return self.ref_pos - self.query_pos


@dataclass
class Chain:
    """A colinear group of anchors."""

    anchors: List[Anchor] = field(default_factory=list)

    @property
    def num_anchors(self) -> int:
        return len(self.anchors)

    @property
    def query_span(self) -> tuple[int, int]:
        """Query range covered by the chain (first anchor start, last end)."""
        return (self.anchors[0].query_pos, self.anchors[-1].query_pos)

    @property
    def ref_span(self) -> tuple[int, int]:
        return (self.anchors[0].ref_pos, self.anchors[-1].ref_pos)

    @property
    def score(self) -> int:
        """Chaining score: anchor count (sufficient for ranking here)."""
        return self.num_anchors


# ----------------------------------------------------------------------
# minimizer sampling
# ----------------------------------------------------------------------
def _kmer_hashes(seq: np.ndarray, k: int) -> np.ndarray:
    """Invertible integer hashes of every k-mer (vectorised rolling encode)."""
    n = seq.size - k + 1
    if n <= 0:
        return np.empty(0, dtype=np.uint64)
    # Pack the k-mer into an integer base-5 representation, then scramble it
    # with a splitmix64-style mix so minimizer sampling is not biased toward
    # poly-A runs.
    values = np.zeros(n, dtype=np.uint64)
    for offset in range(k):
        values = values * np.uint64(5) + seq[offset : offset + n].astype(np.uint64)
    values ^= values >> np.uint64(30)
    values *= np.uint64(0xBF58476D1CE4E5B9)
    values &= np.uint64(0xFFFFFFFFFFFFFFFF)
    values ^= values >> np.uint64(27)
    values *= np.uint64(0x94D049BB133111EB)
    values &= np.uint64(0xFFFFFFFFFFFFFFFF)
    values ^= values >> np.uint64(31)
    return values


def minimizers(seq: np.ndarray, k: int = 11, w: int = 5) -> List[Minimizer]:
    """(w, k)-minimizers of an encoded sequence.

    In every window of ``w`` consecutive k-mers the k-mer with the smallest
    hash is sampled (ties resolved to the leftmost), de-duplicating
    positions sampled by overlapping windows.
    """
    if k <= 0 or w <= 0:
        raise ValueError("k and w must be positive")
    seq = np.asarray(seq, dtype=np.uint8)
    hashes = _kmer_hashes(seq, k)
    n = hashes.size
    if n == 0:
        return []
    out: List[Minimizer] = []
    last_pos = -1
    if n <= w:
        pos = int(np.argmin(hashes))
        return [Minimizer(position=pos, hash_value=int(hashes[pos]))]
    # Sliding-window minimum via a monotone deque.
    from collections import deque

    dq: deque[int] = deque()
    for i in range(n):
        while dq and hashes[dq[-1]] >= hashes[i]:
            dq.pop()
        dq.append(i)
        window_start = i - w + 1
        if window_start < 0:
            continue
        while dq[0] < window_start:
            dq.popleft()
        pos = dq[0]
        if pos != last_pos:
            out.append(Minimizer(position=pos, hash_value=int(hashes[pos])))
            last_pos = pos
    return out


class MinimizerIndex:
    """Hash index of a reference sequence's minimizers."""

    def __init__(self, reference: np.ndarray, k: int = 11, w: int = 5):
        self.k = k
        self.w = w
        self.reference = np.asarray(reference, dtype=np.uint8)
        self._table: Dict[int, List[int]] = {}
        for m in minimizers(self.reference, k=k, w=w):
            self._table.setdefault(m.hash_value, []).append(m.position)

    @property
    def num_entries(self) -> int:
        """Distinct minimizer hashes indexed."""
        return len(self._table)

    def lookup(self, hash_value: int) -> Sequence[int]:
        """Reference positions whose minimizer has this hash."""
        return self._table.get(hash_value, ())

    def anchors(self, query: np.ndarray, max_hits: int = 16) -> List[Anchor]:
        """Anchor hits of a query against the index.

        Minimizers occurring at more than ``max_hits`` reference positions
        are treated as repetitive and skipped (Minimap2's ``-f`` filter).
        """
        out: List[Anchor] = []
        for m in minimizers(np.asarray(query, dtype=np.uint8), k=self.k, w=self.w):
            hits = self.lookup(m.hash_value)
            if 0 < len(hits) <= max_hits:
                for ref_pos in hits:
                    out.append(Anchor(query_pos=m.position, ref_pos=ref_pos))
        out.sort(key=lambda a: (a.query_pos, a.ref_pos))
        return out


# ----------------------------------------------------------------------
# chaining
# ----------------------------------------------------------------------
def chain_anchors(
    anchors: Sequence[Anchor],
    *,
    max_diagonal_diff: int = 400,
    min_anchors: int = 3,
) -> List[Chain]:
    """Group anchors into colinear chains by diagonal binning.

    Anchors whose diagonals lie within ``max_diagonal_diff`` of each other
    and whose query positions increase are placed in the same chain.
    Chains with fewer than ``min_anchors`` anchors are dropped.  Chains are
    returned best (most anchors) first.
    """
    if not anchors:
        return []
    by_diag = sorted(anchors, key=lambda a: (a.diagonal, a.query_pos))
    groups: List[List[Anchor]] = []
    current: List[Anchor] = [by_diag[0]]
    for anchor in by_diag[1:]:
        if anchor.diagonal - current[0].diagonal <= max_diagonal_diff:
            current.append(anchor)
        else:
            groups.append(current)
            current = [anchor]
    groups.append(current)

    chains: List[Chain] = []
    for group in groups:
        # Keep a strictly increasing subsequence in query order (greedy);
        # duplicates from repetitive minimizers are dropped.
        group.sort(key=lambda a: (a.query_pos, a.ref_pos))
        filtered: List[Anchor] = []
        for anchor in group:
            if not filtered or (
                anchor.query_pos > filtered[-1].query_pos
                and anchor.ref_pos > filtered[-1].ref_pos
            ):
                filtered.append(anchor)
        if len(filtered) >= min_anchors:
            chains.append(Chain(anchors=filtered))
    chains.sort(key=lambda c: c.score, reverse=True)
    return chains


# ----------------------------------------------------------------------
# extension task extraction
# ----------------------------------------------------------------------
def extension_tasks_for_read(
    reference: np.ndarray,
    query: np.ndarray,
    chain: Chain,
    scoring: ScoringScheme,
    *,
    k: int = 11,
    min_gap: int = 32,
    max_extension: int = 4096,
    anchor_spacing: int = 0,
    start_task_id: int = 0,
) -> List[AlignmentTask]:
    """Extension-alignment tasks implied by one chain.

    Three kinds of task are produced, mirroring Minimap2's extension stage:

    * a **left extension** from the first anchor toward the read's start
      (both segments reversed so the alignment still extends away from the
      origin);
    * an **inter-anchor** task for every pair of consecutive anchors whose
      gap on either sequence exceeds ``min_gap``;
    * a **right extension** from the last anchor toward the read's end.

    Reference segments are clipped to the query segment's length plus the
    band width (extending further cannot stay inside the band), and to
    ``max_extension``.  ``anchor_spacing`` subsamples the chain so that
    consecutive anchors are at least that many query bases apart,
    emulating the coarser seeding (larger k / w) real mappers use for long
    reads and keeping the number of inter-anchor tasks proportionate.
    """
    reference = np.asarray(reference, dtype=np.uint8)
    query = np.asarray(query, dtype=np.uint8)
    tasks: List[AlignmentTask] = []
    task_id = start_task_id
    band = scoring.band_width or 0

    anchors = list(chain.anchors)
    if anchor_spacing > 0 and len(anchors) > 2:
        kept = [anchors[0]]
        for anchor in anchors[1:-1]:
            if anchor.query_pos - kept[-1].query_pos >= anchor_spacing:
                kept.append(anchor)
        if anchors[-1] is not kept[-1]:
            kept.append(anchors[-1])
        anchors = kept

    def clip(length: int) -> int:
        return min(length, max_extension)

    # ----- left extension -------------------------------------------------
    first = anchors[0]
    q_len = clip(first.query_pos)
    if q_len > 0:
        r_len = clip(min(first.ref_pos, q_len + band))
        if r_len > 0:
            tasks.append(
                AlignmentTask(
                    ref=reference[first.ref_pos - r_len : first.ref_pos][::-1].copy(),
                    query=query[first.query_pos - q_len : first.query_pos][::-1].copy(),
                    scoring=scoring,
                    task_id=task_id,
                )
            )
            task_id += 1

    # ----- inter-anchor gaps ----------------------------------------------
    for prev, nxt in zip(anchors, anchors[1:]):
        q_gap = nxt.query_pos - (prev.query_pos + k)
        r_gap = nxt.ref_pos - (prev.ref_pos + k)
        if q_gap >= min_gap or r_gap >= min_gap:
            q_lo, q_hi = prev.query_pos + k, nxt.query_pos
            r_lo, r_hi = prev.ref_pos + k, nxt.ref_pos
            if q_hi > q_lo and r_hi > r_lo:
                tasks.append(
                    AlignmentTask(
                        ref=reference[r_lo:r_hi].copy(),
                        query=query[q_lo:q_hi].copy(),
                        scoring=scoring,
                        task_id=task_id,
                    )
                )
                task_id += 1

    # ----- right extension -------------------------------------------------
    last = anchors[-1]
    q_start = last.query_pos + k
    q_len = clip(query.size - q_start)
    if q_len > 0:
        r_start = last.ref_pos + k
        r_len = clip(min(reference.size - r_start, q_len + band))
        if r_len > 0:
            tasks.append(
                AlignmentTask(
                    ref=reference[r_start : r_start + r_len].copy(),
                    query=query[q_start : q_start + q_len].copy(),
                    scoring=scoring,
                    task_id=task_id,
                )
            )
            task_id += 1
    return tasks
