"""Data handling: FASTA I/O, synthetic datasets and the seeding/chaining
pre-compute that turns reads into extension-alignment tasks.

The paper aligns GIAB reads (HiFi / CLR / ONT, 50 000 reads per dataset)
against GRCh38 after running them through Minimap2's pre-computation
(seeding and chaining); the alignment kernel only ever sees the resulting
(reference segment, query segment) pairs.  Without access to those
datasets this package provides the synthetic equivalent:

``fasta``
    Reading and writing the ``.fasta`` format the AGAThA artifact uses for
    its inputs.
``datasets``
    Seeded synthetic reference genomes and technology-specific read
    simulators (read-length distributions and error profiles for HiFi,
    CLR and ONT), plus the named dataset registry that mirrors the nine
    GIAB datasets of the evaluation and the long/short mixtures of
    Figure 13.
``seed_chain``
    Minimizer seeding, colinear chaining and extension-task extraction --
    the pre-compute step that produces the alignment workload with its
    characteristic long-tailed size distribution (Figure 3b).
"""

from repro.io.fasta import read_fasta, write_fasta, FastaRecord
from repro.io.datasets import (
    ReadProfile,
    TECHNOLOGY_PROFILES,
    DatasetSpec,
    DATASET_REGISTRY,
    SimulatedRead,
    synthetic_reference,
    simulate_reads,
    build_dataset,
    long_short_mixture_tasks,
)
from repro.io.seed_chain import (
    Minimizer,
    Anchor,
    Chain,
    minimizers,
    MinimizerIndex,
    chain_anchors,
    extension_tasks_for_read,
)

__all__ = [
    "read_fasta",
    "write_fasta",
    "FastaRecord",
    "ReadProfile",
    "TECHNOLOGY_PROFILES",
    "DatasetSpec",
    "DATASET_REGISTRY",
    "SimulatedRead",
    "synthetic_reference",
    "simulate_reads",
    "build_dataset",
    "long_short_mixture_tasks",
    "Minimizer",
    "Anchor",
    "Chain",
    "minimizers",
    "MinimizerIndex",
    "chain_anchors",
    "extension_tasks_for_read",
]
