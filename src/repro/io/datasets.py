"""Synthetic references, technology-specific read simulators and the
named dataset registry.

The paper evaluates on nine GIAB read sets (HiFi HG005-007, CLR
HG002-004, ONT HG002-004) mapped to GRCh38.  Neither the 3.1-Gbp
reference nor the read archives are available offline, so this module
generates *seeded synthetic equivalents* whose properties match what the
alignment kernel actually cares about:

* per-technology read length distributions (log-normal; ONT with a much
  heavier tail than HiFi);
* per-technology error profiles (HiFi nearly clean, CLR/ONT noisy with
  indel-dominated errors);
* a fraction of junk and chimeric reads, which after seeding/chaining
  produce the rare, very large extension tasks responsible for the
  long-tailed workload distribution of Figure 3(b).

Everything is deterministic given the dataset name: each registry entry
carries its own RNG seed, so two runs of the benchmark harness see
identical workloads.

Scale note: lengths here are scaled down (kilobase reads instead of
10-100 kb, a 50-kb reference window instead of 3.1 Gb) so a pure-Python
dynamic program can profile every task in seconds.  The *shape* of the
distribution (ratio of long to short tasks, tail fraction) follows the
paper; see DESIGN.md for the substitution argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.align.scoring import ScoringScheme
from repro.align.sequence import mutate, random_sequence
from repro.align.types import AlignmentTask

__all__ = [
    "ReadProfile",
    "TECHNOLOGY_PROFILES",
    "SimulatedRead",
    "DatasetSpec",
    "DATASET_REGISTRY",
    "get_dataset_spec",
    "synthetic_reference",
    "simulate_reads",
    "build_dataset",
    "long_short_mixture_tasks",
]


@dataclass(frozen=True)
class ReadProfile:
    """Sequencing-technology model used by the read simulator.

    Attributes
    ----------
    name:
        Technology label (``HiFi``, ``CLR``, ``ONT``).
    mean_length / sigma_length:
        Parameters of the log-normal read-length distribution (bases).
    max_length:
        Hard cap on simulated read length.
    substitution_rate / insertion_rate / deletion_rate:
        Per-base error probabilities applied to the extracted reference
        substring.
    junk_fraction:
        Fraction of reads that are pure noise (do not originate from the
        reference); they exercise the unmapped/terminating path.
    chimera_fraction:
        Fraction of reads whose tail comes from an unrelated locus; these
        are the main source of very large right-extension tasks.
    junk_tail_fraction:
        Fraction of reads whose tail is replaced by random sequence (e.g.
        retained adapter / low-quality tail).  Their right extensions start
        aligning and then degrade, which is the canonical case in which the
        Z-drop condition terminates the alignment early.
    burst_fraction:
        Fraction of reads containing a low-quality *burst*: a long internal
        segment with elevated error where minimizer anchors disappear.
        After chaining, the burst becomes a single large inter-anchor
        extension task -- the mechanism behind the far-right peak of the
        workload distribution (Figure 3b).
    burst_error:
        Substitution-dominated error rate inside a burst.
    """

    name: str
    mean_length: float
    sigma_length: float
    max_length: int
    substitution_rate: float
    insertion_rate: float
    deletion_rate: float
    junk_fraction: float = 0.04
    chimera_fraction: float = 0.08
    burst_fraction: float = 0.15
    burst_error: float = 0.12
    junk_tail_fraction: float = 0.15

    def sample_length(self, rng: np.random.Generator) -> int:
        """Draw one read length."""
        mu = np.log(self.mean_length)
        length = int(rng.lognormal(mean=mu, sigma=self.sigma_length))
        return int(np.clip(length, 64, self.max_length))


#: Technology presets (scaled-down lengths, realistic error mixes).
TECHNOLOGY_PROFILES: Dict[str, ReadProfile] = {
    "HiFi": ReadProfile(
        name="HiFi",
        mean_length=1400.0,
        sigma_length=0.40,
        max_length=5000,
        substitution_rate=0.002,
        insertion_rate=0.003,
        deletion_rate=0.003,
        junk_fraction=0.03,
        chimera_fraction=0.08,
        burst_fraction=0.22,
        burst_error=0.12,
        junk_tail_fraction=0.18,
    ),
    "CLR": ReadProfile(
        name="CLR",
        mean_length=1500.0,
        sigma_length=0.50,
        max_length=6000,
        substitution_rate=0.05,
        insertion_rate=0.06,
        deletion_rate=0.03,
        junk_fraction=0.05,
        chimera_fraction=0.10,
        burst_fraction=0.20,
        burst_error=0.22,
        junk_tail_fraction=0.20,
    ),
    "ONT": ReadProfile(
        name="ONT",
        mean_length=1000.0,
        sigma_length=0.85,
        max_length=7000,
        substitution_rate=0.04,
        insertion_rate=0.03,
        deletion_rate=0.04,
        junk_fraction=0.05,
        chimera_fraction=0.12,
        burst_fraction=0.20,
        burst_error=0.13,
    ),
}


@dataclass
class SimulatedRead:
    """One simulated read and its provenance."""

    read_id: int
    sequence: np.ndarray
    true_start: int
    is_junk: bool = False
    is_chimeric: bool = False

    @property
    def length(self) -> int:
        return int(self.sequence.size)


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: technology profile, scoring scheme and sizes."""

    name: str
    technology: str
    seed: int
    num_reads: int
    reference_length: int
    scoring: ScoringScheme

    @property
    def profile(self) -> ReadProfile:
        return TECHNOLOGY_PROFILES[self.technology]


def _scaled_scoring(preset_name: str, band_width: int, zdrop: int) -> ScoringScheme:
    from repro.align.scoring import preset

    return preset(preset_name, band_width=band_width, zdrop=zdrop)


def _registry() -> Dict[str, DatasetSpec]:
    """The nine evaluation datasets (scaled) keyed by their paper name."""
    specs: Dict[str, DatasetSpec] = {}
    hifi_scoring = _scaled_scoring("map-hifi", band_width=96, zdrop=120)
    clr_scoring = _scaled_scoring("map-pb", band_width=64, zdrop=160)
    ont_scoring = _scaled_scoring("map-ont", band_width=64, zdrop=160)
    layout = [
        ("HiFi-HG005", "HiFi", 1005, hifi_scoring, 48),
        ("HiFi-HG006", "HiFi", 1006, hifi_scoring, 48),
        ("HiFi-HG007", "HiFi", 1007, hifi_scoring, 48),
        ("CLR-HG002", "CLR", 2002, clr_scoring, 40),
        ("CLR-HG003", "CLR", 2003, clr_scoring, 40),
        ("CLR-HG004", "CLR", 2004, clr_scoring, 40),
        ("ONT-HG002", "ONT", 3002, ont_scoring, 40),
        ("ONT-HG003", "ONT", 3003, ont_scoring, 40),
        ("ONT-HG004", "ONT", 3004, ont_scoring, 40),
    ]
    for name, tech, seed, scoring, num_reads in layout:
        specs[name] = DatasetSpec(
            name=name,
            technology=tech,
            seed=seed,
            num_reads=num_reads,
            reference_length=60_000,
            scoring=scoring,
        )
    return specs


#: The nine named datasets of the evaluation (Section 5.1), scaled down.
DATASET_REGISTRY: Dict[str, DatasetSpec] = _registry()


def get_dataset_spec(name: str) -> DatasetSpec:
    """Look up a registry dataset by name with a helpful error."""
    try:
        return DATASET_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown dataset {name!r}; available: {list(DATASET_REGISTRY)}"
        ) from exc


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def synthetic_reference(length: int, rng: np.random.Generator) -> np.ndarray:
    """A synthetic reference with mild repeat structure.

    A fraction of the sequence is built by copying earlier segments
    (tandem-duplication-style) so that minimizer seeding encounters some
    repetitiveness, as a real genome would.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    base = random_sequence(length, rng)
    # Plant a handful of duplicated segments.
    num_repeats = max(1, length // 20_000)
    for _ in range(num_repeats):
        seg_len = int(rng.integers(500, 2000))
        if length <= 2 * seg_len:
            break
        src = int(rng.integers(0, length - seg_len))
        dst = int(rng.integers(0, length - seg_len))
        base[dst : dst + seg_len] = base[src : src + seg_len]
    return base


def simulate_reads(
    reference: np.ndarray,
    profile: ReadProfile,
    num_reads: int,
    rng: np.random.Generator,
) -> List[SimulatedRead]:
    """Simulate ``num_reads`` reads from ``reference`` under ``profile``."""
    reference = np.asarray(reference, dtype=np.uint8)
    reads: List[SimulatedRead] = []
    for read_id in range(num_reads):
        length = profile.sample_length(rng)
        length = min(length, reference.size - 1)
        u = rng.random()
        if u < profile.junk_fraction:
            reads.append(
                SimulatedRead(
                    read_id=read_id,
                    sequence=random_sequence(length, rng),
                    true_start=-1,
                    is_junk=True,
                )
            )
            continue
        start = int(rng.integers(0, reference.size - length))
        fragment = reference[start : start + length]
        chimera_cutoff = profile.junk_fraction + profile.chimera_fraction
        tail_cutoff = chimera_cutoff + profile.junk_tail_fraction
        burst_cutoff = tail_cutoff + profile.burst_fraction
        if u < chimera_cutoff and length >= 256:
            # Chimeric read: the tail (25-75% of the read) comes from an
            # unrelated locus, leaving a long right-extension task that the
            # termination condition cuts short.
            keep = int(length * rng.uniform(0.2, 0.5))
            tail = length - keep
            other = int(rng.integers(0, reference.size - tail))
            fragment = np.concatenate([fragment[:keep], reference[other : other + tail]])
            chimeric = True
        elif chimera_cutoff <= u < tail_cutoff and length >= 256:
            # Junk tail: the last 55-80% of the read is random sequence.
            keep = int(length * rng.uniform(0.2, 0.45))
            fragment = np.concatenate(
                [fragment[:keep], random_sequence(length - keep, rng)]
            )
            chimeric = False
        else:
            chimeric = False
        sequence = mutate(
            fragment,
            rng,
            substitution_rate=profile.substitution_rate,
            insertion_rate=profile.insertion_rate,
            deletion_rate=profile.deletion_rate,
        )
        if not chimeric and tail_cutoff <= u < burst_cutoff and sequence.size >= 512:
            # Low-quality burst: a long internal window with elevated error.
            # Anchors vanish inside it, so chaining leaves one large
            # inter-anchor extension task behind.
            burst_len = int(rng.integers(sequence.size // 4, int(sequence.size * 0.6)))
            burst_start = int(rng.integers(0, sequence.size - burst_len))
            window = sequence[burst_start : burst_start + burst_len]
            noisy = mutate(
                window,
                rng,
                substitution_rate=profile.burst_error,
                insertion_rate=profile.burst_error / 4,
                deletion_rate=profile.burst_error / 4,
            )
            sequence = np.concatenate(
                [sequence[:burst_start], noisy, sequence[burst_start + burst_len :]]
            )
        reads.append(
            SimulatedRead(
                read_id=read_id,
                sequence=sequence,
                true_start=start,
                is_chimeric=chimeric,
            )
        )
    return reads


def build_dataset(spec: DatasetSpec) -> tuple[np.ndarray, List[SimulatedRead]]:
    """Materialise one registry dataset: reference plus simulated reads."""
    rng = np.random.default_rng(spec.seed)
    reference = synthetic_reference(spec.reference_length, rng)
    reads = simulate_reads(reference, spec.profile, spec.num_reads, rng)
    return reference, reads


# ----------------------------------------------------------------------
# Figure 13: controlled long/short mixtures
# ----------------------------------------------------------------------
def long_short_mixture_tasks(
    long_fraction: float,
    num_tasks: int,
    scoring: ScoringScheme,
    *,
    long_length: int = 4096,
    short_length: int = 128,
    divergence: float = 0.05,
    seed: int = 13,
) -> List[AlignmentTask]:
    """Generated dataset of Section 5.6 / Figure 13.

    ``long_fraction`` of the tasks align ``long_length``-bp pairs, the rest
    ``short_length``-bp pairs; pairs are related sequences with
    ``divergence`` substitution-dominated error so the long tasks genuinely
    run long (no early termination).  The long tasks are spread uniformly
    through the input order, matching how they would arrive from a real
    read stream.
    """
    if not 0.0 <= long_fraction <= 1.0:
        raise ValueError("long_fraction must be in [0, 1]")
    if num_tasks <= 0:
        raise ValueError("num_tasks must be positive")
    rng = np.random.default_rng(seed)
    num_long = int(round(long_fraction * num_tasks))
    is_long = np.zeros(num_tasks, dtype=bool)
    if num_long:
        stride = max(1, num_tasks // num_long)
        is_long[::stride] = True
        # Adjust to the exact count.
        excess = int(is_long.sum()) - num_long
        if excess > 0:
            on = np.flatnonzero(is_long)
            is_long[on[-excess:]] = False
    tasks: List[AlignmentTask] = []
    for t in range(num_tasks):
        length = long_length if is_long[t] else short_length
        ref = random_sequence(length, rng)
        query = mutate(
            ref,
            rng,
            substitution_rate=divergence,
            insertion_rate=divergence / 3,
            deletion_rate=divergence / 3,
        )
        tasks.append(AlignmentTask(ref=ref, query=query, scoring=scoring, task_id=t))
    return tasks
