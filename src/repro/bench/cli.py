"""Command-line front end: ``python -m repro.bench``.

Two modes:

``python -m repro.bench [--figure fig08] [--workers N] [...]``
    Run one named figure through the sharded runner and write its
    machine-readable record to ``BENCH_<figure>.json`` (override with
    ``--output``).  The speedup tables are also printed.

``python -m repro.bench compare BASELINE CURRENT [--tolerance 0.2]``
    Diff two record files; exit non-zero when the current record
    regresses (or loses coverage) beyond the tolerance.

Custom suites registered through :func:`repro.api.register_suite` become
valid ``--suites`` choices once their module is imported; a fresh CLI
process imports such plugin modules via ``--plugins mod[,mod...]``
(handled before the parser is built, so the choices include them).
"""

from __future__ import annotations

import argparse
import sys
from importlib import import_module
from typing import List, Optional, Sequence, Tuple

from repro.align.batch import ENGINE_SLICE_WIDTHS
from repro.api.engines import engine_names, unavailable_engines
from repro.api.suites import suite_names
from repro.bench.compare import DEFAULT_TOLERANCE, compare_records, format_report
from repro.bench.records import BenchRecord
from repro.bench.runner import FIGURES, BenchCell, run_figure

__all__ = ["main"]


def _scoring_engine_choices() -> List[str]:
    """Batch-capable engines actually registered on this install."""
    return sorted(set(ENGINE_SLICE_WIDTHS) & set(engine_names()))


def _check_scoring_engine(name: str) -> Optional[str]:
    """An error message when ``name`` cannot prime profiles, else None."""
    if name in _scoring_engine_choices():
        return None
    unavailable = unavailable_engines()
    if name in unavailable:
        return f"engine {name!r} is known but unavailable: {unavailable[name]}"
    return (
        f"unknown scoring engine {name!r}; "
        f"choices: {', '.join(_scoring_engine_choices())}"
    )


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Sharded figure reproduction with persistent workload caching.",
        # No prefix abbreviations: --plugins is consumed by a pre-scan that
        # matches the literal flag, so an abbreviated form must be an error
        # rather than a silently unimported plugin.
        allow_abbrev=False,
    )
    parser.add_argument(
        "--figure",
        default="fig08",
        choices=sorted(FIGURES),
        help="named figure plan to run (default: fig08)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to shard (dataset x suite) cells over (default: 1)",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        metavar="NAME",
        help="restrict to these registry datasets (default: the figure plan's)",
    )
    parser.add_argument(
        "--suites",
        nargs="+",
        metavar="SUITE",
        # Resolved from the shared suite registry at parser-build time;
        # --plugins modules were imported just before this, so suites they
        # register are valid choices too.
        choices=list(suite_names()),
        help="restrict to these kernel suites (default: the figure plan's)",
    )
    parser.add_argument(
        "--plugins",
        metavar="MOD[,MOD...]",
        help="import these modules first (their register_suite/register_kernel "
        "calls make custom suites available to --suites)",
    )
    parser.add_argument(
        "--scoring-engine",
        metavar="ENGINE",
        # Validated in _run_main against the live engine registry (not a
        # hardcoded argparse choices tuple) so the error can explain
        # *why* a known engine is unavailable on this install.
        help="batch-capable engine that primes task profiles inside each "
        "cell (KernelConfig.scoring_engine); results and records are "
        "bit-identical either way, batch-sliced skips post-termination "
        "sweep work and vector (requires the [vector] extra) does the "
        "same with whole-array NumPy sweeps "
        f"(choices: {', '.join(_scoring_engine_choices())}; default: batch)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="record file to write (default: BENCH_<figure>.json)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="workload cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent workload cache (rebuild in memory)",
    )
    parser.add_argument(
        "--cache-info",
        action="store_true",
        help="print workload-cache statistics (location, entries, size cap) "
        "and exit without running a figure",
    )
    parser.add_argument(
        "--cache-clear",
        action="store_true",
        help="remove every cached workload and exit without running a figure",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress and table output"
    )
    return parser


def _compare_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench compare",
        description="Diff two benchmark records and fail on regressions.",
        allow_abbrev=False,
    )
    parser.add_argument("baseline", help="baseline record (e.g. benchmarks/baseline.json)")
    parser.add_argument("current", help="current record (e.g. BENCH_fig08.json)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed relative geomean drop (default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--suites",
        nargs="+",
        metavar="SUITE",
        help="compare only these baseline suites (default: all of them); "
        "lets one combined baseline gate records that each carry a "
        "subset of its suites",
    )
    return parser


def _print_record(record: BenchRecord, out=None) -> None:
    from repro.analysis.report import format_bench_record

    print("\n" + format_bench_record(record), file=out or sys.stdout)


def _extract_plugins(argv: Sequence[str]) -> Tuple[List[str], List[str]]:
    """Split ``--plugins`` values out of ``argv`` before parsing.

    The plugin modules must be imported *before* the parser is built
    (their registrations feed the ``--suites`` choices), so this light
    pre-scan consumes ``--plugins mod[,mod...]`` / ``--plugins=...`` and
    returns the remaining argv plus the module names.
    """
    remaining: List[str] = []
    modules: List[str] = []
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--plugins" and index + 1 < len(argv):
            modules.extend(m for m in argv[index + 1].split(",") if m)
            index += 2
            continue
        if arg.startswith("--plugins="):
            modules.extend(m for m in arg.split("=", 1)[1].split(",") if m)
            index += 1
            continue
        remaining.append(arg)
        index += 1
    return remaining, modules


def _cache_admin(args) -> int:
    """Handle ``--cache-clear`` / ``--cache-info`` (no figure is run)."""
    from repro.bench.cache import WorkloadCache

    cache = WorkloadCache(args.cache_dir)
    if args.cache_clear:
        removed = cache.clear()
        print(f"removed {removed} cached workload(s) from {cache.root}")
    if args.cache_info:
        info = cache.info()
        cap = "unbounded" if info["max_bytes"] is None else f"{info['max_bytes']} bytes"
        print(f"cache root : {info['root']}")
        print(f"enabled    : {info['enabled']}")
        print(f"entries    : {info['entries']}")
        print(f"total size : {info['total_bytes']} bytes")
        print(f"size cap   : {cap} (REPRO_CACHE_MAX_BYTES)")
    return 0


def _run_main(argv: Sequence[str]) -> int:
    argv, plugins = _extract_plugins(argv)
    for module in plugins:
        import_module(module)
    parser = _run_parser()
    args = parser.parse_args(argv)
    if args.cache_info or args.cache_clear:
        return _cache_admin(args)

    def progress(done: int, total: int, cell: BenchCell) -> None:
        print(
            f"[{done}/{total}] {cell.spec.name} x {cell.suite}",
            file=sys.stderr,
            flush=True,
        )

    config = None
    if args.scoring_engine is not None:
        problem = _check_scoring_engine(args.scoring_engine)
        if problem is not None:
            parser.error(f"argument --scoring-engine: {problem}")
        from repro.kernels import KernelConfig

        config = KernelConfig(scoring_engine=args.scoring_engine)
    record = run_figure(
        args.figure,
        workers=args.workers,
        datasets=args.datasets,
        suites=tuple(args.suites) if args.suites else None,
        config=config,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=None if args.quiet else progress,
    )
    output = args.output or record.default_filename
    path = record.save(output)
    if not args.quiet:
        _print_record(record)
    print(f"wrote {path}")
    return 0


def _compare_main(argv: Sequence[str]) -> int:
    args = _compare_parser().parse_args(argv)
    baseline = BenchRecord.load(args.baseline)
    current = BenchRecord.load(args.current)
    report = compare_records(
        baseline, current, tolerance=args.tolerance, suites=args.suites
    )
    print(format_report(report, baseline_name=args.baseline, current_name=args.current))
    return report.exit_code()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "compare":
            return _compare_main(argv[1:])
        return _run_main(argv)
    except (KeyError, ValueError, FileNotFoundError, ImportError) as exc:
        # Post-argparse validation (unknown dataset, bad record file,
        # missing --plugins module, ...): a clean one-line error instead
        # of a traceback.
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
