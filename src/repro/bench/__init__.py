"""Sharded benchmark runner, persistent workload cache and bench records.

The ``repro.bench`` subsystem turns figure reproductions into sharded,
cacheable, machine-readable runs:

* :mod:`repro.bench.cache` -- persistent on-disk cache of seeded/chained
  alignment workloads keyed by dataset-spec fingerprint;
* :mod:`repro.bench.runner` -- fans (dataset x suite) cells over a
  process pool (bit-identical to the serial harness);
* :mod:`repro.bench.records` -- versioned ``BENCH_<figure>.json`` records;
* :mod:`repro.bench.compare` -- record diffing / regression gating;
* :mod:`repro.bench.cli` -- the ``python -m repro.bench`` front end.
"""

from repro.bench.cache import WorkloadCache, build_workload, spec_fingerprint
from repro.bench.compare import ComparisonReport, compare_records, format_report
from repro.bench.records import (
    BenchRecord,
    CellRecord,
    SuiteRecord,
    engine_bench_record,
)
from repro.bench.runner import (
    FIGURES,
    BenchCell,
    run_cell,
    run_cells,
    run_figure,
    run_speedup_table,
)

__all__ = [
    "WorkloadCache",
    "build_workload",
    "spec_fingerprint",
    "ComparisonReport",
    "compare_records",
    "format_report",
    "BenchRecord",
    "CellRecord",
    "SuiteRecord",
    "engine_bench_record",
    "FIGURES",
    "BenchCell",
    "run_cell",
    "run_cells",
    "run_figure",
    "run_speedup_table",
]
