"""Persistent on-disk cache of seeded/chained alignment workloads.

Building a benchmark workload is the expensive half of every figure
reproduction: the synthetic reads of a :class:`~repro.io.datasets.DatasetSpec`
must be pushed through minimizer seeding and chaining before the kernels
see a single :class:`~repro.align.types.AlignmentTask`.  The experiment
harness used to repeat that pre-compute once per process (a per-process
``lru_cache``), so every worker of a sharded run -- and every fresh CI
job -- paid it again.

:class:`WorkloadCache` stores the finished task list on disk, keyed by a
fingerprint of the *complete* dataset specification (every field of the
spec including its scoring scheme, plus the cache schema version and a
workload-builder version).  Any change to the spec, the builder or the
on-disk format therefore lands in a different file, and stale entries
are simply never read again.  Corrupt or truncated files are detected on
load, removed, and rebuilt transparently.

The cache directory resolves, in order, to ``$REPRO_CACHE_DIR``,
``$XDG_CACHE_HOME/repro`` and ``~/.cache/repro``; ``$REPRO_NO_CACHE=1``
disables persistence entirely (workloads are rebuilt in memory).
Writes are atomic (temp file + ``os.replace``), so concurrent workers
racing to fill the same entry are benign: one of them wins and the rest
overwrite the file with identical bytes.

The cache is size-capped: when ``$REPRO_CACHE_MAX_BYTES`` (or an
explicit ``max_bytes=``) is set, every store evicts least-recently-used
entries -- oldest mtime first; loads touch their entry's mtime so a hit
counts as use -- until the total drops under the cap.  Unset means
unbounded, the historical behaviour.  ``python -m repro.bench
--cache-info`` / ``--cache-clear`` inspect and reset the store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.align.types import AlignmentTask
from repro.io.datasets import DatasetSpec, build_dataset

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.workloads.base import WorkloadSpec

#: Anything the cache can key and build: a seeded dataset spec, or any
#: frozen dataclass implementing the structural workload hooks
#: (``build_tasks`` / ``cache_fingerprint_extra``, see
#: :mod:`repro.workloads.base`).
SpecLike = Union[DatasetSpec, "WorkloadSpec"]

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "WORKLOAD_VERSION",
    "default_cache_dir",
    "cache_enabled",
    "cache_max_bytes",
    "SpecLike",
    "spec_fingerprint",
    "build_workload",
    "WorkloadCache",
]

#: On-disk payload format version; bump when the pickle layout changes.
CACHE_SCHEMA_VERSION = 1

#: Version of the workload pre-compute (seeding/chaining/mapper defaults).
#: Bump whenever :func:`build_workload` or the mapper changes the tasks it
#: emits for an unchanged :class:`DatasetSpec`.
WORKLOAD_VERSION = 1


def default_cache_dir() -> Path:
    """Resolve the cache root from the environment.

    ``$REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/repro``, then
    ``~/.cache/repro``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg).expanduser() / "repro"
    return Path.home() / ".cache" / "repro"


def cache_enabled() -> bool:
    """Whether persistence is enabled (``$REPRO_NO_CACHE`` disables it)."""
    return os.environ.get("REPRO_NO_CACHE", "") not in {"1", "true", "yes"}


def cache_max_bytes() -> Optional[int]:
    """The size cap from ``$REPRO_CACHE_MAX_BYTES`` (``None`` = unbounded).

    Non-numeric or negative values disable the cap rather than erroring:
    a misconfigured environment must never make benchmark runs fail.
    """
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


def spec_fingerprint(spec: SpecLike) -> str:
    """Stable hex fingerprint of one dataset/workload specification.

    Every field of the spec (scoring scheme included) participates, along
    with the spec's type, the cache schema and workload-builder versions,
    so any change invalidates the entry by changing its file name.  Specs
    that implement ``cache_fingerprint_extra()`` (registered workloads;
    see :mod:`repro.workloads.base`) get its return value folded in too,
    resolved *now* -- a FASTA-backed spec hashes its files here, so an
    on-disk edit invalidates the entry even though the spec is unchanged.
    """
    payload = {
        "cache_schema": CACHE_SCHEMA_VERSION,
        "workload_version": WORKLOAD_VERSION,
        "spec_type": type(spec).__name__,
        "spec": dataclasses.asdict(spec),
    }
    extra_hook = getattr(spec, "cache_fingerprint_extra", None)
    if callable(extra_hook):
        extra = extra_hook()
        if extra is not None:
            payload["extra"] = extra
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


def build_workload(spec: SpecLike) -> Tuple[AlignmentTask, ...]:
    """Materialise one spec's workload (the expensive path the cache skips).

    Specs that implement ``build_tasks()`` -- registered workloads --
    build themselves.  Seeded :class:`DatasetSpec` datasets run the
    historical pre-compute: materialise the synthetic reference and
    reads, index the reference, chain every read and extract its
    extension-alignment tasks (paper Section 5.1).
    """
    build_hook = getattr(spec, "build_tasks", None)
    if callable(build_hook):
        return tuple(build_hook())
    # Imported here: the mapper imports experiment helpers lazily and we
    # keep this module importable without the full pipeline at load time.
    from repro.pipeline.mapper import LongReadMapper

    reference, reads = build_dataset(spec)
    mapper = LongReadMapper(reference, spec.scoring)
    return tuple(mapper.workload([r.sequence for r in reads]))


class WorkloadCache:
    """Persistent store of pre-computed alignment workloads.

    Parameters
    ----------
    root:
        Cache directory; defaults to :func:`default_cache_dir` (resolved
        lazily, so the environment is honoured at use time).
    enabled:
        When false (or ``$REPRO_NO_CACHE`` is set and ``enabled`` is left
        ``None``), nothing is read from or written to disk.
    max_bytes:
        Size cap for the workload store; stores evict least-recently-used
        entries (by mtime) past it.  ``None`` defers to
        ``$REPRO_CACHE_MAX_BYTES`` (resolved at use time), and an unset
        environment means unbounded.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        enabled: Optional[bool] = None,
        max_bytes: Optional[int] = None,
    ):
        self._root = Path(root) if root is not None else None
        self._enabled = enabled
        self._max_bytes = max_bytes
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root if self._root is not None else default_cache_dir()

    @property
    def enabled(self) -> bool:
        return cache_enabled() if self._enabled is None else self._enabled

    @property
    def max_bytes(self) -> Optional[int]:
        return self._max_bytes if self._max_bytes is not None else cache_max_bytes()

    def path_for(self, spec: SpecLike) -> Path:
        """File that holds (or would hold) this spec's workload."""
        return self.root / "workloads" / f"{spec.name}-{spec_fingerprint(spec)}.pkl"

    # ------------------------------------------------------------------
    # load / store
    # ------------------------------------------------------------------
    def load(self, spec: SpecLike) -> Optional[Tuple[AlignmentTask, ...]]:
        """Load one workload, or ``None`` on miss.

        A file that cannot be unpickled, has the wrong schema version or a
        mismatched fingerprint is treated as corrupt: it is deleted and the
        call reports a miss so the caller rebuilds it.
        """
        if not self.enabled:
            return None
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if not isinstance(payload, dict):
                raise ValueError("cache payload is not a dict")
            if payload.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError("cache schema version mismatch")
            if payload.get("fingerprint") != spec_fingerprint(spec):
                raise ValueError("cache fingerprint mismatch")
            tasks = tuple(
                AlignmentTask(
                    ref=np.asarray(entry["ref"], dtype=np.uint8),
                    query=np.asarray(entry["query"], dtype=np.uint8),
                    scoring=entry["scoring"],
                    task_id=int(entry["task_id"]),
                )
                for entry in payload["tasks"]
            )
        except Exception:
            # Corrupt / stale / truncated entry: drop it and rebuild.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        # A hit counts as use: refresh the mtime so LRU eviction keeps
        # hot entries and drops the ones no figure has read in a while.
        try:
            os.utime(path)
        except OSError:
            pass
        return tasks

    def store(self, spec: SpecLike, tasks: Sequence[AlignmentTask]) -> Optional[Path]:
        """Persist one workload atomically; returns the file path.

        Only the task inputs (sequences, scoring, id) are stored -- cached
        alignment profiles are deliberately excluded so entries stay small
        and independent of the alignment engine's internals.
        """
        if not self.enabled:
            return None
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": spec_fingerprint(spec),
            "spec_name": spec.name,
            "tasks": [
                {
                    "ref": task.ref,
                    "query": task.query,
                    "scoring": task.scoring,
                    "task_id": task.task_id,
                }
                for task in tasks
            ],
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.evict(keep=path)
        return path

    # ------------------------------------------------------------------
    def tasks(
        self,
        spec: SpecLike,
        builder: Optional[Callable[[SpecLike], Sequence[AlignmentTask]]] = None,
    ) -> Tuple[AlignmentTask, ...]:
        """The workload of ``spec``: loaded from disk, or built and stored.

        ``builder`` defaults to :func:`build_workload`, resolved at call
        time so tests can observe or replace the build path.
        """
        cached = self.load(spec)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if builder is None:
            builder = build_workload
        tasks = tuple(builder(spec))
        self.store(spec, tasks)
        return tasks

    def evict(self, keep: Optional[Path] = None) -> List[Path]:
        """Enforce :attr:`max_bytes` now; returns the evicted files.

        Entries leave oldest-mtime-first (loads touch their entry, so
        this is LRU, not FIFO) until the store fits under the cap.
        ``keep`` -- typically the entry just written -- is never evicted,
        so a store can momentarily overshoot an undersized cap rather
        than delete its own payload.  Unbounded caches are a no-op.
        """
        limit = self.max_bytes
        if limit is None:
            return []
        entries = []
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.name, path, stat.st_size))
        total = sum(size for _, _, _, size in entries)
        evicted: List[Path] = []
        for _, _, path, size in sorted(entries):
            if total <= limit:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted.append(path)
        return evicted

    def info(self) -> dict:
        """Summary of the on-disk store (for ``--cache-info``)."""
        entries = self.entries()
        total = 0
        for path in entries:
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": len(entries),
            "total_bytes": total,
            "max_bytes": self.max_bytes,
        }

    def clear(self) -> int:
        """Remove every workload entry under this root; returns the count."""
        workloads = self.root / "workloads"
        removed = 0
        if workloads.is_dir():
            for path in workloads.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entries(self) -> List[Path]:
        """The workload files currently on disk (sorted for stable output)."""
        workloads = self.root / "workloads"
        if not workloads.is_dir():
            return []
        return sorted(workloads.glob("*.pkl"))
