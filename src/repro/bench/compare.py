"""Diff two benchmark records and flag regressions.

``repro.bench compare baseline.json current.json`` aligns the two
records suite by suite and kernel by kernel and compares geometric-mean
speedups (the paper's headline aggregation) plus every per-dataset cell.
A kernel whose current geomean falls more than ``tolerance`` below the
baseline is a **regression**; suites/kernels/datasets present in the
baseline but missing from the current record are reported as coverage
gaps and fail the comparison too (silent disappearance must not read as
"no regression").

Because the kernel timings are produced by a deterministic simulation,
identical code yields identical records; the tolerance exists to absorb
intentional model retunes, not measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.records import BenchRecord

__all__ = ["Finding", "ComparisonReport", "compare_records", "format_report"]

#: Default allowed relative geomean drop before a finding becomes a failure.
DEFAULT_TOLERANCE = 0.20


@dataclass(frozen=True)
class Finding:
    """One comparison outcome (regression, improvement or gap)."""

    kind: str  # "regression" | "improvement" | "missing"
    suite: str
    kernel: str
    metric: str
    baseline: float = float("nan")
    current: float = float("nan")

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf")
        return self.current / self.baseline

    def describe(self) -> str:
        if self.kind == "missing":
            return f"[missing]     {self.suite}/{self.kernel}: {self.metric}"
        arrow = "regressed" if self.kind == "regression" else "improved"
        return (
            f"[{self.kind}]  {self.suite}/{self.kernel} {self.metric}: "
            f"{self.baseline:.3f} -> {self.current:.3f} "
            f"({arrow} {abs(self.ratio - 1.0) * 100.0:.1f}%)"
        )


@dataclass
class ComparisonReport:
    """Everything ``compare`` found, split by severity."""

    tolerance: float
    regressions: List[Finding] = field(default_factory=list)
    improvements: List[Finding] = field(default_factory=list)
    missing: List[Finding] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _geomean_findings(
    report: ComparisonReport,
    suite: str,
    base: Dict[str, Dict[str, float]],
    cur: Dict[str, Dict[str, float]],
) -> None:
    for kernel, base_row in base.items():
        cur_row = cur.get(kernel)
        if cur_row is None:
            report.missing.append(
                Finding(kind="missing", suite=suite, kernel=kernel, metric="kernel row")
            )
            continue
        for column, base_value in base_row.items():
            metric = "GeoMean" if column == "GeoMean" else f"speedup[{column}]"
            if column not in cur_row:
                report.missing.append(
                    Finding(kind="missing", suite=suite, kernel=kernel, metric=metric)
                )
                continue
            current = cur_row[column]
            report.checked += 1
            if base_value <= 0:
                continue
            ratio = current / base_value
            if ratio < 1.0 - report.tolerance:
                report.regressions.append(
                    Finding(
                        kind="regression", suite=suite, kernel=kernel,
                        metric=metric, baseline=base_value, current=current,
                    )
                )
            elif ratio > 1.0 + report.tolerance:
                report.improvements.append(
                    Finding(
                        kind="improvement", suite=suite, kernel=kernel,
                        metric=metric, baseline=base_value, current=current,
                    )
                )


def compare_records(
    baseline: BenchRecord,
    current: BenchRecord,
    tolerance: float = DEFAULT_TOLERANCE,
    suites: Optional[Sequence[str]] = None,
) -> ComparisonReport:
    """Compare ``current`` against ``baseline`` within ``tolerance``.

    ``suites`` restricts the comparison to the named baseline suites, so
    one combined baseline file can gate records that each carry only a
    slice of it (the fig08 suites vs the ``sliced``/``vector`` engine
    suites, say) without the absent suites reading as coverage gaps.
    Asking for a suite the baseline does not have is an error, not a
    silent no-op.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    if suites is not None:
        unknown = [name for name in suites if name not in baseline.suites]
        if unknown:
            raise KeyError(
                f"baseline has no suite(s) {unknown}; it has "
                f"{sorted(baseline.suites)}"
            )
    report = ComparisonReport(tolerance=tolerance)
    for suite_name, base_suite in baseline.suites.items():
        if suites is not None and suite_name not in suites:
            continue
        cur_suite = current.suites.get(suite_name)
        if cur_suite is None:
            report.missing.append(
                Finding(kind="missing", suite=suite_name, kernel="*", metric="suite")
            )
            continue
        _geomean_findings(report, suite_name, base_suite.speedups, cur_suite.speedups)
    return report


def format_report(
    report: ComparisonReport, baseline_name: str = "baseline", current_name: str = "current"
) -> str:
    """Human-readable comparison summary."""
    lines = [
        f"compared {current_name} against {baseline_name} "
        f"({report.checked} cells, tolerance {report.tolerance * 100:.0f}%)"
    ]
    for finding in report.missing + report.regressions + report.improvements:
        lines.append("  " + finding.describe())
    if report.ok:
        extra = f", {len(report.improvements)} improvement(s)" if report.improvements else ""
        lines.append(f"OK: no regressions{extra}")
    else:
        lines.append(
            f"FAIL: {len(report.regressions)} regression(s), "
            f"{len(report.missing)} missing entr(y/ies)"
        )
    return "\n".join(lines)
