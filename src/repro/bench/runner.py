"""Sharded experiment runner: fan (dataset x suite) cells over workers.

A figure reproduction is embarrassingly parallel across its cells: one
cell simulates one kernel suite over one dataset's workload, and no cell
depends on another.  The runner materialises that structure explicitly:

* a :class:`BenchCell` is a picklable work unit (dataset spec, suite
  name, kernel/launch configuration, hardware pair, cache location);
* :func:`run_cell` executes one cell -- loading the workload from the
  persistent :class:`~repro.bench.cache.WorkloadCache` so workers skip
  the seeding/chaining pre-compute -- and returns plain summaries;
* :func:`run_cells` maps cells over a ``ProcessPoolExecutor`` (or runs
  them serially for ``workers <= 1``) and returns results **in input
  order**, so downstream aggregation is independent of completion order;
* :func:`run_figure` expands a named figure plan into cells, runs them,
  and assembles a :class:`~repro.bench.records.BenchRecord`.

Determinism: every cell is a deterministic pure function of its inputs
(the GPU timing is simulated, not measured), and aggregation follows
input order, so a parallel run is bit-identical to a serial one -- the
property ``tests/bench/test_runner.py`` pins.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from importlib import import_module
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.suites import ABLATION_LADDER, build_suite as _registry_build_suite, suite_names
from repro.baselines.cpu_model import CpuSpec
from repro.bench.cache import SpecLike, WorkloadCache, spec_fingerprint
from repro.bench.records import BenchRecord, CellRecord, SuiteRecord, environment_metadata
from repro.gpusim.device import CostModel, DeviceSpec
from repro.io.datasets import DATASET_REGISTRY, get_dataset_spec
from repro.kernels import GuidedKernel, KernelConfig

__all__ = [
    "ABLATION_LADDER",
    "SUITES",
    "FIGURES",
    "FigurePlan",
    "BenchCell",
    "build_suite",
    "resolve_specs",
    "run_cell",
    "run_cells",
    "run_speedup_table",
    "run_figure",
]


def __getattr__(name: str):
    # ``SUITES`` used to be a hardcoded tuple here (the duplicate of
    # ``kernel_suite`` the registry replaced).  Attribute access
    # (``repro.bench.runner.SUITES``) now reads the shared suite registry
    # on every lookup; note that ``from repro.bench.runner import SUITES``
    # binds a one-time snapshot -- callers that need a live view should
    # use :func:`repro.api.suite_names`.
    if name == "SUITES":
        return suite_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: The one-per-technology subset used by quick runs (mirrors
#: ``benchmarks/bench_utils.REPRESENTATIVE_DATASETS``).
REPRESENTATIVE_DATASETS: Tuple[str, ...] = ("HiFi-HG005", "CLR-HG002", "ONT-HG002")


@dataclass(frozen=True)
class FigurePlan:
    """Datasets and suites of one named figure reproduction.

    ``datasets_provider`` names a module imported before the plan is
    expanded (registering its workloads and suites as a side effect);
    when ``datasets`` is empty, the provider's ``workload_names()``
    supplies the dataset list instead -- so a plan can track whatever is
    registered at run time rather than a tuple frozen at import time.
    """

    name: str
    suites: Tuple[str, ...]
    datasets: Tuple[str, ...]
    description: str = ""
    datasets_provider: str = ""


def _all_names() -> Tuple[str, ...]:
    return tuple(DATASET_REGISTRY)


#: Named figure plans understood by ``python -m repro.bench --figure``.
FIGURES: Dict[str, FigurePlan] = {
    "fig08": FigurePlan(
        name="fig08",
        suites=("mm2", "diff"),
        datasets=_all_names(),
        description="Main comparison: all kernels, both targets, nine datasets",
    ),
    "fig09": FigurePlan(
        name="fig09",
        suites=("ablation",),
        datasets=_all_names(),
        description="AGAThA ablation ladder over the nine datasets",
    ),
    "quick": FigurePlan(
        name="quick",
        suites=("mm2", "diff"),
        datasets=REPRESENTATIVE_DATASETS,
        description="Both targets over one dataset per technology",
    ),
    "workloads": FigurePlan(
        name="workloads",
        suites=("workloads",),
        datasets=(),
        description="Every registered workload (real FASTA data, "
        "adversarial length distributions, protein-style scoring) "
        "under the AGAThA kernel",
        datasets_provider="repro.workloads",
    ),
}


def build_suite(
    suite: str, config: Optional[KernelConfig] = None
) -> Mapping[str, GuidedKernel]:
    """Construct the kernels of one named suite (inside the worker).

    Thin wrapper over the shared registry
    (:func:`repro.api.suites.build_suite`); kept because workers and
    long-standing callers import it from here, and because the runner's
    historical contract is :class:`ValueError` for unknown suites.
    """
    try:
        return _registry_build_suite(suite, config)
    except KeyError as exc:
        raise ValueError(exc.args[0] if exc.args else str(exc)) from None


def resolve_specs(datasets: Sequence[str | SpecLike]) -> List[SpecLike]:
    """Accept registry names or explicit specs; return concrete specs.

    Names resolve through the seeded dataset registry first, then the
    workload registry (:func:`repro.workloads.resolve_spec`), so every
    registered workload is runnable wherever a dataset name is.
    """
    resolved: List[SpecLike] = []
    for entry in datasets:
        if not isinstance(entry, str):
            resolved.append(entry)
        elif entry in DATASET_REGISTRY:
            resolved.append(get_dataset_spec(entry))
        else:
            # Imported lazily: the workloads package imports the suite
            # registry, which this module also feeds.
            from repro.workloads import resolve_spec

            resolved.append(resolve_spec(entry))
    return resolved


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchCell:
    """One unit of sharded work: (dataset spec, kernel suite).

    Everything in a cell is picklable, so cells travel to pool workers
    as-is; kernels are rebuilt inside the worker from ``suite``/``config``.
    ``cache_dir=None`` means "resolve from the environment", which lets
    registry datasets share the in-process ``dataset_tasks`` cache.
    """

    spec: SpecLike
    suite: str
    config: Optional[KernelConfig] = None
    device: Optional[DeviceSpec] = None
    cpu: Optional[CpuSpec] = None
    cost: Optional[CostModel] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    #: Module that registered ``suite`` (from the suite registry).  A
    #: spawn-started worker that does not know the suite imports this
    #: module once and retries, so plugin-registered suites shard too.
    suite_origin: Optional[str] = None


def _suite_origin(suite: str) -> Optional[str]:
    """The registering module of a suite, for shipping inside cells."""
    from repro.api import suites as api_suites

    if suite in api_suites.SUITES:
        return api_suites.get_suite(suite).origin or None
    return None


#: In-process memo of non-registry workloads, keyed by (cache root,
#: enabled, spec fingerprint).  Serial runs visit each dataset once per
#: suite; reusing the same task objects keeps their lazily-computed
#: alignment profiles, so the dynamic program runs once per task no
#: matter how many suites share the dataset.  Pool workers each hold
#: their own copy (results are identical either way -- cells are pure).
_TASKS_MEMO: Dict[tuple, tuple] = {}


def _cell_tasks(cell: BenchCell):
    """The cell's workload, via the persistent cache.

    Registry datasets with default cache settings go through
    :func:`repro.pipeline.experiment.dataset_tasks`, which layers an
    in-process ``lru_cache`` (with its memoised alignment profiles) on
    top of the same on-disk cache; everything else is memoised here the
    same way -- serial runs and benchmark fixtures then never profile a
    task twice.
    """
    from repro.pipeline.experiment import dataset_tasks

    registry_spec = DATASET_REGISTRY.get(cell.spec.name)
    if cell.cache_dir is None and cell.use_cache and registry_spec == cell.spec:
        return dataset_tasks(cell.spec.name)
    cache = WorkloadCache(cell.cache_dir, enabled=cell.use_cache)
    key = (str(cache.root), cell.use_cache, spec_fingerprint(cell.spec))
    if key not in _TASKS_MEMO:
        _TASKS_MEMO[key] = cache.tasks(cell.spec)
    return _TASKS_MEMO[key]


def run_cell(cell: BenchCell) -> Dict[str, dict]:
    """Execute one cell: simulate its suite over its dataset's workload.

    Returns the historical comparison mapping (``kernel -> summary`` with
    the CPU anchor under ``"CPU"``) as plain dicts, safe to pickle back
    from a worker process; cells are built from the shared suite registry
    via :func:`repro.api.compare.compare_suite`.
    """
    from repro.api.compare import compare_suite

    tasks = _cell_tasks(cell)
    kernels = _build_cell_suite(cell)
    return compare_suite(
        tasks, kernels, device=cell.device, cpu=cell.cpu, cost=cell.cost
    ).to_dict()


def _build_cell_suite(cell: BenchCell) -> Mapping[str, GuidedKernel]:
    """Build a cell's kernels, importing its plugin module if needed.

    Spawn-started workers re-import only the modules the runner imports,
    so a suite registered by a plugin module is unknown until that module
    (recorded in ``cell.suite_origin``) is imported here.
    """
    try:
        return build_suite(cell.suite, cell.config)
    except ValueError:
        if cell.suite_origin and cell.suite_origin != "__main__":
            import_module(cell.suite_origin)
            return build_suite(cell.suite, cell.config)
        raise


def _ensure_suites_shardable(cells: Sequence[BenchCell]) -> None:
    """Fail fast when a cell's suite cannot be rebuilt inside a worker.

    Pool workers rebuild kernels from the suite *name*.  Suites
    registered by an importable plugin module are re-registered inside
    the worker (:func:`_build_cell_suite` imports ``suite_origin``), and
    under the ``fork`` start method ``__main__`` registrations are
    inherited; but under ``spawn``/``forkserver`` a ``__main__``
    registration is unreachable and would surface as a mid-run KeyError
    from every worker (mirrors the eager ``kernel_factory cannot be
    sharded`` check).
    """
    if multiprocessing.get_start_method() == "fork":
        return
    from repro.api import suites as api_suites

    for suite in sorted({cell.suite for cell in cells}):
        if suite not in api_suites.SUITES:
            continue  # unknown names fail with their own error inside build_suite
        if api_suites.get_suite(suite).origin == "__main__":
            raise ValueError(
                f"suite {suite!r} was registered in __main__ and cannot be "
                "rebuilt inside spawn-started worker processes; register it "
                "in an importable module or run with workers=1"
            )


def run_cells(
    cells: Sequence[BenchCell],
    workers: int = 1,
    progress: Optional[Callable[[int, int, BenchCell], None]] = None,
) -> List[Dict[str, dict]]:
    """Run every cell, sharded over ``workers`` processes.

    Results are returned in **input order** regardless of completion
    order.  ``workers <= 1`` runs serially in-process (no pool, easier
    debugging, shares the ``dataset_tasks`` memo).  A worker exception
    propagates to the caller unchanged.
    """
    total = len(cells)
    results: List[Dict[str, dict]] = []
    if workers <= 1 or total <= 1:
        for index, cell in enumerate(cells):
            results.append(run_cell(cell))
            if progress is not None:
                progress(index + 1, total, cell)
        return results
    _ensure_suites_shardable(cells)
    with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
        futures = [pool.submit(run_cell, cell) for cell in cells]
        done = 0
        for index, future in enumerate(futures):
            results.append(future.result())
            done += 1
            if progress is not None:
                progress(done, total, cells[index])
    return results


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def _merge_speedups(
    specs: Sequence[SpecLike], results: Sequence[Dict[str, dict]]
) -> Dict[str, Dict[str, float]]:
    """Fold per-cell summaries into a ``speedup_table``-shaped mapping.

    Iterates datasets in input order so row construction (and therefore
    the float summation order inside the geometric mean) matches the
    serial harness exactly.
    """
    from repro.pipeline.experiment import geometric_mean

    table: Dict[str, Dict[str, float]] = {}
    for spec, summaries in zip(specs, results):
        for kernel_name, summary in summaries.items():
            if kernel_name == "CPU":
                continue
            table.setdefault(kernel_name, {})[spec.name] = summary["speedup_vs_cpu"]
    for row in table.values():
        row["GeoMean"] = geometric_mean(list(row.values()))
    return table


def run_speedup_table(
    datasets: Sequence[str | SpecLike],
    *,
    suite: Optional[str] = None,
    kernel_factory: Optional[Callable[[], Mapping[str, GuidedKernel]]] = None,
    workers: int = 1,
    config: Optional[KernelConfig] = None,
    device: Optional[DeviceSpec] = None,
    cpu: Optional[CpuSpec] = None,
    cost: Optional[CostModel] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Per-dataset speedups over the CPU anchor, sharded over workers.

    Exactly one of ``suite`` and ``kernel_factory`` must be given.  A
    named suite shards freely (kernels are rebuilt in each worker); an
    arbitrary ``kernel_factory`` cannot travel to worker processes, so it
    implies serial execution (``workers`` must be 1) -- this is the
    compatibility path :func:`repro.pipeline.experiment.speedup_table`
    uses.
    """
    if (suite is None) == (kernel_factory is None):
        raise ValueError("pass exactly one of suite= or kernel_factory=")
    specs = resolve_specs(datasets)
    if kernel_factory is not None:
        if workers > 1:
            raise ValueError(
                "kernel_factory cannot be sharded over processes; "
                "use a named suite or workers=1"
            )
        from repro.api.compare import compare_suite

        results = []
        for spec in specs:
            cell = BenchCell(
                spec=spec, suite="custom", device=device, cpu=cpu, cost=cost,
                cache_dir=cache_dir, use_cache=use_cache,
            )
            tasks = _cell_tasks(cell)
            results.append(
                compare_suite(
                    tasks, kernel_factory(), device=device, cpu=cpu, cost=cost
                ).to_dict()
            )
        return _merge_speedups(specs, results)
    origin = _suite_origin(suite)
    cells = [
        BenchCell(
            spec=spec, suite=suite, config=config, device=device, cpu=cpu,
            cost=cost, cache_dir=cache_dir, use_cache=use_cache,
            suite_origin=origin,
        )
        for spec in specs
    ]
    results = run_cells(cells, workers=workers)
    return _merge_speedups(specs, results)


def _suite_record(
    suite: str, specs: Sequence[SpecLike], results: Sequence[Dict[str, dict]]
) -> SuiteRecord:
    record = SuiteRecord(suite=suite)
    for spec, summaries in zip(specs, results):
        for kernel_name, summary in summaries.items():
            if kernel_name == "CPU":
                record.cpu_time_ms[spec.name] = summary["time_ms"]
                continue
            record.cells.append(
                CellRecord(
                    dataset=spec.name,
                    kernel=kernel_name,
                    time_ms=summary["time_ms"],
                    speedup_vs_cpu=summary["speedup_vs_cpu"],
                    cells=int(summary.get("cells", 0)),
                    runahead_cells=int(summary.get("runahead_cells", 0)),
                    global_words=float(summary.get("global_words", 0.0)),
                    imbalance=float(summary.get("imbalance", 0.0)),
                )
            )
    record.speedups = _merge_speedups(specs, results)
    return record


def run_figure(
    figure: str,
    *,
    workers: int = 1,
    datasets: Optional[Sequence[str | SpecLike]] = None,
    suites: Optional[Sequence[str]] = None,
    config: Optional[KernelConfig] = None,
    device: Optional[DeviceSpec] = None,
    cpu: Optional[CpuSpec] = None,
    cost: Optional[CostModel] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[Callable[[int, int, BenchCell], None]] = None,
) -> BenchRecord:
    """Reproduce one named figure, sharded, and return its record.

    ``datasets`` / ``suites`` override the figure plan (useful for quick
    subsets); cells from *all* suites are pooled into one shard queue so
    workers stay busy across suite boundaries.
    """
    if figure not in FIGURES:
        raise KeyError(f"unknown figure {figure!r}; available: {sorted(FIGURES)}")
    plan = FIGURES[figure]
    plan_datasets: Sequence[str | SpecLike] = plan.datasets
    if plan.datasets_provider:
        # Importing the provider registers its workloads and suites; an
        # empty plan tuple means "everything the provider registers".
        provider = import_module(plan.datasets_provider)
        if not plan_datasets:
            plan_datasets = provider.workload_names()
    specs = resolve_specs(datasets if datasets is not None else plan_datasets)
    plan_suites = tuple(suites if suites is not None else plan.suites)
    for suite in plan_suites:
        if suite not in suite_names():
            raise ValueError(
                f"unknown suite {suite!r}; available: {list(suite_names())}"
            )
    origins = {suite: _suite_origin(suite) for suite in plan_suites}
    cells = [
        BenchCell(
            spec=spec, suite=suite, config=config, device=device, cpu=cpu,
            cost=cost, cache_dir=cache_dir, use_cache=use_cache,
            suite_origin=origins[suite],
        )
        for suite in plan_suites
        for spec in specs
    ]
    start = time.perf_counter()
    results = run_cells(cells, workers=workers, progress=progress)
    wall = time.perf_counter() - start
    # Resolve the hardware pair for the metadata block only; the cells keep
    # the caller's values (None means "scaled defaults") so results stay
    # bit-identical to the serial harness.
    from repro.pipeline.experiment import scaled_hardware

    meta_device, meta_cpu = device, cpu
    if meta_device is None or meta_cpu is None:
        scaled_device, scaled_cpu = scaled_hardware()
        meta_device = meta_device or scaled_device
        meta_cpu = meta_cpu or scaled_cpu
    record = BenchRecord(
        figure=figure,
        datasets=[spec.name for spec in specs],
        environment=environment_metadata(
            workers=workers,
            suites=list(plan_suites),
            device=meta_device.name,
            cpu=meta_cpu.name,
            cache_dir=str(WorkloadCache(cache_dir).root) if use_cache else None,
        ),
        wall_time_s=wall,
    )
    per_suite = len(specs)
    for index, suite in enumerate(plan_suites):
        chunk = results[index * per_suite : (index + 1) * per_suite]
        record.suites[suite] = _suite_record(suite, specs, chunk)
    return record
