"""Versioned, machine-readable benchmark records.

A :class:`BenchRecord` is the JSON artifact one run of the sharded
experiment runner produces (``BENCH_<figure>.json``).  It captures, per
kernel suite and per (dataset x kernel) cell, the simulated execution
time and speedup over the CPU anchor, the per-suite speedup tables with
their geometric means, and enough environment metadata to interpret the
numbers later (Python/NumPy versions, device/CPU pair, worker count).

The schema is versioned (`schema_version`); loaders refuse records from
a newer schema instead of misreading them, and ``repro.bench compare``
diffs two records cell by cell.  Because the kernel timings come from
the deterministic GPU cost simulation, two records produced from the
same code are bit-identical regardless of host machine or worker count
-- which is what makes committed baselines and CI regression gates
meaningful.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

import numpy as np

__all__ = [
    "RECORD_SCHEMA_VERSION",
    "CellRecord",
    "SuiteRecord",
    "BenchRecord",
    "environment_metadata",
    "engine_bench_record",
]

#: Bump whenever the JSON layout changes incompatibly.
RECORD_SCHEMA_VERSION = 1


def environment_metadata(**extra) -> Dict[str, object]:
    """Environment block stamped into every record."""
    meta: Dict[str, object] = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy": np.__version__,
    }
    meta.update(extra)
    return meta


@dataclass(frozen=True)
class CellRecord:
    """One (dataset x kernel) measurement inside one suite."""

    dataset: str
    kernel: str
    time_ms: float
    speedup_vs_cpu: float
    cells: int = 0
    runahead_cells: int = 0
    global_words: float = 0.0
    imbalance: float = 0.0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "CellRecord":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class SuiteRecord:
    """Results of one kernel suite over a set of datasets.

    ``speedups`` is exactly the mapping
    :func:`repro.pipeline.experiment.speedup_table` returns for the same
    datasets and kernels (``kernel -> {dataset: speedup, ..., "GeoMean"}``),
    so record contents can be compared bit for bit against the serial
    harness.
    """

    suite: str
    cpu_time_ms: Dict[str, float] = field(default_factory=dict)
    cells: List[CellRecord] = field(default_factory=list)
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def geomeans(self) -> Dict[str, float]:
        """Per-kernel geometric-mean speedup."""
        return {kernel: row.get("GeoMean", 0.0) for kernel, row in self.speedups.items()}

    def cell(self, dataset: str, kernel: str) -> Optional[CellRecord]:
        for cell in self.cells:
            if cell.dataset == dataset and cell.kernel == kernel:
                return cell
        return None

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "cpu_time_ms": self.cpu_time_ms,
            "cells": [cell.to_dict() for cell in self.cells],
            "speedups": self.speedups,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SuiteRecord":
        return cls(
            suite=data["suite"],
            cpu_time_ms=dict(data.get("cpu_time_ms", {})),
            cells=[CellRecord.from_dict(c) for c in data.get("cells", [])],
            speedups={k: dict(v) for k, v in data.get("speedups", {}).items()},
        )


@dataclass
class BenchRecord:
    """One benchmark run: every suite's results plus run metadata."""

    figure: str
    datasets: List[str] = field(default_factory=list)
    suites: Dict[str, SuiteRecord] = field(default_factory=dict)
    environment: Dict[str, object] = field(default_factory=environment_metadata)
    wall_time_s: float = 0.0
    schema_version: int = RECORD_SCHEMA_VERSION

    # ------------------------------------------------------------------
    def speedup_table(self, suite: str) -> Dict[str, Dict[str, float]]:
        """The speedup table of one suite (as ``speedup_table`` returns it)."""
        return self.suites[suite].speedups

    @property
    def default_filename(self) -> str:
        return f"BENCH_{self.figure}.json"

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "figure": self.figure,
            "datasets": list(self.datasets),
            "environment": dict(self.environment),
            "wall_time_s": self.wall_time_s,
            "suites": {name: suite.to_dict() for name, suite in self.suites.items()},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, data: Mapping) -> "BenchRecord":
        version = data.get("schema_version")
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"record has no valid schema_version (got {version!r})")
        if version > RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"record schema_version {version} is newer than supported "
                f"({RECORD_SCHEMA_VERSION}); upgrade the tooling"
            )
        return cls(
            figure=data["figure"],
            datasets=list(data.get("datasets", [])),
            suites={
                name: SuiteRecord.from_dict(suite)
                for name, suite in data.get("suites", {}).items()
            },
            environment=dict(data.get("environment", {})),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            schema_version=version,
        )

    @classmethod
    def load(cls, path: Path | str) -> "BenchRecord":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


# ----------------------------------------------------------------------
# wall-clock engine studies (BENCH_sliced.json and friends)
# ----------------------------------------------------------------------
def engine_bench_record(
    timings_ms: Mapping[str, float],
    *,
    anchor: str,
    figure: str = "engines",
    workload: str = "workload",
    environment: Optional[Mapping[str, object]] = None,
) -> BenchRecord:
    """Fold per-engine wall-clock timings into one gateable record.

    The engine-study mirror of
    :func:`repro.serve.telemetry.serve_bench_record`: every alignment
    engine becomes a "kernel" row of a single suite named ``figure``,
    ``time_ms`` is its wall-clock on the workload and ``speedup_vs_cpu``
    its speedup over the ``anchor`` engine (whose time fills
    ``cpu_time_ms``, the anchor slot of the record schema).  The result
    serialises to ``BENCH_<figure>.json`` and diffs with
    ``python -m repro.bench compare`` like any other record
    (docs/BENCHMARKS.md).

    Unlike figure records, the timings here are *measured*, so records
    from different machines differ; gate them only against baselines
    captured on comparable hardware.
    """
    if anchor not in timings_ms:
        raise ValueError(
            f"anchor engine {anchor!r} has no timing; got {sorted(timings_ms)}"
        )
    anchor_ms = float(timings_ms[anchor])
    suite = SuiteRecord(suite=figure, cpu_time_ms={workload: anchor_ms})
    for engine, time_ms in timings_ms.items():
        time_ms = float(time_ms)
        if time_ms <= 0:
            raise ValueError(f"engine {engine!r} has non-positive timing {time_ms}")
        speedup = anchor_ms / time_ms
        suite.cells.append(
            CellRecord(
                dataset=workload,
                kernel=engine,
                time_ms=time_ms,
                speedup_vs_cpu=speedup,
            )
        )
        suite.speedups[engine] = {workload: speedup, "GeoMean": speedup}
    return BenchRecord(
        figure=figure,
        datasets=[workload],
        suites={figure: suite},
        environment=environment_metadata(
            anchor_engine=anchor, **dict(environment or {})
        ),
    )
