"""CPU baselines: Minimap2- and BWA-MEM-style guided aligners.

The GPU speedups of the paper are always reported relative to the
multi-threaded, SIMD-vectorised CPU implementation of the same guided
algorithm (Minimap2's ksw2 kernel with SSE4.1 on a 16-core EPYC, and in
Section 5.8 the AVX-512 mm2-fast implementation on a 48-core Xeon).  This
package provides that anchor:

* the *scores* come from the same exact engine every exact GPU kernel
  uses (the CPU implementation is by definition the reference algorithm);
* the *time* comes from a throughput model: the banded cells the guided
  algorithm actually computes (termination included, i.e. no run-ahead)
  divided by the machine's sustained cell rate (cores x SIMD lanes x clock
  x efficiency).
"""

from repro.baselines.cpu_model import CpuSpec, CPU_PRESETS, get_cpu
from repro.baselines.aligner import CpuAligner, Minimap2CpuAligner, BwaMemCpuAligner

__all__ = [
    "CpuSpec",
    "CPU_PRESETS",
    "get_cpu",
    "CpuAligner",
    "Minimap2CpuAligner",
    "BwaMemCpuAligner",
]
