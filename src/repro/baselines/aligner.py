"""CPU reference aligners (Minimap2- and BWA-MEM-style).

A :class:`CpuAligner` combines the exact guided alignment engine with a
:class:`~repro.baselines.cpu_model.CpuSpec` throughput model.  ``run``
returns the exact scores (identical to the oracle); ``time_ms`` returns
the wall-clock estimate for a batch of tasks, which is what every speedup
in the benchmark harness is normalised against.

The distinction between the Minimap2 and BWA-MEM flavours is carried by
the *tasks* (their scoring schemes hold the different band widths and
termination thresholds); the subclasses exist so reports carry the right
name and so the BWA-MEM experiment of Section 5.9 reads naturally.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.align.types import AlignmentResult, AlignmentTask
from repro.baselines.cpu_model import CpuSpec, EPYC_16C_SSE4

__all__ = ["CpuAligner", "Minimap2CpuAligner", "BwaMemCpuAligner"]


class CpuAligner:
    """Exact guided aligner with a multi-core SIMD cost model."""

    name = "CPU"

    def __init__(self, cpu: CpuSpec | None = None):
        self.cpu = cpu or EPYC_16C_SSE4

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[AlignmentTask]) -> List[AlignmentResult]:
        """Exact alignment results (the reference output)."""
        return [task.profile().result for task in tasks]

    # ------------------------------------------------------------------
    def total_cells(self, tasks: Sequence[AlignmentTask]) -> float:
        """Banded cells the guided algorithm computes (no run-ahead: the
        CPU checks the termination condition after every anti-diagonal)."""
        return float(sum(task.profile().cells_computed for task in tasks))

    def time_ms(self, tasks: Sequence[AlignmentTask]) -> float:
        """Wall-clock estimate of aligning ``tasks`` on this machine."""
        return self.cpu.time_ms(self.total_cells(tasks))

    @property
    def display_name(self) -> str:
        return f"{self.name} ({self.cpu.name})"

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(cpu={self.cpu.name!r})"


class Minimap2CpuAligner(CpuAligner):
    """Minimap2's guided extension kernel on the CPU (the default anchor)."""

    name = "Minimap2"


class BwaMemCpuAligner(CpuAligner):
    """BWA-MEM's guided extension kernel on the CPU (Section 5.9)."""

    name = "BWA-MEM"
