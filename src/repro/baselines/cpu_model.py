"""CPU machine models used to time the reference aligners.

The model is deliberately coarse -- the CPU baseline exists to anchor the
speedup ratios, and its cost is overwhelmingly the banded dynamic program
itself, which processes one cell per SIMD lane per few cycles when
implemented with the striped/anti-diagonal SSE kernels Minimap2 uses.

``cells_per_second = cores * simd_lanes * clock_ghz * efficiency / cycles_per_cell``

The two presets correspond to the machines of Section 5.1 and Section 5.8:
a 16-core / 32-thread AMD EPYC 7313P running the SSE4.1 kernel (8 lanes of
16-bit scores) and a dual-socket 48-core / 96-thread Xeon Gold 6442Y
running the AVX-512 mm2-fast kernel (32 lanes).  The published measurement
the model is sanity-checked against is the paper's own observation that
the AVX-512 machine is ~2.3x faster in geometric mean than the SSE4 one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["CpuSpec", "CPU_PRESETS", "get_cpu"]


@dataclass(frozen=True)
class CpuSpec:
    """A multi-core SIMD CPU target for the reference aligner.

    Attributes
    ----------
    name:
        Label used in reports (matches the paper's axis labels).
    cores:
        Physical cores used by the aligner's thread pool.
    threads:
        Hardware threads (SMT); the throughput model uses physical cores
        and treats SMT as part of ``efficiency``.
    simd_lanes:
        16-bit score lanes per vector (8 for SSE4.1, 32 for AVX-512).
    clock_ghz:
        Sustained all-core clock.
    efficiency:
        Fraction of peak lane-cycles the DP kernel sustains (memory
        stalls, striping overhead, band-edge waste).
    cycles_per_cell:
        Vector instructions' cycle cost per cell per lane.
    """

    name: str
    cores: int
    threads: int
    simd_lanes: int
    clock_ghz: float
    efficiency: float = 0.35
    cycles_per_cell: float = 4.0

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.threads <= 0 or self.simd_lanes <= 0:
            raise ValueError("cores, threads and simd_lanes must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    def scale(self, factor: float) -> "CpuSpec":
        """Return a proportionally smaller (or larger) machine.

        Used together with :meth:`repro.gpusim.device.DeviceSpec.scale` so
        that benchmark-sized workloads keep the CPU-to-GPU hardware ratio
        of the paper's testbed while both machines stay saturated.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        if self.efficiency * factor > 1.0:
            raise ValueError("cannot scale the CPU up beyond full efficiency")
        from dataclasses import replace as _dc_replace

        # Scaling through the efficiency term keeps the factor exact (no
        # integer rounding of core counts), which matters because the CPU
        # and the GPU must be scaled by precisely the same factor for the
        # speedup ratios to be preserved.
        return _dc_replace(
            self,
            name=f"{self.name} (x{factor:g})",
            efficiency=self.efficiency * factor,
        )

    @property
    def cells_per_second(self) -> float:
        """Sustained banded-DP cell throughput of the whole machine."""
        return (
            self.cores
            * self.simd_lanes
            * self.clock_ghz
            * 1e9
            * self.efficiency
            / self.cycles_per_cell
        )

    def time_ms(self, total_cells: float) -> float:
        """Wall-clock estimate for processing ``total_cells`` banded cells."""
        if total_cells < 0:
            raise ValueError("total_cells must be non-negative")
        return total_cells / self.cells_per_second * 1e3


#: The 16C/32T SSE4.1 machine of Section 5.1 (AMD EPYC 7313P).
EPYC_16C_SSE4 = CpuSpec(
    name="16C32T SSE4",
    cores=16,
    threads=32,
    simd_lanes=8,
    clock_ghz=3.0,
)

#: The 48C/96T AVX-512 machine of Section 5.8 (2x Xeon Gold 6442Y, mm2-fast).
XEON_48C_AVX512 = CpuSpec(
    name="48C96T AVX512",
    cores=48,
    threads=96,
    simd_lanes=32,
    clock_ghz=2.6,
    # mm2-fast's AVX-512 kernel sustains a lower fraction of its much wider
    # peak (band edges and load imbalance); the value is chosen so the
    # AVX-512 machine lands ~2.3x faster than the SSE4 one, the ratio the
    # paper reports.
    efficiency=0.075,
)

#: Single-threaded scalar reference, useful in tests and examples.
SCALAR_1C = CpuSpec(
    name="1C scalar",
    cores=1,
    threads=1,
    simd_lanes=1,
    clock_ghz=3.0,
    efficiency=0.8,
)

CPU_PRESETS: Mapping[str, CpuSpec] = {
    "sse4-16c": EPYC_16C_SSE4,
    "avx512-48c": XEON_48C_AVX512,
    "scalar-1c": SCALAR_1C,
}


def get_cpu(name: str) -> CpuSpec:
    """Look up a CPU preset by its short identifier."""
    key = name.lower()
    if key not in CPU_PRESETS:
        raise KeyError(f"unknown CPU {name!r}; available: {sorted(CPU_PRESETS)}")
    return CPU_PRESETS[key]
