"""The live micro-batching alignment service (real threads, futures).

:class:`AlignmentService` is the online counterpart of
:func:`repro.serve.scheduler.replay`: the same
:class:`~repro.serve.queueing.MicroBatcher` policy, but driven by a real
scheduler thread over a monotonic wall clock.  ``submit(task)`` returns
a :class:`concurrent.futures.Future` immediately; the scheduler cuts
batches when the queue fills or the oldest request's ``max_wait_ms``
expires, executes them through the configured :mod:`repro.api` engine,
and fans each result back to its request's future.

With ``workers > 1`` batch execution is sharded over a
:class:`~concurrent.futures.ThreadPoolExecutor` (mirroring how
:mod:`repro.bench.runner` shards figure cells over a pool): the
scheduler thread keeps forming batches while earlier batches are still
being scored.  Threads are the right pool here -- the engines spend
their time in NumPy kernels that release the GIL, and tasks must not be
pickled per request.

When the configuration resolves to continuous refill
(``config.resolved_refill() == "continuous"``, the default for
streaming engines such as ``"batch-sliced"``), the scheduler thread
instead keeps one :class:`repro.api.InFlightBatch` open and runs it
slice by slice, admitting newly submitted tasks into lanes freed by
compaction at every slice boundary (:meth:`MicroBatcher.take`).  The
``max_wait_ms`` contract is unchanged: an idle stream dispatches under
the normal cut conditions, and a busy stream admits pending requests at
the very next boundary, which can only shorten waits.

Exactness: a served task's result is bit-identical to scoring it with
:meth:`repro.api.Session.align` -- the service only decides *when* and
*with whom* a task is scored, never *how*.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.align.types import AlignmentResult, AlignmentTask
from repro.serve.config import ServeConfig
from repro.serve.queueing import MicroBatcher, ServeRequest
from repro.serve.telemetry import TelemetrySink

__all__ = ["AlignmentService"]


class AlignmentService:
    """Online alignment service: queue in single tasks, serve batches.

    Usable as a context manager (the idiomatic form)::

        with Session(dataset="ONT-HG002").serve(max_wait_ms=2.0) as svc:
            futures = [svc.submit(task) for task in tasks]
            scores = [f.result().score for f in futures]

    ``start()`` is implicit on first :meth:`submit`; :meth:`shutdown`
    drains every pending request before returning (no request is ever
    dropped), then stops the scheduler thread and the worker pool.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        from repro.api.engines import get_engine

        self._engine = get_engine(self.config.engine)
        self._engine_bucket = self.config.effective_batch_size()
        self._refill = self.config.resolved_refill()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._batcher = MicroBatcher(
            self.config.max_batch_size,
            self.config.max_wait_ms,
            length_aware=self.config.length_aware,
        )
        self._futures: Dict[int, "Future[AlignmentResult]"] = {}
        self._next_id = 0
        self._epoch = time.monotonic()
        self._scheduler: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._stopping = False
        self._closed = False
        self.telemetry = TelemetrySink()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AlignmentService":
        """Start the scheduler thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("service has been shut down")
            if self._scheduler is None:
                if self.config.workers > 1:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.config.workers,
                        thread_name_prefix="repro-serve-worker",
                    )
                self._scheduler = threading.Thread(
                    target=self._scheduler_loop, name="repro-serve-scheduler", daemon=True
                )
                self._scheduler.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Drain pending requests, then stop the scheduler and pool.

        ``wait=False`` skips waiting for in-flight *batch executions*,
        but the scheduler thread is always joined first: it only cuts
        the final batches and exits, and joining it guarantees every
        pending request reaches an executor before the pool stops
        accepting work (no request is ever stranded on an unresolved
        future).
        """
        with self._wakeup:
            self._stopping = True
            self._closed = True
            self._wakeup.notify_all()
            scheduler = self._scheduler
        if scheduler is not None:
            scheduler.join()
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "AlignmentService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return (time.monotonic() - self._epoch) * 1000.0

    def submit(self, task: AlignmentTask) -> "Future[AlignmentResult]":
        """Enqueue one task; the returned future resolves to its result."""
        self.start()
        future: "Future[AlignmentResult]" = Future()
        with self._wakeup:
            if self._stopping:
                raise RuntimeError("service is shutting down")
            request = ServeRequest(
                task=task, request_id=self._next_id, arrival_ms=self._now_ms()
            )
            self._next_id += 1
            self._batcher.add(request)
            self._futures[request.request_id] = future
            self.telemetry.record_queue_depth(len(self._batcher))
            self._wakeup.notify_all()
        return future

    def map(self, tasks: Sequence[AlignmentTask]) -> List[AlignmentResult]:
        """Submit every task and gather results in submission order."""
        futures = [self.submit(task) for task in tasks]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # scheduler thread
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        if self._refill == "continuous":
            self._stream_loop()
            return
        while True:
            with self._wakeup:
                while True:
                    now = self._now_ms()
                    if len(self._batcher) and (
                        self._stopping or self._batcher.ready(now)
                    ):
                        batch = self._batcher.form_batch(now)
                        break
                    if self._stopping and not len(self._batcher):
                        return
                    deadline = self._batcher.next_deadline_ms()
                    timeout = (
                        None if deadline is None else max(deadline - now, 0.0) / 1000.0
                    )
                    self._wakeup.wait(timeout)
                futures = [self._futures.pop(r.request_id) for r in batch]
                self.telemetry.record_batch(len(batch))
                # Dispatched requests left the queue: sample the depth so
                # backpressure telemetry sees them as dequeued now, not at
                # batch completion.
                self.telemetry.record_queue_depth(len(self._batcher))
            if self._pool is not None:
                self._pool.submit(self._execute, batch, futures)
            else:
                self._execute(batch, futures)

    def _stream_loop(self) -> None:
        """Continuous-refill scheduler: one in-flight batch, slice-stepped.

        Runs entirely on the scheduler thread (the stream serialises
        execution, so there is nothing for a worker pool to overlap);
        between slices the thread re-acquires the lock, collects newly
        submitted requests and admits them into freed lanes.
        """
        from repro.api.engines import open_batch

        stream = open_batch(
            (),
            engine=self.config.engine,
            options=self.config.engine_options(),
            capacity=self.config.max_batch_size,
        )
        inflight: Dict[int, tuple] = {}
        while True:
            with self._wakeup:
                while True:
                    now = self._now_ms()
                    if stream.live:
                        # Busy stream: refill free lanes immediately.
                        batch = (
                            self._batcher.take(stream.free, now)
                            if stream.free
                            else []
                        )
                        break
                    if len(self._batcher) and (
                        self._stopping or self._batcher.ready(now)
                    ):
                        batch = self._batcher.form_batch(now)
                        break
                    if self._stopping and not len(self._batcher):
                        return
                    deadline = self._batcher.next_deadline_ms()
                    timeout = (
                        None if deadline is None else max(deadline - now, 0.0) / 1000.0
                    )
                    self._wakeup.wait(timeout)
                futures = [self._futures.pop(r.request_id) for r in batch]
                if batch:
                    if stream.live:
                        self.telemetry.record_refill(len(batch))
                    else:
                        self.telemetry.record_batch(len(batch))
                    self.telemetry.record_queue_depth(len(self._batcher))
            try:
                if batch:
                    indices = stream.admit([request.task for request in batch])
                    for index, request, future in zip(indices, batch, futures):
                        inflight[index] = (request, future)
                    for request in batch:
                        request.batch_occupancy = stream.live
                stats = stream.step(1)
                completion = self._now_ms()
                completed = stream.take_completed()
            except BaseException as exc:  # engine failure fans out, never hangs
                for _, future in inflight.values():
                    future.set_exception(exc)
                inflight.clear()
                with self._wakeup:
                    self._stopping = True
                    self._closed = True
                    stranded = self._batcher.preempt(lambda request: True)
                    for request in stranded:
                        pending = self._futures.pop(request.request_id, None)
                        if pending is not None:
                            pending.set_exception(exc)
                return
            resolved = []
            with self._lock:
                for stat in stats:
                    self.telemetry.record_slice(stat)
                for index, result in completed:
                    request, future = inflight.pop(index)
                    request.result = result
                    request.completion_ms = completion
                    self.telemetry.record_request(request.wait_ms, request.latency_ms)
                    resolved.append((future, result))
            for future, result in resolved:
                future.set_result(result)

    def _execute(
        self,
        batch: List[ServeRequest],
        futures: List["Future[AlignmentResult]"],
    ) -> None:
        try:
            results = self._engine(
                [request.task for request in batch], batch_size=self._engine_bucket
            )
            if len(results) != len(batch):
                # A broken custom engine must error, not strand futures.
                raise ValueError(
                    f"engine {self.config.engine!r} returned {len(results)} "
                    f"results for a batch of {len(batch)} tasks"
                )
        except BaseException as exc:  # engine failure fans out, never hangs
            for future in futures:
                future.set_exception(exc)
            return
        completion = self._now_ms()
        with self._lock:
            for request in batch:
                request.completion_ms = completion
                self.telemetry.record_request(request.wait_ms, request.latency_ms)
        for request, result, future in zip(batch, results, futures):
            request.result = result
            future.set_result(result)
