"""Load generation: arrival processes over alignment workloads.

A :class:`RequestTrace` pairs a task sequence with arrival times (in
milliseconds from the start of the drain); :class:`LoadGenerator` builds
traces from any task workload -- most usefully a registry dataset's
seeded/chained extension tasks (:meth:`LoadGenerator.from_dataset`),
which is the "heavy traffic" shape the service exists for.

Three arrival processes, all deterministic given the seed:

``poisson``
    Memoryless arrivals at a target rate (exponential inter-arrival
    gaps) -- the steady-traffic model.
``bursty``
    An ON/OFF process: Poisson arrivals at ``on_rate_rps`` during ON
    windows, silence during OFF windows.  Bursts are what make
    micro-batching shine (deep queues form, batches fill) and what
    stresses the ``max_wait_ms`` bound when they end.
``replay``
    Evenly spaced arrivals at a fixed rate in workload order -- the
    closed, reproducible process used for regression records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.align.types import AlignmentTask
from repro.serve.queueing import ServeRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.cache import SpecLike

__all__ = ["RequestTrace", "LoadGenerator"]


@dataclass(frozen=True)
class RequestTrace:
    """An arrival schedule over concrete tasks (arrivals in ms, sorted)."""

    name: str
    process: str
    tasks: Tuple[AlignmentTask, ...]
    arrivals_ms: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.tasks) != len(self.arrivals_ms):
            raise ValueError("tasks and arrivals_ms must have equal length")
        if any(t < 0 for t in self.arrivals_ms):
            raise ValueError("arrival times must be non-negative")
        if any(
            later < earlier
            for earlier, later in zip(self.arrivals_ms, self.arrivals_ms[1:])
        ):
            raise ValueError("arrival times must be non-decreasing")

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def duration_ms(self) -> float:
        """Time of the last arrival."""
        return self.arrivals_ms[-1] if self.arrivals_ms else 0.0

    @property
    def offered_rate_rps(self) -> float:
        """Mean offered load in requests per second."""
        if len(self) <= 1 or self.duration_ms <= 0:
            return 0.0
        return (len(self) - 1) / self.duration_ms * 1000.0

    def requests(self) -> List[ServeRequest]:
        """Fresh :class:`ServeRequest` objects for one drain.

        A new list every call, so the same trace can be drained under
        several policies without stale timestamps leaking between runs.
        """
        return [
            ServeRequest(task=task, request_id=index, arrival_ms=float(arrival))
            for index, (task, arrival) in enumerate(zip(self.tasks, self.arrivals_ms))
        ]


class LoadGenerator:
    """Builds request traces over one task workload.

    When a trace asks for more requests than the workload holds, tasks
    are cycled in order (the service treats each submission as a fresh
    request; results stay per-request).
    """

    def __init__(
        self,
        tasks: Sequence[AlignmentTask],
        *,
        name: str = "tasks",
        seed: int = 0,
    ) -> None:
        if not tasks:
            raise ValueError("LoadGenerator needs a non-empty task workload")
        self.tasks: Tuple[AlignmentTask, ...] = tuple(tasks)
        self.name = name
        self.seed = int(seed)

    @classmethod
    def from_dataset(
        cls,
        dataset: Union[str, "SpecLike"],
        *,
        seed: int = 0,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
    ) -> "LoadGenerator":
        """A generator over a dataset's or registered workload's tasks.

        ``dataset`` accepts anything ``Session(dataset=...)`` does: a
        seeded dataset name or spec, or a registered workload name/spec
        (:mod:`repro.workloads` -- FASTA-backed, adversarial synthetic,
        protein-style scoring).  The workload comes through the same
        cached path :meth:`repro.api.Session.workload` uses, so a serve
        drain and a figure run of the same name share the persistent
        cache entry.
        """
        from repro.api.session import Session

        session = Session(dataset=dataset, cache_dir=cache_dir, use_cache=use_cache)
        spec = session.dataset
        assert spec is not None
        return cls(session.workload(), name=spec.name, seed=seed)

    # ------------------------------------------------------------------
    def _cycle_tasks(self, num_requests: int) -> Tuple[AlignmentTask, ...]:
        return tuple(self.tasks[i % len(self.tasks)] for i in range(num_requests))

    def _resolve(self, num_requests: Optional[int]) -> int:
        n = len(self.tasks) if num_requests is None else int(num_requests)
        if n <= 0:
            raise ValueError("num_requests must be positive")
        return n

    def _rng(self, seed: Optional[int]) -> np.random.Generator:
        return np.random.default_rng(self.seed if seed is None else seed)

    # ------------------------------------------------------------------
    # arrival processes
    # ------------------------------------------------------------------
    def poisson(
        self,
        rate_rps: float,
        num_requests: Optional[int] = None,
        *,
        seed: Optional[int] = None,
    ) -> RequestTrace:
        """Poisson arrivals at ``rate_rps`` requests per second."""
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        n = self._resolve(num_requests)
        gaps = self._rng(seed).exponential(scale=1000.0 / rate_rps, size=n)
        gaps[0] = 0.0  # the drain starts with the first request
        arrivals = np.cumsum(gaps)
        return RequestTrace(
            name=self.name,
            process="poisson",
            tasks=self._cycle_tasks(n),
            arrivals_ms=tuple(float(t) for t in arrivals),
        )

    def bursty(
        self,
        on_rate_rps: float,
        num_requests: Optional[int] = None,
        *,
        on_ms: float = 50.0,
        off_ms: float = 200.0,
        seed: Optional[int] = None,
    ) -> RequestTrace:
        """ON/OFF arrivals: Poisson bursts separated by silent gaps."""
        if on_rate_rps <= 0:
            raise ValueError("on_rate_rps must be positive")
        if on_ms <= 0 or off_ms < 0:
            raise ValueError("on_ms must be positive and off_ms non-negative")
        n = self._resolve(num_requests)
        rng = self._rng(seed)
        arrivals: List[float] = []
        now = 0.0
        remaining_on = on_ms
        for index in range(n):
            gap = 0.0 if index == 0 else float(rng.exponential(1000.0 / on_rate_rps))
            while gap >= remaining_on:
                gap -= remaining_on
                now += remaining_on + off_ms
                remaining_on = on_ms
            now += gap
            remaining_on -= gap
            arrivals.append(now)
        return RequestTrace(
            name=self.name,
            process="bursty",
            tasks=self._cycle_tasks(n),
            arrivals_ms=tuple(arrivals),
        )

    def replay(
        self,
        rate_rps: float,
        num_requests: Optional[int] = None,
    ) -> RequestTrace:
        """Deterministic evenly spaced arrivals in workload order."""
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        n = self._resolve(num_requests)
        interval = 1000.0 / rate_rps
        return RequestTrace(
            name=self.name,
            process="replay",
            tasks=self._cycle_tasks(n),
            arrivals_ms=tuple(index * interval for index in range(n)),
        )
