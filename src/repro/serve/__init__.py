"""``repro.serve`` -- the online micro-batching alignment service.

The batch engine (:mod:`repro.align.batch`) gets its throughput from
forming large, length-homogeneous batches, but figure reproductions only
exercise it *offline*: the whole workload is known up front.  This
package turns the engine into an online system, the way inference
servers micro-batch GPU work: individual align requests are queued,
coalesced into engine-sized batches by a micro-batching scheduler
(:class:`MicroBatcher`), executed through the registered
:mod:`repro.api` engines, and fanned back to per-request futures.

Three entry points, one policy:

:func:`replay`
    Deterministic virtual-clock simulation of the service over a
    :class:`RequestTrace` (arrival times + tasks).  With modeled service
    times two replays are bit-identical; with measured service times it
    is an offline load test of the real engine.
:class:`AlignmentService`
    The live threaded service: ``submit(task)`` returns a
    :class:`concurrent.futures.Future`, a scheduler thread cuts batches,
    and a thread-pool option shards batch execution over workers
    (mirroring :mod:`repro.bench.runner`'s sharding).
``python -m repro.serve``
    Load-generates against a registry dataset, drains the trace with and
    without micro-batching, prints latency/throughput telemetry and
    writes a versioned ``BENCH_serve.json`` record that
    ``python -m repro.bench compare`` can gate.

The single service scales out through :mod:`repro.serve.cluster`: a
:class:`ShardRouter` places requests deterministically across N worker
processes (:class:`ClusterService`), bounded admission backpressure
lives in :class:`AdmissionController`, and :func:`cluster_replay` is the
virtual-clock counterpart whose results stay bit-identical to
``Session.align`` for any trace and shard count.  The cluster is
elastic and chaos-testable: :meth:`ClusterService.scale_to` /
:class:`ScalePlan` resize the shard set live or on the virtual clock, a
:class:`FaultPlan` injects deterministic crashes, stalls and
dropped/duplicated dispatches into both layers, and
:func:`autotune_router` (``ClusterConfig(autotune=...)``) picks the
routing policy/stride that minimises shard load imbalance from observed
traffic.

Served scores are bit-identical to :meth:`repro.api.Session.align` on
the same tasks -- batching changes *when* work happens, never *what* is
computed (``tests/serve/test_service.py`` pins this).
"""

from repro.serve.config import ServeConfig
from repro.serve.queueing import (
    ADMISSION_POLICIES,
    AdmissionController,
    AdmissionDecision,
    MicroBatcher,
    RequestRejected,
    ServeRequest,
)
from repro.serve.telemetry import (
    ADMISSION_OUTCOMES,
    SERVE_SCHEMA_VERSION,
    LatencySummary,
    TelemetrySink,
    serve_bench_record,
)
from repro.serve.loadgen import LoadGenerator, RequestTrace
from repro.serve.scheduler import ServeReport, modeled_service_ms, replay
from repro.serve.service import AlignmentService
from repro.serve.autotune import (
    AutotuneConfig,
    RouterChoice,
    TrafficObserver,
    autotune_router,
    shard_load_imbalance,
)
from repro.serve.faults import (
    CrashFault,
    DelayFault,
    DropFault,
    DuplicateFault,
    FaultPlan,
    ShardFaults,
)
from repro.serve.cluster import (
    ROUTE_POLICIES,
    ClusterConfig,
    ClusterReport,
    ClusterService,
    ScalePlan,
    ShardFailedError,
    ShardRouter,
    cluster_replay,
)

__all__ = [
    "ADMISSION_OUTCOMES",
    "ADMISSION_POLICIES",
    "ROUTE_POLICIES",
    "SERVE_SCHEMA_VERSION",
    "ServeConfig",
    "ServeRequest",
    "MicroBatcher",
    "AdmissionController",
    "AdmissionDecision",
    "RequestRejected",
    "LatencySummary",
    "TelemetrySink",
    "serve_bench_record",
    "LoadGenerator",
    "RequestTrace",
    "ServeReport",
    "modeled_service_ms",
    "replay",
    "AlignmentService",
    "ClusterConfig",
    "ClusterReport",
    "ClusterService",
    "ScalePlan",
    "ShardFailedError",
    "ShardRouter",
    "cluster_replay",
    "AutotuneConfig",
    "RouterChoice",
    "TrafficObserver",
    "autotune_router",
    "shard_load_imbalance",
    "CrashFault",
    "DelayFault",
    "DropFault",
    "DuplicateFault",
    "FaultPlan",
    "ShardFaults",
]
