"""Request queue and micro-batch formation policy.

:class:`MicroBatcher` is the *pure* scheduling policy shared by the
virtual-clock replay (:func:`repro.serve.scheduler.replay`) and the live
threaded service (:class:`repro.serve.service.AlignmentService`).  It
holds pending :class:`ServeRequest` objects in arrival order and answers
two questions:

* **when** to cut a batch -- as soon as ``max_batch_size`` requests are
  pending, or once the oldest pending request has waited
  ``max_wait_ms`` (no request is ever held longer hoping for
  batch-mates); and
* **which** requests ride together -- the length-aware policy reuses
  :func:`repro.core.uneven_bucketing.length_bucket_order` over the
  pending requests' anti-diagonal counts, then dispatches the bucket
  containing the oldest request, so co-batched tasks have similar sweep
  lengths and engine-side padding stays cheap.  (This is the serving
  mirror of the batch engine's own bucketing; see DESIGN.md.)

Streaming engines add a third question -- **who refills** a lane freed
by compaction mid-sweep.  :meth:`MicroBatcher.take` answers it: remove
up to ``limit`` requests for immediate admission into an in-flight
batch, highest :attr:`ServeRequest.priority` class first and oldest
first within a class.  Length-aware grouping deliberately does not
apply to refill -- a freed lane takes whatever is oldest/most urgent,
exactly like the paper's subwarp rejoining takes the next task
regardless of length.  :meth:`MicroBatcher.preempt` is the matching
preemption hook: pull chosen requests back out of the queue (to
re-prioritise, reject under overload, or hand to another server).

Because the policy object never touches clocks, threads or engines, the
replay and the live service form *identical* batches for identical
arrival sequences.

The sharded cluster (:mod:`repro.serve.cluster`) adds a fourth question
-- **whether** a request is admitted at all.  :class:`AdmissionController`
is the bounded-admission policy: a per-shard pending budget
(``max_pending``, counted over queued *and* in-flight requests) plus
optional per-priority-class limits, resolved under one of three overload
policies -- ``"queue"`` (block the submitter: explicit backpressure),
``"reject"`` (fail the arrival with :class:`RequestRejected`), or
``"shed"`` (evict the youngest strictly-lower-priority queued request to
make room).  Like the batcher it is pure -- no clocks, no locks -- so
the same decisions are unit-testable and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.align.types import AlignmentResult, AlignmentTask
from repro.core.uneven_bucketing import length_bucket_order

__all__ = [
    "ServeRequest",
    "MicroBatcher",
    "ADMISSION_POLICIES",
    "AdmissionDecision",
    "AdmissionController",
    "RequestRejected",
]

#: Overload policies of :class:`AdmissionController`: ``"queue"`` blocks
#: the submitter until space frees (backpressure), ``"reject"`` refuses
#: the arrival, ``"shed"`` evicts queued lower-priority work to admit it.
ADMISSION_POLICIES = ("queue", "reject", "shed")


class RequestRejected(RuntimeError):
    """An arrival was refused (or a queued request shed) under overload."""


@dataclass(eq=False)
class ServeRequest:
    """One align request travelling through the service.

    Timestamps are in service-clock milliseconds (virtual for replays,
    monotonic wall time for the live service); ``dispatch_ms`` /
    ``completion_ms`` / ``result`` are filled in as the request
    progresses.  Requests compare by identity (``eq=False``): two
    submissions of the same task are distinct requests.

    ``priority`` is the request's class (higher serves first); it only
    influences *refill* selection (:meth:`MicroBatcher.take`) -- batch
    formation stays strictly arrival-ordered so the ``max_wait_ms``
    deadline argument is unchanged.
    """

    task: AlignmentTask
    request_id: int
    arrival_ms: float = 0.0
    priority: int = 0
    dispatch_ms: Optional[float] = None
    completion_ms: Optional[float] = None
    batch_occupancy: int = 0
    result: Optional[AlignmentResult] = None

    @property
    def done(self) -> bool:
        return self.completion_ms is not None

    @property
    def wait_ms(self) -> float:
        """Queueing delay: time between arrival and batch dispatch."""
        if self.dispatch_ms is None:
            raise ValueError(f"request {self.request_id} was never dispatched")
        return self.dispatch_ms - self.arrival_ms

    @property
    def latency_ms(self) -> float:
        """End-to-end latency: time between arrival and completion."""
        if self.completion_ms is None:
            raise ValueError(f"request {self.request_id} never completed")
        return self.completion_ms - self.arrival_ms

    @property
    def workload(self) -> int:
        """Batch-formation workload estimate (anti-diagonal count)."""
        return self.task.num_antidiagonals


class MicroBatcher:
    """Pending-request queue plus the batch-formation policy.

    Requests must be added in arrival order (both drivers do); the
    oldest pending request is therefore always at the front, which is
    what makes :meth:`next_deadline_ms` O(1).
    """

    def __init__(
        self,
        max_batch_size: int,
        max_wait_ms: float,
        *,
        length_aware: bool = True,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.length_aware = bool(length_aware)
        self._pending: List[ServeRequest] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> Tuple[ServeRequest, ...]:
        """Snapshot of the queue (oldest first)."""
        return tuple(self._pending)

    def add(self, request: ServeRequest) -> None:
        """Enqueue one request (callers add in arrival order)."""
        self._pending.append(request)

    # ------------------------------------------------------------------
    # cut conditions
    # ------------------------------------------------------------------
    def size_ready(self) -> bool:
        """A full batch is pending."""
        return len(self._pending) >= self.max_batch_size

    def next_deadline_ms(self) -> Optional[float]:
        """Clock time at which the oldest pending request must dispatch."""
        if not self._pending:
            return None
        return self._pending[0].arrival_ms + self.max_wait_ms

    def ready(self, now_ms: float) -> bool:
        """Whether a batch should be cut at ``now_ms``."""
        if not self._pending:
            return False
        deadline = self.next_deadline_ms()
        assert deadline is not None
        return self.size_ready() or now_ms >= deadline

    # ------------------------------------------------------------------
    # batch selection
    # ------------------------------------------------------------------
    def form_batch(self, now_ms: float) -> List[ServeRequest]:
        """Cut and return the next batch (empty when nothing pends).

        The batch always contains the oldest pending request (the one
        whose deadline forced the cut).  With ``length_aware`` and more
        pending requests than fit, members are the oldest request's
        length bucket; otherwise the FIFO prefix.  Dispatch time and
        batch occupancy are stamped on every member.
        """
        if not self._pending:
            return []
        if self.length_aware and len(self._pending) > self.max_batch_size:
            workloads = [request.workload for request in self._pending]
            buckets = length_bucket_order(workloads, self.max_batch_size)
            chosen = next(bucket for bucket in buckets if 0 in bucket)
        else:
            chosen = list(range(min(len(self._pending), self.max_batch_size)))
        members = set(chosen)
        batch = [self._pending[index] for index in chosen]
        self._pending = [
            request
            for index, request in enumerate(self._pending)
            if index not in members
        ]
        for request in batch:
            request.dispatch_ms = now_ms
            request.batch_occupancy = len(batch)
        return batch

    # ------------------------------------------------------------------
    # streaming refill + preemption hooks
    # ------------------------------------------------------------------
    def take(self, limit: int, now_ms: float) -> List[ServeRequest]:
        """Remove up to ``limit`` requests for refill into an in-flight batch.

        Selection is by priority class (highest :attr:`ServeRequest.priority`
        first), oldest first within a class.  Length-aware grouping does not
        apply: a freed lane takes the most urgent pending request regardless
        of its sweep length (see the module docstring).  Dispatch time is
        stamped on every taken request; the caller stamps
        ``batch_occupancy`` once it knows the post-admission live count.
        """
        if limit <= 0 or not self._pending:
            return []
        order = sorted(
            range(len(self._pending)),
            key=lambda index: (-self._pending[index].priority, index),
        )
        members = set(order[: int(limit)])
        batch = [self._pending[index] for index in sorted(members)]
        self._pending = [
            request
            for index, request in enumerate(self._pending)
            if index not in members
        ]
        for request in batch:
            request.dispatch_ms = now_ms
        return batch

    def restore(self, requests: Sequence[ServeRequest]) -> None:
        """Return requests whose dispatch was revoked to the queue.

        The inverse of :meth:`take`/:meth:`form_batch` for the fault and
        resize paths: a dropped dispatch (:class:`repro.serve.faults.DropFault`)
        or a draining shard puts its requests back so they go out again
        later.  The queue re-sorts by ``(arrival_ms, request_id)``, so the
        oldest-request-at-front invariant behind :meth:`next_deadline_ms`
        survives out-of-order returns; stale ``dispatch_ms`` stamps are
        cleared (the next dispatch re-stamps them).
        """
        if not requests:
            return
        for request in requests:
            request.dispatch_ms = None
            self._pending.append(request)
        self._pending.sort(key=lambda request: (request.arrival_ms, request.request_id))

    def preempt(
        self, predicate: Callable[[ServeRequest], bool]
    ) -> List[ServeRequest]:
        """Remove and return every pending request matching ``predicate``.

        This is the scheduler-side preemption hook: under overload a
        driver can pull low-priority requests back out of the queue to
        reject, re-prioritise, or hand to another server.  Requests keep
        their stamps; the remaining queue preserves arrival order (so
        :meth:`next_deadline_ms` stays O(1)).
        """
        taken = [request for request in self._pending if predicate(request)]
        if taken:
            kept = set(map(id, taken))
            self._pending = [
                request for request in self._pending if id(request) not in kept
            ]
        return taken


# ----------------------------------------------------------------------
# bounded admission
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``action`` is ``"accept"``, ``"reject"``, ``"wait"`` (backpressure:
    the caller should block until space frees and re-decide) or
    ``"shed"`` (accept the arrival after evicting ``victims`` -- queued
    requests of strictly lower priority -- from the queue, e.g. via
    :meth:`MicroBatcher.preempt`).
    """

    action: str
    victims: Tuple[ServeRequest, ...] = ()

    @property
    def admitted(self) -> bool:
        """Whether the arrival enters the queue (accept or shed)."""
        return self.action in ("accept", "shed")


@dataclass(frozen=True)
class AdmissionController:
    """Pure bounded-admission policy (reject / queue / shed).

    Parameters
    ----------
    max_pending:
        Per-queue budget counted over queued *and* in-flight requests
        (``None`` = unbounded).  In-flight work cannot be revoked, so
        only queued requests are ever shed.
    policy:
        What happens to an arrival that would exceed a limit -- one of
        :data:`ADMISSION_POLICIES`.
    class_limits:
        Optional per-priority-class budgets: ``{priority: limit}``.  A
        class at its limit rejects further arrivals of that class
        regardless of policy -- shedding can only evict *strictly lower*
        priority work, which never frees a slot of the arrival's own
        class, and queueing behind one's own class would invert the
        priority order.

    The controller is a frozen dataclass of plain values: deciding twice
    over the same queue snapshot yields the same decision, which is what
    lets the cluster replay and the live cluster agree.
    """

    max_pending: Optional[int] = None
    policy: str = "queue"
    class_limits: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"policy must be one of {ADMISSION_POLICIES}, got {self.policy!r}"
            )
        if self.max_pending is not None and self.max_pending <= 0:
            raise ValueError("max_pending must be positive when given")
        for priority, limit in self.class_limits.items():
            if limit <= 0:
                raise ValueError(
                    f"class limit for priority {priority} must be positive, got {limit}"
                )

    @property
    def bounded(self) -> bool:
        """Whether any limit is configured at all."""
        return self.max_pending is not None or bool(self.class_limits)

    def decide(
        self,
        request: ServeRequest,
        queued: Sequence[ServeRequest],
        inflight: Sequence[ServeRequest] = (),
    ) -> AdmissionDecision:
        """Decide ``request``'s fate against the current queue snapshot.

        ``queued`` are the sheddable pending requests (oldest first, the
        :attr:`MicroBatcher.pending` snapshot); ``inflight`` the
        dispatched-but-incomplete ones, which count against the budgets
        but can never be victims.
        """
        class_limit = self.class_limits.get(request.priority)
        if class_limit is not None:
            in_class = sum(
                1
                for other in (*queued, *inflight)
                if other.priority == request.priority
            )
            if in_class >= class_limit:
                # A class at its own limit cannot be shed around (see the
                # class docstring), and waiting behind one's own class
                # would invert priority order -- so this is always a
                # rejection, even under policy="queue"/"shed".
                return AdmissionDecision(action="reject")
        if self.max_pending is None:
            return AdmissionDecision(action="accept")
        total = len(queued) + len(inflight)
        if total < self.max_pending:
            return AdmissionDecision(action="accept")
        if self.policy == "reject":
            return AdmissionDecision(action="reject")
        if self.policy == "queue":
            return AdmissionDecision(action="wait")
        # policy == "shed": evict the lowest-priority, youngest queued
        # request -- but only if it is *strictly* below the arrival
        # (shedding a peer to admit a peer gains nothing).
        victim: Optional[ServeRequest] = None
        for candidate in queued:  # oldest first; later = younger wins ties
            if candidate.priority >= request.priority:
                continue
            if victim is None or candidate.priority <= victim.priority:
                victim = candidate
        if victim is None:
            return AdmissionDecision(action="reject")
        return AdmissionDecision(action="shed", victims=(victim,))
