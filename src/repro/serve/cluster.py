"""Sharded multi-process serving: route, admit, serve, survive crashes.

One :class:`~repro.serve.service.AlignmentService` is GIL-bound: however
fast the engine, a single scheduler thread caps the whole stack.  This
module scales the serving layer *horizontally*, the way the paper scales
lanes across more hardware (fig15): N worker **processes**, each running
its own service with streaming refill, behind a deterministic
:class:`ShardRouter` front-end.

The pieces, and where the determinism lives:

:class:`ShardRouter`
    A pure routing function ``(task, request_id) -> shard``: ``"hash"``
    mixes the request id through CRC32 (uniform spread), ``"length"``
    groups by anti-diagonal count (co-locating similar sweep lengths,
    the cluster mirror of length-aware batch formation).  The *same*
    function partitions a replay trace and routes live submissions, so
    the virtual-clock study and the live cluster agree on placement.
:func:`cluster_replay`
    Deterministic cross-shard replay: the trace is partitioned by the
    router, each partition drains through the ordinary
    :func:`repro.serve.scheduler.replay` (arrival times unchanged --
    shards share one clock), and the per-shard event streams merge into
    one :class:`ClusterReport`.  Results are bit-identical to
    :meth:`repro.api.Session.align` on the trace's tasks, makespan is
    the slowest shard's makespan, and merged percentiles are computed on
    the pooled raw samples (:meth:`TelemetrySink.merge`), never by
    averaging per-shard percentiles.
:class:`ClusterService`
    The live counterpart: worker processes are spawned with the same
    spawn-safe registry rebuilding :mod:`repro.bench.runner` uses for
    suites (the engine's defining module travels by name and is
    re-imported inside the worker), requests flow through per-shard
    parent-side :class:`~repro.serve.queueing.MicroBatcher` queues under
    an :class:`~repro.serve.queueing.AdmissionController` (bounded
    admission: queue / reject / shed), and a credit window keeps each
    worker's in-flight set bounded so queued work stays sheddable.  A
    monitor thread per shard watches the worker process; on a crash the
    stranded queue is pulled back through the existing
    :meth:`MicroBatcher.preempt` hook and fanned out -- failed fast with
    :class:`ShardFailedError`, or re-queued on surviving shards when
    ``ClusterConfig(retry_failed=True)`` -- and the worker is restarted
    (up to ``max_restarts``) for subsequent traffic.

Telemetry is aggregated under ``SERVE_SCHEMA_VERSION`` 3: the merged
summary carries cluster-wide p50/p95/p99, queue depth, lane occupancy
and admission counters, plus a ``"shards"`` block with each shard's own
summary (see :mod:`repro.serve.telemetry`).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, field
from importlib import import_module
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.align.types import AlignmentResult, AlignmentTask
from repro.serve.config import ServeConfig
from repro.serve.loadgen import RequestTrace
from repro.serve.queueing import (
    AdmissionController,
    MicroBatcher,
    RequestRejected,
    ServeRequest,
)
from repro.serve.scheduler import ServeReport, ServiceTime, replay
from repro.serve.telemetry import TelemetrySink

__all__ = [
    "ROUTE_POLICIES",
    "ShardRouter",
    "ShardFailedError",
    "ClusterConfig",
    "ClusterReport",
    "cluster_replay",
    "ClusterService",
]

#: Routing policies of :class:`ShardRouter`: ``"hash"`` spreads requests
#: uniformly by request id, ``"length"`` co-locates similar
#: anti-diagonal counts so per-shard batches stay length-homogeneous.
ROUTE_POLICIES = ("hash", "length")

#: Exit code a worker uses for injected faults (:meth:`ClusterService.fail_shard`).
_CRASH_EXIT_CODE = 70

#: Control token that makes a worker die abruptly (chaos hook).
_CRASH = "__crash__"


class ShardFailedError(RuntimeError):
    """A worker process died with requests still queued or in flight.

    Carries the shard index and the worker's exit code so callers can
    tell a crash (negative signal / nonzero code) from an injected fault
    (``fail_shard``).  Raised from the stranded requests' futures -- and
    from :meth:`ClusterService.submit` when every shard is down.
    """

    def __init__(self, shard: int, exitcode: Optional[int] = None) -> None:
        detail = f" (exit code {exitcode})" if exitcode is not None else ""
        super().__init__(f"serving shard {shard} failed{detail}")
        self.shard = shard
        self.exitcode = exitcode


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardRouter:
    """Deterministic request-to-shard placement (pure, processless).

    ``"hash"`` routes by CRC32 of the request id -- uniform and
    history-free, the classic front-end spread.  ``"length"`` routes by
    ``task.num_antidiagonals // length_stride``, so tasks with similar
    sweep lengths land on the same shard and its batches stay cheap to
    pad -- the cluster-level mirror of the batcher's length-aware
    formation.  Both are pure functions of ``(task, request_id)``:
    :func:`cluster_replay` partitions traces with the same object the
    live :class:`ClusterService` routes with, which is what makes
    cluster replays deterministic.
    """

    shards: int
    policy: str = "hash"
    length_stride: int = 128

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.policy not in ROUTE_POLICIES:
            raise ValueError(
                f"router policy must be one of {ROUTE_POLICIES}, got {self.policy!r}"
            )
        if self.length_stride <= 0:
            raise ValueError("length_stride must be positive")

    def route(self, task: AlignmentTask, request_id: int) -> int:
        """The shard index serving ``request_id`` carrying ``task``."""
        if self.policy == "hash":
            key = zlib.crc32(int(request_id).to_bytes(8, "little"))
        else:  # "length"
            key = task.num_antidiagonals // self.length_stride
        return int(key) % self.shards

    def partition(self, tasks: Sequence[AlignmentTask]) -> List[List[int]]:
        """Per-shard lists of trace indices (submission order preserved)."""
        shards: List[List[int]] = [[] for _ in range(self.shards)]
        for index, task in enumerate(tasks):
            shards[self.route(task, index)].append(index)
        return shards


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterConfig:
    """Policy of one sharded serving cluster.

    Parameters
    ----------
    serve:
        The per-shard :class:`ServeConfig` -- every worker process runs
        an ordinary :class:`AlignmentService` under this configuration
        (engine, refill mode, micro-batching knobs all apply per shard).
    shards:
        Number of worker processes (>= 1).
    router, length_stride:
        Routing policy (see :class:`ShardRouter`).
    max_pending, admission, class_limits:
        Bounded admission per shard (see
        :class:`~repro.serve.queueing.AdmissionController`): the pending
        budget counts queued plus in-flight requests of one shard, and
        ``admission`` picks the overload policy (``"queue"`` blocks the
        submitter, ``"reject"`` raises
        :class:`~repro.serve.queueing.RequestRejected`, ``"shed"``
        evicts queued lower-priority work).  Admission is a live-service
        concern: :func:`cluster_replay` serves every request of a trace
        (which is what keeps replays bit-identical to ``Session.align``).
    max_inflight:
        Credit window: how many dispatched-but-uncompleted requests one
        worker may hold (``None`` = twice the serve batch size).  Work
        beyond the window stays in the parent-side queue, where it is
        still sheddable and preemptable.
    retry_failed:
        When a worker crashes, re-queue its stranded requests on the
        surviving shards instead of failing their futures with
        :class:`ShardFailedError`.
    max_restarts:
        How many times each crashed worker is replaced (for traffic
        arriving *after* the crash; stranded requests are never silently
        replayed on the replacement -- that is what ``retry_failed``
        controls).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
        Anything but ``"fork"`` requires the engine to live in an
        importable module, exactly like :mod:`repro.bench.runner`'s
        spawn-safe suite rule.
    """

    serve: ServeConfig = field(default_factory=ServeConfig)
    shards: int = 2
    router: str = "hash"
    length_stride: int = 128
    max_pending: Optional[int] = None
    admission: str = "queue"
    class_limits: Mapping[int, int] = field(default_factory=dict)
    max_inflight: Optional[int] = None
    retry_failed: bool = False
    max_restarts: int = 1
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                "start_method must be None, 'fork', 'spawn' or 'forkserver', "
                f"got {self.start_method!r}"
            )
        # Validate eagerly by constructing the pure policy objects.
        self.router_for()
        self.admission_controller()

    def router_for(self) -> ShardRouter:
        """The routing function replay and the live cluster share."""
        return ShardRouter(
            shards=self.shards, policy=self.router, length_stride=self.length_stride
        )

    def admission_controller(self) -> AdmissionController:
        """The per-shard bounded-admission policy."""
        return AdmissionController(
            max_pending=self.max_pending,
            policy=self.admission,
            class_limits=dict(self.class_limits),
        )

    def replace(self, **changes: Any) -> "ClusterConfig":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    @property
    def policy_name(self) -> str:
        """Default record label (``"shards4"`` for a 4-shard cluster)."""
        return f"shards{self.shards}"


# ----------------------------------------------------------------------
# deterministic cross-shard replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterReport:
    """Merged outcome of one cluster drain (duck-types ServeReport).

    ``requests`` are in global submission order with request ids
    re-stamped to trace indices, so :meth:`results` lines up with
    ``Session.align`` on the same tasks.  ``telemetry`` is the merged
    schema-v3 summary: pooled samples at the top level plus a
    ``"shards"`` block of per-shard summaries.
    """

    policy: str
    workload: str
    cluster: ClusterConfig
    shard_reports: Tuple[ServeReport, ...]
    requests: Tuple[ServeRequest, ...]
    makespan_ms: float
    telemetry: Dict[str, object]

    @property
    def config(self) -> ServeConfig:
        """The per-shard serve configuration (record-builder surface)."""
        return self.cluster.serve

    @property
    def shards(self) -> int:
        return len(self.shard_reports)

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of virtual drain time."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.num_requests / self.makespan_ms * 1000.0

    def results(self) -> List[AlignmentResult]:
        """Alignment results in submission (trace) order."""
        out: List[AlignmentResult] = []
        for request in self.requests:
            if request.result is None:
                raise ValueError(f"request {request.request_id} has no result")
            out.append(request.result)
        return out

    def scores(self) -> List[int]:
        return [result.score for result in self.results()]


def cluster_replay(
    trace: RequestTrace,
    config: Optional[ClusterConfig] = None,
    *,
    policy: Optional[str] = None,
    service_time: Optional[ServiceTime] = None,
) -> ClusterReport:
    """Drain ``trace`` across ``config.shards`` virtual shards.

    The trace is partitioned by the cluster's :class:`ShardRouter`
    (arrival times unchanged -- every shard reads the same clock), each
    partition drains through the ordinary single-service
    :func:`~repro.serve.scheduler.replay`, and the event streams merge:
    makespan is the slowest shard's makespan, requests return to global
    submission order, and telemetry sinks merge sample-exactly.  With
    ``timing="modeled"`` the whole cluster drain is a pure function of
    (trace, config) -- and results are bit-identical to
    ``Session.align`` for any trace and shard count, because each shard
    runs the same engine arithmetic on its subset.
    """
    config = config or ClusterConfig()
    router = config.router_for()
    partitions = router.partition(trace.tasks)

    parent_sink = TelemetrySink()
    parent_sink.record_admission("admitted", len(trace))

    shard_reports: List[ServeReport] = []
    shard_sinks: List[TelemetrySink] = []
    merged_requests: List[Optional[ServeRequest]] = [None] * len(trace)
    for indices in partitions:
        subtrace = RequestTrace(
            name=trace.name,
            process=trace.process,
            tasks=tuple(trace.tasks[i] for i in indices),
            arrivals_ms=tuple(trace.arrivals_ms[i] for i in indices),
        )
        sink = TelemetrySink()
        report = replay(
            subtrace, config.serve, service_time=service_time, sink=sink
        )
        shard_reports.append(report)
        shard_sinks.append(sink)
        for request, global_index in zip(report.requests, indices):
            # Re-stamp the shard-local id with the trace index so the
            # merged report is self-consistent in global order.
            request.request_id = global_index
            merged_requests[global_index] = request

    merged = parent_sink
    for sink in shard_sinks:
        merged.merge(sink)
    telemetry: Dict[str, object] = merged.summary()
    telemetry["shards"] = {
        str(index): report.telemetry for index, report in enumerate(shard_reports)
    }
    requests = tuple(r for r in merged_requests if r is not None)
    assert len(requests) == len(trace)
    return ClusterReport(
        policy=policy if policy is not None else config.policy_name,
        workload=trace.name,
        cluster=config,
        shard_reports=tuple(shard_reports),
        requests=requests,
        makespan_ms=max(
            (report.makespan_ms for report in shard_reports), default=0.0
        ),
        telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# spawn-safe engine rebuilding (the bench/runner.py pattern)
# ----------------------------------------------------------------------
def _engine_origin(engine: str) -> Optional[str]:
    """The module that registered ``engine`` (None when undiscoverable)."""
    from repro.api.engines import ENGINES

    entry = ENGINES.get(engine)
    return getattr(entry, "__module__", None)


def _ensure_engine_shardable(engine: str, origin: Optional[str], method: str) -> None:
    """Fail fast on engines a spawned worker could never rebuild.

    Mirrors :func:`repro.bench.runner._ensure_suites_shardable`: under
    ``fork`` children inherit the registry, so anything goes; under
    ``spawn``/``forkserver`` the worker re-imports the engine's defining
    module by name, which is impossible for ``__main__`` registrations.
    """
    if method == "fork":
        return
    if origin is None or origin == "__main__":
        raise ValueError(
            f"engine {engine!r} was registered in {origin or 'an unknown module'} "
            f"and cannot be rebuilt in a {method!r}-started worker process; "
            "move the register_engine(...) call into an importable module "
            "(or use start_method='fork')"
        )


def _resolve_engine(engine: str, origin: Optional[str]) -> None:
    """Inside a worker: make ``engine`` resolvable, importing its origin.

    The retry mirrors :func:`repro.bench.runner._build_cell_suite`: a
    spawned interpreter starts with only the built-in registrations, so
    a miss triggers one import of the engine's defining module (which
    re-runs its ``register_engine`` call) before giving up.
    """
    from repro.api.engines import get_engine

    try:
        get_engine(engine)
        return
    except KeyError:
        if not origin or origin == "__main__":
            raise
    import_module(origin)
    get_engine(engine)


def _report_result(
    result_queue: Any, shard: int, request_id: int, future: "Future[AlignmentResult]"
) -> None:
    """Worker-side future callback: ship one outcome to the parent."""
    exc = future.exception()
    try:
        if exc is not None:
            result_queue.put(("error", shard, request_id, exc))
        else:
            result_queue.put(("result", shard, request_id, future.result()))
    except Exception as send_error:  # unpicklable payload: degrade, don't strand
        result_queue.put(
            ("error", shard, request_id, RuntimeError(repr(exc or send_error)))
        )


def _shard_worker(
    shard: int,
    config: ServeConfig,
    engine_origin: Optional[str],
    task_queue: Any,
    result_queue: Any,
) -> None:
    """Worker-process main: one AlignmentService fed from a task queue.

    Messages are ``(request_id, task, priority)`` tuples, a ``None``
    sentinel (drain and exit cleanly), or the crash token (die abruptly
    -- the chaos hook behind :meth:`ClusterService.fail_shard`).  On a
    clean exit the worker ships its telemetry sink state home, then an
    ``("exit", shard)`` marker the parent uses to distinguish shutdown
    from death.
    """
    from repro.serve.service import AlignmentService

    _resolve_engine(config.engine, engine_origin)
    service = AlignmentService(config)
    service.start()
    while True:
        item = task_queue.get()
        if item is None:
            break
        if item == _CRASH:
            os._exit(_CRASH_EXIT_CODE)
        request_id, task, _priority = item
        future = service.submit(task)
        future.add_done_callback(
            lambda f, rid=request_id: _report_result(result_queue, shard, rid, f)
        )
    service.shutdown(wait=True)
    result_queue.put(("telemetry", shard, service.telemetry.state()))
    result_queue.put(("exit", shard))


# ----------------------------------------------------------------------
# the live cluster
# ----------------------------------------------------------------------
class _Shard:
    """Parent-side bookkeeping of one worker process."""

    def __init__(self, index: int, batcher: MicroBatcher) -> None:
        self.index = index
        self.batcher = batcher  # queued, not yet sent to the worker
        self.inflight: Dict[int, ServeRequest] = {}  # sent, not yet completed
        self.futures: Dict[int, "Future[AlignmentResult]"] = {}
        self.process: Any = None
        self.task_queue: Any = None
        self.failed = False
        self.exited = False  # clean worker exit observed
        self.restarts = 0

    @property
    def pending(self) -> int:
        """Queued + in-flight requests charged against admission budgets."""
        return len(self.batcher) + len(self.inflight)


class ClusterService:
    """Live sharded alignment service over worker processes.

    The usage mirrors :class:`AlignmentService`::

        config = ClusterConfig(shards=4, serve=ServeConfig(engine="batch-sliced"))
        with ClusterService(config) as cluster:
            futures = [cluster.submit(task) for task in tasks]
            scores = [f.result().score for f in futures]

    ``submit`` routes through the cluster's :class:`ShardRouter`, applies
    the bounded-admission policy (possibly blocking, rejecting, or
    shedding queued lower-priority work), and parks the request in the
    target shard's parent-side :class:`MicroBatcher`.  A per-shard
    dispatcher thread forwards queued requests to the worker while its
    in-flight window has room (so queued work stays sheddable and
    preemptable), a single collector thread fans results back to
    futures, and a monitor thread per shard turns worker death into
    :class:`ShardFailedError` fan-out / retry / restart.
    """

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self._router = self.config.router_for()
        self._admission = self.config.admission_controller()
        import multiprocessing

        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._engine_origin: Optional[str] = None
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        serve = self.config.serve
        self._shards = [
            _Shard(
                index,
                MicroBatcher(
                    serve.max_batch_size,
                    serve.max_wait_ms,
                    length_aware=serve.length_aware,
                ),
            )
            for index in range(self.config.shards)
        ]
        #: Per-worker in-flight credit: enough to keep a worker's own
        #: batcher busy, small enough that overload stays parent-side
        #: (where it can be shed / preempted / counted).
        self._window = (
            self.config.max_inflight
            if self.config.max_inflight is not None
            else max(2 * serve.max_batch_size, 2)
        )
        self._result_queue: Any = None
        self._dispatchers: List[threading.Thread] = []
        self._monitors: List[threading.Thread] = []
        self._collector: Optional[threading.Thread] = None
        self._next_id = 0
        self._epoch = time.monotonic()
        self._started = False
        self._stopping = False
        self._closed = False
        self.telemetry = TelemetrySink()
        self._shard_sink_states: Dict[int, Mapping[str, object]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return (time.monotonic() - self._epoch) * 1000.0

    def start(self) -> "ClusterService":
        """Spawn the workers and service threads (idempotent)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster has been shut down")
            if self._started:
                return self
            self._started = True
        engine = self.config.serve.engine
        origin = _engine_origin(engine)
        _ensure_engine_shardable(engine, origin, self._ctx.get_start_method())
        self._engine_origin = origin
        self._result_queue = self._ctx.Queue()
        # Processes first, threads second: forking after our own service
        # threads exist is the classic fork-with-threads trap.
        for shard in self._shards:
            self._spawn_worker(shard)
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-cluster-collector", daemon=True
        )
        self._collector.start()
        for shard in self._shards:
            dispatcher = threading.Thread(
                target=self._dispatch_loop,
                args=(shard,),
                name=f"repro-cluster-dispatch-{shard.index}",
                daemon=True,
            )
            dispatcher.start()
            self._dispatchers.append(dispatcher)
            monitor = threading.Thread(
                target=self._monitor_loop,
                args=(shard,),
                name=f"repro-cluster-monitor-{shard.index}",
                daemon=True,
            )
            monitor.start()
            self._monitors.append(monitor)
        return self

    def _spawn_worker(self, shard: _Shard) -> None:
        """Create (or replace) the worker process of one shard."""
        shard.task_queue = self._ctx.Queue()
        shard.process = self._ctx.Process(
            target=_shard_worker,
            args=(
                shard.index,
                self.config.serve,
                self._engine_origin,
                shard.task_queue,
                self._result_queue,
            ),
            name=f"repro-serve-shard-{shard.index}",
            daemon=True,
        )
        shard.process.start()

    def shutdown(self, wait: bool = True) -> None:
        """Drain every queued request, stop workers and threads.

        Queued requests are flushed to their workers, each worker drains
        its own service before exiting (no request is ever dropped by a
        clean shutdown), and any future left unresolved by a worker that
        died mid-shutdown fails with :class:`ShardFailedError`.
        """
        with self._wakeup:
            self._stopping = True
            self._closed = True
            started = self._started
            self._wakeup.notify_all()
        if not started:
            return
        for dispatcher in self._dispatchers:
            dispatcher.join()
        for shard in self._shards:
            if shard.process is not None:
                shard.process.join()
        for monitor in self._monitors:
            monitor.join()
        # Workers flush their queues before exiting, so by now every
        # result/telemetry/exit message is buffered; the sentinel lands
        # behind them and the collector drains in order.
        self._result_queue.put(("stop",))
        if self._collector is not None:
            self._collector.join()
        leftovers: List[Tuple[int, "Future[AlignmentResult]"]] = []
        with self._lock:
            for shard in self._shards:
                for request_id, future in shard.futures.items():
                    leftovers.append((shard.index, future))
                shard.futures.clear()
                shard.inflight.clear()
        for index, future in leftovers:
            if not future.done():
                future.set_exception(ShardFailedError(index))

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def alive_shards(self) -> List[int]:
        """Indices of shards whose worker process is currently healthy."""
        with self._lock:
            return [
                shard.index
                for shard in self._shards
                if not shard.failed
                and shard.process is not None
                and shard.process.is_alive()
            ]

    def fail_shard(self, shard: int) -> None:
        """Chaos hook: make one worker die abruptly (``os._exit``).

        The worker processes everything already queued to it, then dies
        without draining its service -- exactly the stranding a real
        crash produces, but deterministically placed.  Tests use this to
        pin the crash-robustness contract.
        """
        with self._lock:
            target = self._shards[shard]
            if target.task_queue is None:
                raise RuntimeError("cluster is not started")
            target.task_queue.put(_CRASH)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _target_shard(self, task: AlignmentTask, request_id: int) -> _Shard:
        """The routed shard, skipping permanently failed ones (lock held)."""
        first = self._router.route(task, request_id)
        for offset in range(len(self._shards)):
            shard = self._shards[(first + offset) % len(self._shards)]
            if not shard.failed:
                return shard
        raise ShardFailedError(first)

    def submit(
        self, task: AlignmentTask, *, priority: int = 0
    ) -> "Future[AlignmentResult]":
        """Route and enqueue one task; may block, reject, or shed.

        Under ``admission="queue"`` with a full shard this call *blocks*
        until space frees -- that is the explicit backpressure.  Under
        ``"reject"`` it raises :class:`RequestRejected`; under
        ``"shed"`` it may evict a queued strictly-lower-priority request
        (whose future then raises :class:`RequestRejected`).
        """
        self.start()
        shed_futures: List["Future[AlignmentResult]"] = []
        with self._wakeup:
            while True:
                if self._stopping:
                    raise RuntimeError("cluster is shutting down")
                request = ServeRequest(
                    task=task,
                    request_id=self._next_id,
                    arrival_ms=self._now_ms(),
                    priority=priority,
                )
                shard = self._target_shard(task, request.request_id)
                decision = self._admission.decide(
                    request, shard.batcher.pending, tuple(shard.inflight.values())
                )
                if decision.action != "wait":
                    break
                self._wakeup.wait()
            if decision.action == "reject":
                self.telemetry.record_admission("rejected")
                raise RequestRejected(
                    f"shard {shard.index} is at its admission limit "
                    f"({self._admission.max_pending} pending; "
                    f"policy={self._admission.policy!r})"
                )
            if decision.action == "shed":
                victims = set(map(id, decision.victims))
                for victim in shard.batcher.preempt(lambda r: id(r) in victims):
                    future = shard.futures.pop(victim.request_id, None)
                    if future is not None:
                        shed_futures.append(future)
                    self.telemetry.record_admission("shed")
            self._next_id += 1
            result_future: "Future[AlignmentResult]" = Future()
            shard.batcher.add(request)
            shard.futures[request.request_id] = result_future
            self.telemetry.record_admission("admitted")
            self.telemetry.record_queue_depth(
                sum(len(s.batcher) for s in self._shards)
            )
            self._wakeup.notify_all()
        for future in shed_futures:  # user callbacks run outside the lock
            future.set_exception(
                RequestRejected("request shed to admit higher-priority work")
            )
        return result_future

    def map(self, tasks: Sequence[AlignmentTask]) -> List[AlignmentResult]:
        """Submit every task and gather results in submission order."""
        futures = [self.submit(task) for task in tasks]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # service threads
    # ------------------------------------------------------------------
    def _dispatch_loop(self, shard: _Shard) -> None:
        """Forward queued requests to the worker while credit remains."""
        while True:
            with self._wakeup:
                while True:
                    if self._stopping:
                        # Flush everything still queued (workers drain on
                        # the sentinel), then hand off and exit.
                        taken = shard.batcher.take(len(shard.batcher), self._now_ms())
                        break
                    if shard.failed:
                        self._wakeup.wait()
                        continue
                    budget = self._window - len(shard.inflight)
                    if len(shard.batcher) and budget > 0:
                        taken = shard.batcher.take(budget, self._now_ms())
                        break
                    self._wakeup.wait()
                for request in taken:
                    shard.inflight[request.request_id] = request
                if taken:
                    self.telemetry.record_queue_depth(
                        sum(len(s.batcher) for s in self._shards)
                    )
                stopping = self._stopping
                queue = shard.task_queue
            for request in taken:
                queue.put((request.request_id, request.task, request.priority))
            if stopping:
                queue.put(None)
                return

    def _collect_loop(self) -> None:
        """Fan worker messages back to futures and telemetry."""
        while True:
            message = self._result_queue.get()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "telemetry":
                _, index, state = message
                with self._lock:
                    self._shard_sink_states[index] = state
                continue
            if kind == "exit":
                _, index = message
                with self._wakeup:
                    self._shards[index].exited = True
                    self._wakeup.notify_all()
                continue
            _, index, request_id, payload = message
            completion = self._now_ms()
            with self._wakeup:
                shard = self._shards[index]
                request = shard.inflight.pop(request_id, None)
                future = shard.futures.pop(request_id, None)
                if kind == "result" and request is not None:
                    request.result = payload
                    request.completion_ms = completion
                self._wakeup.notify_all()
            if future is not None and not future.done():
                if kind == "result":
                    future.set_result(payload)
                else:
                    future.set_exception(payload)

    def _monitor_loop(self, shard: _Shard) -> None:
        """Health check: join the worker, handle death, maybe restart."""
        while True:
            process = shard.process
            process.join()
            to_fail: List[Tuple["Future[AlignmentResult]", BaseException]] = []
            with self._wakeup:
                if self._stopping or shard.exited:
                    return
                shard.failed = True
                exitcode = process.exitcode
                # Stranded work: everything still queued (pulled back
                # through the preempt hook) plus everything in flight.
                stranded = list(shard.inflight.values())
                shard.inflight.clear()
                stranded += shard.batcher.preempt(lambda request: True)
                stranded.sort(key=lambda request: request.request_id)
                survivors = [
                    s for s in self._shards if s is not shard and not s.failed
                ]
                if self.config.retry_failed and survivors and stranded:
                    for offset, request in enumerate(stranded):
                        target = survivors[offset % len(survivors)]
                        target.batcher.add(request)
                        future = shard.futures.pop(request.request_id, None)
                        if future is not None:
                            target.futures[request.request_id] = future
                    self.telemetry.record_admission("retried", len(stranded))
                else:
                    error = ShardFailedError(shard.index, exitcode=exitcode)
                    for request in stranded:
                        future = shard.futures.pop(request.request_id, None)
                        if future is not None:
                            to_fail.append((future, error))
                restart = shard.restarts < self.config.max_restarts
                if restart:
                    shard.restarts += 1
                self._wakeup.notify_all()
            for future, error in to_fail:  # callbacks outside the lock
                if not future.done():
                    future.set_exception(error)
            if not restart:
                return
            self._spawn_worker(shard)
            with self._wakeup:
                shard.failed = False
                if self._stopping:
                    # Shutdown raced the restart: the dispatcher already
                    # sent its sentinel to the dead worker's queue, so
                    # drain the replacement directly or join() hangs.
                    shard.task_queue.put(None)
                self._wakeup.notify_all()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def telemetry_summary(self) -> Dict[str, object]:
        """Merged schema-v3 summary: pooled samples + per-shard block.

        Worker sinks arrive at clean worker exit, so the per-shard block
        is complete after :meth:`shutdown`; before that it covers the
        shards that have already exited.  Latency percentiles pool the
        workers' per-request samples (service-side latency); admission
        counters and cluster queue depth come from the front-end.
        """
        with self._lock:
            merged = TelemetrySink.from_state(self.telemetry.state())
            states = dict(self._shard_sink_states)
        shards_block: Dict[str, object] = {}
        for index in sorted(states):
            sink = TelemetrySink.from_state(states[index])
            shards_block[str(index)] = sink.summary()
            merged.merge(sink)
        summary: Dict[str, object] = merged.summary()
        summary["shards"] = shards_block
        return summary


# Re-exported by repro.serve; keep Callable referenced for typing tools.
_ServiceTime = Callable[[Sequence[AlignmentTask]], float]
