"""Sharded multi-process serving: route, admit, serve, survive crashes.

One :class:`~repro.serve.service.AlignmentService` is GIL-bound: however
fast the engine, a single scheduler thread caps the whole stack.  This
module scales the serving layer *horizontally*, the way the paper scales
lanes across more hardware (fig15): N worker **processes**, each running
its own service with streaming refill, behind a deterministic
:class:`ShardRouter` front-end.

The pieces, and where the determinism lives:

:class:`ShardRouter`
    A pure routing function ``(task, request_id) -> shard``: ``"hash"``
    mixes the request id through CRC32 (uniform spread), ``"length"``
    groups by anti-diagonal count (co-locating similar sweep lengths,
    the cluster mirror of length-aware batch formation).  The *same*
    function partitions a replay trace and routes live submissions, so
    the virtual-clock study and the live cluster agree on placement.
:func:`cluster_replay`
    Deterministic cross-shard replay: the trace is partitioned by the
    router, each partition drains through the ordinary
    :func:`repro.serve.scheduler.replay` (arrival times unchanged --
    shards share one clock), and the per-shard event streams merge into
    one :class:`ClusterReport`.  Results are bit-identical to
    :meth:`repro.api.Session.align` on the trace's tasks, makespan is
    the slowest shard's makespan, and merged percentiles are computed on
    the pooled raw samples (:meth:`TelemetrySink.merge`), never by
    averaging per-shard percentiles.
:class:`ClusterService`
    The live counterpart: worker processes are spawned with the same
    spawn-safe registry rebuilding :mod:`repro.bench.runner` uses for
    suites (the engine's defining module travels by name and is
    re-imported inside the worker), requests flow through per-shard
    parent-side :class:`~repro.serve.queueing.MicroBatcher` queues under
    an :class:`~repro.serve.queueing.AdmissionController` (bounded
    admission: queue / reject / shed), and a credit window keeps each
    worker's in-flight set bounded so queued work stays sheddable.  A
    monitor thread per shard watches the worker process; on a crash the
    stranded queue is pulled back through the existing
    :meth:`MicroBatcher.preempt` hook and fanned out -- failed fast with
    :class:`ShardFailedError`, or re-queued on surviving shards when
    ``ClusterConfig(retry_failed=True)`` -- and the worker is restarted
    (up to ``max_restarts``) for subsequent traffic.

The cluster is *elastic*: :meth:`ClusterService.scale_to` adds or
removes live worker processes while the admission controller stays up
(a draining shard's queued requests are preempted and re-routed; its
in-flight work finishes on the old worker), and a :class:`ScalePlan`
replays the same resizes on the virtual clock
(``cluster_replay(resize_at=...)``).  The ``"stable"`` router policy
exists for exactly this: a deterministic stable-partition scheme where
resizing from ``n`` to ``n+1`` shards relocates at most
``ceil(keys / (n + 1))`` of any contiguous request-id range -- the
minimal-movement property consistent hashing promises, with a hard
bound (``tests/serve/test_router_stability.py`` pins it).

Failure is a first-class input: a :class:`~repro.serve.faults.FaultPlan`
(``ClusterConfig(faults=...)`` or ``cluster_replay(faults=...)``)
injects crashes, stalls, dropped and duplicated dispatches
deterministically into both the live worker loop and the replay DES, so
the crash/retry/restart contracts are pinned by replayable chaos tests
instead of wall-clock races.

Telemetry is aggregated under ``SERVE_SCHEMA_VERSION`` 4: the merged
summary carries cluster-wide p50/p95/p99, queue depth, lane occupancy,
admission, fault and resize counters, plus a ``"shards"`` block with
each shard's own summary (see :mod:`repro.serve.telemetry`).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, field
from importlib import import_module
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.align.types import AlignmentResult, AlignmentTask
from repro.serve.autotune import (
    AutotuneConfig,
    RouterChoice,
    TrafficObserver,
    autotune_router,
)
from repro.serve.config import ServeConfig
from repro.serve.faults import FaultPlan, ShardFaults
from repro.serve.loadgen import RequestTrace
from repro.serve.queueing import (
    AdmissionController,
    MicroBatcher,
    RequestRejected,
    ServeRequest,
)
from repro.serve.scheduler import ServeReport, ServiceTime, replay
from repro.serve.telemetry import TelemetrySink

__all__ = [
    "ROUTE_POLICIES",
    "ShardRouter",
    "ShardFailedError",
    "ScalePlan",
    "ClusterConfig",
    "ClusterReport",
    "cluster_replay",
    "ClusterService",
]

#: Routing policies of :class:`ShardRouter`: ``"hash"`` spreads requests
#: uniformly by request id, ``"length"`` co-locates similar
#: anti-diagonal counts so per-shard batches stay length-homogeneous,
#: ``"stable"`` is the stable-partition scheme whose resizes relocate the
#: minimal key range (see :meth:`ShardRouter.route`).
ROUTE_POLICIES = ("hash", "length", "stable")

#: Exit code a worker uses for injected faults (:meth:`ClusterService.fail_shard`).
_CRASH_EXIT_CODE = 70

#: Control token that makes a worker die abruptly (chaos hook).
_CRASH = "__crash__"


class ShardFailedError(RuntimeError):
    """A worker process died with requests still queued or in flight.

    Carries the shard index and the worker's exit code so callers can
    tell a crash (negative signal / nonzero code) from an injected fault
    (``fail_shard``).  Raised from the stranded requests' futures -- and
    from :meth:`ClusterService.submit` when every shard is down.
    """

    def __init__(self, shard: int, exitcode: Optional[int] = None) -> None:
        detail = f" (exit code {exitcode})" if exitcode is not None else ""
        super().__init__(f"serving shard {shard} failed{detail}")
        self.shard = shard
        self.exitcode = exitcode


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardRouter:
    """Deterministic request-to-shard placement (pure, processless).

    ``"hash"`` routes by CRC32 of the request id -- uniform and
    history-free, the classic front-end spread.  ``"length"`` routes by
    ``task.num_antidiagonals // length_stride``, so tasks with similar
    sweep lengths land on the same shard and its batches stay cheap to
    pad -- the cluster-level mirror of the batcher's length-aware
    formation.  ``"stable"`` is the elastic-resize policy: a
    jump-style stable partition of the request id
    (Lamping & Veach's chain, evaluated without randomness -- id ``k``
    moves to shard ``j - 1`` at chain level ``j`` iff
    ``k % j == j - 1``), so growing from ``n`` to ``n + 1`` shards moves
    exactly the ids congruent to ``n (mod n + 1)`` -- all onto the new
    shard, at most ``ceil(keys / (n + 1))`` of any contiguous id range
    -- and every other placement is untouched.  The trade-off is a
    mildly uneven spread (the chain favours low shards on small ranges),
    which is why ``"stable"`` is the resize policy rather than the
    default.  All three are pure functions of ``(task, request_id)``:
    :func:`cluster_replay` partitions traces with the same object the
    live :class:`ClusterService` routes with, which is what makes
    cluster replays deterministic.
    """

    shards: int
    policy: str = "hash"
    length_stride: int = 128

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.policy not in ROUTE_POLICIES:
            raise ValueError(
                f"router policy must be one of {ROUTE_POLICIES}, got {self.policy!r}"
            )
        if self.length_stride <= 0:
            raise ValueError("length_stride must be positive")

    def route(self, task: AlignmentTask, request_id: int) -> int:
        """The shard index serving ``request_id`` carrying ``task``."""
        if self.policy == "stable":
            shard = 0
            for level in range(2, self.shards + 1):
                if request_id % level == level - 1:
                    shard = level - 1
            return shard
        if self.policy == "hash":
            key = zlib.crc32(int(request_id).to_bytes(8, "little"))
        else:  # "length"
            key = task.num_antidiagonals // self.length_stride
        return int(key) % self.shards

    def partition(self, tasks: Sequence[AlignmentTask]) -> List[List[int]]:
        """Per-shard lists of trace indices (submission order preserved)."""
        shards: List[List[int]] = [[] for _ in range(self.shards)]
        for index, task in enumerate(tasks):
            shards[self.route(task, index)].append(index)
        return shards


# ----------------------------------------------------------------------
# elastic scaling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScalePlan:
    """A deterministic shard-count schedule for one replayed drain.

    ``steps`` are ``(at_ms, shards)`` pairs in strictly increasing
    virtual time: requests arriving at or after ``at_ms`` route across
    ``shards`` shards (under the same policy/stride).  Requests already
    assigned to a shard that a step removes keep draining there -- a
    replayed scale-down retires shards gracefully, mirroring the live
    :meth:`ClusterService.scale_to` drain.  The live counterpart of a
    plan is simply calling ``scale_to`` at the corresponding moments.
    """

    steps: Tuple[Tuple[float, int], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a ScalePlan needs at least one (at_ms, shards) step")
        normalized = tuple(
            (float(at_ms), int(shards)) for at_ms, shards in self.steps
        )
        object.__setattr__(self, "steps", normalized)
        previous = -1.0
        for at_ms, shards in normalized:
            if at_ms < 0:
                raise ValueError(f"resize time must be non-negative, got {at_ms}")
            if at_ms <= previous:
                raise ValueError("resize times must be strictly increasing")
            if shards < 1:
                raise ValueError(f"resize target must be >= 1 shard, got {shards}")
            previous = at_ms

    def shards_at(self, at_ms: float, initial: int) -> int:
        """The active shard count at virtual time ``at_ms``."""
        shards = initial
        for step_ms, step_shards in self.steps:
            if at_ms >= step_ms:
                shards = step_shards
        return shards

    def max_shards(self, initial: int) -> int:
        """The widest the cluster ever gets (the replay's shard universe)."""
        return max(initial, max(shards for _, shards in self.steps))


def _as_scale_plan(
    resize_at: "Optional[ScalePlan | Sequence[Tuple[float, int]]]",
) -> Optional[ScalePlan]:
    if resize_at is None or isinstance(resize_at, ScalePlan):
        return resize_at
    return ScalePlan(steps=tuple(resize_at))


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterConfig:
    """Policy of one sharded serving cluster.

    Parameters
    ----------
    serve:
        The per-shard :class:`ServeConfig` -- every worker process runs
        an ordinary :class:`AlignmentService` under this configuration
        (engine, refill mode, micro-batching knobs all apply per shard).
    shards:
        Number of worker processes (>= 1).
    router, length_stride:
        Routing policy (see :class:`ShardRouter`).
    max_pending, admission, class_limits:
        Bounded admission per shard (see
        :class:`~repro.serve.queueing.AdmissionController`): the pending
        budget counts queued plus in-flight requests of one shard, and
        ``admission`` picks the overload policy (``"queue"`` blocks the
        submitter, ``"reject"`` raises
        :class:`~repro.serve.queueing.RequestRejected`, ``"shed"``
        evicts queued lower-priority work).  Admission is a live-service
        concern: :func:`cluster_replay` serves every request of a trace
        (which is what keeps replays bit-identical to ``Session.align``).
    max_inflight:
        Credit window: how many dispatched-but-uncompleted requests one
        worker may hold (``None`` = twice the serve batch size).  Work
        beyond the window stays in the parent-side queue, where it is
        still sheddable and preemptable.
    retry_failed:
        When a worker crashes, re-queue its stranded requests on the
        surviving shards instead of failing their futures with
        :class:`ShardFailedError`.
    max_restarts:
        How many times each crashed worker is replaced (for traffic
        arriving *after* the crash; stranded requests are never silently
        replayed on the replacement -- that is what ``retry_failed``
        controls).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
        Anything but ``"fork"`` requires the engine to live in an
        importable module, exactly like :mod:`repro.bench.runner`'s
        spawn-safe suite rule.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan` injected into the
        drain: the live cluster honours ``after_requests`` triggers and
        dispatch indices, :func:`cluster_replay` honours ``at_ms``
        triggers and dispatch indices (an explicit ``faults=`` argument
        to ``cluster_replay`` overrides this field).
    autotune:
        Router autotuning: ``True`` (defaults) or an
        :class:`~repro.serve.autotune.AutotuneConfig`.  The first
        ``sample_size`` admitted tasks are observed, then the routing
        policy/stride minimising shard load imbalance replaces the
        configured router (``router``/``length_stride`` become the
        baseline the improvement is measured against).
    """

    serve: ServeConfig = field(default_factory=ServeConfig)
    shards: int = 2
    router: str = "hash"
    length_stride: int = 128
    max_pending: Optional[int] = None
    admission: str = "queue"
    class_limits: Mapping[int, int] = field(default_factory=dict)
    max_inflight: Optional[int] = None
    retry_failed: bool = False
    max_restarts: int = 1
    start_method: Optional[str] = None
    faults: Optional[FaultPlan] = None
    autotune: "bool | AutotuneConfig | None" = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError(
                f"faults must be a FaultPlan, got {type(self.faults).__name__}"
            )
        self.autotune_config()  # validate eagerly
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                "start_method must be None, 'fork', 'spawn' or 'forkserver', "
                f"got {self.start_method!r}"
            )
        # Validate eagerly by constructing the pure policy objects.
        self.router_for()
        self.admission_controller()

    def router_for(self) -> ShardRouter:
        """The routing function replay and the live cluster share."""
        return ShardRouter(
            shards=self.shards, policy=self.router, length_stride=self.length_stride
        )

    def admission_controller(self) -> AdmissionController:
        """The per-shard bounded-admission policy."""
        return AdmissionController(
            max_pending=self.max_pending,
            policy=self.admission,
            class_limits=dict(self.class_limits),
        )

    def autotune_config(self) -> Optional[AutotuneConfig]:
        """The normalised autotuner config (None = autotuning off)."""
        if self.autotune is None or self.autotune is False:
            return None
        if self.autotune is True:
            return AutotuneConfig()
        if not isinstance(self.autotune, AutotuneConfig):
            raise ValueError(
                "autotune must be True/False/None or an AutotuneConfig, "
                f"got {type(self.autotune).__name__}"
            )
        return self.autotune

    def replace(self, **changes: Any) -> "ClusterConfig":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    @property
    def policy_name(self) -> str:
        """Default record label (``"shards4"`` for a 4-shard cluster)."""
        return f"shards{self.shards}"


# ----------------------------------------------------------------------
# deterministic cross-shard replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterReport:
    """Merged outcome of one cluster drain (duck-types ServeReport).

    ``requests`` are in global submission order with request ids
    re-stamped to trace indices, so :meth:`results` lines up with
    ``Session.align`` on the same tasks.  ``telemetry`` is the merged
    schema-v4 summary: pooled samples at the top level plus a
    ``"shards"`` block of per-shard summaries.  ``shard_reports`` holds
    one :class:`ServeReport` per shard *segment* -- normally one per
    shard, two for a shard whose worker crashed and was replaced
    mid-drain -- so ``shards`` (the width of the drain's shard universe)
    is carried separately.
    """

    policy: str
    workload: str
    cluster: ClusterConfig
    shard_reports: Tuple[ServeReport, ...]
    shard_count: int
    requests: Tuple[ServeRequest, ...]
    makespan_ms: float
    telemetry: Dict[str, object]

    @property
    def config(self) -> ServeConfig:
        """The per-shard serve configuration (record-builder surface)."""
        return self.cluster.serve

    @property
    def shards(self) -> int:
        return self.shard_count

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of virtual drain time."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.num_requests / self.makespan_ms * 1000.0

    def results(self) -> List[AlignmentResult]:
        """Alignment results in submission (trace) order."""
        out: List[AlignmentResult] = []
        for request in self.requests:
            if request.result is None:
                raise ValueError(f"request {request.request_id} has no result")
            out.append(request.result)
        return out

    def scores(self) -> List[int]:
        return [result.score for result in self.results()]


_INF = float("inf")


def cluster_replay(
    trace: RequestTrace,
    config: Optional[ClusterConfig] = None,
    *,
    policy: Optional[str] = None,
    service_time: Optional[ServiceTime] = None,
    resize_at: "Optional[ScalePlan | Sequence[Tuple[float, int]]]" = None,
    faults: Optional[FaultPlan] = None,
) -> ClusterReport:
    """Drain ``trace`` across ``config.shards`` virtual shards.

    The trace is partitioned by the cluster's :class:`ShardRouter`
    (arrival times unchanged -- every shard reads the same clock), each
    partition drains through the ordinary single-service
    :func:`~repro.serve.scheduler.replay`, and the event streams merge:
    makespan is the latest delivered completion, requests return to
    global submission order, and telemetry sinks merge sample-exactly.
    With ``timing="modeled"`` the whole cluster drain is a pure function
    of (trace, config, plan) -- and results are bit-identical to
    ``Session.align`` for any trace, shard count, resize schedule and
    survivable fault plan, because each shard runs the same engine
    arithmetic on its subset.

    ``resize_at`` (a :class:`ScalePlan` or ``[(at_ms, shards), ...]``)
    makes the drain elastic: requests route across the shard count
    active at their arrival; a removed shard drains the requests already
    assigned to it.  ``faults`` (default ``config.faults``) injects the
    replay-side triggers of a :class:`~repro.serve.faults.FaultPlan`:
    stalls/drops/duplicates thread into each shard's event loop, and a
    crash at ``at_ms`` splits the shard's drain -- requests completed by
    the crash survive, the rest are stranded and either re-routed
    round-robin over the shards alive at the crash (arrival clamped to
    the crash time) when ``config.retry_failed``, or the whole replay
    raises :class:`ShardFailedError`, exactly like the live monitor.
    Post-crash arrivals reach the shard's replacement worker when
    ``config.max_restarts`` allows one, and are routed on to the next
    alive shard otherwise.  Crash/retry/restart never change *what* is
    computed -- only placement and timing -- which is what the chaos
    suite (``tests/serve/test_faults.py``) pins.
    """
    config = config or ClusterConfig()
    plan = _as_scale_plan(resize_at)
    fault_plan = faults if faults is not None else config.faults

    # Router family: autotuning picks policy/stride once, from the trace
    # prefix, before any routing happens -- the choice is part of the
    # deterministic function of (trace, config).
    autotune_choice: Optional[RouterChoice] = None
    tuner = config.autotune_config()
    router_policy, stride = config.router, config.length_stride
    if tuner is not None and len(trace):
        sample = trace.tasks[: tuner.sample_size]
        autotune_choice = autotune_router(
            sample, config.shards, tuner, baseline=config.router_for()
        )
        router_policy, stride = autotune_choice.policy, autotune_choice.length_stride

    def router_for(shards: int) -> ShardRouter:
        return ShardRouter(shards=shards, policy=router_policy, length_stride=stride)

    initial = config.shards
    universe = plan.max_shards(initial) if plan is not None else initial

    crash_times: Dict[int, float] = {}
    if fault_plan is not None and fault_plan:
        fault_plan.validate_for(universe)
        for crash in fault_plan.crashes:
            if crash.at_ms is None:
                raise ValueError(
                    f"replayed crash on shard {crash.shard} needs an at_ms "
                    "trigger (after_requests addresses the live worker loop)"
                )
            crash_times[crash.shard] = crash.at_ms
    restartable = config.max_restarts >= 1

    def shards_at(at_ms: float) -> int:
        return plan.shards_at(at_ms, initial) if plan is not None else initial

    def dead_at(shard: int, at_ms: float) -> bool:
        """Whether ``shard`` can no longer take arrivals at ``at_ms``."""
        if restartable:
            return False
        crash_ms = crash_times.get(shard)
        return crash_ms is not None and crash_ms <= at_ms

    parent_sink = TelemetrySink()
    parent_sink.record_admission("admitted", len(trace))

    # Placement: each request lands on its arrival epoch's router target,
    # skipping shards already dead (crashed, unreplaceable) on arrival --
    # the replay twin of the live offset scan in ``_target_shard``.
    pending: List[List[Tuple[int, float]]] = [[] for _ in range(universe)]
    for index, (task, arrival) in enumerate(zip(trace.tasks, trace.arrivals_ms)):
        active = shards_at(arrival)
        first = router_for(active).route(task, index)
        for offset in range(active):
            shard = (first + offset) % active
            if not dead_at(shard, arrival):
                pending[shard].append((index, float(arrival)))
                break
        else:
            raise ShardFailedError(first, exitcode=_CRASH_EXIT_CODE)

    # Resize accounting: one event per step; relocated counts the
    # requests of the new epoch that the previous epoch's router would
    # have placed elsewhere (the key range the resize actually moved).
    if plan is not None:
        steps = plan.steps
        for step_index, (at_ms, to_shards) in enumerate(steps):
            from_shards = initial if step_index == 0 else steps[step_index - 1][1]
            until = steps[step_index + 1][0] if step_index + 1 < len(steps) else _INF
            before, after = router_for(from_shards), router_for(to_shards)
            moved = sum(
                1
                for index, (task, arrival) in enumerate(
                    zip(trace.tasks, trace.arrivals_ms)
                )
                if at_ms <= arrival < until
                and before.route(task, index) != after.route(task, index)
            )
            parent_sink.record_resize(relocated=moved)

    shard_sinks: Dict[int, TelemetrySink] = {}
    segment_reports: List[ServeReport] = []
    merged_requests: List[Optional[ServeRequest]] = [None] * len(trace)
    retried = 0

    def shard_sink(shard: int) -> TelemetrySink:
        if shard not in shard_sinks:
            shard_sinks[shard] = TelemetrySink()
        return shard_sinks[shard]

    def run_segment(
        shard: int,
        entries: Sequence[Tuple[int, float]],
        view: Optional[ShardFaults],
    ) -> Tuple[ServeReport, TelemetrySink]:
        subtrace = RequestTrace(
            name=trace.name,
            process=trace.process,
            tasks=tuple(trace.tasks[index] for index, _ in entries),
            arrivals_ms=tuple(arrival for _, arrival in entries),
        )
        sink = TelemetrySink()
        report = replay(
            subtrace, config.serve, service_time=service_time, sink=sink, faults=view
        )
        return report, sink

    # Crashed shards drain first, in crash order, so their stranded work
    # reaches survivors before those survivors drain (a survivor that
    # crashes *later* takes the hand-off and re-strands it chronologically).
    for shard, crash_ms in sorted(crash_times.items(), key=lambda kv: (kv[1], kv[0])):
        entries = pending[shard]
        doomed = [entry for entry in entries if entry[1] < crash_ms]
        pending[shard] = [entry for entry in entries if entry[1] >= crash_ms]
        assert restartable or not pending[shard]
        view = fault_plan.shard_faults(shard) if fault_plan else None
        report, sink = run_segment(shard, doomed, view)
        segment_reports.append(report)
        survivors: List[ServeRequest] = []
        stranded: List[Tuple[int, float]] = []
        for request, (index, arrival) in zip(report.requests, doomed):
            if request.completion_ms is not None and request.completion_ms <= crash_ms:
                request.request_id = index
                merged_requests[index] = request
                survivors.append(request)
            else:
                stranded.append((index, arrival))
        # The doomed drain simulated past the crash to find the cut; keep
        # only the per-request samples the worker actually delivered.
        sink.wait_ms = [request.wait_ms for request in survivors]
        sink.latency_ms = [request.latency_ms for request in survivors]
        shard_sink(shard).merge(sink)
        parent_sink.record_fault("crashes")
        if not stranded:
            continue
        active = shards_at(crash_ms)
        targets = [
            target
            for target in range(active)
            if target != shard
            and (target not in crash_times or crash_times[target] > crash_ms)
        ]
        if not (config.retry_failed and targets):
            raise ShardFailedError(shard, exitcode=_CRASH_EXIT_CODE)
        stranded.sort()  # by trace index: the live monitor's re-route order
        for offset, (index, arrival) in enumerate(stranded):
            target = targets[offset % len(targets)]
            pending[target].append((index, max(arrival, crash_ms)))
            pending[target].sort(key=lambda entry: (entry[1], entry[0]))
        retried += len(stranded)
    if retried:
        parent_sink.record_admission("retried", retried)

    for shard in range(universe):
        entries = pending[shard]
        crashed_here = shard in crash_times
        if crashed_here and not entries:
            continue  # nothing for a replacement worker to do
        view = None
        if fault_plan:
            view = fault_plan.shard_faults(shard)
            if crashed_here:
                # The replacement worker: future stalls still apply,
                # dispatch-indexed faults stayed with the dead worker.
                view = view.after(crash_times[shard])
            if not view:
                view = None
        report, sink = run_segment(shard, entries, view)
        segment_reports.append(report)
        for request, (index, _) in zip(report.requests, entries):
            request.request_id = index
            merged_requests[index] = request
        shard_sink(shard).merge(sink)

    merged = parent_sink
    shards_block: Dict[str, object] = {}
    for shard in sorted(shard_sinks):
        shards_block[str(shard)] = shard_sinks[shard].summary()
        merged.merge(shard_sinks[shard])
    telemetry: Dict[str, object] = merged.summary()
    telemetry["shards"] = shards_block
    if autotune_choice is not None:
        telemetry["autotune"] = autotune_choice.to_dict()

    requests = tuple(r for r in merged_requests if r is not None)
    assert len(requests) == len(trace)
    return ClusterReport(
        policy=policy if policy is not None else config.policy_name,
        workload=trace.name,
        cluster=config,
        shard_reports=tuple(segment_reports),
        shard_count=universe,
        requests=requests,
        makespan_ms=max(
            (
                request.completion_ms
                for request in requests
                if request.completion_ms is not None
            ),
            default=0.0,
        ),
        telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# spawn-safe engine rebuilding (the bench/runner.py pattern)
# ----------------------------------------------------------------------
def _engine_origin(engine: str) -> Optional[str]:
    """The module that registered ``engine`` (None when undiscoverable)."""
    from repro.api.engines import ENGINES

    entry = ENGINES.get(engine)
    return getattr(entry, "__module__", None)


def _ensure_engine_shardable(engine: str, origin: Optional[str], method: str) -> None:
    """Fail fast on engines a spawned worker could never rebuild.

    Mirrors :func:`repro.bench.runner._ensure_suites_shardable`: under
    ``fork`` children inherit the registry, so anything goes; under
    ``spawn``/``forkserver`` the worker re-imports the engine's defining
    module by name, which is impossible for ``__main__`` registrations.
    """
    if method == "fork":
        return
    if origin is None or origin == "__main__":
        raise ValueError(
            f"engine {engine!r} was registered in {origin or 'an unknown module'} "
            f"and cannot be rebuilt in a {method!r}-started worker process; "
            "move the register_engine(...) call into an importable module "
            "(or use start_method='fork')"
        )


def _resolve_engine(engine: str, origin: Optional[str]) -> None:
    """Inside a worker: make ``engine`` resolvable, importing its origin.

    The retry mirrors :func:`repro.bench.runner._build_cell_suite`: a
    spawned interpreter starts with only the built-in registrations, so
    a miss triggers one import of the engine's defining module (which
    re-runs its ``register_engine`` call) before giving up.
    """
    from repro.api.engines import get_engine

    try:
        get_engine(engine)
        return
    except KeyError:
        if not origin or origin == "__main__":
            raise
    import_module(origin)
    get_engine(engine)


def _report_result(
    result_queue: Any, shard: int, request_id: int, future: "Future[AlignmentResult]"
) -> None:
    """Worker-side future callback: ship one outcome to the parent."""
    exc = future.exception()
    try:
        if exc is not None:
            result_queue.put(("error", shard, request_id, exc))
        else:
            result_queue.put(("result", shard, request_id, future.result()))
    except Exception as send_error:  # unpicklable payload: degrade, don't strand
        result_queue.put(
            ("error", shard, request_id, RuntimeError(repr(exc or send_error)))
        )


def _shard_worker(
    shard: int,
    config: ServeConfig,
    engine_origin: Optional[str],
    task_queue: Any,
    result_queue: Any,
    crash_after: Optional[int] = None,
    delays_after: Tuple[Tuple[int, float], ...] = (),
) -> None:
    """Worker-process main: one AlignmentService fed from a task queue.

    Messages are ``(request_id, task, priority)`` tuples, a ``None``
    sentinel (drain and exit cleanly), or the crash token (die abruptly
    -- the chaos hook behind :meth:`ClusterService.fail_shard`).  On a
    clean exit the worker ships its telemetry sink state home, then an
    ``("exit", shard)`` marker the parent uses to distinguish shutdown
    from death.

    ``crash_after`` / ``delays_after`` are the live triggers of a
    :class:`~repro.serve.faults.FaultPlan`: the worker dies abruptly on
    receiving its ``crash_after + 1``-th request (so exactly
    ``crash_after`` requests were accepted, the rest strand), and sleeps
    ``delay_ms`` before serving its ``after``-th message for each
    ``(after, delay_ms)`` stall.
    """
    from repro.serve.service import AlignmentService

    _resolve_engine(config.engine, engine_origin)
    service = AlignmentService(config)
    service.start()
    received = 0
    while True:
        item = task_queue.get()
        if item is None:
            break
        if item == _CRASH:
            os._exit(_CRASH_EXIT_CODE)
        request_id, task, _priority = item
        received += 1
        if crash_after is not None and received > crash_after:
            os._exit(_CRASH_EXIT_CODE)
        for after, delay_ms in delays_after:
            if after == received:
                service.telemetry.record_fault("delays")
                time.sleep(delay_ms / 1000.0)
        future = service.submit(task)
        future.add_done_callback(
            lambda f, rid=request_id: _report_result(result_queue, shard, rid, f)
        )
    service.shutdown(wait=True)
    result_queue.put(("telemetry", shard, service.telemetry.state()))
    result_queue.put(("exit", shard))


# ----------------------------------------------------------------------
# the live cluster
# ----------------------------------------------------------------------
class _Shard:
    """Parent-side bookkeeping of one worker process."""

    def __init__(self, index: int, batcher: MicroBatcher) -> None:
        self.index = index
        self.batcher = batcher  # queued, not yet sent to the worker
        self.inflight: Dict[int, ServeRequest] = {}  # sent, not yet completed
        self.futures: Dict[int, "Future[AlignmentResult]"] = {}
        self.process: Any = None
        self.task_queue: Any = None
        self.failed = False
        self.exited = False  # clean worker exit observed
        self.restarts = 0
        self.retiring = False  # draining out of the routable set (scale-down)
        self.sentinel_sent = False  # dispatcher handed the worker its sentinel
        self.sent = 0  # dispatch-stream index (drop/duplicate fault addressing)
        self.faults: Optional[ShardFaults] = None  # dispatch-level fault view
        self.fault_armed = False  # worker-side fault triggers already consumed

    @property
    def routable(self) -> bool:
        """Whether the router may place new work here (lock held)."""
        return not self.failed and not self.retiring

    @property
    def pending(self) -> int:
        """Queued + in-flight requests charged against admission budgets."""
        return len(self.batcher) + len(self.inflight)


class ClusterService:
    """Live sharded alignment service over worker processes.

    The usage mirrors :class:`AlignmentService`::

        config = ClusterConfig(shards=4, serve=ServeConfig(engine="batch-sliced"))
        with ClusterService(config) as cluster:
            futures = [cluster.submit(task) for task in tasks]
            scores = [f.result().score for f in futures]

    ``submit`` routes through the cluster's :class:`ShardRouter`, applies
    the bounded-admission policy (possibly blocking, rejecting, or
    shedding queued lower-priority work), and parks the request in the
    target shard's parent-side :class:`MicroBatcher`.  A per-shard
    dispatcher thread forwards queued requests to the worker while its
    in-flight window has room (so queued work stays sheddable and
    preemptable), a single collector thread fans results back to
    futures, and a monitor thread per shard turns worker death into
    :class:`ShardFailedError` fan-out / retry / restart.
    """

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self._router = self.config.router_for()
        self._admission = self.config.admission_controller()
        import multiprocessing

        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._engine_origin: Optional[str] = None
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        serve = self.config.serve
        self._shards = [
            self._new_shard(index) for index in range(self.config.shards)
        ]
        #: Routable prefix of ``self._shards``: ``scale_to`` grows/shrinks
        #: this (and the router) while retired slots linger for reuse.
        self._active = self.config.shards
        #: Per-worker in-flight credit: enough to keep a worker's own
        #: batcher busy, small enough that overload stays parent-side
        #: (where it can be shed / preempted / counted).
        self._window = (
            self.config.max_inflight
            if self.config.max_inflight is not None
            else max(2 * serve.max_batch_size, 2)
        )
        self._result_queue: Any = None
        self._dispatchers: List[threading.Thread] = []
        self._monitors: List[threading.Thread] = []
        self._collector: Optional[threading.Thread] = None
        self._next_id = 0
        self._epoch = time.monotonic()
        self._started = False
        self._stopping = False
        self._closed = False
        self.telemetry = TelemetrySink()
        self._shard_sink_states: Dict[int, Mapping[str, object]] = {}
        tuner = self.config.autotune_config()
        self._observer = TrafficObserver(tuner) if tuner is not None else None
        self._autotune_choice: Optional[RouterChoice] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return (time.monotonic() - self._epoch) * 1000.0

    def _new_shard(self, index: int) -> _Shard:
        """A fresh parent-side shard slot (batcher mirrors the config)."""
        serve = self.config.serve
        shard = _Shard(
            index,
            MicroBatcher(
                serve.max_batch_size,
                serve.max_wait_ms,
                length_aware=serve.length_aware,
            ),
        )
        if self.config.faults is not None:
            shard.faults = self.config.faults.shard_faults(index)
        return shard

    def start(self) -> "ClusterService":
        """Spawn the workers and service threads (idempotent)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster has been shut down")
            if self._started:
                return self
            self._started = True
        engine = self.config.serve.engine
        origin = _engine_origin(engine)
        _ensure_engine_shardable(engine, origin, self._ctx.get_start_method())
        self._engine_origin = origin
        self._result_queue = self._ctx.Queue()
        # Processes first, threads second: forking after our own service
        # threads exist is the classic fork-with-threads trap.
        for shard in self._shards:
            self._spawn_worker(shard)
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-cluster-collector", daemon=True
        )
        self._collector.start()
        for shard in self._shards:
            self._start_shard_threads(shard)
        return self

    def _start_shard_threads(self, shard: _Shard) -> None:
        """Start (or restart, after slot reuse) one shard's service threads."""
        dispatcher = threading.Thread(
            target=self._dispatch_loop,
            args=(shard,),
            name=f"repro-cluster-dispatch-{shard.index}",
            daemon=True,
        )
        dispatcher.start()
        monitor = threading.Thread(
            target=self._monitor_loop,
            args=(shard,),
            name=f"repro-cluster-monitor-{shard.index}",
            daemon=True,
        )
        monitor.start()
        with self._lock:
            self._dispatchers.append(dispatcher)
            self._monitors.append(monitor)

    def _spawn_worker(self, shard: _Shard) -> None:
        """Create (or replace) the worker process of one shard.

        The first worker of a shard carries the live (served-count)
        triggers of the configured fault plan; replacements and reused
        slots start clean -- a fault fires once, not once per worker.
        """
        crash_after: Optional[int] = None
        delays_after: Tuple[Tuple[int, float], ...] = ()
        plan = self.config.faults
        if plan is not None and not shard.fault_armed:
            crash_after = plan.crash_after(shard.index)
            delays_after = plan.delays_after(shard.index)
            shard.fault_armed = True
        shard.task_queue = self._ctx.Queue()
        shard.process = self._ctx.Process(
            target=_shard_worker,
            args=(
                shard.index,
                self.config.serve,
                self._engine_origin,
                shard.task_queue,
                self._result_queue,
                crash_after,
                delays_after,
            ),
            name=f"repro-serve-shard-{shard.index}",
            daemon=True,
        )
        shard.process.start()

    def shutdown(self, wait: bool = True) -> None:
        """Drain every queued request, stop workers and threads.

        Queued requests are flushed to their workers, each worker drains
        its own service before exiting (no request is ever dropped by a
        clean shutdown), and any future left unresolved by a worker that
        died mid-shutdown fails with :class:`ShardFailedError`.
        """
        with self._wakeup:
            self._stopping = True
            self._closed = True
            started = self._started
            self._wakeup.notify_all()
        if not started:
            return
        for dispatcher in self._dispatchers:
            dispatcher.join()
        for shard in self._shards:
            if shard.process is not None:
                shard.process.join()
        for monitor in self._monitors:
            monitor.join()
        # Workers flush their queues before exiting, so by now every
        # result/telemetry/exit message is buffered; the sentinel lands
        # behind them and the collector drains in order.
        self._result_queue.put(("stop",))
        if self._collector is not None:
            self._collector.join()
        leftovers: List[Tuple[int, "Future[AlignmentResult]"]] = []
        with self._lock:
            for shard in self._shards:
                for request_id, future in shard.futures.items():
                    leftovers.append((shard.index, future))
                shard.futures.clear()
                shard.inflight.clear()
        for index, future in leftovers:
            if not future.done():
                future.set_exception(ShardFailedError(index))

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def alive_shards(self) -> List[int]:
        """Indices of shards whose worker process is currently healthy."""
        with self._lock:
            return [
                shard.index
                for shard in self._shards
                if not shard.failed
                and shard.process is not None
                and shard.process.is_alive()
            ]

    def fail_shard(self, shard: int) -> None:
        """Chaos hook: make one worker die abruptly (``os._exit``).

        The worker processes everything already queued to it, then dies
        without draining its service -- exactly the stranding a real
        crash produces, but deterministically placed.  Tests use this to
        pin the crash-robustness contract.
        """
        with self._lock:
            target = self._shards[shard]
            if target.task_queue is None:
                raise RuntimeError("cluster is not started")
            target.task_queue.put(_CRASH)

    # ------------------------------------------------------------------
    # elasticity
    # ------------------------------------------------------------------
    @property
    def active_shards(self) -> int:
        """The current routable shard count (changes via :meth:`scale_to`)."""
        with self._lock:
            return self._active

    def _relocate_queued(self) -> Tuple[int, List[Tuple["Future[AlignmentResult]", BaseException]]]:
        """Move queued requests whose routed shard changed (lock held).

        Returns ``(moved, orphans)``: futures in ``orphans`` must be
        failed *outside* the lock (their callbacks are user code).
        """
        moved = 0
        orphans: List[Tuple["Future[AlignmentResult]", BaseException]] = []
        for slot in self._shards[: self._active]:
            if not slot.routable:
                continue
            strays = slot.batcher.preempt(
                lambda r, here=slot.index: self._router.route(r.task, r.request_id)
                != here
            )
            for request in strays:
                try:
                    target = self._target_shard(request.task, request.request_id)
                except ShardFailedError as error:
                    future = slot.futures.pop(request.request_id, None)
                    if future is not None:
                        orphans.append((future, error))
                    continue
                if target is slot:  # routed away, offset-scanned back
                    slot.batcher.add(request)
                    continue
                target.batcher.add(request)
                future = slot.futures.pop(request.request_id, None)
                if future is not None:
                    target.futures[request.request_id] = future
                moved += 1
        return moved, orphans

    def scale_to(self, shards: int) -> int:
        """Grow or shrink the live cluster to ``shards`` workers.

        Before :meth:`start` this simply re-cuts the (empty) cluster.
        On a running cluster:

        * **grow** -- new worker processes spawn (retired slots are
          reused once their old worker finishes draining), then the
          wider router is published atomically with the new shard count
          and queued requests whose routed shard changed migrate, so
          placement never straddles two epochs.  Under the ``"stable"``
          policy the migration touches at most ``ceil(keys/(n+1))`` of
          the queued ids per added shard.
        * **shrink** -- the narrower router is published first, then the
          shards leaving the routable set start *draining*: their queued
          requests are preempted and re-routed (futures travel along),
          their in-flight work finishes on the old worker, and the
          dispatcher hands the worker its sentinel so it exits cleanly.
          ``shutdown`` still accounts for every request.

        Each live resize records one ``resize`` telemetry event with the
        number of relocated queued requests.  Returns the new count.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        to_spawn: List[_Shard] = []
        with self._wakeup:
            if self._closed or self._stopping:
                raise RuntimeError("cluster has been shut down")
            if not self._started:
                # Pre-start reshape: pure configuration, no resize event.
                self.config = self.config.replace(shards=shards)
                self._router = self.config.router_for()
                self._admission = self.config.admission_controller()
                self._shards = [self._new_shard(i) for i in range(shards)]
                self._active = shards
                return shards
            old = self._active
            if shards == old:
                return shards
            if shards > old:
                while len(self._shards) < shards:
                    self._shards.append(self._new_shard(len(self._shards)))
                for index in range(old, shards):
                    slot = self._shards[index]
                    if slot.process is not None:
                        # Reused retired slot: let the old worker finish
                        # draining before a replacement takes over.
                        while not (slot.exited or slot.failed):
                            self._wakeup.wait()
                        refreshed = self._new_shard(index)
                        refreshed.sent = slot.sent
                        refreshed.fault_armed = slot.fault_armed
                        self._shards[index] = refreshed
                        slot = refreshed
                    to_spawn.append(slot)
        if to_spawn:
            # Grow: spawn processes and threads outside the lock, then
            # publish the wider epoch atomically.
            for slot in to_spawn:
                self._spawn_worker(slot)
            for slot in to_spawn:
                self._start_shard_threads(slot)
            with self._wakeup:
                self._router = ShardRouter(
                    shards=shards,
                    policy=self._router.policy,
                    length_stride=self._router.length_stride,
                )
                self._active = shards
                moved, orphans = self._relocate_queued()
                self.telemetry.record_resize(relocated=moved)
                self._wakeup.notify_all()
            for future, error in orphans:
                if not future.done():
                    future.set_exception(error)
            return shards
        # Shrink: publish the narrower router, then drain the leavers.
        orphans = []
        with self._wakeup:
            self._router = ShardRouter(
                shards=shards,
                policy=self._router.policy,
                length_stride=self._router.length_stride,
            )
            self._active = shards
            moved = 0
            for slot in self._shards[shards:]:
                if slot.retiring or slot.process is None:
                    continue
                slot.retiring = True
                if slot.failed:
                    continue  # the crash path already re-routed its queue
                for request in slot.batcher.preempt(lambda r: True):
                    try:
                        target = self._target_shard(
                            request.task, request.request_id
                        )
                    except ShardFailedError as error:
                        future = slot.futures.pop(request.request_id, None)
                        if future is not None:
                            orphans.append((future, error))
                        continue
                    target.batcher.add(request)
                    future = slot.futures.pop(request.request_id, None)
                    if future is not None:
                        target.futures[request.request_id] = future
                    moved += 1
            self.telemetry.record_resize(relocated=moved)
            self._wakeup.notify_all()
        for future, error in orphans:
            if not future.done():
                future.set_exception(error)
        return shards

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def _target_shard(self, task: AlignmentTask, request_id: int) -> _Shard:
        """The routed shard among the active set, skipping failed and
        retiring ones (lock held)."""
        active = self._active
        first = self._router.route(task, request_id)
        for offset in range(active):
            shard = self._shards[(first + offset) % active]
            if shard.routable:
                return shard
        raise ShardFailedError(first)

    def submit(
        self, task: AlignmentTask, *, priority: int = 0
    ) -> "Future[AlignmentResult]":
        """Route and enqueue one task; may block, reject, or shed.

        Under ``admission="queue"`` with a full shard this call *blocks*
        until space frees -- that is the explicit backpressure.  Under
        ``"reject"`` it raises :class:`RequestRejected`; under
        ``"shed"`` it may evict a queued strictly-lower-priority request
        (whose future then raises :class:`RequestRejected`).
        """
        self.start()
        shed_futures: List["Future[AlignmentResult]"] = []
        with self._wakeup:
            if self._observer is not None and self._autotune_choice is None:
                if self._observer.observe(task):
                    # The sample is complete: swap the router in the same
                    # lock step, so placement stays a deterministic
                    # function of the submission order.
                    choice = self._observer.tune(
                        self._active, baseline=self._router
                    )
                    self._autotune_choice = choice
                    self._router = ShardRouter(
                        shards=self._active,
                        policy=choice.policy,
                        length_stride=choice.length_stride,
                    )
            while True:
                if self._stopping:
                    raise RuntimeError("cluster is shutting down")
                request = ServeRequest(
                    task=task,
                    request_id=self._next_id,
                    arrival_ms=self._now_ms(),
                    priority=priority,
                )
                shard = self._target_shard(task, request.request_id)
                decision = self._admission.decide(
                    request, shard.batcher.pending, tuple(shard.inflight.values())
                )
                if decision.action != "wait":
                    break
                self._wakeup.wait()
            if decision.action == "reject":
                self.telemetry.record_admission("rejected")
                raise RequestRejected(
                    f"shard {shard.index} is at its admission limit "
                    f"({self._admission.max_pending} pending; "
                    f"policy={self._admission.policy!r})"
                )
            if decision.action == "shed":
                victims = set(map(id, decision.victims))
                for victim in shard.batcher.preempt(lambda r: id(r) in victims):
                    future = shard.futures.pop(victim.request_id, None)
                    if future is not None:
                        shed_futures.append(future)
                    self.telemetry.record_admission("shed")
            self._next_id += 1
            result_future: "Future[AlignmentResult]" = Future()
            shard.batcher.add(request)
            shard.futures[request.request_id] = result_future
            self.telemetry.record_admission("admitted")
            self.telemetry.record_queue_depth(
                sum(len(s.batcher) for s in self._shards)
            )
            self._wakeup.notify_all()
        for future in shed_futures:  # user callbacks run outside the lock
            future.set_exception(
                RequestRejected("request shed to admit higher-priority work")
            )
        return result_future

    def map(self, tasks: Sequence[AlignmentTask]) -> List[AlignmentResult]:
        """Submit every task and gather results in submission order."""
        futures = [self.submit(task) for task in tasks]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # service threads
    # ------------------------------------------------------------------
    def _dispatch_loop(self, shard: _Shard) -> None:
        """Forward queued requests to the worker while credit remains.

        Dispatch-level faults (drop/duplicate, addressed by the shard's
        0-based send index) fire here -- but never on the final
        stopping/retiring flush, where a dropped send would have no later
        dispatch to ride home on (a lost send is latency, never loss).
        """
        while True:
            sends: List[Tuple[ServeRequest, int]] = []  # (request, copies)
            with self._wakeup:
                while True:
                    if self._stopping or shard.retiring:
                        # Flush everything still queued (workers drain on
                        # the sentinel), then hand off and exit.
                        taken = shard.batcher.take(len(shard.batcher), self._now_ms())
                        break
                    if shard.failed:
                        self._wakeup.wait()
                        continue
                    budget = self._window - len(shard.inflight)
                    if len(shard.batcher) and budget > 0:
                        taken = shard.batcher.take(budget, self._now_ms())
                        break
                    self._wakeup.wait()
                finishing = self._stopping or shard.retiring
                view = shard.faults
                for request in taken:
                    copies = 1
                    if view is not None and not finishing:
                        index = shard.sent
                        shard.sent += 1
                        if index in view.drops:
                            self.telemetry.record_fault("dropped")
                            shard.batcher.restore([request])
                            continue
                        if index in view.duplicates:
                            self.telemetry.record_fault("duplicated")
                            copies = 2
                    shard.inflight[request.request_id] = request
                    sends.append((request, copies))
                if taken:
                    self.telemetry.record_queue_depth(
                        sum(len(s.batcher) for s in self._shards)
                    )
                if finishing:
                    # Set before the sentinel ships: once the worker exits
                    # the monitor must already see this flag (it is what
                    # distinguishes a drained worker from a crashed one).
                    shard.sentinel_sent = True
                queue = shard.task_queue
            for request, copies in sends:
                for _ in range(copies):
                    queue.put((request.request_id, request.task, request.priority))
            if finishing:
                queue.put(None)
                return

    def _collect_loop(self) -> None:
        """Fan worker messages back to futures and telemetry."""
        while True:
            message = self._result_queue.get()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "telemetry":
                _, index, state = message
                with self._lock:
                    self._shard_sink_states[index] = state
                continue
            if kind == "exit":
                _, index = message
                with self._wakeup:
                    self._shards[index].exited = True
                    self._wakeup.notify_all()
                continue
            _, index, request_id, payload = message
            completion = self._now_ms()
            with self._wakeup:
                shard = self._shards[index]
                request = shard.inflight.pop(request_id, None)
                future = shard.futures.pop(request_id, None)
                if kind == "result" and request is not None:
                    request.result = payload
                    request.completion_ms = completion
                self._wakeup.notify_all()
            if future is not None and not future.done():
                if kind == "result":
                    future.set_result(payload)
                else:
                    future.set_exception(payload)

    def _monitor_loop(self, shard: _Shard) -> None:
        """Health check: join the worker, handle death, maybe restart."""
        while True:
            process = shard.process
            process.join()
            to_fail: List[Tuple["Future[AlignmentResult]", BaseException]] = []
            with self._wakeup:
                if shard.sentinel_sent and process.exitcode == 0:
                    # The sentinel is authoritative: a worker that was
                    # handed its sentinel and exited cleanly *drained* --
                    # even if the collector has not yet processed the
                    # ("exit", shard) marker when join() returns.  Wait
                    # for the marker instead of declaring a crash (the
                    # race is routine for scale-down drains, where only
                    # this shard stops while the cluster keeps serving).
                    while not shard.exited and not self._stopping:
                        self._wakeup.wait()
                    return
                if self._stopping or shard.exited:
                    return
                shard.failed = True
                exitcode = process.exitcode
                self.telemetry.record_fault("crashes")
                # Stranded work: everything still queued (pulled back
                # through the preempt hook) plus everything in flight.
                stranded = list(shard.inflight.values())
                shard.inflight.clear()
                stranded += shard.batcher.preempt(lambda request: True)
                stranded.sort(key=lambda request: request.request_id)
                survivors = [
                    s for s in self._shards[: self._active]
                    if s is not shard and s.routable
                ]
                if self.config.retry_failed and survivors and stranded:
                    for offset, request in enumerate(stranded):
                        target = survivors[offset % len(survivors)]
                        target.batcher.add(request)
                        future = shard.futures.pop(request.request_id, None)
                        if future is not None:
                            target.futures[request.request_id] = future
                    self.telemetry.record_admission("retried", len(stranded))
                else:
                    error = ShardFailedError(shard.index, exitcode=exitcode)
                    for request in stranded:
                        future = shard.futures.pop(request.request_id, None)
                        if future is not None:
                            to_fail.append((future, error))
                # A retiring shard has nothing left to route to it, so a
                # crash mid-drain re-routes its strands but never earns a
                # replacement worker.
                restart = (
                    shard.restarts < self.config.max_restarts
                    and not shard.retiring
                )
                if restart:
                    shard.restarts += 1
                self._wakeup.notify_all()
            for future, error in to_fail:  # callbacks outside the lock
                if not future.done():
                    future.set_exception(error)
            if not restart:
                return
            self._spawn_worker(shard)
            with self._wakeup:
                shard.failed = False
                shard.sentinel_sent = False
                if self._stopping:
                    # Shutdown raced the restart: the dispatcher already
                    # sent its sentinel to the dead worker's queue, so
                    # drain the replacement directly or join() hangs.
                    shard.sentinel_sent = True
                    shard.task_queue.put(None)
                self._wakeup.notify_all()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def telemetry_summary(self) -> Dict[str, object]:
        """Merged schema-v4 summary: pooled samples + per-shard block.

        Worker sinks arrive at clean worker exit, so the per-shard block
        is complete after :meth:`shutdown`; before that it covers the
        shards that have already exited.  Latency percentiles pool the
        workers' per-request samples (service-side latency); admission,
        fault and resize counters come from the front-end.  When the
        router was autotuned, the ``"autotune"`` block records the
        choice and the imbalance evidence behind it.
        """
        with self._lock:
            merged = TelemetrySink.from_state(self.telemetry.state())
            states = dict(self._shard_sink_states)
            choice = self._autotune_choice
        shards_block: Dict[str, object] = {}
        for index in sorted(states):
            sink = TelemetrySink.from_state(states[index])
            shards_block[str(index)] = sink.summary()
            merged.merge(sink)
        summary: Dict[str, object] = merged.summary()
        summary["shards"] = shards_block
        if choice is not None:
            summary["autotune"] = choice.to_dict()
        return summary


# Re-exported by repro.serve; keep Callable referenced for typing tools.
_ServiceTime = Callable[[Sequence[AlignmentTask]], float]
