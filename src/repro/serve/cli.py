"""Command-line front end: ``python -m repro.serve``.

Load-generates against one registry dataset's extension-task workload,
drains the trace through the micro-batching scheduler, and -- unless
``--no-baseline`` -- drains the *same* trace again with batching
disabled (``max_batch_size=1``), so the printed speedup and the written
``BENCH_serve.json`` record quantify exactly what micro-batching buys.

The record reuses the figure-benchmark schema, so serving throughput is
gated the same way figure speedups are::

    python -m repro.serve --dataset ONT-HG002 --output BENCH_serve.json
    python -m repro.bench compare benchmarks/serve_baseline.json BENCH_serve.json

``--shards N`` drains the trace through the sharded cluster instead
(:func:`repro.serve.cluster.cluster_replay`): requests are partitioned
by the deterministic shard router, the anchor drain is the same trace
through one service, and the printed speedup quantifies what scaling
out buys.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.io.datasets import DATASET_REGISTRY
from repro.serve.cluster import (
    ROUTE_POLICIES,
    ClusterConfig,
    ClusterReport,
    ScalePlan,
    cluster_replay,
)
from repro.serve.config import REFILL_MODES, TIMING_MODES, ServeConfig
from repro.serve.loadgen import LoadGenerator, RequestTrace
from repro.serve.scheduler import ServeReport, replay
from repro.serve.telemetry import serve_bench_record

__all__ = ["main"]

ARRIVAL_PROCESSES = ("poisson", "bursty", "replay")


def _engine_help() -> str:
    """Dynamic --engine help derived from the live registry."""
    from repro.api.engines import engine_names, supports_streaming, unavailable_engines

    names = ", ".join(
        f"{name}*" if supports_streaming(name) else name for name in engine_names()
    )
    missing = unavailable_engines()
    hint = (
        "; unavailable here: "
        + ", ".join(f"{name} ({reason})" for name, reason in missing.items())
        if missing
        else ""
    )
    return (
        f"alignment engine from the repro.api registry (choices: {names}; "
        f"* streams natively and defaults to continuous refill{hint}; "
        "default: batch)"
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Micro-batching alignment service: load generation, "
        "latency telemetry and a gateable BENCH_serve.json record.",
        allow_abbrev=False,
    )
    parser.add_argument(
        "--dataset",
        default="ONT-HG002",
        choices=sorted(DATASET_REGISTRY),
        help="registry dataset whose workload is served (default: ONT-HG002)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="number of requests (default: the workload size; larger values "
        "cycle the workload)",
    )
    parser.add_argument(
        "--arrival",
        default="poisson",
        choices=ARRIVAL_PROCESSES,
        help="arrival process (default: poisson)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=500.0,
        metavar="RPS",
        help="arrival rate in requests/s; for bursty, the in-burst rate "
        "(default: 500)",
    )
    parser.add_argument(
        "--on-ms", type=float, default=50.0, help="bursty: ON-window length (default: 50)"
    )
    parser.add_argument(
        "--off-ms", type=float, default=200.0, help="bursty: OFF-gap length (default: 200)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="arrival-process RNG seed (default: 0)"
    )
    parser.add_argument(
        "--engine",
        default="batch",
        metavar="ENGINE",
        # Validated by ServeConfig against the live registry (a KeyError
        # for a known-but-unavailable engine explains how to enable it).
        help=_engine_help(),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="B",
        help="engine bucket size (default: the engine default)",
    )
    parser.add_argument(
        "--slice-width",
        type=int,
        default=None,
        metavar="W",
        help="anti-diagonals per slice for streaming engines "
        "(default: the engine default)",
    )
    parser.add_argument(
        "--refill",
        default="auto",
        choices=REFILL_MODES,
        help="lane-refill policy: continuous admits requests into freed "
        "lanes at slice boundaries, drain runs each batch to completion "
        "(default: auto = continuous for streaming engines)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=32,
        metavar="B",
        help="most requests per dispatched batch (default: 32)",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=4.0,
        metavar="MS",
        help="longest a request may wait for batch-mates (default: 4.0)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel batch executors in the queueing model (default: 1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="drain through an N-shard cluster replay; the anchor is the "
        "same trace through a single service (default: 1 = no cluster)",
    )
    parser.add_argument(
        "--router",
        default="hash",
        choices=ROUTE_POLICIES,
        help="cluster routing policy: hash spreads by request id, length "
        "co-locates similar sweep lengths, stable keeps resizes to the "
        "minimal key movement (default: hash)",
    )
    parser.add_argument(
        "--autotune",
        action="store_true",
        help="observe the trace prefix and pick the routing policy/stride "
        "minimising shard load imbalance (cluster drains only)",
    )
    parser.add_argument(
        "--resize-at",
        action="append",
        default=None,
        metavar="MS:SHARDS",
        help="elastically resize the cluster drain at virtual time MS to "
        "SHARDS shards; repeatable for multi-step schedules "
        "(e.g. --resize-at 50:4 --resize-at 200:2)",
    )
    parser.add_argument(
        "--fifo",
        action="store_true",
        help="disable length-aware batch formation (plain FIFO batches)",
    )
    parser.add_argument(
        "--timing",
        default="measured",
        choices=TIMING_MODES,
        help="charge measured engine wall time or the deterministic model "
        "(default: measured)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the batch-size-1 anchor drain (record then has no speedup)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="record file to write (default: BENCH_serve.json)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="workload cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent workload cache (rebuild in memory)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the telemetry table"
    )
    return parser


def _parse_resize(specs: Optional[Sequence[str]]) -> Optional[ScalePlan]:
    """``["50:4", "200:2"]`` -> a :class:`ScalePlan` (None passes through)."""
    if not specs:
        return None
    steps = []
    for spec in specs:
        at_ms, sep, shards = spec.partition(":")
        try:
            if not sep:
                raise ValueError(spec)
            steps.append((float(at_ms), int(shards)))
        except ValueError:
            raise ValueError(
                f"--resize-at expects MS:SHARDS (e.g. 50:4), got {spec!r}"
            ) from None
    return ScalePlan(steps=tuple(steps))


def _make_trace(generator: LoadGenerator, args: argparse.Namespace) -> RequestTrace:
    if args.arrival == "poisson":
        return generator.poisson(args.rate, args.requests, seed=args.seed)
    if args.arrival == "bursty":
        return generator.bursty(
            args.rate, args.requests, on_ms=args.on_ms, off_ms=args.off_ms, seed=args.seed
        )
    return generator.replay(args.rate, args.requests)


def _format_report(report: "ServeReport | ClusterReport") -> List[str]:
    latency = report.telemetry["latency_ms"]
    wait = report.telemetry["wait_ms"]
    lanes = report.telemetry["lane_occupancy"]
    refill = report.telemetry["refill"]
    assert isinstance(latency, dict) and isinstance(wait, dict)
    assert isinstance(lanes, dict) and isinstance(refill, dict)
    lane_line = (
        f"  mean lane occupancy   : {lanes['mean']:.2f} over {lanes['slices']} "
        f"slices ({refill['admitted_inflight']} refill admissions)"
    )
    lines = [
        f"[{report.policy}]",
        f"  requests / batches    : {report.num_requests} / {report.telemetry['batches']}",
        f"  mean batch occupancy  : {report.telemetry['mean_batch_occupancy']:.2f}",
        lane_line,
        f"  drain makespan        : {report.makespan_ms:.2f} ms",
        f"  throughput            : {report.throughput_rps:.1f} req/s",
        "  latency p50/p95/p99   : "
        f"{latency['p50_ms']:.2f} / {latency['p95_ms']:.2f} / {latency['p99_ms']:.2f} ms",
        f"  max queueing wait     : {wait['max_ms']:.2f} ms",
    ]
    shards = report.telemetry.get("shards") if isinstance(report.telemetry, dict) else None
    if shards:
        per_shard = ", ".join(
            f"{index}:{summary['requests']}"
            for index, summary in sorted(shards.items(), key=lambda kv: int(kv[0]))
        )
        lines.append(f"  requests per shard    : {per_shard}")
    autotune = report.telemetry.get("autotune") if isinstance(report.telemetry, dict) else None
    if autotune:
        lines.append(
            f"  autotuned router      : {autotune['policy']}"
            f"/stride {autotune['length_stride']} "
            f"(imbalance {autotune['imbalance']:.2f}, "
            f"baseline {autotune['baseline_imbalance']:.2f})"
        )
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    try:
        generator = LoadGenerator.from_dataset(
            args.dataset,
            seed=args.seed,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
        trace = _make_trace(generator, args)
        from repro.api.engines import EngineOptions, supports_streaming

        refill = args.refill
        if refill == "continuous" and not supports_streaming(args.engine):
            print(
                f"warning: engine {args.engine!r} cannot refill continuously "
                "(supports_streaming() is False for it); falling back to "
                "--refill drain",
                file=sys.stderr,
            )
            refill = "drain"
        if args.shards < 1:
            raise ValueError("--shards must be >= 1")
        config = ServeConfig(
            engine=args.engine,
            max_batch_size=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            workers=args.workers,
            length_aware=not args.fifo,
            timing=args.timing,
            options=EngineOptions(
                batch_size=args.batch_size, slice_width=args.slice_width
            ),
            refill=refill,
        )
        if not args.quiet:
            print(
                f"serving {len(trace)} requests of {trace.name} "
                f"({trace.process} arrivals, ~{trace.offered_rate_rps:.0f} req/s offered)",
                file=sys.stderr,
            )
        reports: List["ServeReport | ClusterReport"]
        if args.resize_at and args.shards <= 1:
            raise ValueError("--resize-at needs a cluster drain (--shards >= 2)")
        if args.autotune and args.shards <= 1:
            raise ValueError("--autotune needs a cluster drain (--shards >= 2)")
        if args.shards > 1:
            cluster = ClusterConfig(
                serve=config,
                shards=args.shards,
                router=args.router,
                autotune=args.autotune or None,
            )
            reports = [
                cluster_replay(trace, cluster, resize_at=_parse_resize(args.resize_at))
            ]
            baseline = reports[0].policy
            # The natural anchor for a cluster is the same trace through
            # one service: the speedup is what scaling out buys.
            if not args.no_baseline:
                reports.append(replay(trace, config, policy=config.policy_name))
                baseline = config.policy_name
        else:
            reports = [replay(trace, config, policy=config.policy_name)]
            baseline = config.policy_name
            # An anchor drain only makes sense when the main drain actually
            # micro-batches; with --max-batch 1 the main drain IS the anchor.
            if not args.no_baseline and config.max_batch_size > 1:
                anchor_config = config.replace(max_batch_size=1)
                reports.append(replay(trace, anchor_config, policy="batch1"))
                baseline = "batch1"
        record = serve_bench_record(reports, baseline=baseline)
        path = record.save(args.output or record.default_filename)
        if not args.quiet:
            for report in reports:
                print("\n".join(_format_report(report)))
            if len(reports) == 2:
                main_policy = reports[0].policy
                speedup = record.suites["serve"].speedups[main_policy]["GeoMean"]
                anchor = "batch-size-1" if baseline == "batch1" else baseline
                print(f"{main_policy} speedup: {speedup:.2f}x over {anchor}")
        print(f"wrote {path}")
        return 0
    except (KeyError, ValueError, FileNotFoundError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
