"""Latency / throughput telemetry of the alignment service.

The sink collects five kinds of samples while a drain runs -- queue
depth (sampled at every arrival *and* at every dispatch or refill
admission, so requests admitted into an in-flight batch count as
dequeued), batch occupancy (one sample per dispatched batch), per-slice
lane occupancy (one sample per engine slice, the occupancy-over-time
view of continuous refill), in-flight refill admissions, and per-request
wait / end-to-end latency -- plus the bounded-admission outcome counters
(``ADMISSION_OUTCOMES``) the sharded cluster feeds -- and renders them
as a versioned summary dict (``SERVE_SCHEMA_VERSION``).  Percentiles use
the nearest-rank definition on sorted samples, so a summary is a pure
function of the sample multiset: deterministic replays produce
bit-identical telemetry.  Sinks serialise (:meth:`TelemetrySink.state`)
and merge (:meth:`TelemetrySink.merge`) by pooling raw samples, which is
how cross-shard percentiles stay exact instead of being averages of
per-shard percentiles.

:func:`serve_bench_record` folds one or more
:class:`~repro.serve.scheduler.ServeReport` objects into the same
versioned :class:`~repro.bench.records.BenchRecord` format the figure
benchmarks use (``BENCH_serve.json``): each serving policy becomes a
"kernel" row whose ``speedup_vs_cpu`` is its throughput relative to the
batch-size-1 anchor, so ``python -m repro.bench compare`` gates serving
regressions exactly like figure regressions.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.align.streaming import SliceStats
    from repro.bench.records import BenchRecord
    from repro.serve.scheduler import ServeReport

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "ADMISSION_OUTCOMES",
    "FAULT_KINDS",
    "percentile",
    "LatencySummary",
    "TelemetrySink",
    "serve_bench_record",
]

#: Version of the telemetry summary layout (stamped into every summary
#: and into the ``BENCH_serve.json`` environment block).  Bump when the
#: keys below change incompatibly.
#:
#: v2 added the streaming-engine fields: ``lane_occupancy`` (per-slice
#: occupancy of the in-flight batch) and ``refill`` (requests admitted
#: into an already-running batch), and queue depth became sampled at
#: dispatches/refills as well as arrivals.
#:
#: v3 added the sharded-cluster fields: every summary carries
#: ``admission`` counters (``admitted`` / ``rejected`` / ``shed`` /
#: ``retried`` -- the bounded-admission outcomes of
#: :class:`repro.serve.queueing.AdmissionController`), and cluster-level
#: summaries add a ``"shards"`` block mapping each shard index to its own
#: per-shard summary while the top-level percentiles are recomputed from
#: the pooled raw samples (sinks merge via :meth:`TelemetrySink.merge`,
#: never by averaging percentiles).
#:
#: v4 added the elastic-cluster fields: every summary carries ``faults``
#: counters (``FAULT_KINDS`` -- injected/observed crashes, stalls,
#: dropped and duplicated dispatches, see :mod:`repro.serve.faults`) and
#: a ``resize`` block (``events`` = shard-count changes, ``relocated`` =
#: queued requests moved between shards by a resize); cluster summaries
#: may additionally carry an ``"autotune"`` block describing the router
#: the length-distribution observer picked (:mod:`repro.serve.autotune`).
SERVE_SCHEMA_VERSION = 4

#: Admission outcomes a sink counts (see ``AdmissionController``):
#: ``admitted`` requests entered a queue, ``rejected`` ones were refused
#: with backpressure, ``shed`` ones were evicted from a queue to make
#: room for higher-priority work, and ``retried`` ones were re-queued on
#: a surviving shard after a worker crash.
ADMISSION_OUTCOMES = ("admitted", "rejected", "shed", "retried")

#: Fault kinds a sink counts (see :mod:`repro.serve.faults`): ``crashes``
#: are worker deaths (injected or real), ``delays`` applied stalls,
#: ``dropped`` lost dispatches whose requests were restored to the queue,
#: and ``duplicated`` dispatches delivered twice (served twice, resolved
#: once).
FAULT_KINDS = ("crashes", "delays", "dropped", "duplicated")


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Deterministic and interpolation-free: the returned value is always
    one of the samples, which keeps modeled-timing replays bit-stable.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if not values:
        raise ValueError("percentile of an empty sample set")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class LatencySummary:
    """Five-number summary of one latency-like sample set (milliseconds)."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        if not values:
            return cls(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, max_ms=0.0)
        return cls(
            count=len(values),
            mean_ms=float(sum(values) / len(values)),
            p50_ms=percentile(values, 50.0),
            p95_ms=percentile(values, 95.0),
            p99_ms=percentile(values, 99.0),
            max_ms=float(max(values)),
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }


class TelemetrySink:
    """Accumulates serving samples and renders the versioned summary."""

    def __init__(self) -> None:
        self.wait_ms: List[float] = []
        self.latency_ms: List[float] = []
        self.queue_depths: List[int] = []
        self.batch_occupancy: Counter = Counter()
        self.num_batches = 0
        self.slice_occupancy: List[float] = []
        self.refill_admissions = 0
        self.admission: Dict[str, int] = {outcome: 0 for outcome in ADMISSION_OUTCOMES}
        self.faults: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.resize_events = 0
        self.resize_relocated = 0

    # ------------------------------------------------------------------
    def record_queue_depth(self, depth: int) -> None:
        """Sample the pending-queue depth.

        Drivers sample at every arrival and at every dispatch or refill
        admission, so requests admitted into an in-flight batch count as
        dequeued the moment they leave the queue (not at batch
        completion).
        """
        self.queue_depths.append(int(depth))

    def record_batch(self, occupancy: int) -> None:
        """Record one dispatched batch of ``occupancy`` requests."""
        self.batch_occupancy[int(occupancy)] += 1
        self.num_batches += 1

    def record_slice(self, stats: "SliceStats") -> None:
        """Record one engine slice of an in-flight batch.

        ``stats`` is the :class:`repro.api.SliceStats` the batch handle
        returned from ``step()``; its :attr:`occupancy` (live lanes over
        capacity at the start of the slice) is the sample that builds the
        occupancy-over-time view.
        """
        self.slice_occupancy.append(float(stats.occupancy))

    def record_refill(self, admitted: int) -> None:
        """Record ``admitted`` requests joining an already-running batch."""
        self.refill_admissions += int(admitted)

    def record_request(self, wait_ms: float, latency_ms: float) -> None:
        """Record one completed request's wait and end-to-end latency."""
        self.wait_ms.append(float(wait_ms))
        self.latency_ms.append(float(latency_ms))

    def record_admission(self, outcome: str, count: int = 1) -> None:
        """Count one bounded-admission outcome (see ``ADMISSION_OUTCOMES``)."""
        if outcome not in self.admission:
            raise ValueError(
                f"unknown admission outcome {outcome!r}; "
                f"expected one of {ADMISSION_OUTCOMES}"
            )
        self.admission[outcome] += int(count)

    def record_fault(self, kind: str, count: int = 1) -> None:
        """Count one injected/observed fault (see ``FAULT_KINDS``)."""
        if kind not in self.faults:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        self.faults[kind] += int(count)

    def record_resize(self, relocated: int = 0) -> None:
        """Count one shard-count change and the requests it relocated."""
        self.resize_events += 1
        self.resize_relocated += int(relocated)

    # ------------------------------------------------------------------
    # cross-process state transfer + merging (the sharded cluster ships
    # each worker's sink home and pools the raw samples, so merged
    # percentiles are computed on the union -- never averaged)
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """Plain-JSON snapshot of the raw samples (picklable, mergeable)."""
        return {
            "wait_ms": list(self.wait_ms),
            "latency_ms": list(self.latency_ms),
            "queue_depths": list(self.queue_depths),
            "batch_occupancy": {
                str(size): count for size, count in sorted(self.batch_occupancy.items())
            },
            "num_batches": self.num_batches,
            "slice_occupancy": list(self.slice_occupancy),
            "refill_admissions": self.refill_admissions,
            "admission": dict(self.admission),
            "faults": dict(self.faults),
            "resize": {
                "events": self.resize_events,
                "relocated": self.resize_relocated,
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "TelemetrySink":
        """Rebuild a sink from :meth:`state` (inverse, sample-exact)."""
        sink = cls()
        sink.wait_ms = [float(v) for v in state.get("wait_ms", [])]  # type: ignore[union-attr]
        sink.latency_ms = [float(v) for v in state.get("latency_ms", [])]  # type: ignore[union-attr]
        sink.queue_depths = [int(v) for v in state.get("queue_depths", [])]  # type: ignore[union-attr]
        occupancy = state.get("batch_occupancy", {})
        assert isinstance(occupancy, Mapping)
        sink.batch_occupancy = Counter(
            {int(size): int(count) for size, count in occupancy.items()}
        )
        sink.num_batches = int(state.get("num_batches", 0))  # type: ignore[arg-type]
        sink.slice_occupancy = [
            float(v) for v in state.get("slice_occupancy", [])  # type: ignore[union-attr]
        ]
        sink.refill_admissions = int(state.get("refill_admissions", 0))  # type: ignore[arg-type]
        admission = state.get("admission", {})
        assert isinstance(admission, Mapping)
        for outcome, count in admission.items():
            sink.record_admission(str(outcome), int(count))
        faults = state.get("faults", {})
        assert isinstance(faults, Mapping)
        for kind, count in faults.items():
            sink.record_fault(str(kind), int(count))
        resize = state.get("resize", {})
        assert isinstance(resize, Mapping)
        sink.resize_events = int(resize.get("events", 0))  # type: ignore[arg-type]
        sink.resize_relocated = int(resize.get("relocated", 0))  # type: ignore[arg-type]
        return sink

    def merge(self, other: "TelemetrySink") -> "TelemetrySink":
        """Fold ``other``'s raw samples into this sink (returns ``self``).

        Sample lists concatenate and counters add, so a merged summary is
        exactly the summary of the pooled sample multiset -- the p99 of a
        cluster is the p99 over *all* requests, not a mean of shard p99s.
        """
        self.wait_ms.extend(other.wait_ms)
        self.latency_ms.extend(other.latency_ms)
        self.queue_depths.extend(other.queue_depths)
        self.batch_occupancy.update(other.batch_occupancy)
        self.num_batches += other.num_batches
        self.slice_occupancy.extend(other.slice_occupancy)
        self.refill_admissions += other.refill_admissions
        for outcome, count in other.admission.items():
            self.admission[outcome] = self.admission.get(outcome, 0) + count
        for kind, count in other.faults.items():
            self.faults[kind] = self.faults.get(kind, 0) + count
        self.resize_events += other.resize_events
        self.resize_relocated += other.resize_relocated
        return self

    # ------------------------------------------------------------------
    @property
    def num_requests(self) -> int:
        return len(self.latency_ms)

    @property
    def num_slices(self) -> int:
        return len(self.slice_occupancy)

    def mean_occupancy(self) -> float:
        """Average number of requests per dispatched batch."""
        total = sum(size * count for size, count in self.batch_occupancy.items())
        return total / self.num_batches if self.num_batches else 0.0

    def mean_lane_occupancy(self) -> float:
        """Average fraction of lanes live over all recorded slices."""
        if not self.slice_occupancy:
            return 0.0
        return sum(self.slice_occupancy) / len(self.slice_occupancy)

    def summary(self) -> Dict[str, object]:
        """The versioned telemetry summary (pure function of the samples)."""
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_batch_occupancy": self.mean_occupancy(),
            "batch_occupancy": {
                str(size): count for size, count in sorted(self.batch_occupancy.items())
            },
            "lane_occupancy": {
                "slices": self.num_slices,
                "mean": self.mean_lane_occupancy(),
                "max": max(self.slice_occupancy, default=0.0),
            },
            "refill": {"admitted_inflight": self.refill_admissions},
            "admission": dict(self.admission),
            "faults": dict(self.faults),
            "resize": {
                "events": self.resize_events,
                "relocated": self.resize_relocated,
            },
            "queue_depth": {
                "mean": (
                    sum(self.queue_depths) / len(self.queue_depths)
                    if self.queue_depths
                    else 0.0
                ),
                "max": max(self.queue_depths, default=0),
            },
            "wait_ms": LatencySummary.from_values(self.wait_ms).to_dict(),
            "latency_ms": LatencySummary.from_values(self.latency_ms).to_dict(),
        }


# ----------------------------------------------------------------------
# BENCH_serve.json assembly
# ----------------------------------------------------------------------
def serve_bench_record(
    reports: Sequence["ServeReport"],
    *,
    baseline: str = "batch1",
    figure: str = "serve",
    suite: Optional[str] = None,
) -> "BenchRecord":
    """Fold serve reports into one gateable :class:`BenchRecord`.

    Every report contributes one (workload x policy) cell under a single
    suite (named after ``figure`` unless ``suite`` overrides it -- the
    default study writes suite ``"serve"``, the cluster scale-out study
    suite ``"serve_scale"``); ``time_ms`` is the drain makespan and
    ``speedup_vs_cpu`` the throughput ratio against the ``baseline``
    policy on the same workload (the baseline itself anchors at 1.0, and
    its makespan fills ``cpu_time_ms`` -- the anchor slot of the record
    schema).  Telemetry summaries ride in the environment block under
    ``"serve"``.  ``reports`` may mix :class:`ServeReport` and
    :class:`repro.serve.cluster.ClusterReport` objects -- both expose the
    same policy/workload/makespan/telemetry surface.
    """
    # Imported lazily: repro.bench's package __init__ reaches repro.api,
    # which re-exports this module -- a module-level import would race
    # whichever package the caller imported first.
    from repro.bench.records import (
        BenchRecord,
        CellRecord,
        SuiteRecord,
        environment_metadata,
    )

    if not reports:
        raise ValueError("serve_bench_record needs at least one report")
    by_key: Dict[tuple, "ServeReport"] = {}
    workloads: List[str] = []
    policies: List[str] = []
    for report in reports:
        key = (report.workload, report.policy)
        if key in by_key:
            raise ValueError(f"duplicate report for workload/policy {key!r}")
        by_key[key] = report
        if report.workload not in workloads:
            workloads.append(report.workload)
        if report.policy not in policies:
            policies.append(report.policy)
    anchors: Mapping[str, "ServeReport"] = {
        workload: by_key[(workload, baseline)]
        for workload in workloads
        if (workload, baseline) in by_key
    }
    if len(anchors) != len(workloads):
        missing = [w for w in workloads if w not in anchors]
        raise ValueError(
            f"baseline policy {baseline!r} has no report for workload(s) {missing}"
        )

    from repro.pipeline.experiment import geometric_mean

    suite_name = suite if suite is not None else figure
    suite_record = SuiteRecord(suite=suite_name)
    telemetry: Dict[str, Dict[str, object]] = {}
    for policy in policies:
        row: Dict[str, float] = {}
        for workload in workloads:
            report = by_key.get((workload, policy))
            if report is None:
                continue
            anchor = anchors[workload]
            speedup = (
                anchor.makespan_ms / report.makespan_ms if report.makespan_ms > 0 else 0.0
            )
            row[workload] = speedup
            suite_record.cells.append(
                CellRecord(
                    dataset=workload,
                    kernel=policy,
                    time_ms=report.makespan_ms,
                    speedup_vs_cpu=speedup,
                )
            )
            telemetry.setdefault(policy, {})[workload] = report.telemetry
        row["GeoMean"] = geometric_mean(list(row.values()))
        suite_record.speedups[policy] = row
    for workload in workloads:
        suite_record.cpu_time_ms[workload] = anchors[workload].makespan_ms
    sample = reports[0]
    return BenchRecord(
        figure=figure,
        datasets=list(workloads),
        suites={suite_name: suite_record},
        environment=environment_metadata(
            serve_schema_version=SERVE_SCHEMA_VERSION,
            baseline_policy=baseline,
            engine=sample.config.engine,
            timing=sample.config.timing,
            refill=sample.config.resolved_refill(),
            serve=telemetry,
        ),
    )
