"""Virtual-clock replay of the micro-batching service.

:func:`replay` drains a :class:`~repro.serve.loadgen.RequestTrace`
through the :class:`~repro.serve.queueing.MicroBatcher` policy as a
discrete-event simulation: a virtual clock advances from arrival to
dispatch to completion, ``config.workers`` parallel servers are modeled
as a bank of busy-until times, and every formed batch is executed **for
real** through the configured :mod:`repro.api` engine (results are the
point of serving; only *time* is simulated).

Two timing sources:

``timing="measured"``
    The engine call is wall-clocked and that duration is charged to the
    virtual clock -- an offline load test of the real engine, which is
    what the serve benchmark records.
``timing="modeled"``
    Service time comes from :func:`modeled_service_ms`, a deterministic
    linear model; the entire drain (batches, timestamps, telemetry)
    becomes a pure function of the trace and the configuration.  The
    scheduler-invariant tests run in this mode: *no request waits past
    ``max_wait_ms`` in virtual time* while a server is idle.

The event loop has one rule worth stating: a batch is dispatched at
``t = max(worker-free time, ready time)`` where ready is "queue reached
``max_batch_size``" or "oldest pending request hit its deadline" --
unless an earlier arrival would change the picture, in which case the
clock advances to that arrival first.  Ties (an arrival at exactly the
dispatch time) resolve in favour of dispatching, so a request never
waits on a same-instant arrival.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.align.types import AlignmentResult, AlignmentTask
from repro.serve.config import ServeConfig
from repro.serve.loadgen import RequestTrace
from repro.serve.queueing import MicroBatcher, ServeRequest
from repro.serve.telemetry import TelemetrySink

__all__ = ["ServeReport", "modeled_service_ms", "replay"]

_INF = float("inf")

#: Signature of an injectable service-time model: batch tasks -> ms.
ServiceTime = Callable[[Sequence[AlignmentTask]], float]


def modeled_service_ms(tasks: Sequence[AlignmentTask], config: ServeConfig) -> float:
    """Deterministic service time of one batch under ``config``'s model.

    A fixed dispatch overhead, a per-task cost, and a per-anti-diagonal
    cost charged once on the *longest* task -- tasks of one batch sweep
    together, so the sweep length is the batch maximum.  The shape
    mirrors why micro-batching wins: overhead and sweep cost amortise
    over the batch, only the per-task term scales.
    """
    if not tasks:
        return 0.0
    longest = max(task.num_antidiagonals for task in tasks)
    return (
        config.model_overhead_ms
        + config.model_task_us * len(tasks) / 1000.0
        + config.model_antidiag_us * longest / 1000.0
    )


@dataclass(frozen=True)
class ServeReport:
    """Outcome of one drain: stamped requests, makespan and telemetry."""

    policy: str
    workload: str
    config: ServeConfig
    requests: Tuple[ServeRequest, ...]
    makespan_ms: float
    telemetry: Dict[str, object]

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of virtual drain time."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.num_requests / self.makespan_ms * 1000.0

    def results(self) -> List[AlignmentResult]:
        """Alignment results in submission (request-id) order."""
        out: List[AlignmentResult] = []
        for request in self.requests:
            if request.result is None:
                raise ValueError(f"request {request.request_id} has no result")
            out.append(request.result)
        return out

    def scores(self) -> List[int]:
        return [result.score for result in self.results()]


def replay(
    trace: RequestTrace,
    config: Optional[ServeConfig] = None,
    *,
    policy: Optional[str] = None,
    service_time: Optional[ServiceTime] = None,
) -> ServeReport:
    """Drain ``trace`` through the service policy on a virtual clock.

    ``service_time`` overrides the timing mode with an arbitrary model
    (tests use constants); otherwise ``config.timing`` picks measured or
    modeled durations.  Results are bit-identical to scoring the trace's
    tasks directly with the configured engine -- batching never changes
    the arithmetic.
    """
    config = config or ServeConfig()
    from repro.api.engines import get_engine

    engine = get_engine(config.engine)
    engine_bucket = config.effective_batch_size()

    requests = trace.requests()
    queue = deque(sorted(requests, key=lambda r: (r.arrival_ms, r.request_id)))
    batcher = MicroBatcher(
        config.max_batch_size, config.max_wait_ms, length_aware=config.length_aware
    )
    workers = [0.0] * config.workers
    sink = TelemetrySink()
    now = 0.0
    makespan_end = 0.0

    def admit_until(limit_ms: float) -> None:
        while queue and queue[0].arrival_ms <= limit_ms:
            batcher.add(queue.popleft())
            sink.record_queue_depth(len(batcher))

    while queue or len(batcher):
        next_arrival = queue[0].arrival_ms if queue else _INF
        if not len(batcher):
            now = max(now, next_arrival)
            admit_until(now)
            continue
        free_at = min(workers)
        if batcher.size_ready():
            dispatch_at = max(now, free_at)
        else:
            deadline = batcher.next_deadline_ms()
            assert deadline is not None
            dispatch_at = max(deadline, free_at)
        if next_arrival < dispatch_at:
            # An arrival precedes the would-be dispatch and may fill the
            # batch (or become its length-mate); admit it first.
            now = next_arrival
            admit_until(now)
            continue
        now = max(now, dispatch_at)
        batch = batcher.form_batch(now)
        tasks = [request.task for request in batch]
        if service_time is not None:
            results = engine(tasks, batch_size=engine_bucket)
            duration = float(service_time(tasks))
        elif config.timing == "modeled":
            results = engine(tasks, batch_size=engine_bucket)
            duration = modeled_service_ms(tasks, config)
        else:
            started = time.perf_counter()
            results = engine(tasks, batch_size=engine_bucket)
            duration = (time.perf_counter() - started) * 1000.0
        if len(results) != len(batch):
            raise ValueError(
                f"engine {config.engine!r} returned {len(results)} results "
                f"for a batch of {len(batch)} tasks"
            )
        if duration < 0:
            raise ValueError("service time must be non-negative")
        slot = workers.index(free_at)
        workers[slot] = now + duration
        completion = now + duration
        makespan_end = max(makespan_end, completion)
        sink.record_batch(len(batch))
        for request, result in zip(batch, results):
            request.result = result
            request.completion_ms = completion
            sink.record_request(request.wait_ms, request.latency_ms)

    return ServeReport(
        policy=policy if policy is not None else config.policy_name,
        workload=trace.name,
        config=config,
        requests=tuple(requests),
        makespan_ms=makespan_end,
        telemetry=sink.summary(),
    )
