"""Virtual-clock replay of the micro-batching service.

:func:`replay` drains a :class:`~repro.serve.loadgen.RequestTrace`
through the :class:`~repro.serve.queueing.MicroBatcher` policy as a
discrete-event simulation: a virtual clock advances from arrival to
dispatch to completion, and every formed batch is executed **for real**
through the configured :mod:`repro.api` engine (results are the point of
serving; only *time* is simulated).

Two dispatch disciplines, selected by ``config.resolved_refill()``:

``"drain"`` (drain-then-form)
    The classic loop: ``config.workers`` parallel servers are modeled as
    a bank of busy-until times, a dispatched batch runs to completion,
    and only then is the queue looked at again.  Batches execute through
    a one-shot :class:`repro.api.InFlightBatch` handle (streaming
    engines still stream internally, but get no refill).
``"continuous"`` (continuous lane refill)
    One streaming handle stays open for the whole busy period.  The
    clock advances one engine *slice* at a time; at every slice boundary
    newly arrived requests are admitted into lanes freed by compaction
    (:meth:`MicroBatcher.take`, priority-ordered).  While the stream is
    idle the normal cut conditions apply unchanged, so the
    ``max_wait_ms`` contract is preserved -- refill admission can only
    shorten waits, never lengthen them.

Three timing sources:

``timing="measured"``
    The engine call (one drained batch, or one slice) is wall-clocked
    and that duration is charged to the virtual clock -- an offline load
    test of the real engine, which is what the serve benchmark records.
``timing="modeled"``
    Service time comes from :func:`modeled_service_ms` (per batch) or
    :func:`modeled_slice_ms` (per slice), deterministic linear models;
    the entire drain (batches, timestamps, telemetry) becomes a pure
    function of the trace and the configuration.  The two models charge
    the same per-task and per-anti-diagonal rates, and continuous mode
    pays the dispatch overhead once per busy period (the stream behaves
    like a persistent kernel), so makespan differences between the modes
    come from scheduling, not from inconsistent accounting.
``service_time=...``
    An injectable override (tests use constants): called per batch in
    drain mode, per slice (with the live tasks) in continuous mode.

The drain event loop has one rule worth stating: a batch is dispatched
at ``t = max(worker-free time, ready time)`` where ready is "queue
reached ``max_batch_size``" or "oldest pending request hit its deadline"
-- unless an earlier arrival would change the picture, in which case the
clock advances to that arrival first.  Ties (an arrival at exactly the
dispatch time) resolve in favour of dispatching, so a request never
waits on a same-instant arrival.  The continuous loop inherits the same
rule for dispatches into an idle stream.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.align.batch import DEFAULT_SLICE_WIDTH
from repro.align.types import AlignmentResult, AlignmentTask
from repro.serve.config import ServeConfig
from repro.serve.faults import ShardFaults
from repro.serve.loadgen import RequestTrace
from repro.serve.queueing import MicroBatcher, ServeRequest
from repro.serve.telemetry import TelemetrySink

__all__ = ["ServeReport", "modeled_service_ms", "modeled_slice_ms", "replay"]

_INF = float("inf")

#: Signature of an injectable service-time model: batch tasks -> ms.
ServiceTime = Callable[[Sequence[AlignmentTask]], float]


def modeled_service_ms(tasks: Sequence[AlignmentTask], config: ServeConfig) -> float:
    """Deterministic service time of one batch under ``config``'s model.

    A fixed dispatch overhead, a per-task cost, and a per-anti-diagonal
    cost charged once on the *longest* task -- tasks of one batch sweep
    together, so the sweep length is the batch maximum.  The shape
    mirrors why micro-batching wins: overhead and sweep cost amortise
    over the batch, only the per-task term scales.
    """
    if not tasks:
        return 0.0
    longest = max(task.num_antidiagonals for task in tasks)
    return (
        config.model_overhead_ms
        + config.model_task_us * len(tasks) / 1000.0
        + config.model_antidiag_us * longest / 1000.0
    )


def modeled_slice_ms(
    config: ServeConfig,
    *,
    slice_width: int,
    admitted: int,
    busy_start: bool,
) -> float:
    """Deterministic service time of one streaming slice.

    The same rates as :func:`modeled_service_ms`, charged per slice: the
    sweep term covers ``slice_width`` anti-diagonals, the per-task term
    is paid once per *admission* (setup of a lane), and the dispatch
    overhead only at a busy-period start -- a continuously-refilled
    stream is a persistent kernel, so total modeled work over a busy
    period matches the drain model and any makespan/latency difference
    comes from scheduling.
    """
    return (
        (config.model_overhead_ms if busy_start else 0.0)
        + config.model_task_us * admitted / 1000.0
        + config.model_antidiag_us * slice_width / 1000.0
    )


@dataclass(frozen=True)
class ServeReport:
    """Outcome of one drain: stamped requests, makespan and telemetry."""

    policy: str
    workload: str
    config: ServeConfig
    requests: Tuple[ServeRequest, ...]
    makespan_ms: float
    telemetry: Dict[str, object]

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of virtual drain time."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.num_requests / self.makespan_ms * 1000.0

    def results(self) -> List[AlignmentResult]:
        """Alignment results in submission (request-id) order."""
        out: List[AlignmentResult] = []
        for request in self.requests:
            if request.result is None:
                raise ValueError(f"request {request.request_id} has no result")
            out.append(request.result)
        return out

    def scores(self) -> List[int]:
        return [result.score for result in self.results()]


def replay(
    trace: RequestTrace,
    config: Optional[ServeConfig] = None,
    *,
    policy: Optional[str] = None,
    service_time: Optional[ServiceTime] = None,
    sink: Optional[TelemetrySink] = None,
    faults: Optional[ShardFaults] = None,
) -> ServeReport:
    """Drain ``trace`` through the service policy on a virtual clock.

    ``service_time`` overrides the timing mode with an arbitrary model
    (tests use constants); it is called per batch under drain-then-form
    and per slice (with the tasks live during that slice) under
    continuous refill.  Otherwise ``config.timing`` picks measured or
    modeled durations.  ``sink`` lets a caller keep the raw telemetry
    samples (:func:`repro.serve.cluster.cluster_replay` passes one per
    shard and merges them); the report's ``telemetry`` summary is taken
    from it either way.  ``faults`` injects a deterministic
    :class:`~repro.serve.faults.ShardFaults` view into the event loop --
    stalls push dispatch times, dropped dispatches restore their batch to
    the queue, duplicated dispatches charge the worker twice (crash
    faults live one level up, in ``cluster_replay``).  Results are
    bit-identical to scoring the trace's tasks directly with the
    configured engine -- neither batching, refill nor fault timing ever
    changes the arithmetic.
    """
    config = config or ServeConfig()
    if config.resolved_refill() == "continuous":
        if faults is not None and (faults.drops or faults.duplicates):
            raise ValueError(
                "drop/duplicate faults address drain-mode batch dispatches; "
                "continuous refill has no discrete dispatch stream to index "
                "(use delay faults, or refill='drain')"
            )
        return _replay_continuous(
            trace, config, policy=policy, service_time=service_time, sink=sink,
            faults=faults,
        )
    return _replay_drain(
        trace, config, policy=policy, service_time=service_time, sink=sink,
        faults=faults,
    )


# ----------------------------------------------------------------------
# drain-then-form
# ----------------------------------------------------------------------
def _replay_drain(
    trace: RequestTrace,
    config: ServeConfig,
    *,
    policy: Optional[str],
    service_time: Optional[ServiceTime],
    sink: Optional[TelemetrySink] = None,
    faults: Optional[ShardFaults] = None,
) -> ServeReport:
    from repro.api.engines import open_batch

    options = config.engine_options()
    requests = trace.requests()
    queue = deque(sorted(requests, key=lambda r: (r.arrival_ms, r.request_id)))
    batcher = MicroBatcher(
        config.max_batch_size, config.max_wait_ms, length_aware=config.length_aware
    )
    workers = [0.0] * config.workers
    sink = sink if sink is not None else TelemetrySink()
    stalls = faults.stalls if faults is not None else ()
    drops = faults.drops if faults is not None else frozenset()
    duplicates = faults.duplicates if faults is not None else frozenset()
    stall_idx = 0
    dispatch_index = 0
    now = 0.0
    makespan_end = 0.0

    def stalled(at_ms: float) -> Tuple[float, int]:
        """Dispatch time after stalls due by ``at_ms``, plus the stall
        cursor to commit *if* the dispatch happens (an earlier arrival may
        still preempt it, so application is non-destructive)."""
        cursor = stall_idx
        while cursor < len(stalls) and stalls[cursor][0] <= at_ms:
            at_ms = max(at_ms, stalls[cursor][0] + stalls[cursor][1])
            cursor += 1
        return at_ms, cursor

    def admit_until(limit_ms: float) -> None:
        while queue and queue[0].arrival_ms <= limit_ms:
            batcher.add(queue.popleft())
            sink.record_queue_depth(len(batcher))

    def execute(tasks: Sequence[AlignmentTask]) -> Tuple[List[AlignmentResult], float]:
        capacity = max(config.max_batch_size, len(tasks))
        if service_time is not None:
            handle = open_batch(
                tasks, engine=config.engine, options=options, capacity=capacity
            )
            results = handle.drain()
            duration = float(service_time(tasks))
        elif config.timing == "modeled":
            handle = open_batch(
                tasks, engine=config.engine, options=options, capacity=capacity
            )
            results = handle.drain()
            duration = modeled_service_ms(tasks, config)
        else:
            started = time.perf_counter()
            handle = open_batch(
                tasks, engine=config.engine, options=options, capacity=capacity
            )
            results = handle.drain()
            duration = (time.perf_counter() - started) * 1000.0
        for stat in handle.stats:
            sink.record_slice(stat)
        return results, duration

    while queue or len(batcher):
        next_arrival = queue[0].arrival_ms if queue else _INF
        if not len(batcher):
            now = max(now, next_arrival)
            admit_until(now)
            continue
        free_at = min(workers)
        if batcher.size_ready():
            dispatch_at = max(now, free_at)
        else:
            deadline = batcher.next_deadline_ms()
            assert deadline is not None
            dispatch_at = max(deadline, free_at)
        dispatch_at, stall_cursor = stalled(dispatch_at)
        if next_arrival < dispatch_at:
            # An arrival precedes the would-be dispatch and may fill the
            # batch (or become its length-mate); admit it first.
            now = next_arrival
            admit_until(now)
            continue
        now = max(now, dispatch_at)
        for _ in range(stall_cursor - stall_idx):
            sink.record_fault("delays")
        stall_idx = stall_cursor
        batch = batcher.form_batch(now)
        sink.record_queue_depth(len(batcher))  # dispatched requests left the queue
        this_dispatch = dispatch_index
        dispatch_index += 1
        if this_dispatch in drops:
            # The send was lost before reaching the worker: the batch
            # returns to the queue and goes out on a later dispatch.
            sink.record_fault("dropped")
            batcher.restore(batch)
            sink.record_queue_depth(len(batcher))
            continue
        tasks = [request.task for request in batch]
        results, duration = execute(tasks)
        if len(results) != len(batch):
            raise ValueError(
                f"engine {config.engine!r} returned {len(results)} results "
                f"for a batch of {len(batch)} tasks"
            )
        if duration < 0:
            raise ValueError("service time must be non-negative")
        slot = workers.index(free_at)
        if this_dispatch in duplicates:
            # Delivered twice: the worker serves both copies (the slot
            # stays busy for two service times) but results are stamped
            # once, at the first copy's completion.
            sink.record_fault("duplicated")
            workers[slot] = now + 2 * duration
        else:
            workers[slot] = now + duration
        completion = now + duration
        makespan_end = max(makespan_end, completion)
        sink.record_batch(len(batch))
        for request, result in zip(batch, results):
            request.result = result
            request.completion_ms = completion
            sink.record_request(request.wait_ms, request.latency_ms)

    return ServeReport(
        policy=policy if policy is not None else config.policy_name,
        workload=trace.name,
        config=config,
        requests=tuple(requests),
        makespan_ms=makespan_end,
        telemetry=sink.summary(),
    )


# ----------------------------------------------------------------------
# continuous lane refill
# ----------------------------------------------------------------------
def _replay_continuous(
    trace: RequestTrace,
    config: ServeConfig,
    *,
    policy: Optional[str],
    service_time: Optional[ServiceTime],
    sink: Optional[TelemetrySink] = None,
    faults: Optional[ShardFaults] = None,
) -> ServeReport:
    """One streaming handle, refilled at every slice boundary.

    Models a single device whose lane capacity is ``max_batch_size``
    (``config.workers`` is a drain-mode knob).  The invariant split:

    * stream **idle** -- the normal cut conditions decide when to
      dispatch, exactly like drain mode, so ``max_wait_ms`` holds;
    * stream **busy** -- refill is free: every pending request is
      admitted into a free lane at the very next slice boundary,
      priority classes first (length-aware grouping never delays
      refill).
    """
    from repro.api.engines import open_batch

    options = config.engine_options()
    slice_width = (
        options.slice_width if options.slice_width is not None else DEFAULT_SLICE_WIDTH
    )
    stream = open_batch(
        (), engine=config.engine, options=options, capacity=config.max_batch_size
    )
    requests = trace.requests()
    queue = deque(sorted(requests, key=lambda r: (r.arrival_ms, r.request_id)))
    batcher = MicroBatcher(
        config.max_batch_size, config.max_wait_ms, length_aware=config.length_aware
    )
    sink = sink if sink is not None else TelemetrySink()
    inflight: Dict[int, ServeRequest] = {}
    stalls = faults.stalls if faults is not None else ()
    stall_idx = 0
    now = 0.0
    makespan_end = 0.0

    def admit_until(limit_ms: float) -> None:
        while queue and queue[0].arrival_ms <= limit_ms:
            batcher.add(queue.popleft())
            sink.record_queue_depth(len(batcher))

    def stalled(at_ms: float) -> Tuple[float, int]:
        """Non-destructive stall application (see ``_replay_drain``)."""
        cursor = stall_idx
        while cursor < len(stalls) and stalls[cursor][0] <= at_ms:
            at_ms = max(at_ms, stalls[cursor][0] + stalls[cursor][1])
            cursor += 1
        return at_ms, cursor

    def admit_to_stream(batch: List[ServeRequest]) -> None:
        indices = stream.admit([request.task for request in batch])
        for index, request in zip(indices, batch):
            inflight[index] = request

    while queue or len(batcher) or stream.live:
        admit_until(now)
        busy_start = stream.live == 0
        admitted_now = 0
        if stream.live:
            # Refill: freed lanes take pending requests immediately.
            taken = batcher.take(stream.free, now) if stream.free else []
            if taken:
                admit_to_stream(taken)
                for request in taken:
                    request.batch_occupancy = stream.live
                admitted_now = len(taken)
                sink.record_refill(len(taken))
                sink.record_queue_depth(len(batcher))
        else:
            next_arrival = queue[0].arrival_ms if queue else _INF
            if not len(batcher):
                if not queue:
                    break
                now = max(now, next_arrival)
                continue
            if batcher.size_ready():
                dispatch_at = now
            else:
                deadline = batcher.next_deadline_ms()
                assert deadline is not None
                dispatch_at = max(deadline, now)
            dispatch_at, stall_cursor = stalled(dispatch_at)
            if next_arrival < dispatch_at:
                now = next_arrival
                continue
            now = max(now, dispatch_at)
            for _ in range(stall_cursor - stall_idx):
                sink.record_fault("delays")
            stall_idx = stall_cursor
            batch = batcher.form_batch(now)
            admit_to_stream(batch)
            admitted_now = len(batch)
            sink.record_batch(len(batch))
            sink.record_queue_depth(len(batcher))

        # One slice of the in-flight batch.
        live_tasks = [inflight[index].task for index in sorted(inflight)]
        if service_time is not None:
            stats = stream.step(1)
            duration = float(service_time(live_tasks))
        elif config.timing == "modeled":
            stats = stream.step(1)
            duration = modeled_slice_ms(
                config,
                slice_width=slice_width,
                admitted=admitted_now,
                busy_start=busy_start,
            )
        else:
            started = time.perf_counter()
            stats = stream.step(1)
            duration = (time.perf_counter() - started) * 1000.0
        if duration < 0:
            raise ValueError("service time must be non-negative")
        now += duration
        # A stall crossed while the slice ran pushes its boundary: the
        # device pauses mid-slice, completions land after the stall.
        while stall_idx < len(stalls) and stalls[stall_idx][0] <= now:
            now = max(now, stalls[stall_idx][0] + stalls[stall_idx][1])
            sink.record_fault("delays")
            stall_idx += 1
        for stat in stats:
            sink.record_slice(stat)
        for index, result in stream.take_completed():
            request = inflight.pop(index)
            request.result = result
            request.completion_ms = now
            makespan_end = max(makespan_end, now)
            sink.record_request(request.wait_ms, request.latency_ms)

    return ServeReport(
        policy=policy if policy is not None else config.policy_name,
        workload=trace.name,
        config=config,
        requests=tuple(requests),
        makespan_ms=makespan_end,
        telemetry=sink.summary(),
    )
