"""Length-router autotuning: pick the routing policy from observed traffic.

The ``"length"`` routing policy co-locates tasks with similar sweep
lengths, but its quality hinges on ``length_stride`` matching the
workload's length distribution: a stride wider than most tasks'
anti-diagonal counts collapses every request into bucket zero (one shard
does all the work), a too-narrow stride scatters neighbours apart.  The
right stride is a property of the *traffic*, so this module derives it
from the traffic instead of asking the operator to guess.

:func:`shard_load_imbalance` is the objective: route a task sample with
a candidate :class:`~repro.serve.cluster.ShardRouter` and measure
``max(shard load) / mean(shard load)``, where a task's load contribution
is its anti-diagonal count (the quantity the service time model charges
for).  1.0 is a perfectly level cluster; ``shards`` is one shard doing
everything.

:func:`autotune_router` sweeps a candidate grid -- each policy in
:attr:`AutotuneConfig.policies`, and for ``"length"`` each stride in
:attr:`AutotuneConfig.strides` -- and returns the
:class:`RouterChoice` minimising imbalance over the observed sample,
with deterministic tie-breaking (grid order), so the same traffic always
tunes to the same router.  :class:`TrafficObserver` is the live-cluster
front half: it buffers ``task.num_antidiagonals`` from the first
``sample_size`` admitted requests, then hands the sample to the tuner
(:class:`~repro.serve.cluster.ClusterService` swaps its router in the
same lock step, so routing stays deterministic given the submission
order).  :func:`~repro.serve.cluster.cluster_replay` tunes on the trace
prefix of the same length, which makes the replay's choice a pure
function of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.align.types import AlignmentTask
    from repro.serve.cluster import ShardRouter

__all__ = [
    "AutotuneConfig",
    "RouterChoice",
    "TrafficObserver",
    "autotune_router",
    "shard_load_imbalance",
]


@dataclass(frozen=True)
class AutotuneConfig:
    """Knobs of the router autotuner.

    ``sample_size`` requests are observed before choosing (the replay
    uses the trace prefix, the live cluster the first admissions);
    ``policies`` and ``strides`` span the candidate grid.  Policies that
    ignore the stride (``"hash"``, ``"stable"``) contribute one candidate
    each; ``"length"`` contributes one per stride.
    """

    sample_size: int = 64
    strides: Tuple[int, ...] = (16, 32, 64, 128, 256, 512)
    policies: Tuple[str, ...] = ("hash", "length")

    def __post_init__(self) -> None:
        from repro.serve.cluster import ROUTE_POLICIES

        if self.sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if not self.strides or any(stride <= 0 for stride in self.strides):
            raise ValueError("strides must be a non-empty tuple of positive ints")
        if not self.policies:
            raise ValueError("policies must be non-empty")
        for policy in self.policies:
            if policy not in ROUTE_POLICIES:
                raise ValueError(
                    f"autotune policy must be one of {ROUTE_POLICIES}, got {policy!r}"
                )


@dataclass(frozen=True)
class RouterChoice:
    """The tuner's verdict: the chosen router and the evidence for it.

    ``imbalance`` is the chosen router's max/mean shard load over the
    sample, ``baseline_imbalance`` the statically configured router's on
    the same sample -- the pair is what benchmark gates assert on.
    """

    policy: str
    length_stride: int
    imbalance: float
    baseline_imbalance: float
    sample_size: int

    @property
    def improvement(self) -> float:
        """Fractional imbalance reduction vs the configured router."""
        if self.baseline_imbalance <= 0:
            return 0.0
        return 1.0 - self.imbalance / self.baseline_imbalance

    def to_dict(self) -> dict:
        """The ``"autotune"`` block of a cluster telemetry summary."""
        return {
            "policy": self.policy,
            "length_stride": self.length_stride,
            "imbalance": self.imbalance,
            "baseline_imbalance": self.baseline_imbalance,
            "sample_size": self.sample_size,
        }


def shard_load_imbalance(
    tasks: Sequence["AlignmentTask"],
    router: "ShardRouter",
    *,
    first_id: int = 0,
) -> float:
    """Max/mean shard load of routing ``tasks`` with ``router``.

    Load is the summed anti-diagonal count per shard (the work the
    modeled service time charges for), and the mean is over *all*
    ``router.shards`` shards -- an empty shard is imbalance, not absence.
    ``first_id`` is the request id of ``tasks[0]`` (ids are consecutive),
    so live observers can score a mid-stream window.  Returns 1.0 for an
    empty or zero-load sample.
    """
    loads = [0] * router.shards
    for offset, task in enumerate(tasks):
        loads[router.route(task, first_id + offset)] += task.num_antidiagonals
    total = sum(loads)
    if total <= 0:
        return 1.0
    return max(loads) / (total / router.shards)


def autotune_router(
    tasks: Sequence["AlignmentTask"],
    shards: int,
    config: Optional[AutotuneConfig] = None,
    *,
    baseline: Optional["ShardRouter"] = None,
    first_id: int = 0,
) -> RouterChoice:
    """Pick the candidate router minimising load imbalance on ``tasks``.

    The grid is ``config.policies`` x ``config.strides`` (stride-free
    policies evaluated once, with the baseline's stride so the chosen
    router differs from the configured one only where it matters).  Ties
    break toward the earlier grid entry, so the choice is a deterministic
    function of the sample.  ``baseline`` is the statically configured
    router (defaults to plain ``hash``); its imbalance on the same sample
    is reported for gating.
    """
    from repro.serve.cluster import ShardRouter

    config = config or AutotuneConfig()
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if not tasks:
        raise ValueError("autotune_router needs a non-empty task sample")
    if baseline is None:
        baseline = ShardRouter(shards=shards)
    baseline_imbalance = shard_load_imbalance(tasks, baseline, first_id=first_id)

    candidates: List[ShardRouter] = []
    for policy in config.policies:
        if policy == "length":
            for stride in config.strides:
                candidates.append(
                    ShardRouter(shards=shards, policy=policy, length_stride=stride)
                )
        else:
            candidates.append(
                ShardRouter(
                    shards=shards, policy=policy, length_stride=baseline.length_stride
                )
            )

    best: Optional[ShardRouter] = None
    best_imbalance = float("inf")
    for candidate in candidates:
        imbalance = shard_load_imbalance(tasks, candidate, first_id=first_id)
        if imbalance < best_imbalance:  # strict: ties keep the earlier entry
            best = candidate
            best_imbalance = imbalance
    assert best is not None
    return RouterChoice(
        policy=best.policy,
        length_stride=best.length_stride,
        imbalance=best_imbalance,
        baseline_imbalance=baseline_imbalance,
        sample_size=len(tasks),
    )


class TrafficObserver:
    """Buffers admitted tasks until the tuning sample is complete.

    The live cluster calls :meth:`observe` under its submission lock;
    once ``sample_size`` tasks have been seen, :meth:`ready` flips and
    :meth:`tune` yields the :class:`RouterChoice` for the current shard
    count.  Pure bookkeeping -- no clocks, no threads -- so a replayed
    submission order reproduces the live choice exactly.
    """

    def __init__(self, config: Optional[AutotuneConfig] = None) -> None:
        self.config = config or AutotuneConfig()
        self._tasks: List["AlignmentTask"] = []

    @property
    def ready(self) -> bool:
        return len(self._tasks) >= self.config.sample_size

    @property
    def observed(self) -> int:
        return len(self._tasks)

    def observe(self, task: "AlignmentTask") -> bool:
        """Record one admitted task; True once the sample is complete."""
        if not self.ready:
            self._tasks.append(task)
        return self.ready

    def tune(self, shards: int, *, baseline: "ShardRouter") -> RouterChoice:
        if not self._tasks:
            raise ValueError("no traffic observed yet")
        return autotune_router(
            self._tasks, shards, self.config, baseline=baseline
        )
