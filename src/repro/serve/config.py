"""Configuration of the micro-batching alignment service.

One frozen dataclass carries every policy knob the scheduler, the live
service and the CLI share, so a configuration can travel between the
virtual-clock replay and the threaded service unchanged and both behave
identically (same batches, same engine calls).

Streaming engines add one knob: ``refill``.  With ``"drain"`` the
scheduler runs the classic drain-then-form loop (a dispatched batch runs
to completion before the queue is looked at again); with
``"continuous"`` it keeps one :class:`repro.api.InFlightBatch` open and
admits pending requests into lanes freed by compaction at every slice
boundary.  The default ``"auto"`` picks continuous refill exactly when
the engine streams natively (:func:`repro.api.supports_streaming`), so
existing configurations with one-shot engines behave as before.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.align.batch import DEFAULT_BUCKET_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports serve)
    from repro.api.engines import EngineOptions

__all__ = ["TIMING_MODES", "REFILL_MODES", "ServeConfig"]

#: How batch service time is charged to the clock: ``"measured"`` times
#: the real engine call, ``"modeled"`` uses the deterministic linear
#: model of :func:`repro.serve.scheduler.modeled_service_ms`.
TIMING_MODES = ("measured", "modeled")

#: Lane-refill policy: ``"auto"`` resolves to ``"continuous"`` for
#: engines that stream natively and ``"drain"`` otherwise.
REFILL_MODES = ("auto", "continuous", "drain")


@dataclass(frozen=True)
class ServeConfig:
    """Policy of one alignment service.

    Parameters
    ----------
    engine:
        Alignment engine name from the :mod:`repro.api` engine registry
        (``"batch"`` by default; ``"batch-sliced"`` compacts terminated
        tasks out of the sweep -- a good fit for mixed online traffic --
        and ``"scalar"`` is the oracle path).
    batch_size:
        Bucket size handed to the engine (``None`` keeps the engine
        default).  This is the *engine's* internal SIMD bucket; the
        scheduler's own batch bound is ``max_batch_size``.  Equivalent to
        ``options.batch_size`` (setting both to different values is an
        error).
    options:
        Typed engine tuning (:class:`repro.api.EngineOptions`); carries
        ``slice_width`` for streaming engines in addition to
        ``batch_size``.  ``None`` means engine defaults.
    refill:
        ``"auto"`` (default), ``"continuous"`` or ``"drain"`` -- see the
        module docstring.  ``"continuous"`` requires an engine that
        streams natively and models a single device whose lane capacity
        is ``max_batch_size``; ``workers`` applies to drain mode.
    max_batch_size:
        Most requests one dispatched batch may carry.  ``1`` disables
        micro-batching (every request is served alone -- the anchor the
        serve benchmark compares against).  Under continuous refill this
        is the in-flight batch's lane capacity.
    max_wait_ms:
        Longest the scheduler may hold a request hoping for batch-mates.
        Once the oldest pending request has waited this long, a batch is
        cut even if it is not full.  Continuous refill only strengthens
        the guarantee: while the in-flight batch has free lanes, pending
        requests are admitted at the very next slice boundary.
    workers:
        Number of batch executors.  The replay scheduler models them as
        parallel servers of a queueing system; the live service backs
        them with a thread pool.  Continuous refill serialises on the
        single in-flight batch, so ``workers`` is ignored there.
    length_aware:
        Form batches from requests of similar anti-diagonal count (via
        :func:`repro.core.uneven_bucketing.length_bucket_order`) instead
        of plain FIFO prefixes, so engine-side padding stays cheap.
        Refill admission is never length-aware (freed lanes take the
        oldest/most urgent request).
    timing:
        ``"measured"`` (wall-clock the engine call) or ``"modeled"``
        (deterministic cost model; replays become bit-reproducible).
    model_overhead_ms, model_task_us, model_antidiag_us:
        Parameters of the modeled service time: a fixed per-dispatch
        overhead, a per-task cost, and a per-anti-diagonal cost charged
        on the *longest* task of the batch (tasks of one batch sweep
        together, which is exactly why batching amortises).  Continuous
        refill charges the same parameters per slice, with the dispatch
        overhead paid once per busy period (the stream behaves like a
        persistent kernel).
    """

    engine: str = "batch"
    batch_size: Optional[int] = None
    max_batch_size: int = 32
    max_wait_ms: float = 4.0
    workers: int = 1
    length_aware: bool = True
    timing: str = "measured"
    model_overhead_ms: float = 0.25
    model_task_us: float = 8.0
    model_antidiag_us: float = 2.0
    options: Optional["EngineOptions"] = None
    refill: str = "auto"

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ValueError("batch_size must be positive when given")
        if self.timing not in TIMING_MODES:
            raise ValueError(
                f"timing must be one of {TIMING_MODES}, got {self.timing!r}"
            )
        if self.refill not in REFILL_MODES:
            raise ValueError(
                f"refill must be one of {REFILL_MODES}, got {self.refill!r}"
            )
        if self.model_overhead_ms < 0 or self.model_task_us < 0 or self.model_antidiag_us < 0:
            raise ValueError("modeled-timing parameters must be non-negative")
        if (
            self.options is not None
            and self.batch_size is not None
            and self.options.batch_size is not None
            and self.options.batch_size != self.batch_size
        ):
            raise ValueError(
                f"conflicting bucket sizes: batch_size={self.batch_size} vs "
                f"options.batch_size={self.options.batch_size}"
            )
        # Fail fast on unknown engine names, mirroring Session's eager
        # registry validation.  Imported lazily: the engine registry
        # lives above this module in the import graph.
        from repro.api.engines import get_engine, supports_streaming

        get_engine(self.engine)
        if self.refill == "continuous" and not supports_streaming(self.engine):
            raise ValueError(
                f"refill='continuous' requires a streaming engine, but "
                f"{self.engine!r} only supports one-shot batches "
                f"(use refill='auto' or 'drain')"
            )

    # ------------------------------------------------------------------
    def engine_options(self) -> "EngineOptions":
        """Typed engine tuning with ``batch_size`` folded in.

        The returned options always pin a concrete ``batch_size`` (the
        registry contract lets engines require it), so both refill modes
        call engines exactly like the pre-streaming scheduler did.
        """
        from repro.api.engines import EngineOptions

        base = self.options if self.options is not None else EngineOptions()
        if base.batch_size is None:
            base = base.replace(batch_size=self.effective_batch_size())
        return base

    def effective_batch_size(self) -> int:
        """The engine bucket size this configuration actually uses."""
        if self.batch_size is not None:
            return self.batch_size
        if self.options is not None and self.options.batch_size is not None:
            return self.options.batch_size
        return DEFAULT_BUCKET_SIZE

    def resolved_refill(self) -> str:
        """``refill`` with ``"auto"`` resolved against the engine."""
        if self.refill != "auto":
            return self.refill
        from repro.api.engines import supports_streaming

        return "continuous" if supports_streaming(self.engine) else "drain"

    def replace(self, **changes: Any) -> "ServeConfig":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    @property
    def policy_name(self) -> str:
        """Default label for telemetry/records.

        ``"batch1"`` when micro-batching is disabled, ``"continuous"``
        when the resolved refill mode streams, ``"microbatch"`` for the
        classic drain-then-form policy.
        """
        if self.max_batch_size <= 1:
            return "batch1"
        return "continuous" if self.resolved_refill() == "continuous" else "microbatch"
