"""Configuration of the micro-batching alignment service.

One frozen dataclass carries every policy knob the scheduler, the live
service and the CLI share, so a configuration can travel between the
virtual-clock replay and the threaded service unchanged and both behave
identically (same batches, same engine calls).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional

from repro.align.batch import DEFAULT_BUCKET_SIZE

__all__ = ["TIMING_MODES", "ServeConfig"]

#: How batch service time is charged to the clock: ``"measured"`` times
#: the real engine call, ``"modeled"`` uses the deterministic linear
#: model of :func:`repro.serve.scheduler.modeled_service_ms`.
TIMING_MODES = ("measured", "modeled")


@dataclass(frozen=True)
class ServeConfig:
    """Policy of one alignment service.

    Parameters
    ----------
    engine:
        Alignment engine name from the :mod:`repro.api` engine registry
        (``"batch"`` by default; ``"batch-sliced"`` compacts terminated
        tasks out of the sweep -- a good fit for mixed online traffic --
        and ``"scalar"`` is the oracle path).
    batch_size:
        Bucket size handed to the engine (``None`` keeps the engine
        default).  This is the *engine's* internal SIMD bucket; the
        scheduler's own batch bound is ``max_batch_size``.
    max_batch_size:
        Most requests one dispatched batch may carry.  ``1`` disables
        micro-batching (every request is served alone -- the anchor the
        serve benchmark compares against).
    max_wait_ms:
        Longest the scheduler may hold a request hoping for batch-mates.
        Once the oldest pending request has waited this long, a batch is
        cut even if it is not full.
    workers:
        Number of batch executors.  The replay scheduler models them as
        parallel servers of a queueing system; the live service backs
        them with a thread pool.
    length_aware:
        Form batches from requests of similar anti-diagonal count (via
        :func:`repro.core.uneven_bucketing.length_bucket_order`) instead
        of plain FIFO prefixes, so engine-side padding stays cheap.
    timing:
        ``"measured"`` (wall-clock the engine call) or ``"modeled"``
        (deterministic cost model; replays become bit-reproducible).
    model_overhead_ms, model_task_us, model_antidiag_us:
        Parameters of the modeled service time: a fixed per-dispatch
        overhead, a per-task cost, and a per-anti-diagonal cost charged
        on the *longest* task of the batch (tasks of one batch sweep
        together, which is exactly why batching amortises).
    """

    engine: str = "batch"
    batch_size: Optional[int] = None
    max_batch_size: int = 32
    max_wait_ms: float = 4.0
    workers: int = 1
    length_aware: bool = True
    timing: str = "measured"
    model_overhead_ms: float = 0.25
    model_task_us: float = 8.0
    model_antidiag_us: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ValueError("batch_size must be positive when given")
        if self.timing not in TIMING_MODES:
            raise ValueError(
                f"timing must be one of {TIMING_MODES}, got {self.timing!r}"
            )
        if self.model_overhead_ms < 0 or self.model_task_us < 0 or self.model_antidiag_us < 0:
            raise ValueError("modeled-timing parameters must be non-negative")
        # Fail fast on unknown engine names, mirroring Session's eager
        # registry validation.  Imported lazily: the engine registry
        # lives above this module in the import graph.
        from repro.api.engines import get_engine

        get_engine(self.engine)

    # ------------------------------------------------------------------
    def effective_batch_size(self) -> int:
        """The engine bucket size this configuration actually uses."""
        return self.batch_size if self.batch_size is not None else DEFAULT_BUCKET_SIZE

    def replace(self, **changes: Any) -> "ServeConfig":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    @property
    def policy_name(self) -> str:
        """Default label for telemetry/records (``microbatch`` / ``batch1``)."""
        return "microbatch" if self.max_batch_size > 1 else "batch1"
