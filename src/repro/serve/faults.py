"""Deterministic fault injection for the sharded serving cluster.

Crash-robustness used to be testable only through the live chaos hook
(:meth:`repro.serve.cluster.ClusterService.fail_shard`), which places a
crash *somewhere* in real time -- good for smoke tests, useless for
pinning the retry / restart / re-route contracts bit-exactly.  A
:class:`FaultPlan` makes failure a first-class, replayable input: it
names which shard fails, when (virtual time for the replay DES, a
served-request count for the live worker loop), and which dispatches are
delayed, dropped, or duplicated -- so chaos tests run the *same* failure
on every run and assert exact outcomes.

Four fault kinds:

:class:`CrashFault`
    The worker of one shard dies abruptly (``os._exit`` live, a
    two-phase survivor split in :func:`~repro.serve.cluster.cluster_replay`).
    Everything queued or in flight on the shard is stranded and follows
    the normal crash contract: re-routed onto survivors under
    ``ClusterConfig(retry_failed=True)``, failed fast with
    :class:`~repro.serve.cluster.ShardFailedError` otherwise.
:class:`DelayFault`
    The shard stalls for ``delay_ms`` -- a GC pause / noisy-neighbour
    model.  In replay the stall pushes every dispatch at or after
    ``at_ms``; live the worker sleeps before serving its
    ``after_requests``-th message.
:class:`DropFault`
    One dispatch from the front-end to the shard is lost.  The requests
    of the dropped dispatch return to the parent-side queue
    (:meth:`~repro.serve.queueing.MicroBatcher.restore`) and go out again
    on a later dispatch -- a lost send is latency, never silent loss.
:class:`DuplicateFault`
    One dispatch is delivered twice.  The shard serves the work twice
    (the duplicate costs real service time) but the result is delivered
    once -- duplicate delivery must never double-resolve a future or
    double-count a result.

Triggers: ``at_ms`` addresses the replay's virtual clock, and
``after_requests`` (1-based served-message count) addresses the live
worker loop; each layer honours its own trigger and ignores the other.
Drop/duplicate faults address the *dispatch stream* of a shard by
0-based index -- batch dispatches in the replay DES, per-request sends
in the live dispatcher -- so the two layers interpret the same plan at
their own granularity.

:class:`ShardFaults` is the per-shard view :func:`repro.serve.scheduler.replay`
consumes: the cluster slices a plan into one view per shard and threads
it through each shard's drain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

__all__ = [
    "CrashFault",
    "DelayFault",
    "DropFault",
    "DuplicateFault",
    "FaultPlan",
    "ShardFaults",
]


def _check_shard(shard: int) -> None:
    if shard < 0:
        raise ValueError(f"fault shard must be non-negative, got {shard}")


def _check_trigger(at_ms: Optional[float], after_requests: Optional[int]) -> None:
    if at_ms is None and after_requests is None:
        raise ValueError(
            "a crash/delay fault needs a trigger: at_ms (replay virtual time) "
            "and/or after_requests (live served-request count)"
        )
    if at_ms is not None and at_ms < 0:
        raise ValueError(f"at_ms must be non-negative, got {at_ms}")
    if after_requests is not None and after_requests < 1:
        raise ValueError(f"after_requests must be >= 1, got {after_requests}")


@dataclass(frozen=True)
class CrashFault:
    """Kill one shard's worker: at virtual ``at_ms`` (replay) and/or
    right before it would serve its ``after_requests``-th message (live)."""

    shard: int
    at_ms: Optional[float] = None
    after_requests: Optional[int] = None

    def __post_init__(self) -> None:
        _check_shard(self.shard)
        _check_trigger(self.at_ms, self.after_requests)


@dataclass(frozen=True)
class DelayFault:
    """Stall one shard for ``delay_ms`` at ``at_ms`` (replay) and/or
    before serving its ``after_requests``-th message (live)."""

    shard: int
    delay_ms: float
    at_ms: Optional[float] = None
    after_requests: Optional[int] = None

    def __post_init__(self) -> None:
        _check_shard(self.shard)
        _check_trigger(self.at_ms, self.after_requests)
        if self.delay_ms <= 0:
            raise ValueError(f"delay_ms must be positive, got {self.delay_ms}")


@dataclass(frozen=True)
class DropFault:
    """Lose the ``dispatch``-th (0-based) send to ``shard``; its requests
    are restored to the queue and re-dispatched later."""

    shard: int
    dispatch: int

    def __post_init__(self) -> None:
        _check_shard(self.shard)
        if self.dispatch < 0:
            raise ValueError(f"dispatch index must be non-negative, got {self.dispatch}")


@dataclass(frozen=True)
class DuplicateFault:
    """Deliver the ``dispatch``-th (0-based) send to ``shard`` twice; the
    duplicate costs service time but its result is delivered once."""

    shard: int
    dispatch: int

    def __post_init__(self) -> None:
        _check_shard(self.shard)
        if self.dispatch < 0:
            raise ValueError(f"dispatch index must be non-negative, got {self.dispatch}")


@dataclass(frozen=True)
class ShardFaults:
    """One shard's slice of a :class:`FaultPlan`, as the scheduler sees it.

    ``stalls`` are ``(at_ms, delay_ms)`` pairs sorted by time; ``drops``
    and ``duplicates`` are 0-based dispatch indices.  A default-constructed
    view is falsy, so drivers can skip the fault bookkeeping entirely when
    no fault targets their shard.
    """

    stalls: Tuple[Tuple[float, float], ...] = ()
    drops: FrozenSet[int] = frozenset()
    duplicates: FrozenSet[int] = frozenset()

    def __bool__(self) -> bool:
        return bool(self.stalls or self.drops or self.duplicates)

    def after(self, at_ms: float) -> "ShardFaults":
        """The view a replacement worker sees after a crash at ``at_ms``:
        only stalls scheduled from then on; dispatch-indexed faults stay
        with the first worker's dispatch stream."""
        return ShardFaults(
            stalls=tuple(stall for stall in self.stalls if stall[0] >= at_ms)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible failure schedule for one cluster drain.

    The same plan drives both layers: :func:`~repro.serve.cluster.cluster_replay`
    honours virtual-time triggers (``at_ms``) and dispatch indices on its
    DES, :class:`~repro.serve.cluster.ClusterService` honours served-count
    triggers (``after_requests``) and dispatch indices on its live
    dispatcher.  At most one crash per shard -- a restarted worker that
    re-crashes is a crash *loop*, which is a different experiment.
    """

    crashes: Tuple[CrashFault, ...] = ()
    delays: Tuple[DelayFault, ...] = ()
    drops: Tuple[DropFault, ...] = ()
    duplicates: Tuple[DuplicateFault, ...] = field(default=())

    def __post_init__(self) -> None:
        crashed = [crash.shard for crash in self.crashes]
        if len(crashed) != len(set(crashed)):
            raise ValueError("at most one CrashFault per shard")
        seen_drops = [(drop.shard, drop.dispatch) for drop in self.drops]
        if len(seen_drops) != len(set(seen_drops)):
            raise ValueError("duplicate DropFault entries for one dispatch")
        seen_dups = [(dup.shard, dup.dispatch) for dup in self.duplicates]
        if len(seen_dups) != len(set(seen_dups)):
            raise ValueError("duplicate DuplicateFault entries for one dispatch")
        overlap = set(seen_drops) & set(seen_dups)
        if overlap:
            raise ValueError(
                f"dispatch(es) {sorted(overlap)} are both dropped and duplicated"
            )

    def __bool__(self) -> bool:
        return bool(self.crashes or self.delays or self.drops or self.duplicates)

    # ------------------------------------------------------------------
    def max_shard(self) -> int:
        """Largest shard index any fault addresses (-1 for an empty plan)."""
        indices = [
            *(crash.shard for crash in self.crashes),
            *(delay.shard for delay in self.delays),
            *(drop.shard for drop in self.drops),
            *(dup.shard for dup in self.duplicates),
        ]
        return max(indices, default=-1)

    def validate_for(self, shards: int) -> None:
        """Reject plans addressing shards outside a ``shards``-wide cluster."""
        if self.max_shard() >= shards:
            raise ValueError(
                f"fault plan addresses shard {self.max_shard()} but the drain "
                f"never has more than {shards} shard(s)"
            )

    def crash_time(self, shard: int) -> Optional[float]:
        """The virtual crash time of ``shard`` (None = no replay crash)."""
        for crash in self.crashes:
            if crash.shard == shard and crash.at_ms is not None:
                return crash.at_ms
        return None

    def crash_after(self, shard: int) -> Optional[int]:
        """The live served-count crash trigger of ``shard``."""
        for crash in self.crashes:
            if crash.shard == shard and crash.after_requests is not None:
                return crash.after_requests
        return None

    def delays_after(self, shard: int) -> Tuple[Tuple[int, float], ...]:
        """Live ``(after_requests, delay_ms)`` stalls of ``shard``."""
        return tuple(
            (delay.after_requests, delay.delay_ms)
            for delay in self.delays
            if delay.shard == shard and delay.after_requests is not None
        )

    def shard_faults(self, shard: int) -> ShardFaults:
        """The replay-side view of ``shard``: stalls + dispatch faults."""
        stalls = sorted(
            (delay.at_ms, delay.delay_ms)
            for delay in self.delays
            if delay.shard == shard and delay.at_ms is not None
        )
        return ShardFaults(
            stalls=tuple(stalls),
            drops=frozenset(
                drop.dispatch for drop in self.drops if drop.shard == shard
            ),
            duplicates=frozenset(
                dup.dispatch for dup in self.duplicates if dup.shard == shard
            ),
        )
