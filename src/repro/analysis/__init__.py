"""Analysis helpers: workload distributions and report formatting.

``workload``
    The histograms of Figures 3(b) and 12: how the anti-diagonal workload
    is distributed over tasks, and how the per-thread block workload is
    distributed under the different balancing schemes.
``report``
    Plain-text table rendering used by the examples and the benchmark
    harness (the repository has no plotting dependency; every figure is
    reproduced as the table of series the plot would show).
"""

from repro.analysis.workload import (
    workload_histogram,
    task_workload_antidiagonals,
    per_subwarp_block_distribution,
    long_task_fraction,
)
from repro.analysis.report import format_table, format_speedup_table

__all__ = [
    "workload_histogram",
    "task_workload_antidiagonals",
    "per_subwarp_block_distribution",
    "long_task_fraction",
    "format_table",
    "format_speedup_table",
]
