"""Plain-text report rendering.

The repository reproduces every figure of the paper as the *data series*
the figure plots (no plotting dependency is available offline), so the
benchmarks and examples need a compact way to print aligned tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_speedup_table", "format_bench_record"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as a fixed-width text table."""
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for k, cell in enumerate(cells):
            widths[k] = max(widths[k], len(cell))
    lines = [
        "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)),
        "  ".join("-" * widths[k] for k in range(len(headers))),
    ]
    for cells in rendered:
        lines.append("  ".join(cells[k].ljust(widths[k]) for k in range(len(cells))))
    return "\n".join(lines)


def format_bench_record(record) -> str:
    """Render a :class:`repro.bench.records.BenchRecord` for the terminal.

    One speedup table per suite, plus a one-line run summary.  Accepts the
    record duck-typed so this module stays import-light.
    """
    lines: list[str] = []
    for suite_name, suite in record.suites.items():
        lines.append(f"=== {record.figure} / {suite_name} ===")
        lines.append(format_speedup_table(suite.speedups))
        lines.append("")
    cells = sum(len(s.cells) for s in record.suites.values())
    lines.append(
        f"{cells} cells in {record.wall_time_s:.1f}s wall "
        f"(workers={record.environment.get('workers')})"
    )
    return "\n".join(lines)


def format_speedup_table(table: Mapping[str, Mapping[str, float]]) -> str:
    """Render the output of :func:`repro.pipeline.experiment.speedup_table`.

    Rows are kernels, columns are datasets (plus the geometric mean),
    values are speedups over the CPU baseline.
    """
    if not table:
        return "(empty)"
    first = next(iter(table.values()))
    columns = list(first.keys())
    headers = ["kernel"] + columns
    rows = []
    for kernel_name, row in table.items():
        rows.append([kernel_name] + [row.get(c, float("nan")) for c in columns])
    return format_table(headers, rows)
