"""Workload-distribution analysis (Figures 3b and 12).

Figure 3(b) plots, for one dataset, the distribution of per-task workload
(the paper measures it in anti-diagonals): most alignments are small, but
a heavy tail of tasks is orders of magnitude larger and those dominate the
total work.  Figure 12 plots how many blocks each *subwarp/thread* ends up
computing under the different balancing schemes -- the mechanism by which
subwarp rejoining and uneven bucketing flatten the same tail.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.align.types import AlignmentTask
from repro.gpusim.trace import KernelLaunchStats

__all__ = [
    "task_workload_antidiagonals",
    "workload_histogram",
    "per_subwarp_block_distribution",
    "long_task_fraction",
]


def task_workload_antidiagonals(tasks: Sequence[AlignmentTask]) -> np.ndarray:
    """Per-task workload in processed anti-diagonals (Figure 3b's measure)."""
    return np.asarray(
        [task.profile().antidiagonals_processed for task in tasks], dtype=np.int64
    )


def workload_histogram(
    workloads: Sequence[float], num_bins: int = 20, bin_width: float | None = None
) -> Dict[str, np.ndarray]:
    """Histogram of per-task workloads with accumulated workload per bin.

    Returns the bin edges, the task count per bin (Figure 3b's
    "alignment count") and the summed workload per bin ("amount of
    workload"), the two series of the paper's plot.
    """
    w = np.asarray(list(workloads), dtype=np.float64)
    if w.size == 0:
        edges = np.zeros(1)
        empty = np.zeros(0)
        return {"bin_edges": edges, "task_count": empty, "total_workload": empty}
    if bin_width is not None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        top = float(w.max()) + bin_width
        edges = np.arange(0.0, top + bin_width, bin_width)
    else:
        edges = np.linspace(0.0, float(w.max()) * 1.0001, num_bins + 1)
    counts, _ = np.histogram(w, bins=edges)
    sums, _ = np.histogram(w, bins=edges, weights=w)
    return {"bin_edges": edges, "task_count": counts, "total_workload": sums}


def per_subwarp_block_distribution(
    stats: KernelLaunchStats, block_size: int = 8
) -> np.ndarray:
    """Blocks computed per subwarp slot in one simulated launch.

    This is the quantity Figure 12 accumulates: with the original ordering
    a few subwarps process enormous block counts; subwarp rejoining and
    uneven bucketing shift the distribution toward many subwarps with
    moderate counts.
    """
    blocks: List[float] = []
    cells_per_block = float(block_size * block_size)
    for warp in stats.warps:
        for sw in warp.subwarps:
            total = sum(wl.cells for wl in sw.workloads)
            blocks.append(total / cells_per_block)
    return np.asarray(blocks, dtype=np.float64)


def long_task_fraction(
    workloads: Sequence[float], threshold_quantile: float = 0.9
) -> float:
    """Fraction of the *total* workload carried by tasks above a quantile.

    The paper observes that the top 5-20 % of alignments carry the far
    right peak of Figure 3(b); this helper quantifies that concentration
    for the synthetic datasets so tests can assert the tail exists.
    """
    w = np.asarray(list(workloads), dtype=np.float64)
    if w.size == 0 or w.sum() == 0:
        return 0.0
    if not 0.0 < threshold_quantile < 1.0:
        raise ValueError("threshold_quantile must be in (0, 1)")
    cutoff = np.quantile(w, threshold_quantile)
    return float(w[w >= cutoff].sum() / w.sum())
